module met

go 1.24
