// Package iaas simulates the OpenStack layer MeT uses as its basic
// provider of elasticity: asynchronous instance provisioning with a
// realistic boot delay, termination, flavors, and a quota. The Actuator
// requests machines here before it can start region servers on them,
// which is why node additions in Figures 5 and 6 take effect one to two
// minutes after the decision.
package iaas

import (
	"errors"
	"fmt"
	"sort"

	"met/internal/sim"
)

// Instance lifecycle states.
type State int

// States an instance moves through: Booting -> Active -> Terminated.
const (
	Booting State = iota
	Active
	Terminated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Booting:
		return "BOOTING"
	case Active:
		return "ACTIVE"
	case Terminated:
		return "TERMINATED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Common errors.
var (
	// ErrQuotaExceeded is returned when launching past the quota.
	ErrQuotaExceeded = errors.New("iaas: instance quota exceeded")
	// ErrUnknownInstance is returned for absent instance ids.
	ErrUnknownInstance = errors.New("iaas: unknown instance")
	// ErrUnknownFlavor is returned for unregistered flavors.
	ErrUnknownFlavor = errors.New("iaas: unknown flavor")
)

// Flavor describes an instance size (the paper uses 3 GB RAM VMs).
type Flavor struct {
	Name     string
	VCPUs    int
	RAMBytes int64
	DiskMBps float64 // local disk bandwidth
}

// Instance is one virtual machine.
type Instance struct {
	ID     string
	Name   string
	Flavor Flavor
	State  State
	// LaunchedAt and ActiveAt bracket the boot delay.
	LaunchedAt sim.Time
	ActiveAt   sim.Time
}

// Provider is the simulated OpenStack endpoint.
type Provider struct {
	sched     *sim.Scheduler
	bootDelay sim.Time
	quota     int
	flavors   map[string]Flavor
	instances map[string]*Instance
	seq       int
	// onActive callbacks fire when an instance finishes booting.
	onActive map[string]func(*Instance)
}

// NewProvider creates a provider on the given scheduler. bootDelay is how
// long a VM takes from launch to ACTIVE (60–120 s is typical; the paper's
// node-addition lag). quota <= 0 means unlimited.
func NewProvider(sched *sim.Scheduler, bootDelay sim.Time, quota int) *Provider {
	p := &Provider{
		sched:     sched,
		bootDelay: bootDelay,
		quota:     quota,
		flavors:   make(map[string]Flavor),
		instances: make(map[string]*Instance),
		onActive:  make(map[string]func(*Instance)),
	}
	p.RegisterFlavor(Flavor{Name: "m1.medium", VCPUs: 2, RAMBytes: 3 << 30, DiskMBps: 100})
	return p
}

// RegisterFlavor adds (or replaces) a flavor.
func (p *Provider) RegisterFlavor(f Flavor) { p.flavors[f.Name] = f }

// Flavors lists registered flavor names, sorted.
func (p *Provider) Flavors() []string {
	out := make([]string, 0, len(p.flavors))
	for n := range p.flavors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Launch provisions a new instance asynchronously. onActive (optional)
// fires on the scheduler when the instance becomes ACTIVE.
func (p *Provider) Launch(name, flavor string, onActive func(*Instance)) (*Instance, error) {
	f, ok := p.flavors[flavor]
	if !ok {
		return nil, ErrUnknownFlavor
	}
	if p.quota > 0 && p.countLive() >= p.quota {
		return nil, ErrQuotaExceeded
	}
	p.seq++
	inst := &Instance{
		ID:         fmt.Sprintf("vm-%04d", p.seq),
		Name:       name,
		Flavor:     f,
		State:      Booting,
		LaunchedAt: p.sched.Now(),
	}
	p.instances[inst.ID] = inst
	if onActive != nil {
		p.onActive[inst.ID] = onActive
	}
	id := inst.ID
	p.sched.ScheduleAfter(p.bootDelay, func(now sim.Time) {
		i, ok := p.instances[id]
		if !ok || i.State != Booting {
			return // terminated while booting
		}
		i.State = Active
		i.ActiveAt = now
		if cb, ok := p.onActive[id]; ok {
			delete(p.onActive, id)
			cb(i)
		}
	})
	return inst, nil
}

// Terminate shuts an instance down immediately.
func (p *Provider) Terminate(id string) error {
	inst, ok := p.instances[id]
	if !ok {
		return ErrUnknownInstance
	}
	inst.State = Terminated
	delete(p.onActive, id)
	return nil
}

// Get returns an instance by id.
func (p *Provider) Get(id string) (*Instance, error) {
	inst, ok := p.instances[id]
	if !ok {
		return nil, ErrUnknownInstance
	}
	return inst, nil
}

// List returns all non-terminated instances sorted by id.
func (p *Provider) List() []*Instance {
	var out []*Instance
	for _, i := range p.instances {
		if i.State != Terminated {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountActive returns the number of ACTIVE instances.
func (p *Provider) CountActive() int {
	n := 0
	for _, i := range p.instances {
		if i.State == Active {
			n++
		}
	}
	return n
}

func (p *Provider) countLive() int {
	n := 0
	for _, i := range p.instances {
		if i.State != Terminated {
			n++
		}
	}
	return n
}

// Quota returns the configured quota (0 = unlimited).
func (p *Provider) Quota() int { return p.quota }

// BootDelay returns the provisioning latency.
func (p *Provider) BootDelay() sim.Time { return p.bootDelay }
