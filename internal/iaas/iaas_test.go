package iaas

import (
	"errors"
	"testing"

	"met/internal/sim"
)

func TestLaunchBecomesActiveAfterBoot(t *testing.T) {
	s := sim.NewScheduler()
	p := NewProvider(s, 90*sim.Second, 0)
	var activeAt sim.Time
	inst, err := p.Launch("rs5", "m1.medium", func(i *Instance) { activeAt = i.ActiveAt })
	if err != nil {
		t.Fatal(err)
	}
	if inst.State != Booting {
		t.Fatalf("state = %v", inst.State)
	}
	s.RunUntil(89 * sim.Second)
	if inst.State != Booting {
		t.Fatal("active before boot delay")
	}
	s.RunUntil(91 * sim.Second)
	if inst.State != Active {
		t.Fatalf("state = %v after boot", inst.State)
	}
	if activeAt != 90*sim.Second {
		t.Fatalf("callback at %v", activeAt)
	}
	if p.CountActive() != 1 {
		t.Fatalf("active = %d", p.CountActive())
	}
}

func TestLaunchUnknownFlavor(t *testing.T) {
	p := NewProvider(sim.NewScheduler(), sim.Second, 0)
	if _, err := p.Launch("x", "m1.nope", nil); !errors.Is(err, ErrUnknownFlavor) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuota(t *testing.T) {
	s := sim.NewScheduler()
	p := NewProvider(s, sim.Second, 2)
	if _, err := p.Launch("a", "m1.medium", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Launch("b", "m1.medium", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Launch("c", "m1.medium", nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
	// Terminating frees quota.
	insts := p.List()
	if err := p.Terminate(insts[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Launch("c", "m1.medium", nil); err != nil {
		t.Fatalf("post-terminate launch err = %v", err)
	}
}

func TestTerminateWhileBootingCancelsCallback(t *testing.T) {
	s := sim.NewScheduler()
	p := NewProvider(s, 10*sim.Second, 0)
	fired := false
	inst, _ := p.Launch("x", "m1.medium", func(*Instance) { fired = true })
	p.Terminate(inst.ID)
	s.RunUntil(20 * sim.Second)
	if fired {
		t.Fatal("callback fired for terminated instance")
	}
	if inst.State != Terminated {
		t.Fatalf("state = %v", inst.State)
	}
}

func TestTerminateUnknown(t *testing.T) {
	p := NewProvider(sim.NewScheduler(), sim.Second, 0)
	if err := p.Terminate("vm-9999"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Get("vm-9999"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v", err)
	}
}

func TestListSortedAndExcludesTerminated(t *testing.T) {
	s := sim.NewScheduler()
	p := NewProvider(s, sim.Second, 0)
	a, _ := p.Launch("a", "m1.medium", nil)
	p.Launch("b", "m1.medium", nil)
	p.Launch("c", "m1.medium", nil)
	p.Terminate(a.ID)
	list := p.List()
	if len(list) != 2 {
		t.Fatalf("list = %d", len(list))
	}
	if list[0].ID >= list[1].ID {
		t.Fatal("unsorted list")
	}
}

func TestCustomFlavor(t *testing.T) {
	p := NewProvider(sim.NewScheduler(), sim.Second, 0)
	p.RegisterFlavor(Flavor{Name: "m1.large", VCPUs: 4, RAMBytes: 8 << 30, DiskMBps: 200})
	inst, err := p.Launch("big", "m1.large", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Flavor.VCPUs != 4 {
		t.Fatalf("flavor = %+v", inst.Flavor)
	}
	flavors := p.Flavors()
	if len(flavors) != 2 || flavors[0] != "m1.large" {
		t.Fatalf("flavors = %v", flavors)
	}
}

func TestStateString(t *testing.T) {
	if Booting.String() != "BOOTING" || Active.String() != "ACTIVE" || Terminated.String() != "TERMINATED" {
		t.Fatal("state strings wrong")
	}
	if State(42).String() == "" {
		t.Fatal("unknown state empty")
	}
}

func TestProviderAccessors(t *testing.T) {
	p := NewProvider(sim.NewScheduler(), 75*sim.Second, 11)
	if p.BootDelay() != 75*sim.Second || p.Quota() != 11 {
		t.Fatal("accessors wrong")
	}
}
