// Package analysistest runs an analyzer over source fixtures and
// checks its diagnostics against expectations embedded in the
// fixtures, in the style of golang.org/x/tools/go/analysis/analysistest
// (which is unavailable in this build environment).
//
// Fixtures live under <analyzer pkg>/testdata/src/<pkg>/ and declare
// expected diagnostics with trailing comments:
//
//	s.mu.Lock()
//	time.Sleep(time.Millisecond) // want `blocking call`
//
// Each `// want` comment holds one or more quoted regular
// expressions, each of which must match exactly one diagnostic
// reported on that line. Diagnostics without a matching want, and
// wants without a matching diagnostic, fail the test. Because the
// harness routes through analysis.RunPackage, //lint:allow
// annotations in fixtures are honored — a suppressed diagnostic needs
// no want comment, which is how the allowlist fixtures prove an
// annotation suppresses exactly one diagnostic.
//
// Fixtures are type-checked from source with the standard library
// available; they must not import anything outside std.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"met/internal/analysis"
)

// Run loads the fixture package at testdata/src/<pkg> relative to the
// caller's working directory (the analyzer package under test),
// applies the analyzer and diffs diagnostics against want comments.
func Run(t *testing.T, pkg string, a *analysis.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	names, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := analysis.NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkg, err)
	}

	findings, err := analysis.RunPackage(&analysis.Package{
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	checkExpectations(t, fset, files, findings)
}

// fixtureFiles lists the .go files of a fixture directory in a stable
// order, test files last so production declarations come first.
func fixtureFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Slice(names, func(i, j int) bool {
		ti := strings.HasSuffix(names[i], "_test.go")
		tj := strings.HasSuffix(names[j], "_test.go")
		if ti != tj {
			return !ti
		}
		return names[i] < names[j]
	})
	return names, nil
}

// A want is one expected-diagnostic pattern at one line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, pat := range parseWant(t, pos, c.Text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}

	for _, fd := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == fd.Pos.Filename && w.line == fd.Pos.Line &&
				w.re.MatchString(fd.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", fd.Pos, fd.Message, fd.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWant extracts the quoted patterns from a `// want` comment.
// Both "double-quoted" (unescaped via strconv) and `backquoted`
// literals are accepted.
func parseWant(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "want ") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, "want"))
	var pats []string
	for rest != "" {
		switch rest[0] {
		case '"':
			end := matchDoubleQuote(rest)
			if end < 0 {
				t.Fatalf("%s: unterminated string in want comment", pos)
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad string in want comment: %v", pos, err)
			}
			pats = append(pats, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated raw string in want comment", pos)
			}
			pats = append(pats, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s: want comment: expected quoted pattern, got %q", pos, rest)
		}
	}
	if len(pats) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return pats
}

// matchDoubleQuote returns the index of the closing quote of the
// double-quoted string starting at s[0], honoring backslash escapes.
func matchDoubleQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
