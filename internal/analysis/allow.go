package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allowlist annotation:
//
//	//lint:allow <analyzer> <reason>
//
// suppresses diagnostics from exactly one analyzer on exactly one
// line. An annotation written at the end of a line suppresses
// diagnostics reported on that line; an annotation on a line of its
// own suppresses diagnostics on the next line. The reason is
// mandatory — an annotation without one is itself reported, so every
// audited exception carries its justification in the source.

const allowPrefix = "lint:allow"

// An allowEntry is one parsed //lint:allow annotation.
type allowEntry struct {
	analyzer string
	reason   string
	pos      token.Pos // of the comment, for malformed-annotation reports
	line     int       // source line the annotation applies to
}

// parseAllows extracts every //lint:allow annotation from the files.
// Malformed annotations (missing analyzer or reason) are returned
// separately as diagnostics so the driver can surface them.
func parseAllows(fset *token.FileSet, files []*ast.File) (entries []allowEntry, malformed []Finding) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				if name == "" || reason == "" {
					malformed = append(malformed, Finding{
						Analyzer: "allowlist",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				line := pos.Line
				if startsLine(fset, f, c) {
					// Annotation on its own line applies to the next line.
					line++
				}
				entries = append(entries, allowEntry{
					analyzer: name,
					reason:   reason,
					pos:      c.Pos(),
					line:     line,
				})
			}
		}
	}
	return entries, malformed
}

// startsLine reports whether comment c is the first token on its
// source line (i.e. a standalone annotation rather than a trailing
// one). It scans the file's declarations for any node that ends on
// the comment's line before the comment starts.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	leading := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !leading {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == cpos.Line {
			// Some code ends on the comment's line before it:
			// the comment trails that code.
			switch n.(type) {
			case *ast.File, *ast.BlockStmt:
				// Container nodes don't count as code.
			default:
				leading = false
			}
		}
		return n.Pos() < c.Pos()
	})
	return leading
}

// applyAllowlist filters findings through the annotations, keeping a
// finding only when no matching annotation covers its line. Each
// annotation suppresses any number of diagnostics from its named
// analyzer on its one line — but only that analyzer and only that
// line.
func applyAllowlist(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	entries, malformed := parseAllows(fset, files)
	kept := findings[:0]
	for _, fd := range findings {
		suppressed := false
		for _, e := range entries {
			if e.analyzer == fd.Analyzer && e.line == fd.Pos.Line &&
				sameFile(fset, e.pos, fd.Pos.Filename) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, fd)
		}
	}
	return append(kept, malformed...)
}

func sameFile(fset *token.FileSet, pos token.Pos, filename string) bool {
	f := fset.File(pos)
	return f != nil && f.Name() == filename
}
