package locksafe

import (
	"testing"

	"met/internal/analysis/analysistest"
)

func TestLocksafe(t *testing.T) {
	// Register the fixture's guard types alongside the real ones.
	// locksafe.Server stands in for the rpc-layer guarded types.
	for _, g := range []string{"locksafe.Store", "locksafe.WAL", "locksafe.Server"} {
		Guarded[g] = true
		defer delete(Guarded, g)
	}
	analysistest.Run(t, "locksafe", Analyzer)
}
