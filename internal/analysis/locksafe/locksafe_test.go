package locksafe

import (
	"testing"

	"met/internal/analysis/analysistest"
)

func TestLocksafe(t *testing.T) {
	// Register the fixture's guard types alongside the real ones.
	for _, g := range []string{"locksafe.Store", "locksafe.WAL"} {
		Guarded[g] = true
		defer delete(Guarded, g)
	}
	analysistest.Run(t, "locksafe", Analyzer)
}
