// Package locksafe flags known-blocking operations performed while a
// guarded engine lock is lexically held.
//
// The engine's contract (internal/kv/kv.go, "Concurrency") is that
// the store/WAL/regionserver mutexes protect in-memory structures
// only: file I/O, fsync, compaction waits, channel operations and
// sleeps must happen outside them, or every reader stalls behind a
// disk. locksafe enforces that mechanically for the lock spans it can
// see.
//
// The analysis is strictly intraprocedural and lexical: a span opens
// at `x.mu.Lock()` / `x.mu.RLock()` where x is (a pointer to) one of
// the guarded struct types, and closes at the matching Unlock on the
// same statement path; `defer x.mu.Unlock()` holds the span to the
// end of the function. Locks acquired in a helper and blocking calls
// made by a helper that is itself called under a lock (the repo's
// *Locked naming convention) are out of scope by design — reviewing
// those remains the job of the `xxxLocked` suffix convention, and the
// limitation is documented in the package docs of internal/kv and
// internal/durable. Function literals are analyzed with a fresh
// (empty) lock state, since they usually run on other goroutines.
//
// Audited exceptions are annotated in place:
//
//	s.cfg.WAL.Append(e) //lint:allow locksafe plain-WAL fallback; durable logs commit outside the lock
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"met/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags blocking operations (file I/O, fsync, compaction waits, " +
		"channel ops, sleeps) lexically inside critical sections of the " +
		"guarded engine locks (kv.Store.mu, durable.WAL.mu, hbase.RegionServer.mu)",
	Run: run,
}

// Guarded lists the struct types whose `mu` field opens a critical
// section this analyzer polices. Tests extend it with fixture types.
var Guarded = map[string]bool{
	"met/internal/kv.Store":           true,
	"met/internal/durable.WAL":        true,
	"met/internal/hbase.RegionServer": true,

	// RPC-layer locks guard routing caches and address books that the
	// serving path reads on every request: a network call inside one
	// stalls every concurrent RPC behind one slow peer.
	"met/internal/rpc.Server":     true,
	"met/internal/rpc.Client":     true,
	"met/internal/rpc.MasterNode": true,
}

// BlockingFuncs maps fully-qualified functions, methods and
// package-level function variables (the durable test shims) that may
// block on I/O or scheduling. Keys use analysis.FuncFullName format.
var BlockingFuncs = map[string]bool{
	"time.Sleep": true,

	// Plain file I/O.
	"os.WriteFile": true, "os.ReadFile": true, "os.Open": true,
	"os.OpenFile": true, "os.Create": true, "os.Rename": true,
	"os.Remove": true, "os.RemoveAll": true, "os.MkdirAll": true,
	"os.ReadDir": true, "os.Stat": true,
	"io.Copy": true, "io.ReadAll": true,
	"path/filepath.Glob": true, "path/filepath.Walk": true,
	"path/filepath.WalkDir": true,
	"(os.File).Sync":        true, "(os.File).Close": true,
	"(os.File).Write": true, "(os.File).WriteString": true,
	"(os.File).WriteAt": true, "(os.File).Read": true,
	"(os.File).ReadAt": true, "(os.File).Seek": true,
	"(os.File).Truncate": true,

	"(sync.WaitGroup).Wait": true,

	// Network I/O: connect/accept/read/write all block on the peer, and
	// an HTTP round trip blocks on the whole remote handler. Writing a
	// response counts too — the client may be slow to drain it.
	"net.Listen": true, "net.Dial": true, "net.DialTimeout": true,
	"(net.Conn).Read": true, "(net.Conn).Write": true,
	"(net.Listener).Accept": true,
	"(net/http.Client).Do":  true, "(net/http.Client).Get": true,
	"(net/http.Client).Post": true, "(net/http.Client).PostForm": true,
	"net/http.Get": true, "net/http.Post": true,
	"(net/http.Server).Serve": true, "(net/http.Server).ListenAndServe": true,
	"(net/http.Server).Shutdown":      true,
	"(net/http.ResponseWriter).Write": true,

	// Engine-internal blocking entry points. WAL appends are on the
	// list because the guarded locks must never nest over a log
	// write; the durable WAL's own w.mu serializing its buffered
	// appends is the one audited design exception (see
	// internal/durable's package doc).
	"met/internal/durable.OpenWAL":       true,
	"met/internal/durable.syncFile":      true,
	"met/internal/durable.syncDir":       true,
	"met/internal/durable.walSyncFile":   true,
	"met/internal/durable.walRemoveFile": true,
	"met/internal/durable.writeSSTable":  true,
	"met/internal/durable.openSSTable":   true,
	"met/internal/durable.WriteTailFile": true,
	"met/internal/durable.ReadTailFile":  true,
	"met/internal/replication.CopyFile":  true,

	"(met/internal/kv.WAL).Append":            true,
	"(met/internal/durable.WAL).Append":       true,
	"(met/internal/durable.WAL).Close":        true,
	"(met/internal/durable.RegionLog).Append": true,
	"(met/internal/kv.StorageBackend).Close":  true,

	"(met/internal/compaction.Budget).WaitBackground": true,
}

// BlockingMethods lists method names that block regardless of
// receiver — the compaction/replication merge-and-wait paths.
var BlockingMethods = map[string]bool{
	"WaitBackground": true,
	"CompactFiles":   true,
	"Quiesce":        true,
}

// BlockingPrefixes flags the replication ship* paths by name.
var BlockingPrefixes = []string{"ship", "Ship"}

type heldLock struct {
	pos   token.Pos // position of the Lock/RLock call
	rlock bool
}

// lockState maps a rendered lock expression ("s.mu") to its
// acquisition. Maps are copied at branch points so a branch-local
// Lock/Unlock cannot leak into the fallthrough path.
type lockState map[string]heldLock

func (ls lockState) clone() lockState {
	c := make(lockState, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func run(pass *analysis.Pass) error {
	s := &scanner{pass: pass}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.scanStmt(fd.Body, lockState{})
		}
		// Function literals run with a fresh lock state: they are
		// goroutine bodies, deferred cleanups or callbacks, none of
		// which inherit the creating function's lexical locks.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				s.scanStmt(lit.Body, lockState{})
			}
			return true
		})
	}
	return nil
}

type scanner struct {
	pass *analysis.Pass
}

func (s *scanner) scanStmt(stmt ast.Stmt, held lockState) {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		for _, x := range st.List {
			s.scanStmt(x, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.checkNode(st.Cond, held)
		s.scanStmt(st.Body, held.clone())
		if st.Else != nil {
			s.scanStmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkNode(st.Cond, held)
		}
		body := held.clone()
		s.scanStmt(st.Body, body)
		if st.Post != nil {
			s.scanStmt(st.Post, body)
		}
	case *ast.RangeStmt:
		s.checkNode(st.X, held)
		s.scanStmt(st.Body, held.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		if st.Tag != nil {
			s.checkNode(st.Tag, held)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.checkNode(e, held)
			}
			branch := held.clone()
			for _, x := range cc.Body {
				s.scanStmt(x, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.scanStmt(st.Assign, held)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			branch := held.clone()
			for _, x := range cc.Body {
				s.scanStmt(x, branch)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.reportHeld(st.Pos(), "select may block", held)
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := held.clone()
			for _, x := range cc.Body {
				s.scanStmt(x, branch)
			}
		}
	case *ast.GoStmt:
		// Spawning is non-blocking; the goroutine body is a FuncLit
		// analyzed separately with an empty lock state.
	case *ast.DeferStmt:
		// A deferred Unlock keeps the span open to function end —
		// i.e. no state change. Other deferred calls execute at
		// return, not here, so they are not checked at this point.
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, held)
	case *ast.SendStmt:
		s.reportHeld(st.Arrow, "channel send", held)
		s.checkNode(st.Chan, held)
		s.checkNode(st.Value, held)
	case *ast.ExprStmt:
		if s.lockTransition(st.X, held) {
			return
		}
		s.checkNode(st.X, held)
	default:
		// Leaf statements (assignments, returns, declarations,
		// inc/dec): scan their expressions for blocking calls.
		s.checkNode(stmt, held)
	}
}

// lockTransition updates held if expr is a Lock/RLock/Unlock/RUnlock
// call on a guarded mutex, reporting nothing. Returns true when the
// expression was consumed as a transition.
func (s *scanner) lockTransition(expr ast.Expr, held lockState) bool {
	key, name, pos := s.guardedLockCall(expr)
	if key == "" {
		return false
	}
	switch name {
	case "Lock":
		held[key] = heldLock{pos: pos}
	case "RLock":
		held[key] = heldLock{pos: pos, rlock: true}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return true
}

// guardedLockCall recognizes `base.mu.Lock()` (and RLock/Unlock/
// RUnlock) where base's type is in Guarded. It returns the rendered
// lock expression ("s.mu"), the method name and the call position, or
// "" when expr is not such a call.
func (s *scanner) guardedLockCall(expr ast.Expr) (key, name string, pos token.Pos) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", "", token.NoPos
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", token.NoPos
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", token.NoPos
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != "mu" {
		return "", "", token.NoPos
	}
	base := s.pass.TypesInfo.Types[muSel.X].Type
	if base == nil || !Guarded[analysis.TypeName(base)] {
		return "", "", token.NoPos
	}
	return render(muSel), sel.Sel.Name, call.Pos()
}

// checkNode reports blocking operations anywhere inside n (stopping
// at function-literal boundaries) while any guarded lock is held.
func (s *scanner) checkNode(n ast.Node, held lockState) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				s.reportHeld(e.Pos(), "channel receive", held)
			}
		case *ast.SendStmt:
			s.reportHeld(e.Arrow, "channel send", held)
		case *ast.CallExpr:
			if desc := s.blockingCall(e); desc != "" {
				s.reportHeld(e.Pos(), "blocking call to "+desc, held)
			}
		}
		return true
	})
}

// blockingCall returns a description of the callee when it is in one
// of the blocking sets, or "".
func (s *scanner) blockingCall(call *ast.CallExpr) string {
	if fn := analysis.Callee(s.pass.TypesInfo, call); fn != nil {
		full := analysis.FuncFullName(fn)
		if BlockingFuncs[full] {
			return full
		}
		if BlockingMethods[fn.Name()] {
			return full
		}
		for _, p := range BlockingPrefixes {
			if strings.HasPrefix(fn.Name(), p) {
				return full
			}
		}
		return ""
	}
	if v := analysis.CalleeVar(s.pass.TypesInfo, call); v != nil {
		full := v.Pkg().Path() + "." + v.Name()
		if BlockingFuncs[full] {
			return full
		}
	}
	return ""
}

func (s *scanner) reportHeld(pos token.Pos, what string, held lockState) {
	if len(held) == 0 {
		return
	}
	// Deterministically pick one held lock to blame (usually there
	// is exactly one).
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	k := keys[0]
	h := held[k]
	verb := "Lock"
	if h.rlock {
		verb = "RLock"
	}
	s.pass.Reportf(pos, "%s while %s is held (%s at line %d)",
		what, k, verb, s.pass.Fset.Position(h.pos).Line)
}

// render prints a selector chain ("s.store.mu") for diagnostics and
// lock-state keys.
func render(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
