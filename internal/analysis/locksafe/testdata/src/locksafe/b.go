// Fixture for the RPC-layer additions: network I/O under a guarded
// lock. The test registers locksafe.Server as a guarded type, standing
// in for met/internal/rpc.Server / Client / MasterNode.
package locksafe

import (
	"net"
	"net/http"
	"sync"
)

// Server mimics rpc.Server: mu guards an address book the serving path
// reads on every request.
type Server struct {
	mu    sync.Mutex
	addrs map[string]string
}

// Network calls under the routing lock stall every concurrent RPC
// behind one slow peer.
func (s *Server) netUnderLock(conn net.Conn, hc *http.Client, req *http.Request) {
	s.mu.Lock()
	_, _ = conn.Read(make([]byte, 1)) // want `blocking call to \(net.Conn\).Read`
	_, _ = conn.Write([]byte("x"))    // want `blocking call to \(net.Conn\).Write`
	_, _ = hc.Do(req)                 // want `blocking call to \(net/http.Client\).Do`
	_, _ = http.Get("http://x/")      // want `blocking call to net/http.Get`
	_, _ = net.Listen("tcp", ":0")    // want `blocking call to net.Listen`
	s.mu.Unlock()
}

// A response writer is a network sink too: the client may drain it
// arbitrarily slowly.
func (s *Server) replyUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	_, _ = w.Write([]byte("ok")) // want `blocking call to \(net/http.ResponseWriter\).Write`
	s.mu.Unlock()
}

// The right shape: snapshot the book under the lock, talk to the
// network after releasing it.
func (s *Server) snapshotThenCall(hc *http.Client, req *http.Request) {
	s.mu.Lock()
	addrs := make(map[string]string, len(s.addrs))
	for k, v := range s.addrs {
		addrs[k] = v
	}
	s.mu.Unlock()
	_, _ = hc.Do(req) // unlocked: no diagnostic
}

// Audited exception: a single farewell write on the drain path, where
// no serving traffic can queue behind the lock anymore.
func (s *Server) drainFarewell(conn net.Conn) {
	s.mu.Lock()
	_, _ = conn.Write([]byte("bye")) //lint:allow locksafe drain-path farewell; runs once at shutdown with serving already stopped
	s.mu.Unlock()
}
