// Fixture for the locksafe analyzer. The test registers
// locksafe.Store and locksafe.WAL as guarded types.
package locksafe

import (
	"os"
	"sync"
	"time"
)

type Store struct {
	mu sync.RWMutex
	n  int
}

type WAL struct {
	mu sync.Mutex
	n  int
}

// Budget mimics compaction.Budget: WaitBackground is on the
// blocking-method-name list regardless of receiver type.
type Budget struct{}

func (b *Budget) WaitBackground(cost int) {}

type merger struct{}

func (merger) CompactFiles() error { return nil }
func (merger) shipSSTable()        {}

func (s *Store) blockingUnderLock(ch chan int, b *Budget, m merger) {
	s.mu.Lock()
	time.Sleep(time.Millisecond)      // want `blocking call to time.Sleep while s.mu is held`
	_ = os.WriteFile("x", nil, 0o644) // want `blocking call to os.WriteFile`
	ch <- 1                           // want `channel send while s.mu is held`
	<-ch                              // want `channel receive while s.mu is held`
	b.WaitBackground(1)               // want `WaitBackground`
	_ = m.CompactFiles()              // want `CompactFiles`
	m.shipSSTable()                   // want `shipSSTable`
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // unlocked: no diagnostic
}

// Deferred unlock holds the span to the end of the function.
func (s *Store) deferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	time.Sleep(time.Millisecond) // want `blocking call to time.Sleep`
}

// RLock spans are policed the same way as write locks.
func (s *Store) readLocked() int {
	s.mu.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held \(RLock at line`
	n := s.n
	s.mu.RUnlock()
	return n
}

// An early-return unlock in a branch must not leak: the branch path
// is unlocked, the fallthrough path stays locked.
func (s *Store) branchUnlock(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		time.Sleep(time.Millisecond) // unlocked on this path: no diagnostic
		return
	}
	time.Sleep(time.Millisecond) // want `blocking call to time.Sleep`
	s.mu.Unlock()
}

// Multiple guarded locks in one function: spans are tracked per lock
// expression.
func twoLocks(s *Store, w *WAL) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // between spans: no diagnostic
	w.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while w.mu is held`
	w.mu.Unlock()
}

// Lock acquired in a helper is OUT OF SCOPE: the analysis is
// intraprocedural, so the caller's blocking call is not flagged even
// though the lock is held at runtime. The *Locked naming convention
// covers these (documented limitation).
func (s *Store) lockHelper() {
	s.mu.Lock()
}

func (s *Store) helperCaller() {
	s.lockHelper()
	time.Sleep(time.Millisecond) // intraprocedural: no diagnostic
	s.mu.Unlock()
}

// The allowlist annotation suppresses exactly one diagnostic: the
// identical call on the next line is still reported.
func (s *Store) allowlisted() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) //lint:allow locksafe fixture-audited exception
	time.Sleep(time.Millisecond) // want `blocking call to time.Sleep`
	s.mu.Unlock()
}

// Non-guarded types may block under their own locks freely.
type other struct {
	mu sync.Mutex
}

func (o *other) fine() {
	o.mu.Lock()
	time.Sleep(time.Millisecond) // not a guarded type: no diagnostic
	o.mu.Unlock()
}

// select without a default may block; with a default it is a poll.
func (s *Store) selects(ch chan int) {
	s.mu.Lock()
	select { // want `select may block while s.mu is held`
	case <-ch:
	}
	select {
	case v := <-ch:
		_ = v
	default: // non-blocking poll: no diagnostic
	}
	s.mu.Unlock()
}

// WaitGroup waits block.
func (s *Store) waits(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `blocking call to \(sync.WaitGroup\).Wait`
	s.mu.Unlock()
}

// Goroutine bodies start with a fresh lock state.
func (s *Store) spawns(ch chan int) {
	s.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond) // separate goroutine: no diagnostic
		ch <- 1                      // separate goroutine: no diagnostic
	}()
	s.mu.Unlock()
}
