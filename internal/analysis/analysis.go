// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that metlint's checkers
// are written against.
//
// The vendored x/tools module is not available in this repository's
// build environment (the module cache is sealed), so instead of
// importing the framework we implement the small slice of it the
// project needs: an Analyzer is a named Run function over a
// type-checked package, a Pass carries the syntax trees and type
// information for exactly one package, and diagnostics are collected
// by the driver (cmd/metlint) rather than printed directly.
//
// The deliberate differences from x/tools are:
//
//   - No facts, no modular analysis: every analyzer here is strictly
//     intraprocedural and per-package, so cross-package state is
//     unnecessary. cmd/metlint still speaks the `go vet -vettool`
//     unitchecker protocol (including writing empty .vetx facts
//     files) so the go command can drive it.
//   - Central allowlist handling: the driver strips diagnostics
//     carrying a `//lint:allow <analyzer> <reason>` annotation (see
//     allow.go) so individual analyzers never need to know about
//     suppression.
//
// Analyzers live in subpackages (locksafe, atomicfield, nolockcopy,
// syncerr, crashpoint); each has an analysistest-style fixture suite
// under its testdata/src directory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations. It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// checks, shown by `metlint help`.
	Doc string

	// Run applies the check to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer's Run
// function. The same package may be analyzed several times by
// different analyzers; passes are never shared between analyzers.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic. The driver attaches the
	// analyzer name and applies //lint:allow suppression.
	Report func(Diagnostic)
}

// Reportf is a convenience wrapper around Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a Diagnostic tagged with the analyzer that produced it
// and resolved to a concrete file position. This is what drivers
// collect, sort and print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// IsTestFile reports whether pos is inside a *_test.go file.
// Several analyzers exempt test files (tests may block under locks
// they own, poke fields directly, and so on); crashpoint uses it to
// split production registrations from test coverage.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	return strings.HasSuffix(f.Name(), "_test.go")
}

// TypeName renders the named type behind t (after stripping
// pointers) as "pkgpath.Name", or "" if t is not a (pointer to a)
// named type. This is the key format used by analyzer configuration
// sets such as locksafe's guarded-struct list.
func TypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name() // universe scope (error)
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FuncFullName renders fn so it can be matched against analyzer
// configuration: "pkgpath.Name" for package functions and
// "(pkgpath.Recv).Name" for methods (pointer receivers are stripped;
// interface methods use the interface's named type).
func FuncFullName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if recv := TypeName(sig.Recv().Type()); recv != "" {
			return "(" + recv + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Callee resolves the static callee of call, looking through
// parentheses. It returns nil for calls of function-typed values,
// builtins and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CalleeVar resolves call's callee when it is a package-level
// function-typed variable (the repo's test shims, e.g. durable's
// walSyncFile). Returns nil otherwise.
func CalleeVar(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || v.Parent() == nil || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// Parents builds a child→parent map over every node in the files.
// The framework's analyzers are intraprocedural and frequently need
// "is this expression an argument of X" style questions; a parent map
// answers them without threading stacks through every walk.
func Parents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		stack := []ast.Node{f}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			parents[n] = stack[len(stack)-1]
			stack = append(stack, n)
			return true
		})
	}
	return parents
}
