package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Package bundles everything RunPackage needs about one
// type-checked package. Drivers (cmd/metlint, analysistest) populate
// it from whatever loading mechanism they use — export data under
// `go vet`, source typechecking in tests.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RunPackage applies each analyzer to pkg, resolves the diagnostics
// to positions, filters them through the //lint:allow annotations and
// returns the surviving findings sorted by position. An analyzer
// returning an error aborts the run: analyzer errors are tool bugs,
// not findings.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	findings = applyAllowlist(pkg.Fset, pkg.Files, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// populated, so drivers can't forget one and silently break
// resolution.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
