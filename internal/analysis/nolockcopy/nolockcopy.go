// Package nolockcopy forbids moving lock-bearing structs by value
// through function signatures: parameters, results and receivers
// whose type (directly or transitively) contains a sync.Mutex,
// sync.RWMutex or any sync/atomic value type must be pointers.
//
// A copied mutex is a fork of the critical section — both copies
// "work" under test and guard nothing. The engine's convention is the
// snapshot-struct idiom instead: stats structs copied out of a locked
// struct contain plain values only (kv.Stats vs kv.storeStats), and
// this analyzer is what keeps the two from merging back together.
//
// Unlike go vet's copylocks, the check is restricted to signatures:
// it is the API shape being policed here, local copies are vet's job.
package nolockcopy

import (
	"go/ast"
	"go/types"

	"met/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nolockcopy",
	Doc: "flags function signatures (params, results, receivers) that pass " +
		"structs containing sync.Mutex/RWMutex or sync/atomic types by value",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if lock := lockPath(recv.Type(), nil); lock != "" {
					pass.Reportf(fd.Recv.List[0].Pos(),
						"receiver of %s copies a lock: %s", fd.Name.Name, lock)
				}
			}
			checkTuple(pass, fd, sig.Params(), "parameter")
			checkTuple(pass, fd, sig.Results(), "result")
		}
	}
	return nil
}

func checkTuple(pass *analysis.Pass, fd *ast.FuncDecl, tuple *types.Tuple, kind string) {
	for i := 0; i < tuple.Len(); i++ {
		v := tuple.At(i)
		if lock := lockPath(v.Type(), nil); lock != "" {
			pos := v.Pos()
			if !pos.IsValid() {
				pos = fd.Pos()
			}
			name := v.Name()
			if name == "" {
				name = kind
			}
			pass.Reportf(pos, "%s %s of %s passes a lock by value: %s",
				kind, name, fd.Name.Name, lock)
		}
	}
}

// lockPath returns a human-readable path to a lock inside t
// ("sync.Mutex", "kv.Store contains sync.RWMutex", ...) or "" when t
// carries no lock by value. Pointers, slices, maps, channels and
// functions all break the copy, so recursion stops there.
func lockPath(t types.Type, seen []*types.Named) string {
	switch u := t.(type) {
	case *types.Named:
		for _, s := range seen {
			if s == u {
				return ""
			}
		}
		if name := analysis.TypeName(u); isLockType(name) {
			return name
		}
		if inner := lockPath(u.Underlying(), append(seen, u)); inner != "" {
			return analysis.TypeName(u) + " contains " + inner
		}
		return ""
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner := lockPath(u.Field(i).Type(), seen); inner != "" {
				return inner
			}
		}
		return ""
	case *types.Array:
		return lockPath(u.Elem(), seen)
	default:
		return ""
	}
}

func isLockType(name string) bool {
	switch name {
	case "sync.Mutex", "sync.RWMutex", "sync.WaitGroup", "sync.Cond",
		"sync.Once", "sync.Map", "sync.Pool":
		return true
	}
	switch name {
	case "sync/atomic.Int32", "sync/atomic.Int64", "sync/atomic.Uint32",
		"sync/atomic.Uint64", "sync/atomic.Uintptr", "sync/atomic.Bool",
		"sync/atomic.Value", "sync/atomic.Pointer":
		return true
	}
	return false
}
