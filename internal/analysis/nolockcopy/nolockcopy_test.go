package nolockcopy

import (
	"testing"

	"met/internal/analysis/analysistest"
)

func TestNoLockCopy(t *testing.T) {
	analysistest.Run(t, "nolockcopy", Analyzer)
}
