// Fixture for the nolockcopy analyzer.
package nolockcopy

import (
	"sync"
	"sync/atomic"
)

type Store struct {
	mu sync.RWMutex
	n  int
}

type stats struct {
	puts atomic.Int64
}

// Snapshot is the sanctioned idiom: plain values only, safe to copy.
type Snapshot struct {
	N int
}

type wrapper struct {
	inner Store // lock nested one level down
}

func byValueParam(s Store) int { // want `parameter s of byValueParam passes a lock by value`
	return s.n
}

func byValueResult() Store { // want `result result of byValueResult passes a lock by value`
	return Store{}
}

func nestedParam(w wrapper) int { // want `parameter w of nestedParam passes a lock by value`
	return w.inner.n
}

func atomicParam(st stats) int64 { // want `parameter st of atomicParam passes a lock by value`
	return st.puts.Load()
}

func (s Store) valueReceiver() int { // want `receiver of valueReceiver copies a lock`
	return s.n
}

// Pointers are fine, as are lock-free snapshot structs.
func pointerParam(s *Store) int        { return s.n }
func (s *Store) pointerReceiver() int  { return s.n }
func snapshotResult(s *Store) Snapshot { return Snapshot{N: s.n} }
func sliceParam(ss []*Store) int       { return len(ss) }
func allowlisted(s Store) int { //lint:allow nolockcopy fixture-audited exception
	return s.n
}
