package atomicfield

import (
	"testing"

	"met/internal/analysis/analysistest"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "atomicfield", Analyzer)
}
