// Fixture for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type counters struct {
	hits   int64 // atomic by use (see inc)
	misses int64 // atomic by use (see inc)
	cur    atomic.Int64
	ptr    atomic.Pointer[int]
	plain  int64 // never touched atomically
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) good() (int64, int64, *int) {
	h := atomic.LoadInt64(&c.hits)
	bump(&c.misses) // address handed to a helper: allowed
	v := c.cur.Load()
	c.cur.Store(v + 1)
	c.plain++ // never atomic: no diagnostic
	return h, v, c.ptr.Load()
}

func bump(p *int64) { atomic.AddInt64(p, 1) }

func (c *counters) mixed() int64 {
	x := c.hits  // want `plain read of field hits`
	c.misses = 0 // want `plain write of field misses`
	c.hits++     // want `plain write of field hits`
	return x
}

func (c *counters) copies() {
	v := c.cur // want `atomic.Int64 field cur used as a plain value`
	_ = v
	p := &c.cur // address taken: allowed
	p.Add(1)
}

// The allowlist suppresses exactly one diagnostic.
func (c *counters) allowlisted() int64 {
	a := c.hits //lint:allow atomicfield fixture-audited exception
	b := c.hits // want `plain read of field hits`
	return a + b
}
