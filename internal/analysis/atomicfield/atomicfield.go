// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field that is ever accessed through sync/atomic functions
// (atomic.AddInt64(&s.f, 1)) or declared with one of the sync/atomic
// types (atomic.Int64, atomic.Pointer[T], ...) must never be read or
// written plainly. Mixed access is exactly the bug the race detector
// only catches when both sides happen to run in one test: a plain
// read next to an atomic write is a data race on every weakly-ordered
// machine.
//
// Two rules:
//
//  1. A field passed by address to a sync/atomic function anywhere in
//     the package is "atomic by use": every other access must either
//     also take its address (handed to sync/atomic or to a helper
//     that does) or be flagged.
//  2. A field whose declared type lives in sync/atomic is "atomic by
//     type": it may only be used as a method receiver (s.f.Load())
//     or have its address taken; copying its value or assigning over
//     it is flagged.
//
// Test files are checked too — stats helpers in tests race with the
// code under test just as production readers do.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"met/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flags plain reads/writes of struct fields that are accessed via " +
		"sync/atomic or declared as sync/atomic types elsewhere",
	Run: run,
}

func run(pass *analysis.Pass) error {
	parents := analysis.Parents(pass.Files)

	// Pass 1: collect fields used with sync/atomic package functions.
	atomicByUse := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if fv := fieldVar(pass.TypesInfo, u.X); fv != nil {
					atomicByUse[fv] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag disallowed uses.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldVar(pass.TypesInfo, sel)
			if fv == nil {
				return true
			}
			switch {
			case atomicByUse[fv]:
				if addressTaken(parents, sel) {
					return true
				}
				// s.f.Load() etc. on an int field cannot occur; any
				// non-address use of an atomic-by-use field is plain.
				pass.Reportf(sel.Pos(),
					"%s of field %s, which is accessed with sync/atomic elsewhere",
					accessKind(parents, sel), fv.Name())
			case isAtomicType(fv.Type()):
				if addressTaken(parents, sel) || methodReceiver(parents, sel) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s field %s used as a plain value; call its methods instead",
					types.TypeString(fv.Type(), types.RelativeTo(pass.Pkg)), fv.Name())
			}
			return true
		})
	}
	return nil
}

// fieldVar resolves expr to the struct field it selects, or nil.
func fieldVar(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// addressTaken reports whether sel's immediate context is &sel.
// Taking the address is how atomic access happens (directly in a
// sync/atomic call, or handed to a helper operating on the pointer),
// so it is always permitted.
func addressTaken(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	u, ok := parents[sel].(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// methodReceiver reports whether sel is the receiver of a method
// selection (s.f.Load): its parent is a SelectorExpr selecting from
// it.
func methodReceiver(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	p, ok := parents[sel].(*ast.SelectorExpr)
	return ok && p.X == sel
}

// accessKind distinguishes writes from reads for the diagnostic.
func accessKind(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) string {
	switch p := parents[sel].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(sel) {
				return "plain write"
			}
		}
	case *ast.IncDecStmt:
		if p.X == ast.Expr(sel) {
			return "plain write"
		}
	}
	return "plain read"
}

// isAtomicType reports whether t is (an instantiation of) one of the
// sync/atomic value types.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
