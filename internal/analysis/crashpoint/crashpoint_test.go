package crashpoint

import (
	"testing"

	"met/internal/analysis/analysistest"
)

func TestCrashPoint(t *testing.T) {
	analysistest.Run(t, "crashpoint", Analyzer)
}
