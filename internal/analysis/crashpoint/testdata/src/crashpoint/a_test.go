package crashpoint

import "testing"

func TestMoveCrashPoints(t *testing.T) {
	m := &master{}
	var hits []string
	m.hook = func(p string) { hits = append(hits, p) }
	m.moveRegion()
	for _, want := range []string{"move.prepared", "move.committed"} {
		found := false
		for _, h := range hits {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("crash point %s not hit", want)
		}
	}
}

func TestSplitCrashPoints(t *testing.T) {
	m := &master{}
	seen := map[string]bool{}
	m.hook = func(p string) { seen[p] = true }
	// Composed label: the test holds the two halves separately.
	m.split("split." + "x")
	if !seen["split"+"."+"daughters-ready"] {
		t.Error("split.daughters-ready not hit")
	}
}
