// Fixture for the crashpoint analyzer (production half; see
// a_test.go for the coverage half).
package crashpoint

type master struct {
	hook func(point string)
}

func (m *master) crash(point string) {
	if m.hook != nil {
		m.hook(point)
	}
}

func (m *master) moveRegion() {
	m.crash("move.prepared")
	m.crash("move.committed")
	m.crash("move.uncovered") // want `crash point "move.uncovered" is not exercised by any test`
	m.crash("move.prepared")  // want `duplicate crash-point label "move.prepared"`
}

func (m *master) split(phase string) {
	m.crash("split." + "daughters-ready") // constant-folded: still auditable
	m.crash(phase)                        // want `crash-point label must be a constant string`
}

func (m *master) allowlisted() {
	m.crash("legacy.no-test") //lint:allow crashpoint fixture-audited legacy label
}
