// Package crashpoint audits the fault-injection crash-point labels
// (internal/testutil.Injector): every label registered in production
// code via a `crash("...")` hook call must be unique within its
// package and exercised by at least one test.
//
// A crash point nobody arms is dead recovery-test surface — the
// window it was written to cover silently stops being tested when
// its label drifts out of the test (a rename, a refactor). Colliding
// labels are worse: Injector.Arm fires on the first hit, so two call
// sites sharing a label test only whichever runs first.
//
// Rules, per package:
//
//   - a registration is a call to a function or method named `crash`
//     in a non-test file; its first argument must be a constant
//     string (labels assembled at run time cannot be audited);
//   - duplicate labels are reported at the second registration;
//   - when the package under analysis includes test files (go vet
//     analyzes the test variant of each package), every registered
//     label must appear as a string literal in some _test.go file.
//     Without test files in the pass (the plain package variant) the
//     coverage rule is skipped, so the plain compile of the package
//     does not false-positive.
package crashpoint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"

	"met/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "crashpoint",
	Doc: "checks that every crash-point label registered in production " +
		"code is unique and appears in at least one test",
	Run: run,
}

// HookNames lists the function/method names that register a crash
// point with their first string argument.
var HookNames = map[string]bool{"crash": true}

func run(pass *analysis.Pass) error {
	type reg struct {
		pos  token.Pos
		dupe bool
	}
	first := make(map[string]*reg)
	var order []string
	hasTests := false

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			hasTests = true
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || !HookNames[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"crash-point label must be a constant string")
				return true
			}
			label := constant.StringVal(tv.Value)
			if prev, ok := first[label]; ok {
				prev.dupe = true
				pass.Reportf(call.Pos(),
					"duplicate crash-point label %q (first registered at %s)",
					label, pass.Fset.Position(prev.pos))
				return true
			}
			first[label] = &reg{pos: call.Pos()}
			order = append(order, label)
			return true
		})
	}

	if !hasTests {
		return nil
	}

	// Collect every string literal mentioned in the package's tests.
	tested := make(map[string]bool)
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if s, err := strconv.Unquote(lit.Value); err == nil {
				tested[s] = true
			}
			return true
		})
	}

	for _, label := range order {
		if tested[label] {
			continue
		}
		// A label like "snapshot.committed" is also considered
		// covered by a test literal that is a prefix used with
		// fmt.Sprintf-style composition ("snapshot." + phase); be
		// strict only about full-literal absence.
		if coveredByComposition(label, tested) {
			continue
		}
		pass.Reportf(first[label].pos,
			"crash point %q is not exercised by any test in this package", label)
	}
	return nil
}

// coveredByComposition reports whether label splits at a '.' into a
// head and tail that both appear as test literals — tests that loop
// over phases often hold "snapshot" (or "snapshot.") and ".committed"
// (or "committed") separately and concatenate.
func coveredByComposition(label string, tested map[string]bool) bool {
	for i := 0; i < len(label); i++ {
		if label[i] != '.' {
			continue
		}
		head, tail := label[:i], label[i+1:]
		headOK := tested[head] || tested[head+"."]
		tailOK := tested[tail] || tested["."+tail]
		if headOK && tailOK {
			return true
		}
	}
	return false
}
