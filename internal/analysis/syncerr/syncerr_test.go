package syncerr

import (
	"testing"

	"met/internal/analysis/analysistest"
)

func TestSyncErr(t *testing.T) {
	for _, f := range []string{"(syncerr.WAL).Append", "(syncerr.WAL).Close"} {
		Funcs[f] = true
		defer delete(Funcs, f)
	}
	analysistest.Run(t, "syncerr", Analyzer)
}
