// Package syncerr flags discarded error results on the durability
// path: Sync, fsync-path Close, and WAL Append/commit calls whose
// error is dropped on a path that acknowledges a write.
//
// An fsync error is the storage system telling you an acknowledged
// write may not exist; ignoring it converts a reportable failure into
// silent data loss (the "fsyncgate" class of bugs). The rule:
//
//   - calling a durability function as a bare statement is flagged;
//   - assigning every error result to the blank identifier is
//     flagged (`_ = w.Close()` must carry a //lint:allow syncerr
//     annotation explaining why the loss is acceptable);
//   - deferred and `go`-spawned calls are not checked (the error is
//     structurally unobservable there; the repo's convention is to
//     close explicitly on ack paths and defer only for cleanup
//     where a separate Sync already ran).
//
// Matched calls are any method named Sync returning exactly one
// error, plus the configured full-name list (WAL appends, fsync-path
// Closes and the durable fsync helpers). Test files are exempt.
package syncerr

import (
	"go/ast"
	"go/types"

	"met/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc: "flags discarded error results of Sync, fsync-path Close and " +
		"WAL Append/commit calls on write-acknowledging paths",
	Run: run,
}

// Funcs is the full-name list of durability calls whose errors must
// be checked, beyond the generic any-method-named-Sync rule. Tests
// extend it with fixture types.
var Funcs = map[string]bool{
	"(os.File).Sync": true,

	"(met/internal/kv.WAL).Append":            true,
	"(met/internal/durable.WAL).Append":       true,
	"(met/internal/durable.RegionLog).Append": true,
	"(met/internal/durable.RegionLog).Drop":   true,
	"(met/internal/durable.WAL).Close":        true,
	"(met/internal/kv.StorageBackend).Close":  true,

	"met/internal/durable.syncFile":    true,
	"met/internal/durable.syncDir":     true,
	"met/internal/durable.walSyncFile": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					if name := target(pass, call); name != "" {
						pass.Reportf(call.Pos(),
							"error result of %s is discarded", name)
					}
				}
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags assignments that blank every error result of a
// durability call: `_ = w.Close()`, `n, _ := log.Append(e)`.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name := target(pass, call)
	if name == "" {
		return
	}
	sig := signature(pass, call)
	if sig == nil {
		return
	}
	res := sig.Results()
	errSeen, errBlanked := false, true
	for i := 0; i < res.Len() && i < len(st.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		errSeen = true
		if id, ok := st.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			errBlanked = false
		}
	}
	if errSeen && errBlanked {
		pass.Reportf(call.Pos(), "error result of %s is discarded", name)
	}
}

// target returns the qualified name of call's callee when its error
// must be checked, or "".
func target(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
		full := analysis.FuncFullName(fn)
		if Funcs[full] {
			return full
		}
		if fn.Name() == "Sync" && singleErrorResult(fn.Type()) {
			return full
		}
		return ""
	}
	if v := analysis.CalleeVar(pass.TypesInfo, call); v != nil {
		full := v.Pkg().Path() + "." + v.Name()
		if Funcs[full] {
			return full
		}
	}
	return ""
}

func signature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
		return fn.Type().(*types.Signature)
	}
	if v := analysis.CalleeVar(pass.TypesInfo, call); v != nil {
		sig, _ := v.Type().(*types.Signature)
		return sig
	}
	return nil
}

func singleErrorResult(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	return sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
