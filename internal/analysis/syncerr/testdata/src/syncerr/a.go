// Fixture for the syncerr analyzer. The test registers
// (syncerr.WAL).Append and (syncerr.WAL).Close in the Funcs list.
package syncerr

import "os"

type WAL struct{}

func (w *WAL) Append(e int) error   { return nil }
func (w *WAL) Close() error         { return nil }
func (w *WAL) Commit() (int, error) { return 0, nil }
func (w *WAL) Sync() error          { return nil }
func (w *WAL) Truncate(max uint64)  {}
func (w *WAL) Stats() (int, int)    { return 0, 0 }

func ack(f *os.File, w *WAL) error {
	w.Append(1)                         // want `error result of \(syncerr.WAL\).Append is discarded`
	_ = w.Sync()                        // want `error result of \(syncerr.WAL\).Sync is discarded`
	f.Sync()                            // want `error result of \(os.File\).Sync is discarded`
	w.Truncate(0)                       // void result: no diagnostic
	if err := w.Append(2); err != nil { // checked: no diagnostic
		return err
	}
	err := f.Sync() // assigned to a variable: no diagnostic
	if err != nil {
		return err
	}
	return w.Append(3) // returned to the caller: no diagnostic
}

func multi(w *WAL) int {
	n, _ := w.Commit() // not in the configured list: no diagnostic
	a, b := w.Stats()  // non-error results: no diagnostic
	return n + a + b
}

func deferred(w *WAL) {
	defer w.Close() // deferred: out of scope by design
}

func allowlisted(w *WAL) {
	_ = w.Close() //lint:allow syncerr fixture-audited best-effort close
	_ = w.Close() // want `error result of \(syncerr.WAL\).Close is discarded`
}
