// Package obs is the observability layer of the reproduction: lock-free
// latency histograms, per-op trace contexts feeding a bounded slow-op
// log, process-level runtime stats, and an opt-in HTTP debug plane that
// exposes all of it in Prometheus text format. MeT is a
// monitoring-driven control loop — the paper's Monitor consumes
// Ganglia/JMX signals — so the quality of every decision downstream is
// bounded by the fidelity of what is collected here.
//
// # Histogram bucket layout
//
// Histogram is an HDR-style fixed-bucket histogram over int64 nanosecond
// values. The first 8 buckets are exact (values 0..7 ns); above that,
// each power-of-two octave [2^e, 2^(e+1)) is split into 8 linear
// sub-buckets of width 2^(e-3). 488 buckets cover the full int64 range
// (about 292 years in nanoseconds) with a worst-case relative error of
// 12.5% — one sub-bucket width — which is ample for separating a 100 µs
// p99 from a 10 ms one. Percentile extraction returns the inclusive
// upper bound of the bucket holding the requested rank (clamped to the
// observed maximum), so reported percentiles never understate the tail.
//
// # Overhead budget
//
// Recording is wait-free: one atomic add on the bucket, one on the
// running sum, and a load-then-CAS that only contends when a new maximum
// is observed — no locks, no allocation, roughly 15 ns uncontended.
// That is the entire always-on cost added to a served operation beyond
// reading the clock twice. Tracing is allocation-free when disabled: a
// nil *Trace makes every span method a no-op without reading the clock,
// so the slow-op machinery costs one predictable nil check per stage
// until a threshold is configured. The slow-op log takes a mutex only
// when an op actually exceeded the threshold, which is by construction
// rare. Shard is the single-writer variant of Histogram (plain adds, no
// atomics) for per-worker sharding on closed-loop generators; shards
// merge into ordinary Snapshots.
//
// # Exposition format
//
// MetricWriter emits the Prometheus text exposition format (version
// 0.0.4): `# HELP`/`# TYPE` headers, `name{label="value"} value` samples
// with escaped label values, and summary-style quantile series
// (quantile="0.5|0.95|0.99|0.999" plus _sum and _count) for histogram
// snapshots. Durations are exported in seconds, following the
// Prometheus base-unit convention. ServeDebug mounts /metrics alongside
// /healthz, /debug/vars (expvar), /debug/slowops, and net/http/pprof —
// the repository's first real network surface.
package obs
