package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testConfig(healthErr *error) DebugConfig {
	return DebugConfig{
		Metrics: func(w io.Writer) error {
			m := NewMetricWriter(w)
			m.Header("met_up", "Serving.", "gauge")
			m.Sample("met_up", nil, 1)
			return m.Err()
		},
		Health: func() error { return *healthErr },
		SlowOps: func() []SlowOp {
			return []SlowOp{{Op: "get", Table: "t", Key: "k", Total: time.Millisecond,
				Spans: []Span{{Stage: "sstable-read", Dur: time.Millisecond}}}}
		},
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	var healthErr error
	srv := httptest.NewServer(NewMux(testConfig(&healthErr)))
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != 200 || !strings.Contains(body, "met_up 1") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}

	if code, body, _ = get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz healthy: code %d body %q", code, body)
	}
	healthErr = errors.New("rs2 stopped")
	if code, body, _ = get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "rs2 stopped") {
		t.Fatalf("/healthz unhealthy: code %d body %q", code, body)
	}

	code, body, _ = get("/debug/slowops")
	if code != 200 {
		t.Fatalf("/debug/slowops: code %d", code)
	}
	var ops []SlowOp
	if err := json.Unmarshal([]byte(body), &ops); err != nil || len(ops) != 1 || ops[0].Spans[0].Stage != "sstable-read" {
		t.Fatalf("/debug/slowops: err %v body %q", err, body)
	}

	if code, body, _ = get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code %d", code)
	}
	if code, _, _ = get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
}

func TestServeDebugLifecycle(t *testing.T) {
	var healthErr error
	ds, err := ServeDebug("127.0.0.1:0", testConfig(&healthErr))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", ds.Addr()))
	if err != nil {
		t.Fatalf("GET over real listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz over real listener: %d", resp.StatusCode)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", ds.Addr())); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestReadProcessStats(t *testing.T) {
	p := ReadProcessStats()
	if p.HeapLiveBytes == 0 || p.TotalBytes == 0 {
		t.Fatalf("zero memory stats: %+v", p)
	}
	if p.Goroutines < 1 {
		t.Fatalf("goroutines = %d", p.Goroutines)
	}
	if f := p.MemoryFraction(); f <= 0 || f > 1 {
		t.Fatalf("memory fraction %v out of (0,1]", f)
	}
}
