package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestSlowLogWraparound(t *testing.T) {
	l := NewSlowLog(4)
	for i := 0; i < 10; i++ {
		l.Record(SlowOp{Key: fmt.Sprintf("k%d", i), Total: time.Duration(i)})
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d ops, want 4", len(got))
	}
	for i, op := range got {
		want := fmt.Sprintf("k%d", 6+i) // oldest retained is #6, oldest-first
		if op.Key != want {
			t.Fatalf("snapshot[%d].Key = %q, want %q", i, op.Key, want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(8)
	for i := 0; i < 3; i++ {
		l.Record(SlowOp{Key: fmt.Sprintf("k%d", i)})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d ops, want 3", len(got))
	}
	for i, op := range got {
		if want := fmt.Sprintf("k%d", i); op.Key != want {
			t.Fatalf("snapshot[%d].Key = %q, want %q", i, op.Key, want)
		}
	}
}

func TestSlowLogNilSafe(t *testing.T) {
	var l *SlowLog
	l.Record(SlowOp{})
	l.Observe(StartTrace("get", "t", "k"), time.Second)
	if l.Snapshot() != nil || l.Total() != 0 {
		t.Fatal("nil SlowLog not inert")
	}
}

func TestSlowLogObserve(t *testing.T) {
	l := NewSlowLog(2)
	tr := StartTrace("get", "tbl", "row9")
	st := tr.StartSpan()
	tr.EndSpan("memstore", st)
	tr.AddSpan("sstable-read", 5*time.Millisecond)
	l.Observe(tr, 6*time.Millisecond)
	ops := l.Snapshot()
	if len(ops) != 1 {
		t.Fatalf("got %d ops, want 1", len(ops))
	}
	op := ops[0]
	if op.Op != "get" || op.Table != "tbl" || op.Key != "row9" || op.Total != 6*time.Millisecond {
		t.Fatalf("unexpected slow op %+v", op)
	}
	if len(op.Spans) != 2 || op.Spans[1].Stage != "sstable-read" || op.Spans[1].Dur != 5*time.Millisecond {
		t.Fatalf("unexpected spans %+v", op.Spans)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	st := tr.StartSpan()
	if !st.IsZero() {
		t.Fatal("nil trace StartSpan read the clock")
	}
	tr.EndSpan("x", st)
	tr.AddSpan("y", time.Second)
	if tr.Spans() != nil || tr.Elapsed() != 0 || !tr.Start().IsZero() {
		t.Fatal("nil trace not inert")
	}
}
