package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// maxRelErr is the histogram's worst-case relative bucket error: one
// sub-bucket out of 2^subBits per octave.
const maxRelErr = 1.0 / subCount

func TestBucketRoundTrip(t *testing.T) {
	// Every boundary-adjacent value must land in a bucket whose range
	// contains it, and bucket indexes must be monotone in the value.
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 1000,
		1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		upper := bucketUpper(i)
		if v > upper {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, upper)
		}
		if i > 0 && v <= bucketUpper(i-1) {
			t.Fatalf("value %d at or below previous bucket upper %d", v, bucketUpper(i-1))
		}
		if i >= numBuckets {
			t.Fatalf("bucket %d out of range for %d", i, v)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative value bucket = %d, want 0", got)
	}
}

// oracle computes the percentile the way internal/metrics does on raw
// samples: the histogram answer must sit in [oracle, oracle*(1+err)].
func oracle(sorted []int64, p float64) int64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestPercentileVsSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(10_000_000) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"bimodal": func() int64 {
			if rng.Intn(100) < 95 {
				return 50_000 + rng.Int63n(10_000)
			}
			return 40_000_000 + rng.Int63n(5_000_000)
		},
	}
	for name, gen := range dists {
		var h Histogram
		vals := make([]int64, 0, 20_000)
		for i := 0; i < 20_000; i++ {
			v := gen()
			vals = append(vals, v)
			h.RecordNanos(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count() != int64(len(vals)) {
			t.Fatalf("%s: count %d != %d", name, s.Count(), len(vals))
		}
		var sum int64
		for _, v := range vals {
			sum += v
		}
		if s.Sum() != sum {
			t.Fatalf("%s: sum %d != %d", name, s.Sum(), sum)
		}
		if s.Max() != vals[len(vals)-1] {
			t.Fatalf("%s: max %d != %d", name, s.Max(), vals[len(vals)-1])
		}
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
			want := oracle(vals, p)
			got := s.Percentile(p)
			if got < want {
				t.Errorf("%s p%v: histogram %d understates oracle %d", name, p, got, want)
			}
			if float64(got) > float64(want)*(1+maxRelErr)+1 {
				t.Errorf("%s p%v: histogram %d exceeds oracle %d by more than %.1f%%",
					name, p, got, want, maxRelErr*100)
			}
		}
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var combined Histogram
	var shards [4]Shard
	var merged Snapshot
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(1_000_000)
		combined.RecordNanos(v)
		shards[i%len(shards)].RecordNanos(v)
	}
	for i := range shards {
		merged.Merge(shards[i].Snapshot())
	}
	want := combined.Snapshot()
	if merged != want {
		t.Fatalf("merged shard snapshot differs from combined histogram:\nmerged  %+v\ncombined %+v",
			merged.Summary(), want.Summary())
	}
}

func TestEmptySnapshot(t *testing.T) {
	var s Snapshot
	if s.Percentile(0.99) != 0 || s.Mean() != 0 || s.Count() != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", s.Summary())
	}
}

func TestConcurrentRecorders(t *testing.T) {
	// -race stress: many goroutines record while another snapshots.
	var h Histogram
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Summary()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.RecordNanos(rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count() != workers*perWorker {
		t.Fatalf("lost records: count %d != %d", s.Count(), workers*perWorker)
	}
}

func TestRecordHelpers(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Millisecond)
	if d := h.Since(time.Now().Add(-time.Millisecond)); d < time.Millisecond {
		t.Fatalf("Since returned %v, want >= 1ms", d)
	}
	s := h.Snapshot()
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.RecordNanos(v)
			v = (v * 2862933555777941757) % (1 << 22) // cheap LCG spread
		}
	})
}

func BenchmarkShardRecord(b *testing.B) {
	var s Shard
	v := int64(1)
	for i := 0; i < b.N; i++ {
		s.RecordNanos(v)
		v = (v * 2862933555777941757) % (1 << 22)
	}
}
