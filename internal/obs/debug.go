package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugConfig supplies the data sources behind a debug plane. Nil
// fields disable the corresponding endpoint (it serves 404).
type DebugConfig struct {
	// Metrics writes a full Prometheus text exposition page.
	Metrics func(w io.Writer) error
	// Health returns nil when the serving substrate is healthy; the
	// error text becomes the 503 body otherwise.
	Health func() error
	// SlowOps returns the current slow-op log contents for
	// /debug/slowops.
	SlowOps func() []SlowOp
}

// NewMux builds the debug-plane handler: /metrics (Prometheus text
// exposition), /healthz, /debug/vars (expvar), /debug/slowops (JSON)
// and the net/http/pprof family under /debug/pprof/. The pprof
// handlers are mounted explicitly rather than through the package's
// DefaultServeMux side effects, so importing obs never changes the
// global mux.
func NewMux(cfg DebugConfig) *http.ServeMux {
	mux := http.NewServeMux()
	if cfg.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := cfg.Metrics(w); err != nil {
				// Headers are already out; all we can do is drop the
				// connection mid-page, which scrapers treat as a
				// failed scrape.
				return
			}
		})
	}
	if cfg.Health != nil {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
	}
	if cfg.SlowOps != nil {
		mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			ops := cfg.SlowOps()
			if ops == nil {
				ops = []SlowOp{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(ops)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug plane bound to one listener.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// ServeDebug binds addr (host:port; use ":0" for an ephemeral port)
// and serves the debug plane for cfg in a background goroutine until
// Close.
func ServeDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(cfg), ReadHeaderTimeout: 10 * time.Second}
	ds := &DebugServer{lis: lis, srv: srv}
	go srv.Serve(lis)
	return ds, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:38211".
func (s *DebugServer) Addr() string { return s.lis.Addr().String() }

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
