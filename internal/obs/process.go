package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// ProcessStats is a point-in-time sample of the Go runtime — the real
// counterpart of the Ganglia host metrics the paper's Monitor consumes.
// When a cluster runs the durable backend, these replace the
// simulation-era placeholders in metrics.SystemMetrics.
type ProcessStats struct {
	// HeapLiveBytes is the live heap (bytes occupied by reachable
	// objects plus not-yet-swept garbage).
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// TotalBytes is everything the runtime has obtained from the OS.
	TotalBytes uint64 `json:"total_bytes"`
	// GCCycles is the cumulative completed GC cycle count.
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseP99 is the 99th-percentile stop-the-world pause over the
	// process lifetime.
	GCPauseP99 time.Duration `json:"gc_pause_p99_ns"`
	// Goroutines is the current live goroutine count.
	Goroutines int `json:"goroutines"`
}

// MemoryFraction returns live heap as a fraction of runtime-owned
// memory — the closest honest analogue of Ganglia's memory-usage gauge
// for a single-process cluster.
func (p ProcessStats) MemoryFraction() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	f := float64(p.HeapLiveBytes) / float64(p.TotalBytes)
	if f > 1 {
		f = 1
	}
	return f
}

var processSamples = []metrics.Sample{
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/memory/classes/total:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/sched/pauses/total/gc:seconds"},
}

// ReadProcessStats samples the runtime/metrics interface. Metrics a
// future runtime drops read as zero rather than failing.
func ReadProcessStats() ProcessStats {
	samples := make([]metrics.Sample, len(processSamples))
	copy(samples, processSamples)
	metrics.Read(samples)
	var p ProcessStats
	p.HeapLiveBytes = sampleUint64(samples[0])
	p.TotalBytes = sampleUint64(samples[1])
	p.GCCycles = sampleUint64(samples[2])
	p.Goroutines = int(sampleUint64(samples[3]))
	if samples[4].Value.Kind() == metrics.KindFloat64Histogram {
		p.GCPauseP99 = histogramQuantile(samples[4].Value.Float64Histogram(), 0.99)
	}
	return p
}

func sampleUint64(s metrics.Sample) uint64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return s.Value.Uint64()
	case metrics.KindFloat64:
		return uint64(s.Value.Float64())
	default:
		return 0
	}
}

// histogramQuantile extracts quantile q from a runtime Float64Histogram
// (values in seconds), returning the upper bound of the bucket holding
// the rank — consistent with Snapshot.Percentile's tail-conservative
// convention.
func histogramQuantile(h *metrics.Float64Histogram, q float64) time.Duration {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			upper := h.Buckets[i+1]
			if math.IsInf(upper, 1) {
				upper = h.Buckets[i]
			}
			return time.Duration(upper * float64(time.Second))
		}
	}
	return 0
}
