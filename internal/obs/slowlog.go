package obs

import (
	"sync"
	"time"
)

// SlowOp is one over-threshold operation captured by a SlowLog,
// carrying the per-stage spans of its trace.
type SlowOp struct {
	Time  time.Time     `json:"time"`
	Op    string        `json:"op"`
	Table string        `json:"table"`
	Key   string        `json:"key"`
	Total time.Duration `json:"total_ns"`
	Spans []Span        `json:"spans"`
}

// SlowLog is a bounded ring buffer of recent slow operations. It is
// mutex-protected rather than lock-free: it is only touched when an op
// already blew past the slow threshold, so contention here is by
// construction off the fast path.
type SlowLog struct {
	mu    sync.Mutex
	buf   []SlowOp
	next  int   // index the next record lands in
	total int64 // ops ever recorded, including overwritten ones
}

// DefaultSlowLogSize is the ring capacity when none is configured.
const DefaultSlowLogSize = 128

// NewSlowLog returns a ring holding the most recent capacity entries
// (DefaultSlowLogSize when capacity <= 0).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	return &SlowLog{buf: make([]SlowOp, 0, capacity)}
}

// Observe builds a SlowOp from a finished trace and records it.
func (l *SlowLog) Observe(t *Trace, total time.Duration) {
	if l == nil || t == nil {
		return
	}
	l.Record(SlowOp{
		Time:  t.Start(),
		Op:    t.Op,
		Table: t.Table,
		Key:   t.Key,
		Total: total,
		Spans: t.Spans(),
	})
}

// Record appends op, overwriting the oldest entry once the ring is
// full.
func (l *SlowLog) Record(op SlowOp) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, op)
	} else {
		l.buf[l.next] = op
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
}

// Snapshot returns the retained slow ops, oldest first.
func (l *SlowLog) Snapshot() []SlowOp {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowOp, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		// Not yet wrapped: entries 0..len-1 are already oldest-first.
		return append(out, l.buf...)
	}
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

// Total returns how many slow ops were ever recorded, including ones
// the ring has since overwritten.
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
