package obs

import (
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text exposition for a
// deterministic histogram: 99 ops at 1µs and one at 1ms. 1000 ns falls
// in the bucket with upper bound 1023 ns; the p99.9 rank lands on the
// outlier and clamps to the observed max.
func TestExpositionGolden(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.RecordNanos(1000)
	}
	h.RecordNanos(1_000_000)
	s := h.Snapshot()

	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Header("met_test_latency_seconds", "Test summary.", "summary")
	m.Summary("met_test_latency_seconds", []Label{{"op", "get"}}, &s)
	m.Header("met_test_requests_total", "Test counter.", "counter")
	m.Counter("met_test_requests_total", []Label{{"server", "rs1"}, {"op", "get"}}, 12345)
	m.Header("met_test_up", "Unlabeled gauge.", "gauge")
	m.Sample("met_test_up", nil, 1)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}

	const want = `# HELP met_test_latency_seconds Test summary.
# TYPE met_test_latency_seconds summary
met_test_latency_seconds{op="get",quantile="0.5"} 1.023e-06
met_test_latency_seconds{op="get",quantile="0.95"} 1.023e-06
met_test_latency_seconds{op="get",quantile="0.99"} 1.023e-06
met_test_latency_seconds{op="get",quantile="0.999"} 0.001
met_test_latency_seconds_sum{op="get"} 0.001099
met_test_latency_seconds_count{op="get"} 100
# HELP met_test_requests_total Test counter.
# TYPE met_test_requests_total counter
met_test_requests_total{server="rs1",op="get"} 12345
# HELP met_test_up Unlabeled gauge.
# TYPE met_test_up gauge
met_test_up 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Sample("x", []Label{{"k", "a\"b\\c\nd"}}, 0)
	want := "x{k=\"a\\\"b\\\\c\\nd\"} 0\n"
	if got := b.String(); got != want {
		t.Fatalf("escaping mismatch: got %q want %q", got, want)
	}
}

// TestSummaryDoesNotCorruptCallerLabels guards the full-slice-expr
// trick: appending the quantile label must not scribble on a labels
// slice the caller reuses.
func TestSummaryDoesNotCorruptCallerLabels(t *testing.T) {
	labels := make([]Label, 1, 4)
	labels[0] = Label{"server", "rs1"}
	var h Histogram
	h.RecordNanos(5)
	s := h.Snapshot()
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Summary("a_seconds", labels, &s)
	m.Counter("b_total", append(labels, Label{"op", "get"}), 1)
	if !strings.Contains(b.String(), `b_total{server="rs1",op="get"} 1`) {
		t.Fatalf("caller labels corrupted:\n%s", b.String())
	}
}
