package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair. Exporters pass labels as ordered
// slices (not maps) so the emitted text is deterministic — the golden
// exposition test depends on it.
type Label struct {
	Name  string
	Value string
}

// MetricWriter emits the Prometheus text exposition format (version
// 0.0.4). Write errors are sticky: the first one is remembered and all
// subsequent calls are no-ops, so exporters can emit an entire page and
// check Err once.
type MetricWriter struct {
	w   io.Writer
	err error
}

// NewMetricWriter wraps w.
func NewMetricWriter(w io.Writer) *MetricWriter { return &MetricWriter{w: w} }

// Err returns the first write error, if any.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// Header emits the # HELP and # TYPE lines for a metric family. typ is
// one of "counter", "gauge", "summary" or "untyped".
func (m *MetricWriter) Header(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample line: name{labels} value.
func (m *MetricWriter) Sample(name string, labels []Label, value float64) {
	m.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Counter emits a counter sample from an integer total.
func (m *MetricWriter) Counter(name string, labels []Label, total int64) {
	m.Sample(name, labels, float64(total))
}

// Summary emits a summary family member for one histogram snapshot:
// quantile series for the standard percentile set plus _sum and _count.
// Values are converted from nanoseconds to seconds, the Prometheus base
// unit for durations, so name should end in "_seconds".
func (m *MetricWriter) Summary(name string, labels []Label, s *Snapshot) {
	quantiles := []struct {
		q string
		v int64
	}{
		{"0.5", s.Percentile(0.50)},
		{"0.95", s.Percentile(0.95)},
		{"0.99", s.Percentile(0.99)},
		{"0.999", s.Percentile(0.999)},
	}
	for _, q := range quantiles {
		m.Sample(name, append(labels[:len(labels):len(labels)], Label{"quantile", q.q}), nanosToSeconds(q.v))
	}
	m.Sample(name+"_sum", labels, float64(s.Sum())/1e9)
	m.Counter(name+"_count", labels, s.Count())
}

func nanosToSeconds(ns int64) float64 { return float64(ns) / 1e9 }

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }
