package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is log2 of the linear sub-buckets per power-of-two octave.
	subBits = 3
	// subCount is the number of sub-buckets per octave (8), which is
	// also the number of exact unit buckets at the bottom of the range.
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: values 0..7 exactly,
	// then 60 octaves (exponents 3..62) of 8 sub-buckets each.
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a nanosecond value to its bucket. Negative values
// (possible only from clock anomalies) clamp to bucket zero.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // v in [2^e, 2^(e+1)), e >= subBits
	sub := int((uint64(v) >> (uint(e) - subBits)) & (subCount - 1))
	return (e-subBits+1)*subCount + sub
}

// bucketUpper returns the largest value that maps to bucket i — the
// inclusive upper bound percentile extraction reports.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	g := i / subCount // octave group, >= 1
	sub := i % subCount
	e := uint(g - 1 + subBits)
	width := int64(1) << (e - subBits)
	return int64(1)<<e + int64(sub+1)*width - 1
}

// Histogram is a lock-free fixed-bucket latency histogram. Recording is
// wait-free (two atomic adds plus a rarely-contended max CAS) and safe
// from any number of goroutines; Snapshot may run concurrently with
// recorders and observes each counter atomically. The zero value is
// ready to use. See the package documentation for the bucket layout.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// RecordNanos adds one observation of v nanoseconds.
func (h *Histogram) RecordNanos(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m {
			return
		}
		if h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Record adds one observation of duration d.
func (h *Histogram) Record(d time.Duration) { h.RecordNanos(int64(d)) }

// Since records the time elapsed from start and returns it, so hot
// paths can time and record in one call.
func (h *Histogram) Since(start time.Time) time.Duration {
	d := time.Since(start)
	h.RecordNanos(int64(d))
	return d
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// recorders may land between bucket reads; each counter is itself read
// atomically, so the snapshot is a valid (if slightly torn) histogram.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.buckets[i] = n
		s.count += n
	}
	s.sum = h.sum.Load()
	s.max = h.max.Load()
	return s
}

// Shard is the single-writer variant of Histogram: identical buckets,
// plain (non-atomic) counters. Closed-loop load generators give each
// worker its own Shard so the hot path touches no shared cache line at
// all, then merge the per-worker snapshots after the run. A Shard must
// not be written from two goroutines.
type Shard struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// RecordNanos adds one observation of v nanoseconds.
func (s *Shard) RecordNanos(v int64) {
	s.buckets[bucketIndex(v)]++
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Snapshot converts the shard to a mergeable Snapshot.
func (s *Shard) Snapshot() Snapshot {
	return Snapshot{buckets: s.buckets, count: s.count, sum: s.sum, max: s.max}
}

// Snapshot is an immutable copy of a histogram's state. The zero value
// is an empty histogram; snapshots merge with Merge.
type Snapshot struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// Merge folds o into s bucket-wise.
func (s *Snapshot) Merge(o Snapshot) {
	for i, n := range o.buckets {
		s.buckets[i] += n
	}
	s.count += o.count
	s.sum += o.sum
	if o.max > s.max {
		s.max = o.max
	}
}

// Count returns the number of recorded observations.
func (s *Snapshot) Count() int64 { return s.count }

// Sum returns the exact sum of all recorded values in nanoseconds.
func (s *Snapshot) Sum() int64 { return s.sum }

// Max returns the largest recorded value in nanoseconds.
func (s *Snapshot) Max() int64 { return s.max }

// Mean returns the exact mean in nanoseconds (0 when empty).
func (s *Snapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Percentile returns the value at quantile p in [0,1]: the inclusive
// upper bound of the bucket containing the ceil(p*count)-th observation,
// clamped to the observed maximum. It never understates the tail; the
// overstatement is at most one sub-bucket width (12.5% relative).
func (s *Snapshot) Percentile(p float64) int64 {
	if s.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var cum int64
	for i, n := range s.buckets {
		cum += n
		if cum >= rank {
			u := bucketUpper(i)
			if u > s.max {
				u = s.max
			}
			return u
		}
	}
	return s.max // unreachable: cum reaches count
}

// Summary extracts the fixed percentile set every exporter in the
// repository reports.
func (s *Snapshot) Summary() LatencySummary {
	return LatencySummary{
		Count: s.count,
		Mean:  s.Mean(),
		P50:   s.Percentile(0.50),
		P95:   s.Percentile(0.95),
		P99:   s.Percentile(0.99),
		P999:  s.Percentile(0.999),
		Max:   s.max,
	}
}

// LatencySummary is the compact percentile digest wired into
// metrics.EngineStats, metbench -json output and the /metrics plane.
// All values are nanoseconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	P999  int64   `json:"p999_ns"`
	Max   int64   `json:"max_ns"`
}
