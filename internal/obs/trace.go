package obs

import "time"

// Span is one timed stage of a traced operation. Stages appear in the
// order they completed; the same stage name may repeat (a Get that
// consults three SSTables records three "sstable-read" spans).
type Span struct {
	Stage string        `json:"stage"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace is a per-operation trace context threaded through the hot path
// (routing → memstore → bloom → block cache → SSTable reads). Every
// method is nil-safe: a nil *Trace is the disabled state and costs one
// pointer check per call site — no clock reads, no allocation — so the
// serving path carries trace plumbing unconditionally and only pays
// when a slow-op threshold armed tracing for the operation.
//
// A Trace is owned by the goroutine serving the operation and is not
// safe for concurrent use.
type Trace struct {
	Op    string
	Table string
	Key   string
	start time.Time
	spans []Span
}

// StartTrace begins tracing an operation. The spans slice is
// preallocated so typical traces never reallocate mid-operation.
func StartTrace(op, table, key string) *Trace {
	return &Trace{Op: op, Table: table, Key: key, start: time.Now(), spans: make([]Span, 0, 8)}
}

// StartSpan returns the clock for a stage about to run, or the zero
// time without touching the clock when the trace is nil.
func (t *Trace) StartSpan() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndSpan records a span for stage covering start..now. No-op on a nil
// trace.
func (t *Trace) EndSpan(stage string, start time.Time) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Stage: stage, Dur: time.Since(start)})
}

// AddSpan records a span with an externally measured duration, for
// stages whose timing is already being taken for a histogram.
func (t *Trace) AddSpan(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Stage: stage, Dur: d})
}

// Elapsed returns the time since the trace started (0 on nil).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Start returns the trace's start time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Spans returns the recorded spans (nil on a nil trace). The slice is
// the trace's own backing store; callers snapshotting it into a slow-op
// log must be done appending first.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}
