package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"met/internal/hbase"
	"met/internal/hdfs"
)

// testConfig is the small-heap durable config the hbase tests use.
func testConfig(dataDir string) hbase.ServerConfig {
	return hbase.ServerConfig{
		HeapBytes: 1 << 20, BlockCacheFraction: 0.39, MemstoreFraction: 0.26,
		BlockBytes: 4 << 10, Handlers: 10, DataDir: dataDir,
	}
}

// cluster is an in-process networked cluster: a real MasterNode and
// real ServerNodes, each serving on its own localhost listener — the
// same wire a multi-process deployment uses, minus the fork/exec.
type cluster struct {
	dir     string
	mn      *MasterNode
	workers map[string]*ServerNode
	c       *Client
}

// startCluster bootstraps a durable cluster (in-process master),
// stops it, and reopens it as layout master + worker nodes over RPC.
func startCluster(t *testing.T, n int, splits []string) *cluster {
	t.Helper()
	dir := t.TempDir()
	m, err := hbase.NewDurableMaster(hdfs.NewNamenode(2), dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), testConfig(dir)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.CreateTable("t", splits); err != nil {
		t.Fatal(err)
	}
	m.HardStop()

	lm, err := hbase.OpenLayoutMaster(dir)
	if err != nil {
		t.Fatal(err)
	}
	mn := NewMasterNode(lm, io.Discard)
	if err := mn.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mn.Close(); lm.Close() })

	cl := &cluster{dir: dir, mn: mn, workers: make(map[string]*ServerNode)}
	for _, sn := range lm.ServerNames() {
		cl.workers[sn] = cl.startWorker(t, sn)
	}
	c, err := Dial(mn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cl.c = c
	return cl
}

// startWorker runs the real worker startup flow over the wire:
// register for the manifest, open the server node, serve, re-register
// with the bound address.
func (cl *cluster) startWorker(t *testing.T, name string) *ServerNode {
	t.Helper()
	var man hbase.NodeManifest
	if err := postJSON(cl.mn.Addr(), "/master/register",
		map[string]string{"server": name}, &man); err != nil {
		t.Fatal(err)
	}
	rs, err := hbase.OpenServerNode(man)
	if err != nil {
		t.Fatal(err)
	}
	node := NewServerNode(rs, man.Epoch, io.Discard)
	if err := node.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(cl.mn.Addr(), "/master/register",
		map[string]string{"server": name, "addr": node.Addr()}, &man); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close(); rs.Shutdown() })
	return node
}

// postJSON is a minimal control-plane helper for tests.
func postJSON(addr, path string, body, out any) error {
	n := &MasterNode{hc: http.DefaultClient}
	return n.post(addr, path, body, out)
}

// quarantine renames a dead worker's primary directories aside, like
// the hbase failover tests: recovery must succeed from replicas alone.
func quarantine(t *testing.T, dir string, rs *hbase.RegionServer) {
	t.Helper()
	for _, r := range rs.Regions() {
		p := hbase.RegionDataDir(dir, r.Name())
		if err := os.Rename(p, p+".quarantine"); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	w := hbase.ServerWALDir(dir, rs.Name())
	if err := os.Rename(w, w+".quarantine"); err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
}

// TestDataPlaneEndToEnd drives put/get/delete/scan through the wire
// across a 3-worker cluster with a split table (scan stitches regions
// hosted by different processes' servers).
func TestDataPlaneEndToEnd(t *testing.T) {
	cl := startCluster(t, 3, []string{"g", "p"})
	for i := 0; i < 60; i++ {
		if err := cl.c.Put("t", fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		v, err := cl.c.Get("t", fmt.Sprintf("k%04d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%04d: %q, %v", i, v, err)
		}
	}
	if _, err := cl.c.Get("t", "missing"); !errors.Is(err, hbase.ErrNotFound) {
		t.Fatalf("missing key: want ErrNotFound, got %v", err)
	}
	if err := cl.c.Delete("t", "k0000"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.c.Get("t", "k0000"); !errors.Is(err, hbase.ErrNotFound) {
		t.Fatalf("deleted key: want ErrNotFound, got %v", err)
	}
	// The split keys "g","p" put k* in one region; write across all
	// three regions and scan the full range to prove stitching.
	for _, k := range []string{"a1", "h1", "q1"} {
		if err := cl.c.Put("t", k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := cl.c.Scan("t", "", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 62 { // 60 k-rows - 1 deleted + 3 extra
		t.Fatalf("full scan: %d entries, want 62", len(entries))
	}
	if entries[0].Key != "a1" || entries[len(entries)-1].Key != "q1" {
		t.Fatalf("scan order: first %q last %q", entries[0].Key, entries[len(entries)-1].Key)
	}
	limited, err := cl.c.Scan("t", "", "", 5)
	if err != nil || len(limited) != 5 {
		t.Fatalf("limited scan: %d entries, %v", len(limited), err)
	}
}

// TestKilledWorkerFailoverReroutes kills a worker between the client's
// route and its request, recovers through the master, and proves the
// client re-routes transparently: connection-refused and stale-epoch
// both end in a refreshed layout and a served request.
func TestKilledWorkerFailoverReroutes(t *testing.T) {
	cl := startCluster(t, 3, []string{"m"})
	for i := 0; i < 40; i++ {
		if err := cl.c.Put("t", fmt.Sprintf("a%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := cl.c.Put("t", fmt.Sprintf("z%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.c.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Find the worker hosting the a* region and kill it un-gracefully:
	// the client's cached layout still routes a* straight at the corpse.
	region, _, err := cl.c.route("t", "a0000")
	if err != nil {
		t.Fatal(err)
	}
	victim := region.Server
	epochBefore := cl.c.Epoch()
	cl.workers[victim].Close()
	cl.workers[victim].RegionServer().Shutdown()
	quarantine(t, cl.dir, cl.workers[victim].RegionServer())

	// Before recovery, the stale route fails even after retries (the
	// layout still names the dead worker): the client reports the
	// reroute failure rather than hanging.
	shortTimeout, err := Dial(cl.mn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	shortTimeout.Timeout = 2 * time.Second
	shortTimeout.Retries = 1
	if _, err := shortTimeout.Get("t", "a0000"); err == nil {
		t.Fatal("get served by a dead worker with no recovery run")
	}

	reply, err := cl.c.Recover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Regions) == 0 {
		t.Fatal("recovery moved no regions")
	}
	for _, rr := range reply.Regions {
		if rr.Spec.Source == victim {
			t.Fatalf("region adopted onto the dead worker: %+v", rr.Spec)
		}
		if rr.Report.ReplicaFiles == 0 && rr.Report.TailWrites == 0 {
			t.Fatalf("adoption recovered nothing for %s", rr.Spec.Region)
		}
	}
	if reply.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance: %d -> %d", epochBefore, reply.Epoch)
	}

	// A client still holding the PRE-recovery layout: its first call
	// routes to the dead address, gets connection-refused, refreshes,
	// and lands on the adopter. (Quiesced before the kill, so zero loss.)
	stale, err := Dial(cl.mn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	stale.mu.Lock()
	stale.epoch = epochBefore // simulate the pre-recovery cache
	stale.mu.Unlock()
	for i := 0; i < 40; i++ {
		for _, k := range []string{fmt.Sprintf("a%04d", i), fmt.Sprintf("z%04d", i)} {
			if v, err := stale.Get("t", k); err != nil || string(v) != "v" {
				t.Fatalf("%s after failover: %q, %v", k, v, err)
			}
		}
	}
	if stale.Epoch() < reply.Epoch {
		t.Fatalf("client never refreshed past the recovery epoch: %d < %d", stale.Epoch(), reply.Epoch)
	}
	// And writes route to the adopter too.
	if err := cl.c.Put("t", "a9999", []byte("post")); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.c.Get("t", "a9999"); err != nil || string(v) != "post" {
		t.Fatalf("post-failover write: %q, %v", v, err)
	}
}

// TestStaleEpochRejected proves the worker-side epoch gate: a data
// call carrying an older epoch bounces with 409 stale-epoch before
// touching the store.
func TestStaleEpochRejected(t *testing.T) {
	cl := startCluster(t, 2, nil)
	if err := cl.c.Put("t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	region, addr, err := cl.c.route("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	// Push a newer epoch to the hosting worker, as the master does
	// after a layout change.
	node := cl.workers[region.Server]
	req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/node/epoch",
		strings.NewReader(`{"epoch": 99}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if node.Epoch() != 99 {
		t.Fatalf("epoch push not applied: %d", node.Epoch())
	}
	// A raw data call with the old epoch must bounce 409 stale-epoch.
	body := appendStr(appendStr(nil, "t"), "k")
	req, _ = http.NewRequest(http.MethodPost, "http://"+addr+"/node/get", bytes.NewReader(body))
	req.Header.Set(HeaderEpoch, "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(payload), CodeStaleEpoch) {
		t.Fatalf("stale epoch: status %d body %s", resp.StatusCode, payload)
	}
	// The push is monotonic: a lower epoch never regresses the gate.
	req, _ = http.NewRequest(http.MethodPost, "http://"+addr+"/node/epoch",
		strings.NewReader(`{"epoch": 1}`))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	if node.Epoch() != 99 {
		t.Fatalf("epoch regressed on a lower push: %d", node.Epoch())
	}
}

// TestDeadlinePropagation exercises the deadline ring both ways: a
// handler that beats the budget replies normally; one that blows it
// turns into 504 server-side and context.DeadlineExceeded client-side,
// including mid-Scan.
func TestDeadlinePropagation(t *testing.T) {
	// A stub worker whose scan handler is deliberately slow.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /node/scan", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		_, _ = w.Write([]byte{0}) // empty entry set
	})
	mux.HandleFunc("POST /node/get", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("fast"))
	})
	srv := NewServer("stub", mux, io.Discard)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c := &Client{hc: &http.Client{}, Timeout: 5 * time.Second, Retries: 0}
	c.regions = []hbase.LayoutRegion{{Name: "r", Table: "t", Server: "stub"}}
	c.addrs = map[string]string{"stub": srv.Addr()}
	c.epoch = 1

	// Fast path unaffected by the budget.
	if v, err := c.Get("t", "k"); err != nil || string(v) != "fast" {
		t.Fatalf("fast get: %q, %v", v, err)
	}
	// Slow scan against a 100ms budget: DeadlineExceeded, in ~100ms not
	// ~300ms (the server gave up too — the handler's reply was discarded).
	c.Timeout = 100 * time.Millisecond
	start := time.Now()
	_, err := c.Scan("t", "", "", -1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow scan: want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("deadline not enforced server-side: took %v", d)
	}
	// Raw probe: the server itself replies 504 with the deadline code.
	body := appendStr(appendStr(appendStr(nil, "t"), ""), "")
	body = append(body, 1) // varint limit 1... (limit -1 encodes as 1)
	req, _ := http.NewRequest(http.MethodPost, "http://"+srv.Addr()+"/node/scan", bytes.NewReader(body))
	req.Header.Set(HeaderDeadline, "50")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || !strings.Contains(string(payload), CodeDeadline) {
		t.Fatalf("server deadline: status %d body %s", resp.StatusCode, payload)
	}
}

// TestPanicRecoveryAndMetrics: a panicking handler becomes a 500 (the
// process survives) and every request lands in the per-op histograms
// served by /metrics.
func TestPanicRecoveryAndMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "fine")
	})
	var logbuf bytes.Buffer
	srv := NewServer("stub", mux, &logbuf)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	resp, err := http.Post("http://"+srv.Addr()+"/boom", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic handler: status %d, want 500", resp.StatusCode)
	}
	if resp, err = http.Get("http://" + srv.Addr() + "/ok"); err != nil {
		t.Fatalf("server died after panic: %v", err)
	}
	resp.Body.Close()
	// Same under a deadline budget: the handler panics on the deadline
	// ring's goroutine, which must surface as a 500, not kill the process.
	req, _ := http.NewRequest(http.MethodPost, "http://"+srv.Addr()+"/boom", nil)
	req.Header.Set(HeaderDeadline, "5000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic under deadline: status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(logbuf.String(), "kaboom") {
		t.Fatal("panic not logged")
	}
	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), `rpc_op_latency_seconds`) ||
		!strings.Contains(string(page), `op="/boom"`) {
		t.Fatalf("metrics page missing op histograms:\n%s", page)
	}
}

// TestDrainWhileServing: writers hammer a worker while it drains. Every
// put acknowledged before or during the drain must be durable on the
// worker (no acked write is truncated by the graceful stop), and the
// drained worker refuses new work with readiness off.
func TestDrainWhileServing(t *testing.T) {
	cl := startCluster(t, 2, nil)
	region, _, err := cl.c.route("t", "w0000")
	if err != nil {
		t.Fatal(err)
	}
	node := cl.workers[region.Server]

	w, err := Dial(cl.mn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w.Timeout = 2 * time.Second
	w.Retries = 0

	acked := make(chan string, 4096)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("w%04d", i)
			if err := w.Put("t", k, []byte("v")); err != nil {
				return // drained: new work refused, stop writing
			}
			acked <- k
		}
	}()
	time.Sleep(50 * time.Millisecond) // let some writes through
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := node.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	<-writerDone
	close(acked)

	// Readiness is off; the listener no longer accepts.
	if _, err := http.Get("http://" + node.Addr() + "/readyz"); err == nil {
		t.Fatal("drained listener still accepting")
	}
	// Every acknowledged write is in the (still-open) region server —
	// the drain completed the in-flight handlers before stopping.
	count := 0
	for k := range acked {
		if v, err := node.RegionServer().Get("t", k); err != nil || string(v) != "v" {
			t.Fatalf("acked write %s lost across drain: %q, %v", k, v, err)
		}
		count++
	}
	if count == 0 {
		t.Fatal("no writes were acknowledged before the drain; test proves nothing")
	}
}
