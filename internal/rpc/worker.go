package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"met/internal/hbase"
	"met/internal/kv"
	"met/internal/obs"
)

// ServerNode is one worker process's RPC front: the data plane
// (get/put/delete/scan, binary-framed) plus the control endpoints the
// master drives failover through (adopt, refollow, epoch push,
// quiesce), all behind the standard middleware chain.
type ServerNode struct {
	*Server
	rs    *hbase.RegionServer
	epoch atomic.Int64
}

// NewServerNode builds the RPC front for an opened region server.
// epoch is the routing epoch from the node's manifest; the master
// pushes advances after layout changes.
func NewServerNode(rs *hbase.RegionServer, epoch int64, logw io.Writer) *ServerNode {
	n := &ServerNode{rs: rs}
	n.epoch.Store(epoch)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /node/get", n.handleGet)
	mux.HandleFunc("POST /node/put", n.handlePut)
	mux.HandleFunc("POST /node/delete", n.handleDelete)
	mux.HandleFunc("POST /node/scan", n.handleScan)
	mux.HandleFunc("POST /node/adopt", n.handleAdopt)
	mux.HandleFunc("POST /node/refollow", n.handleRefollow)
	mux.HandleFunc("POST /node/epoch", n.handleEpoch)
	mux.HandleFunc("POST /node/quiesce", n.handleQuiesce)
	n.Server = NewServer(rs.Name(), mux, logw)
	n.Server.SetHealth(func() error {
		if !rs.Running() {
			return errors.New("region server stopped")
		}
		return nil
	})
	n.Server.SetMetricsExtra(func(w *obs.MetricWriter) {
		st := rs.ReplicationStats()
		w.Header("met_tail_floor_ships_total", "bounded-lag floor tail ships", "counter")
		w.Counter("met_tail_floor_ships_total", nil, st.TailFloorShips)
	})
	return n
}

// RegionServer exposes the wrapped server (for tests and metnode).
func (n *ServerNode) RegionServer() *hbase.RegionServer { return n.rs }

// Epoch returns the node's current routing epoch.
func (n *ServerNode) Epoch() int64 { return n.epoch.Load() }

// checkEpoch rejects data calls routed with a stale layout: a client
// epoch below the node's means the client missed at least one layout
// change and may be talking to the wrong server entirely.
func (n *ServerNode) checkEpoch(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(HeaderEpoch)
	if h == "" {
		return true
	}
	ce, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-epoch", err.Error())
		return false
	}
	if ce < n.epoch.Load() {
		writeError(w, http.StatusConflict, CodeStaleEpoch,
			"client epoch "+h+" behind node epoch "+strconv.FormatInt(n.epoch.Load(), 10))
		return false
	}
	return true
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-body", err.Error())
		return nil, false
	}
	return body, true
}

// dataError maps engine errors onto the wire: not-found and
// wrong-region are routing facts the client handles, everything else
// is a server fault.
func dataError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, kv.ErrNotFound):
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
	case errors.Is(err, hbase.ErrWrongRegionServer), errors.Is(err, kv.ErrClosed):
		// A moved/split/recovered region: the client must re-fetch the
		// layout and re-route, same as a stale epoch.
		writeError(w, http.StatusConflict, CodeWrongRegion, err.Error())
	case errors.Is(err, hbase.ErrServerStopped):
		writeError(w, http.StatusServiceUnavailable, "stopped", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (n *ServerNode) handleGet(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	table, rest, err := takeStr(body)
	if err == nil {
		var key string
		key, _, err = takeStr(rest)
		if err == nil {
			var v []byte
			if v, err = n.rs.Get(table, key); err == nil {
				w.Header().Set("Content-Type", "application/octet-stream")
				_, _ = w.Write(v)
				return
			}
		}
	}
	dataError(w, err)
}

func (n *ServerNode) handlePut(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	table, rest, err := takeStr(body)
	if err == nil {
		var key string
		if key, rest, err = takeStr(rest); err == nil {
			var val []byte
			if val, _, err = takeBytes(rest); err == nil {
				if err = n.rs.Put(table, key, val); err == nil {
					w.WriteHeader(http.StatusOK)
					return
				}
			}
		}
	}
	dataError(w, err)
}

func (n *ServerNode) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	table, rest, err := takeStr(body)
	if err == nil {
		var key string
		if key, _, err = takeStr(rest); err == nil {
			if err = n.rs.Delete(table, key); err == nil {
				w.WriteHeader(http.StatusOK)
				return
			}
		}
	}
	dataError(w, err)
}

// handleScan scans one hosted region's slice of [start, end) and
// returns up to limit entries, binary-framed: uvarint count, then per
// entry key | value | uvarint timestamp | flags (bit 0 = tombstone).
// Cross-region stitching is the client's job (it has the layout).
func (n *ServerNode) handleScan(w http.ResponseWriter, r *http.Request) {
	if !n.checkEpoch(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	table, rest, err := takeStr(body)
	var start, end string
	var limit int64
	if err == nil {
		if start, rest, err = takeStr(rest); err == nil {
			if end, rest, err = takeStr(rest); err == nil {
				var sz int
				limit, sz = binary.Varint(rest)
				if sz <= 0 {
					err = errors.New("rpc: truncated scan limit")
				}
			}
		}
	}
	if err != nil {
		dataError(w, err)
		return
	}
	entries, err := n.rs.Scan(table, start, end, int(limit))
	if err != nil {
		dataError(w, err)
		return
	}
	out := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		out = appendStr(out, e.Key)
		out = appendBytes(out, e.Value)
		out = binary.AppendUvarint(out, e.Timestamp)
		var flags byte
		if e.Tombstone {
			flags |= 1
		}
		out = append(out, flags)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(out)
}

// handleAdopt runs the worker half of a failover: seed the new region
// from the replica copy and open it for serving. The master commits
// the layout after every adoption has succeeded.
func (n *ServerNode) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var spec hbase.AdoptSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad-body", err.Error())
		return
	}
	rep, err := n.rs.AdoptRegion(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "adopt-failed", err.Error())
		return
	}
	writeJSON(w, rep)
}

// handleRefollow repoints one hosted region's replica targets.
func (n *ServerNode) handleRefollow(w http.ResponseWriter, r *http.Request) {
	var up hbase.FollowerUpdate
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&up); err != nil {
		writeError(w, http.StatusBadRequest, "bad-body", err.Error())
		return
	}
	if err := n.rs.Refollow(up); err != nil {
		writeError(w, http.StatusConflict, CodeWrongRegion, err.Error())
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handleEpoch accepts the master's epoch push after a layout change;
// data calls carrying older epochs start bouncing with 409.
func (n *ServerNode) handleEpoch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch int64 `json:"epoch"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-body", err.Error())
		return
	}
	for {
		cur := n.epoch.Load()
		if req.Epoch <= cur || n.epoch.CompareAndSwap(cur, req.Epoch) {
			break
		}
	}
	w.WriteHeader(http.StatusOK)
}

// handleQuiesce blocks until the node's replicator has shipped all
// pending work — the per-node half of the cluster-wide barrier.
func (n *ServerNode) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	n.rs.QuiesceReplication()
	w.WriteHeader(http.StatusOK)
}
