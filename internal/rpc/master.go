package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"met/internal/hbase"
)

// MasterNode is the master process's RPC front: the layout/registration
// control plane plus the failover orchestrator. It wraps the
// catalog-owning hbase.LayoutMaster and keeps the one piece of state
// the catalog does not: which address each live worker serves on.
// mu guards the address book; layout state lives in the LayoutMaster
// behind its own lock.
type MasterNode struct {
	*Server
	lm *hbase.LayoutMaster
	hc *http.Client

	mu    sync.Mutex
	addrs map[string]string // server name -> "host:port"
}

// NewMasterNode builds the RPC front for an opened layout master.
func NewMasterNode(lm *hbase.LayoutMaster, logw io.Writer) *MasterNode {
	n := &MasterNode{
		lm:    lm,
		hc:    &http.Client{Timeout: 30 * time.Second},
		addrs: make(map[string]string),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /master/register", n.handleRegister)
	mux.HandleFunc("GET /master/layout", n.handleLayout)
	mux.HandleFunc("POST /master/recover", n.handleRecover)
	n.Server = NewServer("master", mux, logw)
	return n
}

// LayoutReply is GET /master/layout's body: everything a client needs
// to route — the epoch, the region map, and each server's address.
type LayoutReply struct {
	Epoch   int64                `json:"epoch"`
	Regions []hbase.LayoutRegion `json:"regions"`
	Addrs   map[string]string    `json:"addrs"`
	Servers []string             `json:"servers"`
}

// registerReq is a worker announcing itself and its serving address.
type registerReq struct {
	Server string `json:"server"`
	Addr   string `json:"addr"`
}

// handleRegister records the worker's address and hands back its
// manifest: config, replication factor, assigned regions, epoch.
// Registration is idempotent and two-phase by design: a worker first
// registers with an empty address to fetch its manifest (it cannot
// bind its data listener before it has opened its regions), then
// re-registers with the bound address once it serves.
func (n *MasterNode) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-body", err.Error())
		return
	}
	man, err := n.lm.Manifest(req.Server)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown-server", err.Error())
		return
	}
	if req.Addr != "" {
		n.mu.Lock()
		n.addrs[req.Server] = req.Addr
		n.mu.Unlock()
	}
	writeJSON(w, man)
}

// handleLayout serves the routing table.
func (n *MasterNode) handleLayout(w http.ResponseWriter, r *http.Request) {
	epoch, regions := n.lm.Layout()
	n.mu.Lock()
	addrs := make(map[string]string, len(n.addrs))
	for k, v := range n.addrs {
		addrs[k] = v
	}
	n.mu.Unlock()
	writeJSON(w, LayoutReply{
		Epoch: epoch, Regions: regions, Addrs: addrs, Servers: n.lm.ServerNames(),
	})
}

// recoverReq names the dead worker; RecoverReply is the orchestration's
// account of what moved where.
type recoverReq struct {
	Server string `json:"server"`
}

// RecoverReply summarizes one orchestrated failover.
type RecoverReply struct {
	Epoch   int64             `json:"epoch"`
	Regions []RecoveredRegion `json:"regions"`
}

// RecoveredRegion pairs a recovery plan entry with the adopting
// worker's report.
type RecoveredRegion struct {
	Spec   hbase.AdoptSpec      `json:"spec"`
	Report hbase.AdoptionReport `json:"report"`
}

// handleRecover orchestrates a dead worker's failover: plan against
// the shared disk, direct each elected follower to adopt over RPC,
// commit the new layout to the catalog, then push the new epoch (and
// any follower re-picks) to the survivors. Mirrors RecoverServer's
// commit ordering, so a crash mid-way cold-starts the partially
// recovered layout and the recovery can be re-run.
func (n *MasterNode) handleRecover(w http.ResponseWriter, r *http.Request) {
	var req recoverReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad-body", err.Error())
		return
	}
	reply, err := n.recover(req.Server)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "recover-failed", err.Error())
		return
	}
	writeJSON(w, reply)
}

// recover runs the failover; see handleRecover.
func (n *MasterNode) recover(dead string) (*RecoverReply, error) {
	specs, err := n.lm.PlanRecovery(dead)
	if err != nil {
		return nil, err
	}
	reply := &RecoverReply{}
	for _, spec := range specs {
		addr, ok := n.addrOf(spec.Source)
		if !ok {
			return nil, fmt.Errorf("rpc: recover %s: no address for adopter %s", dead, spec.Source)
		}
		var rep hbase.AdoptionReport
		if err := n.post(addr, "/node/adopt", spec, &rep); err != nil {
			return nil, fmt.Errorf("rpc: adopt %s on %s: %w", spec.Region, spec.Source, err)
		}
		reply.Regions = append(reply.Regions, RecoveredRegion{Spec: spec, Report: rep})
	}
	updates, err := n.lm.CommitRecovery(dead, specs)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	delete(n.addrs, dead)
	n.mu.Unlock()
	epoch, _ := n.lm.Layout()
	reply.Epoch = epoch
	// Best-effort pushes: a worker that misses the epoch push just keeps
	// serving stale-route 409s one layout change later than ideal, and a
	// missed refollow is reconciled by the next recovery's re-pick.
	var errs []error
	for _, sn := range n.lm.ServerNames() {
		if addr, ok := n.addrOf(sn); ok {
			if err := n.post(addr, "/node/epoch", map[string]int64{"epoch": epoch}, nil); err != nil {
				errs = append(errs, fmt.Errorf("rpc: epoch push to %s: %w", sn, err))
			}
		}
	}
	for _, up := range updates {
		if up.Server == dead {
			continue
		}
		if addr, ok := n.addrOf(up.Server); ok {
			if err := n.post(addr, "/node/refollow", up, nil); err != nil {
				errs = append(errs, fmt.Errorf("rpc: refollow %s on %s: %w", up.Region, up.Server, err))
			}
		}
	}
	if len(errs) > 0 {
		// The recovery itself is committed; report the push failures
		// without failing the reply's substance.
		n.lg.Printf("recover %s: post-commit pushes: %v", dead, errors.Join(errs...))
	}
	return reply, nil
}

// addrOf looks up a worker's registered address.
func (n *MasterNode) addrOf(server string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.addrs[server]
	return a, ok
}

// post sends one JSON control call to a worker and decodes the reply
// into out (when non-nil).
func (n *MasterNode) post(addr, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := n.hc.Post("http://"+addr+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s: %s (%s)", resp.Status, eb.Error, eb.Code)
		}
		return fmt.Errorf("%s: %s", resp.Status, payload)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(payload, out)
}
