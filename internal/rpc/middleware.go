package rpc

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"met/internal/obs"
)

// Middleware wraps a handler; chain applies a list so the first element
// is outermost (runs first on the way in, last on the way out).
type Middleware func(http.Handler) http.Handler

func chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the status code a handler sent.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// withRecovery is the outermost ring: a handler panic becomes a 500
// and a stack trace in the log, never a dead process — one bad request
// must not take a region server down.
func withRecovery(lg *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if p := recover(); p != nil {
					lg.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
					writeError(w, http.StatusInternalServerError, "panic", fmt.Sprint(p))
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// withLogging writes one line per request: method, path, status,
// duration.
func withLogging(lg *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			lg.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		})
	}
}

// Metrics is the per-op latency surface: one lock-free obs.Histogram
// per request path, created on first hit. The map is guarded by mu;
// recording itself is atomic (the serving path never blocks on
// another recorder).
type Metrics struct {
	mu  sync.Mutex
	ops map[string]*obs.Histogram
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return &Metrics{ops: make(map[string]*obs.Histogram)} }

// hist returns (creating if needed) the histogram for one op path.
func (m *Metrics) hist(op string) *obs.Histogram {
	m.mu.Lock()
	h := m.ops[op]
	if h == nil {
		h = &obs.Histogram{}
		m.ops[op] = h
	}
	m.mu.Unlock()
	return h
}

// WriteProm renders the registry in Prometheus text format.
func (m *Metrics) WriteProm(w *obs.MetricWriter) {
	m.mu.Lock()
	ops := make([]string, 0, len(m.ops))
	for op := range m.ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	hists := make([]*obs.Histogram, len(ops))
	for i, op := range ops {
		hists[i] = m.ops[op]
	}
	m.mu.Unlock()
	w.Header("rpc_op_latency_seconds", "RPC handler latency by op", "summary")
	for i, op := range ops {
		s := hists[i].Snapshot()
		w.Summary("rpc_op_latency_seconds", []obs.Label{{Name: "op", Value: op}}, &s)
	}
}

// withMetrics records every request's latency under its path. The
// record is deferred so a panicking handler (resolved to a 500 by the
// outer recovery ring) still lands in its op's histogram.
func withMetrics(m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			defer func() { m.hist(r.URL.Path).Record(time.Since(start)) }()
			next.ServeHTTP(w, r)
		})
	}
}

// bufferedResponse is an http.ResponseWriter the deadline ring hands
// the handler: everything is staged in memory and copied to the real
// writer only if the handler beats the deadline, so a timeout reply
// never interleaves with handler writes.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

// copyTo flushes the staged reply to the real writer.
func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
}

// withDeadline honors X-Met-Deadline (milliseconds of remaining call
// budget): the handler runs on its own goroutine against a buffered
// response; if the budget expires first the client gets 504 and the
// handler's eventual output is discarded. Requests without the header
// run inline, paying nothing.
func withDeadline() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ms, err := strconv.ParseInt(r.Header.Get(HeaderDeadline), 10, 64)
			if err != nil || ms <= 0 {
				if err == nil {
					// An already-expired budget: don't start work the
					// caller has given up on.
					writeError(w, http.StatusGatewayTimeout, CodeDeadline, "deadline already expired")
					return
				}
				next.ServeHTTP(w, r)
				return
			}
			buf := newBufferedResponse()
			done := make(chan struct{})
			var panicked any
			go func() {
				defer close(done)
				// The handler runs on this goroutine, outside the recovery
				// ring's stack: a panic here would kill the whole process if
				// it weren't re-caught and re-raised on the serving stack.
				defer func() { panicked = recover() }()
				next.ServeHTTP(buf, r)
			}()
			timer := time.NewTimer(time.Duration(ms) * time.Millisecond)
			defer timer.Stop()
			select {
			case <-done:
				if panicked != nil {
					panic(panicked) // resolved to a 500 by withRecovery
				}
				buf.copyTo(w)
			case <-timer.C:
				writeError(w, http.StatusGatewayTimeout, CodeDeadline,
					fmt.Sprintf("deadline of %dms exceeded", ms))
			}
		})
	}
}
