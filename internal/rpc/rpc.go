// Package rpc is the thin wire layer that turns the in-process cluster
// into a networked, multi-process one: HTTP transport, JSON for the
// control plane (layout, register, recover, adopt), and a
// length-prefixed binary codec for the data plane (get/put/delete/scan
// — uvarint-framed fields, no per-op JSON overhead on the hot path).
//
// # Topology
//
// One master process (MasterNode, wrapping hbase.LayoutMaster — the
// catalog's exclusive owner) plus one worker process per region server
// (ServerNode, wrapping the hbase.RegionServer that OpenServerNode
// opened). Workers register with the master at startup
// (POST /master/register) and receive their manifest; clients fetch
// the layout (GET /master/layout) and route data operations straight
// to workers — the master is on no data path, exactly like HBase's.
//
// # Middleware
//
// Every server runs the same composable middleware chain, outermost
// first:
//
//	panic recovery → request logging → per-op latency histograms →
//	deadline propagation → handler
//
// Recovery converts a handler panic into a 500 without killing the
// process (one bad request must not take a region server down).
// Logging writes one line per request (method, path, status, duration)
// to the node's log. Histograms feed the node's /metrics endpoint
// (obs.Histogram — the same lock-free buckets the engine's telemetry
// uses). Deadline propagation honors the X-Met-Deadline header
// (milliseconds of budget remaining, set by the client from its
// per-call timeout): the handler runs against a buffered response
// writer and the deadline expiring first turns the reply into 504
// without racing the handler's writes.
//
// # Routing epochs
//
// The master's layout carries a routing epoch that advances on every
// layout change (today: failover). Clients send their cached epoch on
// every data call (X-Met-Epoch); the master pushes the new epoch to
// live workers after committing a recovery, and a worker that sees a
// client epoch older than its own answers 409 with code "stale-epoch"
// — the signal to re-fetch the layout and re-route rather than retry
// blindly. A worker that no longer (or never) hosts the key's region
// answers 409 "wrong-region" the same way. Connection-refused gets the
// identical treatment client-side, so a killed worker re-routes as
// soon as the master has failed its regions over.
//
// # Health and drain
//
// Every node serves /healthz (process liveness: always 200 while the
// listener is up) and /readyz (serving readiness: 503 while draining).
// Drain flips readiness off, then gracefully shuts the HTTP server
// down — in-flight requests complete, new connections are refused —
// so every acknowledged write is acknowledged by a fully-processed
// handler, never truncated by the stop.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Wire headers.
const (
	// HeaderEpoch carries the client's cached routing epoch on data
	// calls; a worker with a newer epoch answers 409 stale-epoch.
	HeaderEpoch = "X-Met-Epoch"
	// HeaderDeadline is the call's remaining budget in milliseconds —
	// relative, not absolute, so the two processes' clocks need not
	// agree.
	HeaderDeadline = "X-Met-Deadline"
)

// Error codes carried in JSON error bodies ({"code": ..., "error": ...}).
const (
	CodeStaleEpoch  = "stale-epoch"
	CodeWrongRegion = "wrong-region"
	CodeDraining    = "draining"
	CodeNotFound    = "not-found"
	CodeDeadline    = "deadline-exceeded"
)

// ErrDraining is returned when an operation lands on a draining node.
var ErrDraining = errors.New("rpc: node is draining")

// errorBody is the JSON error envelope every non-2xx reply carries.
type errorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// writeError replies with a JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Code: code, Error: msg})
}

// writeJSON replies 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the client's decode will fail.
		return
	}
}

// maxBody bounds request bodies (a put's value plus framing slack; the
// engine's values are row-sized, not blobs).
const maxBody = 16 << 20

// --- binary data-plane codec -------------------------------------------
//
// Fields are uvarint length-prefixed byte strings, concatenated in
// order. Integers are bare uvarints (or varints where negative values
// are legal). The framing is self-delimiting, so decode errors are
// always "short buffer", never a mis-split.

// appendStr appends one length-prefixed field.
func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes appends one length-prefixed byte field.
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// takeStr decodes one length-prefixed field, returning the rest.
func takeStr(b []byte) (string, []byte, error) {
	p, rest, err := takeBytes(b)
	return string(p), rest, err
}

// takeBytes decodes one length-prefixed byte field, returning the rest.
func takeBytes(b []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("rpc: truncated field length")
	}
	b = b[sz:]
	if uint64(len(b)) < n {
		return nil, nil, fmt.Errorf("rpc: field of %d bytes in %d-byte remainder", n, len(b))
	}
	return b[:n], b[n:], nil
}
