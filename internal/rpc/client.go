package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"met/internal/hbase"
	"met/internal/kv"
)

// Client is the networked counterpart of hbase.Client: it caches the
// master's layout (regions, addresses, epoch) and routes every data
// operation straight to the worker hosting the key's region. A failed
// route — connection refused (the worker is dead), 409 wrong-region
// (the region moved), 409 stale-epoch (the layout changed under us) —
// re-fetches the layout and retries, bounded; 503 (draining or
// restarting) backs off and retries the refreshed route. mu guards the
// cached layout; calls in flight share it read-mostly.
type Client struct {
	master string // master base address, "host:port"
	hc     *http.Client

	// Timeout is the per-operation budget, propagated to servers via
	// X-Met-Deadline so a slow handler gives up server-side too.
	Timeout time.Duration
	// Retries bounds route refresh attempts per operation.
	Retries int

	mu      sync.Mutex
	epoch   int64
	regions []hbase.LayoutRegion
	addrs   map[string]string
}

// errReroute marks failures that warrant a layout refresh and retry.
var errReroute = errors.New("rpc: stale route")

// Dial connects to a master and fetches the initial layout.
func Dial(masterAddr string) (*Client, error) {
	c := &Client{
		master:  masterAddr,
		hc:      &http.Client{},
		Timeout: 10 * time.Second,
		Retries: 4,
	}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	return c, nil
}

// Refresh re-fetches the layout from the master.
func (c *Client) Refresh() error {
	resp, err := c.hc.Get("http://" + c.master + "/master/layout")
	if err != nil {
		return fmt.Errorf("rpc: fetch layout: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rpc: fetch layout: %s", resp.Status)
	}
	var lay LayoutReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&lay); err != nil {
		return fmt.Errorf("rpc: decode layout: %w", err)
	}
	c.mu.Lock()
	c.epoch, c.regions, c.addrs = lay.Epoch, lay.Regions, lay.Addrs
	c.mu.Unlock()
	return nil
}

// Epoch returns the cached routing epoch.
func (c *Client) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Regions returns a copy of the cached layout's region list.
func (c *Client) Regions() []hbase.LayoutRegion {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]hbase.LayoutRegion, len(c.regions))
	copy(out, c.regions)
	return out
}

// route resolves (table, key) to the owning region and its worker's
// address under the cached layout.
func (c *Client) route(table, key string) (hbase.LayoutRegion, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.regions {
		if r.Table != table {
			continue
		}
		if key >= r.Start && (r.End == "" || key < r.End) {
			addr, ok := c.addrs[r.Server]
			if !ok {
				return r, "", fmt.Errorf("%w: no address for %s", errReroute, r.Server)
			}
			return r, addr, nil
		}
	}
	return hbase.LayoutRegion{}, "", fmt.Errorf("rpc: no region for %s/%q", table, key)
}

// call sends one binary data-plane request and classifies the reply.
// The returned error is errReroute-wrapped whenever a refreshed route
// should be retried.
func (c *Client) call(ctx context.Context, addr, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderEpoch, strconv.FormatInt(c.Epoch(), 10))
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(HeaderDeadline, strconv.FormatInt(ms, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, context.DeadlineExceeded
		}
		// Connection refused / reset: the worker may be dead and its
		// regions failed over — refresh and re-route.
		return nil, fmt.Errorf("%w: %v", errReroute, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errReroute, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return payload, nil
	case http.StatusNotFound:
		return nil, hbase.ErrNotFound
	case http.StatusConflict:
		// wrong-region or stale-epoch: both mean "your layout is old".
		return nil, fmt.Errorf("%w: %s", errReroute, errBodyText(payload))
	case http.StatusServiceUnavailable:
		return nil, fmt.Errorf("%w: %v: %s", errReroute, ErrDraining, errBodyText(payload))
	case http.StatusGatewayTimeout:
		return nil, context.DeadlineExceeded
	default:
		return nil, fmt.Errorf("rpc: %s %s: %s", path, resp.Status, errBodyText(payload))
	}
}

func errBodyText(payload []byte) string {
	var eb errorBody
	if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
		return eb.Code + ": " + eb.Error
	}
	return string(payload)
}

// withRetry routes, calls, and — on reroute-class failures — refreshes
// the layout and tries again, up to c.Retries times within the
// operation's deadline.
func (c *Client) withRetry(table, key, path string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.Timeout)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			// The layout may lag the failure (the master has not committed
			// the failover yet): brief backoff, then refetch.
			select {
			case <-time.After(time.Duration(attempt) * 100 * time.Millisecond):
			case <-ctx.Done():
				return nil, context.DeadlineExceeded
			}
			if err := c.Refresh(); err != nil {
				lastErr = err
				continue
			}
		}
		_, addr, err := c.route(table, key)
		if err != nil {
			if errors.Is(err, errReroute) {
				lastErr = err
				continue
			}
			return nil, err
		}
		payload, err := c.call(ctx, addr, path, body)
		if err == nil || !errors.Is(err, errReroute) {
			return payload, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rpc: %s %s/%q failed after %d attempts: %w",
		path, table, key, c.Retries+1, lastErr)
}

// Get returns the newest value of key, or hbase.ErrNotFound.
func (c *Client) Get(table, key string) ([]byte, error) {
	body := appendStr(appendStr(nil, table), key)
	return c.withRetry(table, key, "/node/get", body)
}

// Put writes a value; acknowledged only after the worker's WAL fsync.
func (c *Client) Put(table, key string, value []byte) error {
	body := appendBytes(appendStr(appendStr(nil, table), key), value)
	_, err := c.withRetry(table, key, "/node/put", body)
	return err
}

// Delete removes a key.
func (c *Client) Delete(table, key string) error {
	body := appendStr(appendStr(nil, table), key)
	_, err := c.withRetry(table, key, "/node/delete", body)
	return err
}

// Scan returns up to limit entries with start <= key < end in key
// order, stitching per-region scans across workers exactly like the
// in-process client.
func (c *Client) Scan(table, start, end string, limit int) ([]kv.Entry, error) {
	var out []kv.Entry
	cursor := start
	for {
		if limit >= 0 && len(out) >= limit {
			return out[:limit], nil
		}
		region, _, err := c.route(table, cursor)
		if err != nil {
			if len(out) > 0 && !errors.Is(err, errReroute) {
				return out, nil
			}
			return nil, err
		}
		remaining := -1
		if limit >= 0 {
			remaining = limit - len(out)
		}
		body := appendStr(appendStr(appendStr(nil, table), cursor), end)
		body = binary.AppendVarint(body, int64(remaining))
		payload, err := c.withRetry(table, cursor, "/node/scan", body)
		if err != nil {
			return nil, err
		}
		part, err := decodeEntries(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
		if region.End == "" || (end != "" && region.End >= end) {
			return out, nil
		}
		cursor = region.End
	}
}

// decodeEntries parses a scan reply.
func decodeEntries(b []byte) ([]kv.Entry, error) {
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, errors.New("rpc: truncated scan count")
	}
	b = b[sz:]
	entries := make([]kv.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		key, rest, err := takeStr(b)
		if err != nil {
			return nil, err
		}
		val, rest, err := takeBytes(rest)
		if err != nil {
			return nil, err
		}
		ts, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return nil, errors.New("rpc: truncated scan timestamp")
		}
		rest = rest[sz:]
		if len(rest) < 1 {
			return nil, errors.New("rpc: truncated scan flags")
		}
		entries = append(entries, kv.Entry{
			Key: key, Value: val, Timestamp: ts, Tombstone: rest[0]&1 != 0,
		})
		b = rest[1:]
	}
	return entries, nil
}

// Quiesce asks every live worker to drain its replication queue — the
// networked QuiesceReplication barrier.
func (c *Client) Quiesce() error {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.addrs))
	for _, a := range c.addrs {
		addrs = append(addrs, a)
	}
	c.mu.Unlock()
	for _, addr := range addrs {
		resp, err := c.hc.Post("http://"+addr+"/node/quiesce", "application/json", nil)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("rpc: quiesce %s: %s", addr, resp.Status)
		}
	}
	return nil
}

// Recover asks the master to fail a dead worker's regions over.
func (c *Client) Recover(dead string) (*RecoverReply, error) {
	buf, _ := json.Marshal(map[string]string{"server": dead})
	resp, err := c.hc.Post("http://"+c.master+"/master/recover", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rpc: recover: %s: %s", resp.Status, errBodyText(payload))
	}
	var reply RecoverReply
	if err := json.Unmarshal(payload, &reply); err != nil {
		return nil, err
	}
	// The layout changed; re-route immediately rather than on first 409.
	_ = c.Refresh()
	return &reply, nil
}
