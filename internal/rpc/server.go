package rpc

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"met/internal/obs"
)

// Server is one node's HTTP front: a listener, the middleware chain
// around the node's handler, and the health/readiness/drain surface.
// mu guards the listener/server handles across Serve/Drain/Close; the
// serving path itself runs lock-free on the atomics.
type Server struct {
	mu  sync.Mutex
	lis net.Listener
	srv *http.Server

	name     string
	lg       *log.Logger
	metrics  *Metrics
	draining atomic.Bool
	extra    func(w *obs.MetricWriter) // node-specific /metrics section
	health   func() error              // nil = always healthy
}

// NewServer wraps handler in the standard middleware chain (panic
// recovery outermost, then request logging, per-op histograms, and
// deadline propagation) and mounts the health surface next to it.
// logw receives the request log; name tags each line.
func NewServer(name string, mux *http.ServeMux, logw io.Writer) *Server {
	if logw == nil {
		logw = io.Discard
	}
	s := &Server{
		name:    name,
		lg:      log.New(logw, name+" ", log.LstdFlags|log.Lmicroseconds),
		metrics: NewMetrics(),
	}
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	handler := chain(mux,
		withRecovery(s.lg),
		withLogging(s.lg),
		withMetrics(s.metrics),
		withDeadline(),
	)
	s.srv = &http.Server{Handler: handler}
	return s
}

// SetHealth installs the node's liveness probe (nil error = healthy).
func (s *Server) SetHealth(f func() error) { s.health = f }

// SetMetricsExtra appends a node-specific section to /metrics.
func (s *Server) SetMetricsExtra(f func(w *obs.MetricWriter)) { s.extra = f }

// Metrics exposes the per-op histograms (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve binds addr (use ":0" for an ephemeral port) and serves in the
// background; the bound address is available from Addr.
func (s *Server) Serve(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lis = lis
	srv := s.srv
	s.mu.Unlock()
	go func() {
		if err := srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.lg.Printf("serve: %v", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops serving: readiness flips off first (load
// balancers and clients stop sending), then the HTTP server shuts
// down — in-flight requests run to completion, new connections are
// refused. Every reply that was sent is a fully-processed one; an
// acknowledged write is never truncated by the stop.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	return srv.Shutdown(ctx)
}

// Close force-closes the listener and all connections (a hard stop;
// use Drain for graceful).
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	return srv.Close()
}

// handleHealthz is process liveness: 200 while the listener is up and
// the node's probe (if any) passes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.health != nil {
		if err := s.health(); err != nil {
			writeError(w, http.StatusServiceUnavailable, "unhealthy", err.Error())
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is serving readiness: 503 once draining has begun.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "node is draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ready\n")
}

// handleMetrics renders the per-op latency histograms (and the node's
// extra section) in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	mw := obs.NewMetricWriter(w)
	s.metrics.WriteProm(mw)
	if s.extra != nil {
		s.extra(mw)
	}
}
