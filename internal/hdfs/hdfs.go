// Package hdfs simulates the Hadoop Distributed File System layer that
// HBase region servers sit on: a namenode tracking which datanodes hold
// replicas of each file's blocks, replica placement with a
// local-node-first policy, and — crucially for the paper — the per-node
// **locality index**: the fraction of a region server's data that is
// stored on its co-located datanode and therefore does not cross the
// network when read.
//
// MeT's Actuator watches this index: after regions move between servers
// their files remain on the old datanodes, locality drops, and a major
// compaction (which rewrites the region's files on the new local
// datanode) is the only way to restore it. Tiramola never compacts, which
// is one of the mechanisms behind Figure 5 and 6.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNoDatanodes is returned when writing with no registered datanodes.
var ErrNoDatanodes = errors.New("hdfs: no live datanodes")

// ErrUnknownFile is returned when operating on an unregistered file.
var ErrUnknownFile = errors.New("hdfs: unknown file")

// BlockSize is the fixed HDFS block size used by the simulation (the
// real default of 64 MB).
const BlockSize int64 = 64 << 20

// BlockID identifies one block of one file.
type BlockID struct {
	File  string
	Index int
}

func (b BlockID) String() string { return fmt.Sprintf("%s#%d", b.File, b.Index) }

// blockInfo records where a block's replicas live.
type blockInfo struct {
	id       BlockID
	size     int64
	replicas []string // datanode names
}

// fileInfo is the namenode's record of one file.
type fileInfo struct {
	name   string
	size   int64
	blocks []blockInfo
}

// Namenode is the metadata service: files, blocks, replica locations.
// It is safe for concurrent use: region servers mirror flushes into it
// from the parallel write path while the Monitor reads locality, so all
// metadata lives behind one reader/writer lock (file writes are rare —
// flush/compact granularity — which keeps the exclusive side cold).
type Namenode struct {
	mu          sync.RWMutex
	replication int
	datanodes   map[string]*datanodeState
	files       map[string]*fileInfo
}

type datanodeState struct {
	name  string
	used  int64
	alive bool
}

// NewNamenode creates a namenode with the given replication factor
// (the paper uses 2).
func NewNamenode(replication int) *Namenode {
	if replication < 1 {
		replication = 1
	}
	return &Namenode{
		replication: replication,
		datanodes:   make(map[string]*datanodeState),
		files:       make(map[string]*fileInfo),
	}
}

// Replication returns the configured replication factor.
func (n *Namenode) Replication() int { return n.replication }

// AddDatanode registers (or revives) a datanode.
func (n *Namenode) AddDatanode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if dn, ok := n.datanodes[name]; ok {
		dn.alive = true
		return
	}
	n.datanodes[name] = &datanodeState{name: name, alive: true}
}

// RemoveDatanode marks a datanode dead. Blocks whose replica set becomes
// empty are lost (the caller decides whether that matters); remaining
// replicas keep serving.
func (n *Namenode) RemoveDatanode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if dn, ok := n.datanodes[name]; ok {
		dn.alive = false
	}
}

// Datanodes returns the names of live datanodes, sorted.
func (n *Namenode) Datanodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []string
	for name, dn := range n.datanodes {
		if dn.alive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// liveCountLocked counts live datanodes; callers hold the lock.
func (n *Namenode) liveCountLocked() int {
	count := 0
	for _, dn := range n.datanodes {
		if dn.alive {
			count++
		}
	}
	return count
}

// liveReplicas filters a replica list down to live datanodes.
func (n *Namenode) liveReplicas(replicas []string) []string {
	var out []string
	for _, r := range replicas {
		if dn, ok := n.datanodes[r]; ok && dn.alive {
			out = append(out, r)
		}
	}
	return out
}

// WriteFile creates (or replaces) a file of the given size, placing the
// primary replica of every block on localNode when it is alive — HDFS's
// write-path locality guarantee, which is what co-locating region servers
// with datanodes exploits. Remaining replicas go to the least-used other
// datanodes.
func (n *Namenode) WriteFile(name string, size int64, localNode string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.liveCountLocked() == 0 {
		return ErrNoDatanodes
	}
	if old, ok := n.files[name]; ok {
		n.releaseFile(old)
	}
	f := &fileInfo{name: name, size: size}
	numBlocks := int((size + BlockSize - 1) / BlockSize)
	if numBlocks == 0 {
		numBlocks = 1
	}
	for i := 0; i < numBlocks; i++ {
		bsize := BlockSize
		if i == numBlocks-1 {
			if rem := size - int64(i)*BlockSize; rem > 0 {
				bsize = rem
			}
		}
		replicas := n.placeReplicas(localNode)
		for _, r := range replicas {
			n.datanodes[r].used += bsize
		}
		f.blocks = append(f.blocks, blockInfo{
			id:       BlockID{File: name, Index: i},
			size:     bsize,
			replicas: replicas,
		})
	}
	n.files[name] = f
	return nil
}

// placeReplicas picks replica targets: local node first (if alive), then
// least-used live datanodes.
func (n *Namenode) placeReplicas(localNode string) []string {
	var replicas []string
	if dn, ok := n.datanodes[localNode]; ok && dn.alive {
		replicas = append(replicas, localNode)
	}
	// Candidates sorted by (used, name) for determinism.
	var cands []*datanodeState
	for _, dn := range n.datanodes {
		if dn.alive && (len(replicas) == 0 || dn.name != localNode) {
			cands = append(cands, dn)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].used != cands[j].used {
			return cands[i].used < cands[j].used
		}
		return cands[i].name < cands[j].name
	})
	for _, dn := range cands {
		if len(replicas) >= n.replication {
			break
		}
		replicas = append(replicas, dn.name)
	}
	return replicas
}

// PlaceFollowers picks up to count live datanodes other than local to
// hold copies of local's data, least-used first (ties broken by name
// for determinism) — the same policy placeReplicas applies to block
// replicas. The SSTable replication subsystem uses it to choose which
// servers' replica directories a region ships to, which makes this
// placement load-bearing: a follower picked here is where the region
// reopens after its primary dies.
func (n *Namenode) PlaceFollowers(local string, count int) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if count <= 0 {
		return nil
	}
	var cands []*datanodeState
	for _, dn := range n.datanodes {
		if dn.alive && dn.name != local {
			cands = append(cands, dn)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].used != cands[j].used {
			return cands[i].used < cands[j].used
		}
		return cands[i].name < cands[j].name
	})
	if count > len(cands) {
		count = len(cands)
	}
	out := make([]string, 0, count)
	for _, dn := range cands[:count] {
		out = append(out, dn.name)
	}
	return out
}

// DeleteFile removes a file and frees its replicas' space.
func (n *Namenode) DeleteFile(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.files[name]
	if !ok {
		return ErrUnknownFile
	}
	n.releaseFile(f)
	delete(n.files, name)
	return nil
}

func (n *Namenode) releaseFile(f *fileInfo) {
	for _, b := range f.blocks {
		for _, r := range b.replicas {
			if dn, ok := n.datanodes[r]; ok {
				dn.used -= b.size
			}
		}
	}
}

// FileSize returns the recorded size of a file.
func (n *Namenode) FileSize(name string) (int64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	f, ok := n.files[name]
	if !ok {
		return 0, ErrUnknownFile
	}
	return f.size, nil
}

// HasFile reports whether the file exists.
func (n *Namenode) HasFile(name string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.files[name]
	return ok
}

// Files returns all file names, sorted.
func (n *Namenode) Files() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.files))
	for name := range n.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LocalBytes returns how many of the file's bytes have a replica on node.
func (n *Namenode) LocalBytes(name, node string) (int64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.localBytesLocked(name, node)
}

func (n *Namenode) localBytesLocked(name, node string) (int64, error) {
	f, ok := n.files[name]
	if !ok {
		return 0, ErrUnknownFile
	}
	var local int64
	for _, b := range f.blocks {
		for _, r := range n.liveReplicas(b.replicas) {
			if r == node {
				local += b.size
				break
			}
		}
	}
	return local, nil
}

// Locality returns the fraction of the given files' bytes that are local
// to node — the locality index the paper's Monitor exports per region
// server. Files that do not exist are ignored; an empty byte total counts
// as fully local (an idle server should not look degraded).
func (n *Namenode) Locality(node string, files []string) float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var total, local int64
	for _, name := range files {
		f, ok := n.files[name]
		if !ok {
			continue
		}
		total += f.size
		lb, _ := n.localBytesLocked(name, node)
		local += lb
	}
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// UsedBytes returns the bytes stored on a datanode.
func (n *Namenode) UsedBytes(node string) int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if dn, ok := n.datanodes[node]; ok {
		return dn.used
	}
	return 0
}

// TotalBytes returns the bytes of all files (logical, pre-replication).
func (n *Namenode) TotalBytes() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var total int64
	for _, f := range n.files {
		total += f.size
	}
	return total
}

// Rebalance re-replicates under-replicated blocks (after datanode loss)
// onto the least-used live datanodes. It returns the number of new
// replicas created.
func (n *Namenode) Rebalance() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	created := 0
	for _, f := range n.files {
		for bi := range f.blocks {
			b := &f.blocks[bi]
			live := n.liveReplicas(b.replicas)
			for len(live) < n.replication {
				target := n.pickLeastUsedExcluding(live)
				if target == "" {
					break
				}
				b.replicas = append(live, target)
				n.datanodes[target].used += b.size
				live = n.liveReplicas(b.replicas)
				created++
			}
		}
	}
	return created
}

func (n *Namenode) pickLeastUsedExcluding(exclude []string) string {
	excluded := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		excluded[e] = true
	}
	best := ""
	var bestUsed int64
	for _, dn := range n.datanodes {
		if !dn.alive || excluded[dn.name] {
			continue
		}
		if best == "" || dn.used < bestUsed || (dn.used == bestUsed && dn.name < best) {
			best = dn.name
			bestUsed = dn.used
		}
	}
	return best
}
