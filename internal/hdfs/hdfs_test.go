package hdfs

import (
	"testing"
	"testing/quick"
)

func newCluster(t *testing.T, nodes int, replication int) *Namenode {
	t.Helper()
	n := NewNamenode(replication)
	for i := 0; i < nodes; i++ {
		n.AddDatanode(nodeName(i))
	}
	return n
}

func nodeName(i int) string { return string(rune('a'+i)) + "-dn" }

func TestWriteFilePlacesLocalFirst(t *testing.T) {
	n := newCluster(t, 3, 2)
	if err := n.WriteFile("region1/f1", 60<<20, "a-dn"); err != nil {
		t.Fatal(err)
	}
	if loc := n.Locality("a-dn", []string{"region1/f1"}); loc != 1 {
		t.Fatalf("writer locality = %v, want 1", loc)
	}
	// Replication 2: exactly one other node holds the data too.
	others := 0
	for _, node := range []string{"b-dn", "c-dn"} {
		if n.Locality(node, []string{"region1/f1"}) == 1 {
			others++
		}
	}
	if others != 1 {
		t.Fatalf("secondary replicas on %d nodes, want 1", others)
	}
}

func TestWriteFileNoDatanodes(t *testing.T) {
	n := NewNamenode(2)
	if err := n.WriteFile("f", 100, "x"); err != ErrNoDatanodes {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiBlockFiles(t *testing.T) {
	n := newCluster(t, 3, 1)
	size := 3*BlockSize + 1000
	if err := n.WriteFile("big", size, "a-dn"); err != nil {
		t.Fatal(err)
	}
	got, err := n.FileSize("big")
	if err != nil || got != size {
		t.Fatalf("size = %d, %v", got, err)
	}
	f := n.files["big"]
	if len(f.blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.blocks))
	}
	if f.blocks[3].size != 1000 {
		t.Fatalf("last block = %d bytes", f.blocks[3].size)
	}
}

func TestRewriteReleasesOldSpace(t *testing.T) {
	n := newCluster(t, 2, 1)
	n.WriteFile("f", 10<<20, "a-dn")
	before := n.UsedBytes("a-dn")
	n.WriteFile("f", 5<<20, "a-dn") // rewrite smaller
	after := n.UsedBytes("a-dn")
	if after >= before {
		t.Fatalf("space not released: %d -> %d", before, after)
	}
	if after != 5<<20 {
		t.Fatalf("used = %d", after)
	}
}

func TestDeleteFile(t *testing.T) {
	n := newCluster(t, 2, 2)
	n.WriteFile("f", 1<<20, "a-dn")
	if err := n.DeleteFile("f"); err != nil {
		t.Fatal(err)
	}
	if n.HasFile("f") {
		t.Fatal("file still present")
	}
	if n.UsedBytes("a-dn") != 0 || n.UsedBytes("b-dn") != 0 {
		t.Fatal("space not freed")
	}
	if err := n.DeleteFile("f"); err != ErrUnknownFile {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestLocalityDropsWhenRegionMoves(t *testing.T) {
	// This is the core mechanism: a region's files written local to rs1;
	// when the region moves to rs2, locality from rs2's perspective is
	// low until a major compaction rewrites the file there.
	n := newCluster(t, 5, 2)
	files := []string{"r/f1", "r/f2"}
	for _, f := range files {
		n.WriteFile(f, 60<<20, "a-dn") // single-block files
	}
	if loc := n.Locality("a-dn", files); loc != 1 {
		t.Fatalf("origin locality = %v", loc)
	}
	// Secondary replicas land on two distinct nodes; the remaining two
	// nodes hold nothing and see zero locality.
	low := 0
	for _, node := range n.Datanodes() {
		if n.Locality(node, files) == 0 {
			low++
		}
	}
	if low != 2 { // 5 nodes - primary - 2 secondaries
		t.Fatalf("%d nodes with zero locality, want 2", low)
	}
	// "Major compact" = rewrite local to the new server.
	for _, f := range files {
		n.WriteFile(f, 60<<20, "c-dn")
	}
	if loc := n.Locality("c-dn", files); loc != 1 {
		t.Fatalf("post-compact locality = %v", loc)
	}
}

func TestLocalityPartial(t *testing.T) {
	n := newCluster(t, 4, 1)
	n.WriteFile("f1", 10<<20, "a-dn")
	n.WriteFile("f2", 30<<20, "b-dn")
	loc := n.Locality("a-dn", []string{"f1", "f2"})
	if loc != 0.25 {
		t.Fatalf("locality = %v, want 0.25", loc)
	}
}

func TestLocalityEmptyAndMissing(t *testing.T) {
	n := newCluster(t, 2, 1)
	if loc := n.Locality("a-dn", nil); loc != 1 {
		t.Fatalf("empty locality = %v, want 1", loc)
	}
	if loc := n.Locality("a-dn", []string{"missing"}); loc != 1 {
		t.Fatalf("missing-file locality = %v, want 1", loc)
	}
}

func TestRemoveDatanodeAndRebalance(t *testing.T) {
	n := newCluster(t, 3, 2)
	n.WriteFile("f", 64<<20, "a-dn")
	n.RemoveDatanode("a-dn")
	if len(n.Datanodes()) != 2 {
		t.Fatalf("live = %v", n.Datanodes())
	}
	created := n.Rebalance()
	if created == 0 {
		t.Fatal("rebalance created no replicas")
	}
	// Both survivors now hold the block.
	if lb, _ := n.LocalBytes("f", "b-dn"); lb == 0 {
		if lb2, _ := n.LocalBytes("f", "c-dn"); lb2 == 0 {
			t.Fatal("no survivor holds data")
		}
	}
}

func TestRebalanceNoTargets(t *testing.T) {
	n := newCluster(t, 1, 2)
	n.WriteFile("f", 1<<20, "a-dn")
	// Only one node: can't reach replication 2, must not loop forever.
	if created := n.Rebalance(); created != 0 {
		t.Fatalf("created = %d on single node", created)
	}
}

func TestReviveDatanode(t *testing.T) {
	n := newCluster(t, 2, 2)
	n.WriteFile("f", 1<<20, "a-dn")
	n.RemoveDatanode("b-dn")
	n.AddDatanode("b-dn") // revive
	if len(n.Datanodes()) != 2 {
		t.Fatal("revive failed")
	}
}

func TestFilesSorted(t *testing.T) {
	n := newCluster(t, 1, 1)
	n.WriteFile("zz", 1, "a-dn")
	n.WriteFile("aa", 1, "a-dn")
	files := n.Files()
	if len(files) != 2 || files[0] != "aa" {
		t.Fatalf("files = %v", files)
	}
}

func TestTotalBytes(t *testing.T) {
	n := newCluster(t, 2, 2)
	n.WriteFile("f1", 100, "a-dn")
	n.WriteFile("f2", 200, "b-dn")
	if n.TotalBytes() != 300 {
		t.Fatalf("total = %d", n.TotalBytes())
	}
}

func TestReplicationClamped(t *testing.T) {
	n := NewNamenode(0)
	if n.Replication() != 1 {
		t.Fatalf("replication = %d", n.Replication())
	}
}

func TestBlockIDString(t *testing.T) {
	if (BlockID{File: "f", Index: 3}).String() != "f#3" {
		t.Fatal("bad BlockID string")
	}
}

// Property: used bytes across datanodes equals logical bytes times actual
// replica count, for any sequence of writes.
func TestPropertySpaceAccounting(t *testing.T) {
	err := quick.Check(func(sizes []uint16) bool {
		n := NewNamenode(2)
		for i := 0; i < 4; i++ {
			n.AddDatanode(nodeName(i))
		}
		var logical int64
		for i, s := range sizes {
			size := int64(s) + 1
			n.WriteFile(string(rune('f'+i%20))+"x", size, "a-dn")
		}
		// Rewrites replace; count final files only.
		for _, f := range n.Files() {
			sz, _ := n.FileSize(f)
			logical += sz
		}
		var used int64
		for _, dn := range n.Datanodes() {
			used += n.UsedBytes(dn)
		}
		return used == logical*2
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlacementBalanced(t *testing.T) {
	// Secondary replicas spread across the least-used nodes.
	n := newCluster(t, 4, 2)
	for i := 0; i < 12; i++ {
		n.WriteFile(string(rune('a'+i))+"-file", 10<<20, "a-dn")
	}
	// a-dn has all primaries; secondaries should spread over b,c,d evenly.
	b, c, d := n.UsedBytes("b-dn"), n.UsedBytes("c-dn"), n.UsedBytes("d-dn")
	if b != c || c != d {
		t.Fatalf("unbalanced secondaries: %d %d %d", b, c, d)
	}
}
