package placement

import "sort"

// NodeState describes one node in a cluster distribution: its
// configuration profile and the partitions it hosts.
type NodeState struct {
	Node       string
	Type       AccessType
	Partitions []string
}

// TargetSet is one node's worth of the optimal distribution before it is
// matched to a concrete node.
type TargetSet struct {
	Type       AccessType
	Partitions []string
}

// ComputeOutput is Algorithm 3: given the current distribution and the
// optimizer's suggested one, produce the concrete per-node assignment
// that minimizes node reconfigurations and partition moves. On firstTime
// the suggestion is applied verbatim to the current nodes in order
// (InitialReconfiguration). Otherwise each node is matched with the
// remaining target set most similar to what it already holds — a
// best-effort set-intersection matching that prefers (a) larger overlap
// and (b) an unchanged configuration type.
func ComputeOutput(current []NodeState, optimal []TargetSet, firstTime bool) []NodeState {
	nodes := append([]NodeState(nil), current...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	remaining := append([]TargetSet(nil), optimal...)

	var result []NodeState
	if firstTime {
		for i, n := range nodes {
			if i < len(remaining) {
				result = append(result, NodeState{Node: n.Node, Type: remaining[i].Type, Partitions: sortedCopy(remaining[i].Partitions)})
			} else {
				result = append(result, NodeState{Node: n.Node, Type: n.Type})
			}
		}
		return result
	}

	// Greedy matching, most-overlapping node first so large intact sets
	// are preserved before fragments are handed out.
	type match struct {
		nodeIdx, setIdx int
		overlap         int
		sameType        bool
	}
	usedNode := make([]bool, len(nodes))
	usedSet := make([]bool, len(remaining))
	assigned := make([]NodeState, 0, len(nodes))
	for round := 0; round < len(nodes) && round < len(remaining); round++ {
		best := match{nodeIdx: -1, setIdx: -1, overlap: -1}
		for ni, n := range nodes {
			if usedNode[ni] {
				continue
			}
			for si, s := range remaining {
				if usedSet[si] {
					continue
				}
				ov := intersectionSize(n.Partitions, s.Partitions)
				same := n.Type == s.Type
				better := ov > best.overlap ||
					(ov == best.overlap && same && !best.sameType)
				if better {
					best = match{nodeIdx: ni, setIdx: si, overlap: ov, sameType: same}
				}
			}
		}
		if best.nodeIdx < 0 {
			break
		}
		usedNode[best.nodeIdx] = true
		usedSet[best.setIdx] = true
		assigned = append(assigned, NodeState{
			Node:       nodes[best.nodeIdx].Node,
			Type:       remaining[best.setIdx].Type,
			Partitions: sortedCopy(remaining[best.setIdx].Partitions),
		})
	}
	// Nodes with no matched set keep their type and lose their
	// partitions (they will be drained / removed by the Actuator).
	for ni, n := range nodes {
		if !usedNode[ni] {
			assigned = append(assigned, NodeState{Node: n.Node, Type: n.Type})
		}
	}
	// Leftover sets (more sets than nodes should not happen; guard by
	// spreading them over the nodes in order, mirroring the paper's
	// final foreach).
	si := 0
	for i := range assigned {
		if si >= len(remaining) {
			break
		}
		for si < len(remaining) && usedSet[si] {
			si++
		}
		if si >= len(remaining) {
			break
		}
		if len(assigned[i].Partitions) == 0 {
			assigned[i].Type = remaining[si].Type
			assigned[i].Partitions = sortedCopy(remaining[si].Partitions)
			usedSet[si] = true
		}
	}
	sort.Slice(assigned, func(i, j int) bool { return assigned[i].Node < assigned[j].Node })
	return assigned
}

// Diff quantifies the actuation cost of going from current to target:
// how many partitions must move and how many nodes must restart with a
// new configuration. These are the quantities Algorithm 3 minimizes.
type Diff struct {
	PartitionMoves int
	Reconfigs      int
}

// ComputeDiff compares two distributions node-by-node.
func ComputeDiff(current, target []NodeState) Diff {
	curHost := make(map[string]string)
	curType := make(map[string]AccessType)
	for _, n := range current {
		curType[n.Node] = n.Type
		for _, p := range n.Partitions {
			curHost[p] = n.Node
		}
	}
	var d Diff
	for _, n := range target {
		if t, ok := curType[n.Node]; !ok || t != n.Type {
			d.Reconfigs++
		}
		for _, p := range n.Partitions {
			if curHost[p] != n.Node {
				d.PartitionMoves++
			}
		}
	}
	return d
}

func intersectionSize(a, b []string) int {
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, y := range b {
		if set[y] {
			n++
		}
	}
	return n
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
