package placement

import "sort"

// Assignment maps node names to the partitions they host.
type Assignment map[string][]Partition

// Loads returns the total load per node.
func (a Assignment) Loads() map[string]float64 {
	out := make(map[string]float64, len(a))
	for node, parts := range a {
		var sum float64
		for _, p := range parts {
			sum += p.Load()
		}
		out[node] = sum
	}
	return out
}

// Makespan returns the maximum per-node load, the quantity LPT minimizes.
func (a Assignment) Makespan() float64 {
	var m float64
	for _, l := range a.Loads() {
		if l > m {
			m = l
		}
	}
	return m
}

// Imbalance returns makespan divided by the mean load (1.0 = perfectly
// balanced); it is the skew metric the ablation benchmarks report.
func (a Assignment) Imbalance() float64 {
	loads := a.Loads()
	if len(loads) == 0 {
		return 1
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(loads))
	return max / mean
}

// PartitionsPerNodeCap returns the paper's per-node partition bound:
// ceil(#partitions / #nodes), "estimated by dividing the number of data
// partitions in the group by the number of nodes in the group".
func PartitionsPerNodeCap(numPartitions, numNodes int) int {
	if numNodes <= 0 {
		return numPartitions
	}
	return (numPartitions + numNodes - 1) / numNodes
}

// AssignLPT is Algorithm 2: sort partitions by decreasing load (Longest
// Processing Time), repeatedly give the heaviest remaining partition to
// the least-loaded node that still has room under max partitions per
// node. nodes must be non-empty when partitions is non-empty; max <= 0
// means uncapped.
func AssignLPT(nodes []string, partitions []Partition, max int) Assignment {
	out := make(Assignment, len(nodes))
	for _, n := range nodes {
		out[n] = nil
	}
	if len(nodes) == 0 || len(partitions) == 0 {
		return out
	}
	sorted := append([]Partition(nil), partitions...)
	// Decreasing load; ties by name for determinism.
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Load() != sorted[j].Load() {
			return sorted[i].Load() > sorted[j].Load()
		}
		return sorted[i].Name < sorted[j].Name
	})
	loads := make(map[string]float64, len(nodes))
	nodeOrder := append([]string(nil), nodes...)
	sort.Strings(nodeOrder)
	for _, p := range sorted {
		best := ""
		for _, n := range nodeOrder {
			if max > 0 && len(out[n]) >= max {
				continue // node already full
			}
			if best == "" || loads[n] < loads[best] {
				best = n
			}
		}
		if best == "" {
			// Every node is at the cap; spill onto the least loaded to
			// avoid stranding the partition.
			for _, n := range nodeOrder {
				if best == "" || loads[n] < loads[best] {
					best = n
				}
			}
		}
		out[best] = append(out[best], p)
		loads[best] += p.Load()
	}
	return out
}

// AssignFirstFit is an ablation baseline: place each partition (in input
// order) on the first node with room. It ignores load entirely.
func AssignFirstFit(nodes []string, partitions []Partition, max int) Assignment {
	out := make(Assignment, len(nodes))
	for _, n := range nodes {
		out[n] = nil
	}
	if len(nodes) == 0 {
		return out
	}
	nodeOrder := append([]string(nil), nodes...)
	sort.Strings(nodeOrder)
	for _, p := range partitions {
		placed := false
		for _, n := range nodeOrder {
			if max > 0 && len(out[n]) >= max {
				continue
			}
			out[n] = append(out[n], p)
			placed = true
			break
		}
		if !placed {
			out[nodeOrder[0]] = append(out[nodeOrder[0]], p)
		}
	}
	return out
}

// AssignRoundRobin is a second ablation baseline: deal partitions to
// nodes in turn, balancing counts but not load — the behaviour of HBase's
// default balancer.
func AssignRoundRobin(nodes []string, partitions []Partition) Assignment {
	out := make(Assignment, len(nodes))
	for _, n := range nodes {
		out[n] = nil
	}
	if len(nodes) == 0 {
		return out
	}
	nodeOrder := append([]string(nil), nodes...)
	sort.Strings(nodeOrder)
	for i, p := range partitions {
		n := nodeOrder[i%len(nodeOrder)]
		out[n] = append(out[n], p)
	}
	return out
}

// AssignExhaustive finds a minimum-makespan assignment by branch and
// bound over all partition->node mappings. It is exponential and guarded
// to small inputs — it exists to reproduce the paper's Manual-* method,
// where the authors exhaustively searched placements by hand. maxItems
// bounds partitions (<= 0 defaults to 12).
func AssignExhaustive(nodes []string, partitions []Partition, maxItems int) Assignment {
	if maxItems <= 0 {
		maxItems = 12
	}
	if len(partitions) > maxItems || len(nodes) == 0 {
		// Too large to enumerate; fall back to LPT, which is within
		// 4/3 of optimal anyway (Graham's bound).
		return AssignLPT(nodes, partitions, 0)
	}
	nodeOrder := append([]string(nil), nodes...)
	sort.Strings(nodeOrder)
	sorted := append([]Partition(nil), partitions...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Load() > sorted[j].Load() })

	best := AssignLPT(nodeOrder, sorted, 0)
	bestSpan := best.Makespan()
	loads := make([]float64, len(nodeOrder))
	cur := make([]int, len(sorted)) // partition -> node index

	var rec func(i int)
	rec = func(i int) {
		if i == len(sorted) {
			span := 0.0
			for _, l := range loads {
				if l > span {
					span = l
				}
			}
			if span < bestSpan {
				bestSpan = span
				b := make(Assignment, len(nodeOrder))
				for _, n := range nodeOrder {
					b[n] = nil
				}
				for pi, ni := range cur {
					b[nodeOrder[ni]] = append(b[nodeOrder[ni]], sorted[pi])
				}
				best = b
			}
			return
		}
		seen := make(map[float64]bool) // symmetry break: skip equal-load nodes
		for ni := range nodeOrder {
			if seen[loads[ni]] {
				continue
			}
			seen[loads[ni]] = true
			if loads[ni]+sorted[i].Load() >= bestSpan {
				continue // bound
			}
			loads[ni] += sorted[i].Load()
			cur[i] = ni
			rec(i + 1)
			loads[ni] -= sorted[i].Load()
		}
	}
	rec(0)
	return best
}
