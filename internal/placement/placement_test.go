package placement

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"met/internal/metrics"
	"met/internal/sim"
)

func rc(reads, writes, scans int64) metrics.RequestCounts {
	return metrics.RequestCounts{Reads: reads, Writes: writes, Scans: scans}
}

func TestClassifyPaperRules(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name string
		c    metrics.RequestCounts
		want AccessType
	}{
		{"pure reads (WorkloadC)", rc(100, 0, 0), Read},
		{"pure writes (WorkloadB)", rc(0, 100, 0), Write},
		{"95% scans (WorkloadE)", rc(5, 5, 90), Scan},
		{"50/50 (WorkloadA)", rc(50, 50, 0), ReadWrite},
		{"logging 95% insert (WorkloadD)", rc(5, 95, 0), Write},
		{"61% reads", rc(61, 39, 0), Read},
		{"exactly 60% reads is not >60%", rc(60, 40, 0), ReadWrite},
		{"no requests", rc(0, 0, 0), ReadWrite},
		{"read-heavy but scans dominate reads", rc(30, 10, 60), Scan},
		{"scans present but under threshold", rc(60, 10, 30), Read},
	}
	for _, c := range cases {
		if got := Classify(c.c, th); got != c.want {
			t.Errorf("%s: Classify(%+v) = %v, want %v", c.name, c.c, got, c.want)
		}
	}
}

func TestClassifyCustomThresholds(t *testing.T) {
	th := Thresholds{ReadFraction: 0.8, WriteFraction: 0.8, ScanFraction: 0.8}
	if got := Classify(rc(70, 30, 0), th); got != ReadWrite {
		t.Fatalf("70%% reads with 80%% threshold = %v", got)
	}
}

func TestAccessTypeString(t *testing.T) {
	for _, a := range AccessTypes {
		if a.String() == "" {
			t.Fatal("empty access type string")
		}
	}
	if AccessType(99).String() == "" {
		t.Fatal("unknown access type empty")
	}
}

func TestClassifyAll(t *testing.T) {
	parts := []Partition{
		{Name: "r", Requests: rc(100, 0, 0)},
		{Name: "w", Requests: rc(0, 100, 0)},
		{Name: "s", Requests: rc(0, 5, 95)},
		{Name: "rw", Requests: rc(50, 50, 0)},
	}
	groups := ClassifyAll(parts, DefaultThresholds())
	if len(groups[Read]) != 1 || len(groups[Write]) != 1 || len(groups[Scan]) != 1 || len(groups[ReadWrite]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestNodesPerGroupPaperScenario(t *testing.T) {
	// Section 3.3: 21 partitions (8 rw, 4 read, 4 scan, 5 write) on 5
	// nodes -> rw gets 2, each other group 1.
	groups := map[AccessType][]Partition{
		ReadWrite: mkParts("rw", 8),
		Read:      mkParts("r", 4),
		Scan:      mkParts("s", 4),
		Write:     mkParts("w", 5),
	}
	got := NodesPerGroup(groups, 5)
	if got[ReadWrite] != 2 || got[Read] != 1 || got[Scan] != 1 || got[Write] != 1 {
		t.Fatalf("nodes per group = %v", got)
	}
}

func TestNodesPerGroupSumsToTotal(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint8, nodesRaw uint8) bool {
		groups := map[AccessType][]Partition{}
		if a > 0 {
			groups[ReadWrite] = mkParts("rw", int(a%20)+1)
		}
		if b > 0 {
			groups[Read] = mkParts("r", int(b%20)+1)
		}
		if c > 0 {
			groups[Write] = mkParts("w", int(c%20)+1)
		}
		if d > 0 {
			groups[Scan] = mkParts("s", int(d%20)+1)
		}
		if len(groups) == 0 {
			return true
		}
		nodes := int(nodesRaw%10) + len(groups) // at least one per group
		got := NodesPerGroup(groups, nodes)
		sum := 0
		for _, n := range got {
			sum += n
		}
		if sum != nodes {
			return false
		}
		for ty, ps := range groups {
			if len(ps) > 0 && got[ty] == 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodesPerGroupEmpty(t *testing.T) {
	if got := NodesPerGroup(nil, 5); len(got) != 0 {
		t.Fatalf("empty groups -> %v", got)
	}
	groups := map[AccessType][]Partition{Read: mkParts("r", 3)}
	if got := NodesPerGroup(groups, 0); len(got) != 0 {
		t.Fatalf("zero nodes -> %v", got)
	}
}

func TestNodesPerGroupFewerNodesThanGroups(t *testing.T) {
	groups := map[AccessType][]Partition{
		Read:  mkParts("r", 5),
		Write: mkParts("w", 5),
		Scan:  mkParts("s", 5),
	}
	got := NodesPerGroup(groups, 2)
	sum := 0
	for _, n := range got {
		sum += n
	}
	if sum != 2 {
		t.Fatalf("sum = %d, want 2: %v", sum, got)
	}
}

func mkParts(prefix string, n int) []Partition {
	out := make([]Partition, n)
	for i := range out {
		out[i] = Partition{Name: fmt.Sprintf("%s%02d", prefix, i), Requests: rc(10, 0, 0)}
	}
	return out
}

func loadParts(loads ...float64) []Partition {
	out := make([]Partition, len(loads))
	for i, l := range loads {
		out[i] = Partition{Name: fmt.Sprintf("p%02d", i), Requests: rc(int64(l), 0, 0)}
	}
	return out
}

func TestAssignLPTBalances(t *testing.T) {
	// Classic LPT example: loads 7,6,5,4,3 on 2 nodes. LPT yields
	// makespan 14 (7+4+3 / 6+5); the optimum is 13 (7+6 / 5+4+3),
	// within Graham's 7/6 bound for m=2.
	parts := loadParts(7, 6, 5, 4, 3)
	a := AssignLPT([]string{"n0", "n1"}, parts, 0)
	if got := a.Makespan(); got != 14 {
		t.Fatalf("makespan = %v, want 14", got)
	}
	if opt := AssignExhaustive([]string{"n0", "n1"}, parts, 12).Makespan(); opt != 13 {
		t.Fatalf("optimal makespan = %v, want 13", opt)
	}
	total := 0
	for _, ps := range a {
		total += len(ps)
	}
	if total != 5 {
		t.Fatalf("assigned %d partitions", total)
	}
}

func TestAssignLPTHotspotSpread(t *testing.T) {
	// The paper's per-workload load split: one hotspot (34%), one
	// intermediate (26%), two cold (20% each). With 2 nodes, LPT puts
	// the hotspot alone with a cold partition, not with the intermediate.
	parts := loadParts(34, 26, 20, 20)
	a := AssignLPT([]string{"n0", "n1"}, parts, 2)
	loads := a.Loads()
	if math.Abs(loads["n0"]-loads["n1"]) > 8 {
		t.Fatalf("imbalanced: %v", loads)
	}
	for _, ps := range a {
		if len(ps) != 2 {
			t.Fatalf("partition-count constraint violated: %v", a)
		}
	}
}

func TestAssignLPTRespectsCap(t *testing.T) {
	parts := loadParts(10, 9, 8, 7, 6, 5)
	a := AssignLPT([]string{"n0", "n1", "n2"}, parts, 2)
	for n, ps := range a {
		if len(ps) > 2 {
			t.Fatalf("node %s has %d partitions", n, len(ps))
		}
	}
}

func TestAssignLPTCapOverflowSpills(t *testing.T) {
	// 5 partitions, 2 nodes, cap 2: one partition must spill.
	parts := loadParts(5, 4, 3, 2, 1)
	a := AssignLPT([]string{"n0", "n1"}, parts, 2)
	total := 0
	for _, ps := range a {
		total += len(ps)
	}
	if total != 5 {
		t.Fatalf("lost partitions: %d", total)
	}
}

func TestAssignLPTEmpty(t *testing.T) {
	a := AssignLPT(nil, loadParts(1), 0)
	if len(a) != 0 {
		t.Fatalf("assignment on no nodes = %v", a)
	}
	a = AssignLPT([]string{"n0"}, nil, 0)
	if len(a["n0"]) != 0 {
		t.Fatal("partitions from nowhere")
	}
}

func TestAssignLPTDeterministic(t *testing.T) {
	parts := loadParts(5, 5, 5, 5)
	a := AssignLPT([]string{"n1", "n0"}, parts, 0)
	b := AssignLPT([]string{"n0", "n1"}, parts, 0)
	for n := range a {
		if len(a[n]) != len(b[n]) {
			t.Fatalf("node order changed result: %v vs %v", a, b)
		}
	}
}

func TestAssignLPTWithinGrahamBound(t *testing.T) {
	// Property: LPT makespan <= (4/3 - 1/3m) * OPT. Compare against
	// exhaustive for small instances.
	rng := sim.NewRNG(7)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(2) // 2-3 nodes
		k := 4 + rng.Intn(5) // 4-8 partitions
		var parts []Partition
		for i := 0; i < k; i++ {
			parts = append(parts, Partition{Name: fmt.Sprintf("p%d", i), Requests: rc(int64(rng.Intn(100)+1), 0, 0)})
		}
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i)
		}
		lpt := AssignLPT(nodes, parts, 0).Makespan()
		opt := AssignExhaustive(nodes, parts, 12).Makespan()
		bound := (4.0/3.0 - 1.0/(3.0*float64(n))) * opt
		if lpt > bound+1e-9 {
			t.Fatalf("trial %d: LPT %v exceeds Graham bound %v (opt %v)", trial, lpt, bound, opt)
		}
	}
}

func TestAssignExhaustiveOptimal(t *testing.T) {
	// 3,3,2,2,2 on 2 nodes: OPT = 6 (3+3 / 2+2+2).
	parts := loadParts(3, 3, 2, 2, 2)
	a := AssignExhaustive([]string{"n0", "n1"}, parts, 12)
	if got := a.Makespan(); got != 6 {
		t.Fatalf("makespan = %v, want 6", got)
	}
}

func TestAssignExhaustiveFallsBackWhenLarge(t *testing.T) {
	parts := mkParts("p", 20)
	a := AssignExhaustive([]string{"n0", "n1"}, parts, 12)
	total := 0
	for _, ps := range a {
		total += len(ps)
	}
	if total != 20 {
		t.Fatalf("fallback lost partitions: %d", total)
	}
}

func TestAssignFirstFitAndRoundRobin(t *testing.T) {
	parts := loadParts(10, 1, 1, 1)
	ff := AssignFirstFit([]string{"n0", "n1"}, parts, 2)
	if len(ff["n0"]) != 2 || len(ff["n1"]) != 2 {
		t.Fatalf("first fit = %v", ff)
	}
	rr := AssignRoundRobin([]string{"n0", "n1"}, parts)
	if len(rr["n0"]) != 2 || len(rr["n1"]) != 2 {
		t.Fatalf("round robin = %v", rr)
	}
	// LPT beats first-fit on makespan here.
	lpt := AssignLPT([]string{"n0", "n1"}, parts, 0)
	if lpt.Makespan() > ff.Makespan() {
		t.Fatalf("LPT %v worse than first-fit %v", lpt.Makespan(), ff.Makespan())
	}
	// Degenerate inputs.
	if len(AssignFirstFit(nil, parts, 0)) != 0 || len(AssignRoundRobin(nil, parts)) != 0 {
		t.Fatal("no-node baselines misbehaved")
	}
	// Overflowing cap still places everything.
	ff = AssignFirstFit([]string{"n0"}, parts, 1)
	if len(ff["n0"]) != 4 {
		t.Fatalf("cap overflow = %v", ff)
	}
}

func TestPartitionsPerNodeCap(t *testing.T) {
	if got := PartitionsPerNodeCap(8, 2); got != 4 {
		t.Fatalf("cap(8,2) = %d", got)
	}
	if got := PartitionsPerNodeCap(7, 2); got != 4 {
		t.Fatalf("cap(7,2) = %d", got)
	}
	if got := PartitionsPerNodeCap(5, 0); got != 5 {
		t.Fatalf("cap(5,0) = %d", got)
	}
}

func TestImbalance(t *testing.T) {
	a := Assignment{
		"n0": loadParts(10),
		"n1": loadParts(10),
	}
	if ib := a.Imbalance(); math.Abs(ib-1) > 1e-9 {
		t.Fatalf("balanced imbalance = %v", ib)
	}
	b := Assignment{
		"n0": loadParts(20),
		"n1": nil,
	}
	if ib := b.Imbalance(); math.Abs(ib-2) > 1e-9 {
		t.Fatalf("skewed imbalance = %v", ib)
	}
	if (Assignment{}).Imbalance() != 1 {
		t.Fatal("empty imbalance != 1")
	}
	if (Assignment{"n0": nil}).Imbalance() != 1 {
		t.Fatal("zero-load imbalance != 1")
	}
}

func TestComputeOutputFirstTime(t *testing.T) {
	current := []NodeState{
		{Node: "rs0", Type: ReadWrite, Partitions: []string{"a", "b"}},
		{Node: "rs1", Type: ReadWrite, Partitions: []string{"c"}},
	}
	optimal := []TargetSet{
		{Type: Read, Partitions: []string{"a", "c"}},
		{Type: Write, Partitions: []string{"b"}},
	}
	got := ComputeOutput(current, optimal, true)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Type != Read || got[1].Type != Write {
		t.Fatalf("first-time mapping = %v", got)
	}
}

func TestComputeOutputMatchesSimilarSets(t *testing.T) {
	// rs0 already holds {a,b}; the optimal set {a,b} must be matched to
	// rs0 (zero moves), not to rs1.
	current := []NodeState{
		{Node: "rs0", Type: Read, Partitions: []string{"a", "b"}},
		{Node: "rs1", Type: Write, Partitions: []string{"c", "d"}},
	}
	optimal := []TargetSet{
		{Type: Write, Partitions: []string{"c", "d"}},
		{Type: Read, Partitions: []string{"a", "b"}},
	}
	got := ComputeOutput(current, optimal, false)
	d := ComputeDiff(current, got)
	if d.PartitionMoves != 0 {
		t.Fatalf("moves = %d, want 0 (got %v)", d.PartitionMoves, got)
	}
	if d.Reconfigs != 0 {
		t.Fatalf("reconfigs = %d, want 0", d.Reconfigs)
	}
}

func TestComputeOutputMinimizesMoves(t *testing.T) {
	current := []NodeState{
		{Node: "rs0", Type: Read, Partitions: []string{"a", "b", "c"}},
		{Node: "rs1", Type: Read, Partitions: []string{"d", "e", "f"}},
	}
	// Optimal swaps one partition between the sets.
	optimal := []TargetSet{
		{Type: Read, Partitions: []string{"a", "b", "f"}},
		{Type: Read, Partitions: []string{"d", "e", "c"}},
	}
	got := ComputeOutput(current, optimal, false)
	d := ComputeDiff(current, got)
	if d.PartitionMoves != 2 {
		t.Fatalf("moves = %d, want 2 (got %v)", d.PartitionMoves, got)
	}
}

func TestComputeOutputNewNodeGetsLeftoverSet(t *testing.T) {
	current := []NodeState{
		{Node: "rs0", Type: Read, Partitions: []string{"a", "b"}},
		{Node: "rs1", Type: ReadWrite, Partitions: nil}, // freshly added
	}
	optimal := []TargetSet{
		{Type: Read, Partitions: []string{"a", "b"}},
		{Type: Scan, Partitions: []string{"s1", "s2"}},
	}
	got := ComputeOutput(current, optimal, false)
	var rs1 NodeState
	for _, n := range got {
		if n.Node == "rs1" {
			rs1 = n
		}
	}
	if rs1.Type != Scan || len(rs1.Partitions) != 2 {
		t.Fatalf("new node got %v", rs1)
	}
}

func TestComputeOutputShrinkingCluster(t *testing.T) {
	// 3 nodes down to 2 sets: one node ends up empty (to be removed).
	current := []NodeState{
		{Node: "rs0", Type: Read, Partitions: []string{"a"}},
		{Node: "rs1", Type: Read, Partitions: []string{"b"}},
		{Node: "rs2", Type: Read, Partitions: []string{"c"}},
	}
	optimal := []TargetSet{
		{Type: Read, Partitions: []string{"a", "c"}},
		{Type: Read, Partitions: []string{"b"}},
	}
	got := ComputeOutput(current, optimal, false)
	empty := 0
	total := 0
	for _, n := range got {
		total += len(n.Partitions)
		if len(n.Partitions) == 0 {
			empty++
		}
	}
	if empty != 1 || total != 3 {
		t.Fatalf("shrink output = %v", got)
	}
}

func TestComputeDiffReconfigs(t *testing.T) {
	current := []NodeState{{Node: "rs0", Type: Read, Partitions: []string{"a"}}}
	target := []NodeState{{Node: "rs0", Type: Write, Partitions: []string{"a"}}}
	d := ComputeDiff(current, target)
	if d.Reconfigs != 1 || d.PartitionMoves != 0 {
		t.Fatalf("diff = %+v", d)
	}
	// A brand-new node counts as a reconfig (it must be configured).
	target = append(target, NodeState{Node: "rs9", Type: Read, Partitions: []string{"z"}})
	d = ComputeDiff(current, target)
	if d.Reconfigs != 2 || d.PartitionMoves != 1 {
		t.Fatalf("diff = %+v", d)
	}
}

// Property: ComputeOutput never loses or duplicates partitions relative
// to the optimal distribution.
func TestComputeOutputConservesPartitions(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		nNodes := 2 + rng.Intn(4)
		var current []NodeState
		var optimal []TargetSet
		pid := 0
		for i := 0; i < nNodes; i++ {
			var cur []string
			for j := 0; j < rng.Intn(4); j++ {
				cur = append(cur, fmt.Sprintf("p%d", pid))
				pid++
			}
			current = append(current, NodeState{Node: fmt.Sprintf("rs%d", i), Type: AccessTypes[rng.Intn(4)], Partitions: cur})
		}
		// Optimal redistributes the same partitions randomly.
		var all []string
		for _, n := range current {
			all = append(all, n.Partitions...)
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		per := len(all)/nNodes + 1
		for i := 0; i < nNodes && len(all) > 0; i++ {
			take := per
			if take > len(all) {
				take = len(all)
			}
			optimal = append(optimal, TargetSet{Type: AccessTypes[rng.Intn(4)], Partitions: all[:take]})
			all = all[take:]
		}
		got := ComputeOutput(current, optimal, false)
		seen := map[string]int{}
		for _, n := range got {
			for _, p := range n.Partitions {
				seen[p]++
			}
		}
		want := map[string]int{}
		for _, s := range optimal {
			for _, p := range s.Partitions {
				want[p]++
			}
		}
		if len(seen) != len(want) {
			return false
		}
		for p, c := range want {
			if seen[p] != c {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
