// Package placement implements the algorithmic heart of MeT's Decision
// Maker (Section 4.2.3 and 4.2.4 of the paper):
//
//   - Classification of data partitions into read / write / scan /
//     read-write groups by the 60% threshold rules;
//   - Grouping: proportional attribution of nodes to groups;
//   - Assignment: the Longest Processing Time (LPT) greedy makespan
//     algorithm (Graham 1969) with the paper's extra constraint of a
//     maximum number of partitions per node (Algorithm 2);
//   - Output computation: best-effort set-intersection matching between
//     the current and optimal distributions, minimizing region moves and
//     node reconfigurations (Algorithm 3);
//   - An exhaustive-search baseline used by the paper's Manual-*
//     strategies ("we conducted an exhaustive search to find the best
//     distribution").
package placement

import (
	"fmt"
	"sort"

	"met/internal/metrics"
)

// AccessType is the access-pattern class of a partition or node profile.
type AccessType int

// The four groups of Section 3.3 / 4.2.3.
const (
	ReadWrite AccessType = iota // the "every other case" default
	Read
	Write
	Scan
)

// AccessTypes lists all classes in a stable order.
var AccessTypes = []AccessType{ReadWrite, Read, Write, Scan}

// String implements fmt.Stringer.
func (a AccessType) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Scan:
		return "scan"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("AccessType(%d)", int(a))
	}
}

// Thresholds parameterizes classification. The paper's values: a
// partition is read if >60% of requests are reads, write if >60% are
// writes, scan if >60% of read requests are scans, read-write otherwise.
type Thresholds struct {
	ReadFraction  float64
	WriteFraction float64
	ScanFraction  float64
}

// DefaultThresholds returns the paper's 60% rules.
func DefaultThresholds() Thresholds {
	return Thresholds{ReadFraction: 0.6, WriteFraction: 0.6, ScanFraction: 0.6}
}

// Classify assigns one partition's request counters to a group. Reads
// and scans are both "read requests" for the read rule; the scan rule
// then separates scan-dominated partitions, mirroring the paper's
// criteria i–iv. A partition with no requests defaults to read-write.
func Classify(c metrics.RequestCounts, th Thresholds) AccessType {
	total := c.Total()
	if total == 0 {
		return ReadWrite
	}
	readReqs := c.Reads + c.Scans
	if float64(readReqs)/float64(total) > th.ReadFraction {
		// Read-dominated; scans within reads pick the scan profile.
		if readReqs > 0 && float64(c.Scans)/float64(readReqs) > th.ScanFraction {
			return Scan
		}
		return Read
	}
	if float64(c.Writes)/float64(total) > th.WriteFraction {
		return Write
	}
	return ReadWrite
}

// Partition is one data partition (an HBase Region) as the Decision
// Maker sees it: a name, its request counters over the monitoring window,
// and the scalar load used as the LPT job cost (total requests).
type Partition struct {
	Name     string
	Requests metrics.RequestCounts
}

// Load returns the LPT job cost: the partition's total request count.
func (p Partition) Load() float64 { return float64(p.Requests.Total()) }

// ClassifyAll buckets partitions into the four groups.
func ClassifyAll(parts []Partition, th Thresholds) map[AccessType][]Partition {
	out := make(map[AccessType][]Partition)
	for _, p := range parts {
		t := Classify(p.Requests, th)
		out[t] = append(out[t], p)
	}
	return out
}

// NodesPerGroup computes how many nodes each group receives:
// (#partitions in group / total #partitions) × total nodes, per the
// paper's Grouping formula, using largest-remainder rounding so the
// counts sum exactly to totalNodes and every non-empty group gets at
// least one node (a group with partitions but zero nodes would strand
// data).
func NodesPerGroup(groups map[AccessType][]Partition, totalNodes int) map[AccessType]int {
	out := make(map[AccessType]int)
	totalParts := 0
	for _, ps := range groups {
		totalParts += len(ps)
	}
	if totalParts == 0 || totalNodes <= 0 {
		return out
	}
	type share struct {
		t         AccessType
		base      int
		remainder float64
	}
	var shares []share
	assigned := 0
	for _, t := range AccessTypes {
		ps := groups[t]
		if len(ps) == 0 {
			continue
		}
		exact := float64(len(ps)) / float64(totalParts) * float64(totalNodes)
		base := int(exact)
		shares = append(shares, share{t: t, base: base, remainder: exact - float64(base)})
		assigned += base
	}
	// Hand out leftovers by largest remainder (ties: stable order).
	sort.SliceStable(shares, func(i, j int) bool { return shares[i].remainder > shares[j].remainder })
	left := totalNodes - assigned
	for i := range shares {
		if left <= 0 {
			break
		}
		shares[i].base++
		left--
	}
	for _, s := range shares {
		out[s.t] = s.base
	}
	// Every non-empty group needs >= 1 node; steal from the largest.
	for {
		fixed := true
		for _, s := range shares {
			if out[s.t] == 0 {
				biggest := s.t
				for _, o := range shares {
					if out[o.t] > out[biggest] {
						biggest = o.t
					}
				}
				if out[biggest] <= 1 {
					break // cannot steal; fewer nodes than groups
				}
				out[biggest]--
				out[s.t]++
				fixed = false
			}
		}
		if fixed {
			break
		}
	}
	return out
}
