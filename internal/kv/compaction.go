package kv

import (
	"errors"
	"fmt"
	"time"
)

// This file is the engine half of the background-compaction subsystem
// (met/internal/compaction owns the scheduler half): the contract a
// scheduler programs against (CompactionTrigger, IOBudget, FileStat,
// CompactionSelection), the off-lock CompactFiles merge, and the
// write-stall backpressure that engages when compaction falls behind.
//
// The store write lock is never held across compaction I/O. CompactFiles
// snapshots the selected files under a read lock, merges and persists
// them with no lock held (rate-limited by the IOBudget), and swaps the
// file stack under a brief write lock. Puts therefore proceed throughout
// a compaction; the only coupling left is the hard file-count ceiling,
// which stalls writers *outside* the engine locks and accounts every
// stalled nanosecond in Stats.StallNanos.

// Common background-compaction errors.
var (
	// ErrCompactionConflict is returned by CompactFiles when the
	// selected files are no longer a contiguous run of the store's file
	// stack (another compaction retired one of them first). The caller
	// should re-plan against a fresh FileStats snapshot.
	ErrCompactionConflict = errors.New("kv: compaction selection no longer matches the file stack")
)

// FileStat describes one immutable store file for compaction planning,
// in the same newest-first order as the file stack.
type FileStat struct {
	ID           uint64
	Bytes        int64
	Entries      int
	MinKey       string
	MaxKey       string
	MaxTimestamp uint64
}

// Overlaps reports whether the key ranges of two files intersect —
// leveled policies prefer merging overlapping files because that is
// where duplicate versions (and therefore reclaimable bytes) live.
func (f FileStat) Overlaps(o FileStat) bool {
	if f.Entries == 0 || o.Entries == 0 {
		return false
	}
	return f.MinKey <= o.MaxKey && o.MinKey <= f.MaxKey
}

// FileStats snapshots the immutable file stack for a compaction planner,
// newest first.
func (s *Store) FileStats() []FileStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]FileStat, len(s.files))
	for i, f := range s.files {
		minKey, maxKey := f.KeyRange()
		out[i] = FileStat{
			ID:           f.ID(),
			Bytes:        int64(f.Bytes()),
			Entries:      f.Entries(),
			MinKey:       minKey,
			MaxKey:       maxKey,
			MaxTimestamp: f.MaxTimestamp(),
		}
	}
	return out
}

// CompactionPressure summarizes a store's compaction backlog at the
// moment a flush crossed the soft file-count threshold; the scheduler
// uses it to score the store without calling back into engine locks.
type CompactionPressure struct {
	NumFiles   int
	TotalBytes int64
}

// CompactionTrigger is how a store asks a background scheduler for
// service. The engine fires it outside all engine locks, after the flush
// that crossed Config.MaxStoreFiles; implementations must enqueue and
// return quickly, and must not call back into the store synchronously.
type CompactionTrigger interface {
	CompactionNeeded(s *Store, p CompactionPressure)
}

// IOBudget arbitrates disk bandwidth between background compaction and
// the foreground serving path. Background I/O (compaction reads and
// writes) blocks in WaitBackground until budget is available; foreground
// I/O (WAL appends, flush SSTables) is accounted with NoteForeground but
// never blocked, so compaction yields to serving — never the reverse.
type IOBudget interface {
	WaitBackground(bytes int)
	NoteForeground(bytes int)
}

// CompactionSelection names the store files a compaction should merge.
// The IDs must form a contiguous run of the file stack (any order within
// the slice); contiguity is what keeps the stack's newest-first
// timestamp ordering intact after the merged file is spliced in. An
// empty ID list selects every current file.
type CompactionSelection struct {
	IDs []uint64
	// Major drops tombstones and shadowed versions. Tombstones are only
	// actually dropped when the selection reaches the oldest file in
	// the stack — otherwise they must survive to keep shadowing older
	// files, exactly like HBase minor vs major compactions.
	Major bool
}

// CompactionResult reports what a CompactFiles call did.
type CompactionResult struct {
	FilesIn  int
	BytesIn  int64
	BytesOut int64
}

// CompactFiles merges a selected contiguous run of store files into one
// file, doing all I/O outside the store locks:
//
//	phase 1 (read lock, brief): resolve the selection against the
//	        current stack and pin the selected *StoreFile values;
//	phase 2 (no lock): merge-iterate the files, build the replacement
//	        through the backend — rate-limited by Config.
//	        CompactionBudget — while Gets, Puts and Scans proceed;
//	phase 3 (write lock, brief): splice the merged file into the stack
//	        in place of the run, retire the inputs, wake stalled
//	        writers.
//
// Concurrent CompactFiles calls on the same store serialize; a selection
// that no longer matches the stack fails with ErrCompactionConflict so
// the scheduler can re-plan. A crash after phase 2 but before the
// retired inputs are unlinked leaves both the merged file and its inputs
// on disk; recovery tolerates the duplication (identical entries dedup
// at read time) and the next compaction reclaims the space.
func (s *Store) CompactFiles(sel CompactionSelection) (CompactionResult, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.compactFilesLocked(sel)
}

// compactFilesLocked is CompactFiles minus the compactMu acquisition;
// callers hold compactMu.
func (s *Store) compactFilesLocked(sel CompactionSelection) (CompactionResult, error) {
	var res CompactionResult

	// Phase 1: pin the selected run under the read lock.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return res, ErrClosed
	}
	ids := sel.IDs
	if len(ids) == 0 {
		ids = make([]uint64, len(s.files))
		for i, f := range s.files {
			ids[i] = f.ID()
		}
	}
	run, runStart, err := s.locateRunLocked(ids)
	if err != nil {
		s.mu.RUnlock()
		return res, err
	}
	// Tombstones may be dropped only when nothing older than the run
	// survives it. Holding compactMu means no other compaction can
	// retire files before phase 3, and flushes only prepend, so "run
	// reaches the bottom of the stack" is stable across the phases.
	dropTombstones := sel.Major && runStart+len(run) == len(s.files)
	s.mu.RUnlock()
	if len(run) == 0 {
		return res, nil
	}
	if len(run) == 1 && !sel.Major {
		return res, nil // nothing to merge
	}

	// Phase 2: merge with no engine lock held. Reads bypass the block
	// cache (compaction must not evict the serving working set) and are
	// charged to the background I/O budget up front, file by file.
	budget := s.wiring.Load().budget
	sources := make([]Iterator, 0, len(run))
	var maxTSFloor uint64
	for _, f := range run {
		if budget != nil {
			budget.WaitBackground(f.Bytes())
		}
		sources = append(sources, f.iterator(nil, nil))
		res.BytesIn += int64(f.Bytes())
		if f.MaxTimestamp() > maxTSFloor {
			maxTSFloor = f.MaxTimestamp()
		}
	}
	res.FilesIn = len(run)
	it := newDedupIterator(newMergeIterator(sources), dropTombstones)
	var entries []Entry
	var outBytes int
	for it.Next() {
		e := it.Entry()
		entries = append(entries, e)
		outBytes += e.Size()
	}
	for _, src := range sources {
		if err := iterErr(src); err != nil {
			return res, fmt.Errorf("kv: compact read: %w", err)
		}
	}
	if budget != nil {
		budget.WaitBackground(outBytes)
	}
	merged, err := s.createFileWithFloor(nextFileID(), entries, maxTSFloor)
	if err != nil {
		return res, fmt.Errorf("kv: compact write: %w", err)
	}
	res.BytesOut = int64(merged.Bytes())

	// Phase 3: splice under the write lock.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.discardFile(merged)
		return res, ErrClosed
	}
	run2, runStart2, err := s.locateRunLocked(ids)
	if err != nil || len(run2) != len(run) {
		s.mu.Unlock()
		s.discardFile(merged)
		return res, ErrCompactionConflict
	}
	files := make([]*StoreFile, 0, len(s.files)-len(run2)+1)
	files = append(files, s.files[:runStart2]...)
	files = append(files, merged)
	files = append(files, s.files[runStart2+len(run2):]...)
	s.files = files
	s.filesDirty.Store(true)
	for _, f := range run2 {
		s.cache.invalidateFile(f.id)
		if s.backend != nil {
			s.retiredMu.Lock()
			s.retired = append(s.retired, f.ID())
			s.retiredMu.Unlock()
		}
	}
	s.stats.compactions.Add(1)
	s.stats.compactedBytes.Add(res.BytesIn)
	s.stats.compactionBytesWritten.Add(res.BytesOut)
	s.mu.Unlock()

	s.drainRetired(false)
	s.releaseStall()
	s.notifyFilesChanged()
	return res, nil
}

// locateRunLocked resolves a set of file IDs to their *StoreFile run in
// the current stack, verifying the IDs are present and contiguous.
// Callers hold mu (either side).
func (s *Store) locateRunLocked(ids []uint64) ([]*StoreFile, int, error) {
	if len(ids) == 0 {
		return nil, 0, nil
	}
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	start := -1
	for i, f := range s.files {
		if want[f.ID()] {
			start = i
			break
		}
	}
	if start < 0 || start+len(want) > len(s.files) {
		return nil, 0, ErrCompactionConflict
	}
	run := s.files[start : start+len(want)]
	for _, f := range run {
		if !want[f.ID()] {
			return nil, 0, ErrCompactionConflict
		}
	}
	return run, start, nil
}

// discardFile removes a file that was built but never published to the
// stack (a lost compaction race); no reader can reference it.
func (s *Store) discardFile(f *StoreFile) {
	if s.backend != nil {
		_ = s.backend.Remove(f.ID())
	}
}

// NoteCompactionQueued records that a background compaction request for
// this store entered (+1) or left (-1) a scheduler queue; the gauge is
// surfaced as Stats.CompactionQueueDepth.
func (s *Store) NoteCompactionQueued(delta int64) {
	s.stats.compactionQueued.Add(delta)
}

// maybeTriggerCompaction fires the configured CompactionTrigger if a
// flush raised the file count over the soft threshold. Called outside
// all engine locks by the mutation paths and Flush.
func (s *Store) maybeTriggerCompaction() {
	trigger := s.wiring.Load().trigger
	if trigger == nil || !s.compactionWanted.CompareAndSwap(true, false) {
		return
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	p := CompactionPressure{NumFiles: len(s.files)}
	for _, f := range s.files {
		p.TotalBytes += int64(f.Bytes())
	}
	s.mu.RUnlock()
	if s.cfg.MaxStoreFiles > 0 && p.NumFiles > s.cfg.MaxStoreFiles {
		trigger.CompactionNeeded(s, p)
	}
}

// stallGateChan returns the channel the next stall release will close.
// The acquire-then-recheck ordering in maybeStall makes missed wakeups
// impossible: the gate is fetched before the condition is re-read, so a
// release racing the check closes the very channel the waiter selects
// on.
func (s *Store) stallGateChan() chan struct{} {
	s.stallMu.Lock()
	defer s.stallMu.Unlock()
	if s.stallGate == nil {
		s.stallGate = make(chan struct{})
	}
	return s.stallGate
}

// releaseStall wakes every writer parked on the hard file ceiling; the
// paths that shrink the file stack (compactions) and the ones that end
// the store's life (Close, Seal) call it.
func (s *Store) releaseStall() {
	s.stallMu.Lock()
	if s.stallGate != nil {
		close(s.stallGate)
		s.stallGate = nil
	}
	s.stallMu.Unlock()
}

// maybeStall blocks a writer while the store's file count sits at or
// above the hard ceiling, giving background compaction room to catch up
// — HBase's blockingStoreFiles behavior. It runs before the write lock
// is taken, so an in-flight compaction's swap (phase 3) can always
// proceed and wake us. The wait is bounded by Config.StallTimeout: a
// wedged compactor degrades the store to unbounded file counts rather
// than wedging writers forever. Every stalled nanosecond is accounted.
func (s *Store) maybeStall() {
	w := s.wiring.Load()
	if w.trigger == nil || w.hardMax <= 0 {
		return
	}
	// Never park on a gate while a compaction request is still latched
	// but unsent — the release we would wait for might otherwise never
	// be scheduled.
	s.maybeTriggerCompaction()
	var start time.Time
	var timer *time.Timer
	for {
		gate := s.stallGateChan()
		// Re-read the wiring every pass: a rewire (region move) releases
		// the gate, and the waiter must judge the ceiling — or its
		// absence — against the store's new home, not the old one.
		w = s.wiring.Load()
		s.mu.RLock()
		over := !s.closed && !s.sealed && w.trigger != nil && w.hardMax > 0 && len(s.files) >= w.hardMax
		s.mu.RUnlock()
		if !over {
			break
		}
		if start.IsZero() {
			start = time.Now()
			s.stats.stalledWrites.Add(1)
			timer = time.NewTimer(s.cfg.StallTimeout)
		}
		select {
		case <-gate:
		case <-timer.C:
			s.stats.stallNanos.Add(int64(time.Since(start)))
			return
		}
	}
	if !start.IsZero() {
		timer.Stop()
		s.stats.stallNanos.Add(int64(time.Since(start)))
	}
}
