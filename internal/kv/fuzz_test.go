package kv

// Fuzz harness for the store-file block decoder: arbitrary payload
// bytes must either decode or return ErrCorrupt — never panic or size
// an allocation from untrusted input — and anything that decodes must
// survive an encode/decode round trip unchanged.

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func FuzzDecodeBlock(f *testing.F) {
	f.Add(EncodeBlock(nil))
	f.Add(EncodeBlock([]Entry{
		{Key: "a", Value: []byte("1"), Timestamp: 1},
		{Key: "b", Timestamp: 2, Tombstone: true},
	}))
	// A giant entry count must be rejected before it sizes the slice.
	huge := binary.AppendUvarint(nil, 1<<62)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBlock(data)
		if err != nil {
			return
		}
		again, err := DecodeBlock(EncodeBlock(entries))
		if err != nil {
			t.Fatalf("re-decode of re-encoded block: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip: %d entries became %d", len(entries), len(again))
		}
		for i := range entries {
			a, b := entries[i], again[i]
			if a.Key != b.Key || a.Timestamp != b.Timestamp || a.Tombstone != b.Tombstone || !bytes.Equal(a.Value, b.Value) {
				t.Fatalf("round trip entry %d: %+v became %+v", i, a, b)
			}
		}
	})
}
