package kv_test

// External-package test (kv_test) so it can use the shared fault
// harness: met/internal/testutil imports kv, which an in-package test
// file could not import back.

import (
	"errors"
	"fmt"
	"testing"

	"met/internal/durable"
	"met/internal/kv"
	"met/internal/testutil"
)

// TestFlushFailureKeepsDataAndRetries: an injected SSTable-create error
// fails the flush loudly, but the data stays readable (memstore + WAL)
// and the next flush retries cleanly — the engine's documented flush
// error contract, pinned through the fault harness.
func TestFlushFailureKeepsDataAndRetries(t *testing.T) {
	inj := testutil.NewInjector()
	boom := errors.New("disk full")
	dir := t.TempDir()
	s, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: 1 << 20,
		OpenBackend:        testutil.Wrap(durable.Opener(dir, durable.Options{}), inj, "backend"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	inj.FailOp("backend.create", boom, 1)
	if err := s.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush swallowed the injected error: %v", err)
	}
	if s.NumFiles() != 0 {
		t.Fatalf("failed flush published %d files", s.NumFiles())
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Get(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatalf("k%03d unreadable after failed flush: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if s.NumFiles() != 1 {
		t.Fatalf("retried flush made %d files, want 1", s.NumFiles())
	}
	if got := inj.Hits("backend.create"); got != 2 {
		t.Fatalf("create point hit %d times, want 2", got)
	}
}

// TestOpenFailsLoudlyOnLoadError: recovery must not silently open an
// empty store when enumerating the surviving SSTables fails.
func TestOpenFailsLoudlyOnLoadError(t *testing.T) {
	dir := t.TempDir()
	s, err := kv.OpenStore(kv.Config{OpenBackend: durable.Opener(dir, durable.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	inj := testutil.NewInjector()
	boom := errors.New("cannot list")
	inj.FailOp("backend.load", boom, 1)
	if _, err := kv.OpenStore(kv.Config{
		OpenBackend: testutil.Wrap(durable.Opener(dir, durable.Options{}), inj, "backend"),
	}); !errors.Is(err, boom) {
		t.Fatalf("open over a failing load returned %v, want the injected error", err)
	}
}
