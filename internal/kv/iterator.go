package kv

import "container/heap"

// mergeIterator combines several sorted iterators into one sorted stream,
// used for scans (memstore + every store file) and compactions. Ordering
// is (key asc, timestamp desc), so all versions of a key come out
// adjacent, newest first; ties across sources break toward the
// lower-indexed (newer) source.
type mergeIterator struct {
	h       mergeHeap
	current Entry
	started bool
}

type mergeSource struct {
	it    Iterator
	entry Entry
	rank  int // lower rank = newer source, wins timestamp ties
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].entry, h[j].entry
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.Timestamp != b.Timestamp {
		return a.Timestamp > b.Timestamp
	}
	return h[i].rank < h[j].rank
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }

// newMergeIterator builds a merged stream; sources must be ordered
// newest-first so version shadowing resolves correctly on ties.
func newMergeIterator(sources []Iterator) Iterator {
	m := &mergeIterator{}
	for rank, it := range sources {
		if it.Next() {
			m.h = append(m.h, &mergeSource{it: it, entry: it.Entry(), rank: rank})
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *mergeIterator) Next() bool {
	if len(m.h) == 0 {
		return false
	}
	src := m.h[0]
	m.current = src.entry
	if src.it.Next() {
		src.entry = src.it.Entry()
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	m.started = true
	return true
}

func (m *mergeIterator) Entry() Entry { return m.current }

// dedupIterator collapses a (key asc, ts desc) stream to the newest
// version per key, optionally dropping tombstones (major compaction and
// user-visible scans drop them; minor merges keep them to continue
// shadowing older files).
type dedupIterator struct {
	in             Iterator
	dropTombstones bool
	current        Entry
	pending        Entry
	hasPending     bool
}

func newDedupIterator(in Iterator, dropTombstones bool) Iterator {
	return &dedupIterator{in: in, dropTombstones: dropTombstones}
}

func (d *dedupIterator) Next() bool {
	for {
		var e Entry
		if d.hasPending {
			e = d.pending
			d.hasPending = false
		} else {
			if !d.in.Next() {
				return false
			}
			e = d.in.Entry()
		}
		// e is the newest version of its key; skip the older versions.
		for d.in.Next() {
			n := d.in.Entry()
			if n.Key != e.Key {
				d.pending = n
				d.hasPending = true
				break
			}
		}
		if e.Tombstone && d.dropTombstones {
			continue
		}
		d.current = e
		return true
	}
}

func (d *dedupIterator) Entry() Entry { return d.current }

// limitIterator stops a stream after limit entries; used for scans.
type limitIterator struct {
	in    Iterator
	limit int
	seen  int
}

func newLimitIterator(in Iterator, limit int) Iterator {
	return &limitIterator{in: in, limit: limit}
}

func (l *limitIterator) Next() bool {
	if l.limit >= 0 && l.seen >= l.limit {
		return false
	}
	if !l.in.Next() {
		return false
	}
	l.seen++
	return true
}

func (l *limitIterator) Entry() Entry { return l.in.Entry() }

// boundIterator stops a stream at the first key >= end (exclusive bound).
// An empty end means unbounded.
type boundIterator struct {
	in  Iterator
	end string
}

func newBoundIterator(in Iterator, end string) Iterator {
	return &boundIterator{in: in, end: end}
}

func (b *boundIterator) Next() bool {
	if !b.in.Next() {
		return false
	}
	if b.end != "" && b.in.Entry().Key >= b.end {
		return false
	}
	return true
}

func (b *boundIterator) Entry() Entry { return b.in.Entry() }
