package kv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStoreConcurrentReadersAndWriters runs parallel Gets and Scans
// against a store while writers, explicit flushes and compactions churn
// the file stack — the reader/writer split must deliver raw data races
// never, torn entries never, and ErrNotFound only for keys not yet
// written. Run under -race this is the engine's concurrency proof.
func TestStoreConcurrentReadersAndWriters(t *testing.T) {
	s := NewStore(Config{MemstoreFlushBytes: 4 << 10, BlockBytes: 1 << 10, MaxStoreFiles: 3})
	key := func(i int) string { return fmt.Sprintf("k%04d", i%500) }
	for i := 0; i < 500; i++ {
		if err := s.Put(key(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	const readers, writers = 6, 2
	var wg sync.WaitGroup
	var failure atomic.Value
	fail := func(format string, args ...any) {
		failure.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := key(i*7 + w)
				if err := s.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					fail("put %s: %v", k, err)
					return
				}
				if i%50 == 0 {
					s.Flush()
				}
				if i%150 == 0 {
					s.Compact(true)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := key(i*3 + r)
				v, err := s.Get(k)
				if err != nil {
					fail("get %s: %v", k, err) // every key was seeded
					return
				}
				if len(v) == 0 {
					fail("get %s returned empty value", k)
					return
				}
				if i%10 == 0 {
					entries, err := s.Scan(k, "", 10)
					if err != nil {
						fail("scan from %s: %v", k, err)
						return
					}
					for j := 1; j < len(entries); j++ {
						if entries[j].Key <= entries[j-1].Key {
							fail("scan out of order: %s <= %s", entries[j].Key, entries[j-1].Key)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if msg := failure.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Counters survived the stampede without losing operations.
	st := s.Stats()
	if st.Gets != readers*400 {
		t.Fatalf("gets = %d, want %d", st.Gets, readers*400)
	}
	if st.Puts != 500+writers*400 {
		t.Fatalf("puts = %d, want %d", st.Puts, 500+writers*400)
	}
	if st.Scans != readers*40 {
		t.Fatalf("scans = %d, want %d", st.Scans, readers*40)
	}
	// Every seeded key still resolves after all flush/compact churn.
	for i := 0; i < 500; i++ {
		if _, err := s.Get(key(i)); err != nil {
			t.Fatalf("key %s lost: %v", key(i), err)
		}
	}
}

// TestBlockCacheConcurrentSharing shares one BlockCache between two
// stores, as a region server does, and hits it from parallel readers
// while compactions invalidate files and a resizer shrinks and grows
// the capacity — exercising every locked path of the cache.
func TestBlockCacheConcurrentSharing(t *testing.T) {
	cache := NewBlockCache(64 << 10)
	mk := func(seed uint64) *Store {
		s := NewStore(Config{MemstoreFlushBytes: 2 << 10, BlockBytes: 512, Cache: cache, Seed: seed})
		for i := 0; i < 300; i++ {
			if err := s.Put(fmt.Sprintf("k%04d", i), []byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush()
		return s
	}
	a, b := mk(1), mk(2)

	var wg sync.WaitGroup
	var failure atomic.Value
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stores := [2]*Store{a, b}
			for i := 0; i < 500; i++ {
				s := stores[(i+r)%2]
				if _, err := s.Get(fmt.Sprintf("k%04d", (i*13+r)%300)); err != nil {
					failure.CompareAndSwap(nil, fmt.Sprintf("get: %v", err))
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			a.Compact(true) // invalidates a's files in the shared cache
			cache.Resize(8 << 10)
			cache.Resize(64 << 10)
		}
	}()
	wg.Wait()
	if msg := failure.Load(); msg != nil {
		t.Fatal(msg)
	}
	if cache.Used() > cache.Capacity() {
		t.Fatalf("cache over capacity: %d > %d", cache.Used(), cache.Capacity())
	}
	if ratio := cache.HitRatio(); ratio < 0 || ratio > 1 {
		t.Fatalf("hit ratio = %v", ratio)
	}
}

// TestStoreCloseRacesReaders verifies Close concurrent with reads yields
// either a served value or ErrClosed — nothing else — mirroring what a
// region reopen exposes to in-flight requests.
func TestStoreCloseRacesReaders(t *testing.T) {
	s := NewStore(Config{MemstoreFlushBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var failure atomic.Value
	start := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				_, err := s.Get(fmt.Sprintf("k%03d", (i+r)%100))
				if err != nil && !errors.Is(err, ErrClosed) {
					failure.CompareAndSwap(nil, fmt.Sprintf("get: %v", err))
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		s.Close()
	}()
	close(start)
	wg.Wait()
	if msg := failure.Load(); msg != nil {
		t.Fatal(msg)
	}
}

// TestSealBlocksWritesServesReads pins the migration contract reopen
// and split rely on: after Seal, mutations fail with ErrClosed while
// reads keep working, and every previously acknowledged write is
// visible to the migration's scan; Unseal hands the store back.
func TestSealBlocksWritesServesReads(t *testing.T) {
	s := NewStore(Config{MemstoreFlushBytes: 1 << 20})
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Seal()
	if err := s.Put("b", []byte("2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put on sealed store = %v, want ErrClosed", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete on sealed store = %v, want ErrClosed", err)
	}
	if v, err := s.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("get on sealed store = %q, %v", v, err)
	}
	entries, err := s.Scan("", "", -1)
	if err != nil || len(entries) != 1 {
		t.Fatalf("scan on sealed store = %v, %v", entries, err)
	}
	s.Unseal()
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatalf("put after unseal: %v", err)
	}
	if v, err := s.Get("b"); err != nil || string(v) != "2" {
		t.Fatalf("get after unseal = %q, %v", v, err)
	}
}
