package kv

import (
	"sync/atomic"

	"met/internal/sim"
)

const maxSkipLevel = 18

// Memstore is the in-memory write buffer: a skiplist keyed by (key,
// descending timestamp) so that all versions of a key are adjacent with
// the newest first. It corresponds to HBase's MemStore; when its byte
// footprint exceeds the configured threshold the store flushes it to an
// immutable file.
//
// Concurrency: the memstore is single-writer, multi-reader. Add must be
// serialized externally (the store's write lock does this), but Get and
// the iterators may run concurrently with one Add: nodes are fully
// initialized before being published, and every link is an atomic
// pointer stored bottom-up, so a concurrent reader sees each node either
// not at all or completely — never half-linked. Entries already inserted
// are immutable (the identical-coordinates case replaces the whole node,
// not the entry in place).
type Memstore struct {
	head  *skipNode
	level atomic.Int32 // current tower height; readers tolerate stale values
	rng   *sim.RNG
	bytes int
	count int
	maxTS uint64
}

type skipNode struct {
	entry Entry
	next  [maxSkipLevel]atomic.Pointer[skipNode]
}

// NewMemstore returns an empty memstore. The seed keeps skiplist tower
// heights — and therefore iteration performance — deterministic.
func NewMemstore(seed uint64) *Memstore {
	m := &Memstore{head: &skipNode{}, rng: sim.NewRNG(seed)}
	m.level.Store(1)
	return m
}

// less orders by key ascending, then timestamp descending (newest
// version first).
func less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Timestamp > b.Timestamp
}

func (m *Memstore) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Uint64()&3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// Add inserts a new entry version. Entries with identical (key,
// timestamp) replace the previous value, matching HBase semantics where
// a cell is identified by its coordinates. Callers serialize Adds;
// readers may proceed concurrently.
func (m *Memstore) Add(e Entry) {
	var update [maxSkipLevel]*skipNode
	level := int(m.level.Load())
	x := m.head
	for i := level - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || !less(nxt.entry, e) {
				break
			}
			x = nxt
		}
		update[i] = x
	}
	if cand := x.next[0].Load(); cand != nil && cand.entry.Key == e.Key && cand.entry.Timestamp == e.Timestamp {
		// Same cell coordinates: substitute a fresh node carrying the new
		// value. In-place entry mutation would tear under a concurrent
		// lock-free reader; node substitution gives readers either the
		// old node or the new one, both fully formed.
		repl := &skipNode{entry: e}
		for i := 0; i < level; i++ {
			if update[i].next[i].Load() != cand {
				break
			}
			repl.next[i].Store(cand.next[i].Load())
		}
		for i := 0; i < level; i++ {
			if update[i].next[i].Load() != cand {
				break
			}
			update[i].next[i].Store(repl)
		}
		m.bytes += e.Size() - cand.entry.Size()
		if e.Timestamp > m.maxTS {
			m.maxTS = e.Timestamp
		}
		return
	}
	lvl := m.randomLevel()
	if lvl > level {
		for i := level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level.Store(int32(lvl))
	}
	n := &skipNode{entry: e}
	for i := 0; i < lvl; i++ {
		n.next[i].Store(update[i].next[i].Load())
	}
	// Publish bottom-up: once the level-0 link lands, the node is fully
	// reachable and fully initialized; upper links are shortcuts that may
	// appear later without affecting readers' correctness.
	for i := 0; i < lvl; i++ {
		update[i].next[i].Store(n)
	}
	m.bytes += e.Size()
	m.count++
	if e.Timestamp > m.maxTS {
		m.maxTS = e.Timestamp
	}
}

// Get returns the newest version of key, if any.
func (m *Memstore) Get(key string) (Entry, bool) {
	x := m.head
	probe := Entry{Key: key, Timestamp: ^uint64(0)}
	for i := int(m.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || !less(nxt.entry, probe) {
				break
			}
			x = nxt
		}
	}
	if n := x.next[0].Load(); n != nil && n.entry.Key == key {
		return n.entry, true
	}
	return Entry{}, false
}

// Bytes returns the approximate heap footprint of buffered entries.
func (m *Memstore) Bytes() int { return m.bytes }

// Len returns the number of buffered entry versions.
func (m *Memstore) Len() int { return m.count }

// MaxTimestamp returns the newest timestamp buffered (0 when empty).
func (m *Memstore) MaxTimestamp() uint64 { return m.maxTS }

// Iterator returns an iterator over all buffered versions in (key asc,
// timestamp desc) order. Iteration is safe under a concurrent Add; it
// observes a prefix-consistent view of the list.
func (m *Memstore) Iterator() Iterator {
	return &memstoreIter{node: m.head}
}

// IteratorFrom returns an iterator positioned at the first entry with
// key >= start.
func (m *Memstore) IteratorFrom(start string) Iterator {
	x := m.head
	probe := Entry{Key: start, Timestamp: ^uint64(0)}
	for i := int(m.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || !less(nxt.entry, probe) {
				break
			}
			x = nxt
		}
	}
	return &memstoreIter{node: x}
}

type memstoreIter struct {
	node *skipNode
}

func (it *memstoreIter) Next() bool {
	if it.node == nil {
		return false
	}
	nxt := it.node.next[0].Load()
	if nxt == nil {
		it.node = nil
		return false
	}
	it.node = nxt
	return true
}

func (it *memstoreIter) Entry() Entry { return it.node.entry }
