package kv

import "met/internal/sim"

const maxSkipLevel = 18

// Memstore is the in-memory write buffer: a skiplist keyed by (key,
// descending timestamp) so that all versions of a key are adjacent with
// the newest first. It corresponds to HBase's MemStore; when its byte
// footprint exceeds the configured threshold the store flushes it to an
// immutable file.
type Memstore struct {
	head  *skipNode
	level int
	rng   *sim.RNG
	bytes int
	count int
	maxTS uint64
}

type skipNode struct {
	entry Entry
	next  [maxSkipLevel]*skipNode
}

// NewMemstore returns an empty memstore. The seed keeps skiplist tower
// heights — and therefore iteration performance — deterministic.
func NewMemstore(seed uint64) *Memstore {
	return &Memstore{head: &skipNode{}, level: 1, rng: sim.NewRNG(seed)}
}

// less orders by key ascending, then timestamp descending (newest
// version first).
func less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Timestamp > b.Timestamp
}

func (m *Memstore) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Uint64()&3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// Add inserts a new entry version. Entries with identical (key,
// timestamp) replace the previous value, matching HBase semantics where
// a cell is identified by its coordinates.
func (m *Memstore) Add(e Entry) {
	var update [maxSkipLevel]*skipNode
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && less(x.next[i].entry, e) {
			x = x.next[i]
		}
		update[i] = x
	}
	if cand := x.next[0]; cand != nil && cand.entry.Key == e.Key && cand.entry.Timestamp == e.Timestamp {
		m.bytes += e.Size() - cand.entry.Size()
		cand.entry = e
		if e.Timestamp > m.maxTS {
			m.maxTS = e.Timestamp
		}
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	n := &skipNode{entry: e}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.bytes += e.Size()
	m.count++
	if e.Timestamp > m.maxTS {
		m.maxTS = e.Timestamp
	}
}

// Get returns the newest version of key, if any.
func (m *Memstore) Get(key string) (Entry, bool) {
	x := m.head
	probe := Entry{Key: key, Timestamp: ^uint64(0)}
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && less(x.next[i].entry, probe) {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && n.entry.Key == key {
		return n.entry, true
	}
	return Entry{}, false
}

// Bytes returns the approximate heap footprint of buffered entries.
func (m *Memstore) Bytes() int { return m.bytes }

// Len returns the number of buffered entry versions.
func (m *Memstore) Len() int { return m.count }

// MaxTimestamp returns the newest timestamp buffered (0 when empty).
func (m *Memstore) MaxTimestamp() uint64 { return m.maxTS }

// Iterator returns an iterator over all buffered versions in (key asc,
// timestamp desc) order. The iterator is invalidated by concurrent Adds.
func (m *Memstore) Iterator() Iterator {
	return &memstoreIter{node: m.head}
}

// IteratorFrom returns an iterator positioned at the first entry with
// key >= start.
func (m *Memstore) IteratorFrom(start string) Iterator {
	x := m.head
	probe := Entry{Key: start, Timestamp: ^uint64(0)}
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && less(x.next[i].entry, probe) {
			x = x.next[i]
		}
	}
	return &memstoreIter{node: x}
}

type memstoreIter struct {
	node *skipNode
}

func (it *memstoreIter) Next() bool {
	if it.node == nil || it.node.next[0] == nil {
		it.node = nil
		return false
	}
	it.node = it.node.next[0]
	return true
}

func (it *memstoreIter) Entry() Entry { return it.node.entry }
