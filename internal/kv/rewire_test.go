package kv

import (
	"fmt"
	"testing"
	"time"
)

// TestSetCompactionReroutesTrigger: after a rewire (a region move), a
// flush crossing the soft threshold must notify the NEW trigger only —
// the old server's pool no longer hears about this store.
func TestSetCompactionReroutesTrigger(t *testing.T) {
	oldTrig, newTrig := &recordingTrigger{}, &recordingTrigger{}
	s := NewStore(Config{MemstoreFlushBytes: 1 << 30, MaxStoreFiles: 2, BlockBytes: 256, Compactor: oldTrig})
	defer s.Close()

	s.SetCompaction(newTrig, nil, 0)
	for b := 0; b < 4; b++ {
		s.Put(fmt.Sprintf("k%d", b), []byte("v"))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	oldTrig.mu.Lock()
	oldCalls := len(oldTrig.calls)
	oldTrig.mu.Unlock()
	newTrig.mu.Lock()
	newCalls := len(newTrig.calls)
	newTrig.mu.Unlock()
	if oldCalls != 0 {
		t.Fatalf("old trigger still notified %d times after rewire", oldCalls)
	}
	if newCalls == 0 {
		t.Fatal("new trigger never notified after rewire")
	}
}

// TestSetCompactionReleasesStalledWriter: a writer parked on the hard
// file ceiling must wake and proceed when the store is rewired to a
// home without stalling (trigger nil), not wait out its stall timeout
// against a pool that no longer services it.
func TestSetCompactionReleasesStalledWriter(t *testing.T) {
	trig := &recordingTrigger{}
	s := NewStore(Config{
		MemstoreFlushBytes: 1 << 30,
		MaxStoreFiles:      1,
		HardMaxStoreFiles:  2,
		StallTimeout:       30 * time.Second, // far beyond the test: release must come from the rewire
		BlockBytes:         256,
		Compactor:          trig,
	})
	defer s.Close()
	for b := 0; b < 2; b++ {
		s.Put(fmt.Sprintf("k%d", b), []byte("v"))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- s.Put("stalled", []byte("v")) }()
	select {
	case err := <-done:
		t.Fatalf("writer did not stall at the hard ceiling (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.SetCompaction(nil, nil, -1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released write failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rewire did not release the stalled writer")
	}
	if v, err := s.Get("stalled"); err != nil || string(v) != "v" {
		t.Fatalf("released write not visible: %q, %v", v, err)
	}
}
