package kv

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire format for store files, so an embedder can persist and reload
// them (the simulation keeps files in memory; the format exists for
// durability and for shipping region data between processes):
//
//	file   := magic(4) version(1) blockCount(varint) block*
//	block  := length(varint) payload crc32(4)
//	payload:= entryCount(varint) entry*
//	entry  := flags(1) keyLen(varint) key valLen(varint) val ts(varint)
//
// flags bit 0 marks a tombstone.

const (
	fileMagic          = 0x4d455446 // "METF"
	fileVersion        = 1
	flagTombstone byte = 1 << 0
)

// ErrCorrupt is returned when decoding fails integrity checks.
var ErrCorrupt = fmt.Errorf("kv: corrupt file data")

// EncodeBlock serializes one block's entries to the wire payload.
func EncodeBlock(entries []Entry) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		var flags byte
		if e.Tombstone {
			flags |= flagTombstone
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(e.Value)))
		buf = append(buf, e.Value...)
		buf = binary.AppendUvarint(buf, e.Timestamp)
	}
	return buf
}

// DecodeBlock parses a block payload back into entries.
func DecodeBlock(buf []byte) ([]Entry, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	buf = buf[n:]
	// Each entry takes at least 4 bytes (flags + three 1-byte
	// varints), so a count implying more entries than the payload can
	// hold is corruption — and must not size the allocation below.
	if count > uint64(len(buf))/4 {
		return nil, ErrCorrupt
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(buf) < 1 {
			return nil, ErrCorrupt
		}
		flags := buf[0]
		buf = buf[1:]
		key, rest, err := readBytes(buf)
		if err != nil {
			return nil, err
		}
		val, rest2, err := readBytes(rest)
		if err != nil {
			return nil, err
		}
		ts, n := binary.Uvarint(rest2)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		buf = rest2[n:]
		e := Entry{Key: string(key), Timestamp: ts, Tombstone: flags&flagTombstone != 0}
		if len(val) > 0 {
			e.Value = append([]byte(nil), val...)
		}
		entries = append(entries, e)
	}
	if len(buf) != 0 {
		return nil, ErrCorrupt
	}
	return entries, nil
}

func readBytes(buf []byte) (data, rest []byte, err error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < l {
		return nil, nil, ErrCorrupt
	}
	return buf[n : n+int(l)], buf[n+int(l):], nil
}

// EncodeFile serializes a whole store file, block by block, each with a
// CRC32 trailer. Blocks are loaded through the file's source, so this
// works for disk-backed files too (and can then fail on I/O errors).
func EncodeFile(f *StoreFile) ([]byte, error) {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, fileMagic)
	buf = append(buf, fileVersion)
	buf = binary.AppendUvarint(buf, uint64(f.NumBlocks()))
	for i := 0; i < f.NumBlocks(); i++ {
		b, err := f.src.LoadBlock(i)
		if err != nil {
			return nil, err
		}
		payload := EncodeBlock(b.entries)
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
		buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	}
	return buf, nil
}

// DecodeFile reconstructs a store file (with the given id and block
// size for future writes) from its wire form, verifying every CRC.
func DecodeFile(id uint64, blockBytes int, buf []byte) (*StoreFile, error) {
	if len(buf) < 5 || binary.BigEndian.Uint32(buf) != fileMagic {
		return nil, ErrCorrupt
	}
	if buf[4] != fileVersion {
		return nil, fmt.Errorf("kv: unsupported file version %d", buf[4])
	}
	buf = buf[5:]
	blockCount, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	buf = buf[n:]
	var entries []Entry
	for i := uint64(0); i < blockCount; i++ {
		payload, rest, err := readBytes(buf)
		if err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, ErrCorrupt
		}
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest) {
			return nil, ErrCorrupt
		}
		buf = rest[4:]
		es, err := DecodeBlock(payload)
		if err != nil {
			return nil, err
		}
		entries = append(entries, es...)
	}
	if len(buf) != 0 {
		return nil, ErrCorrupt
	}
	return BuildStoreFile(id, entries, blockBytes), nil
}
