package kv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedBackend is an in-memory StorageBackend whose Create can be made
// to block: the deterministic stand-in for "a compaction is doing slow
// disk I/O right now".
type gatedBackend struct {
	mu    sync.Mutex
	files map[uint64]*StoreFile

	// armed, entered, gate orchestrate one gated Create: when armed,
	// Create signals entered and then blocks until gate is closed.
	armed   atomic.Bool
	entered chan struct{}
	gate    chan struct{}
}

func newGatedBackend() *gatedBackend {
	return &gatedBackend{
		files:   make(map[uint64]*StoreFile),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
}

func (g *gatedBackend) WAL() WAL { return nil }

func (g *gatedBackend) Create(id uint64, entries []Entry, blockBytes int) (*StoreFile, error) {
	f := BuildStoreFile(id, entries, blockBytes)
	g.mu.Lock()
	g.files[id] = f
	g.mu.Unlock()
	if g.armed.Load() {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.gate
	}
	return f, nil
}

func (g *gatedBackend) Remove(id uint64) error {
	g.mu.Lock()
	delete(g.files, id)
	g.mu.Unlock()
	return nil
}

func (g *gatedBackend) Load(blockBytes int) ([]*StoreFile, error) { return nil, nil }
func (g *gatedBackend) Close() error                              { return nil }

// openGatedStore builds a store over a gated backend with n flushed
// files of distinct keys.
func openGatedStore(t *testing.T, n int) (*Store, *gatedBackend) {
	t.Helper()
	g := newGatedBackend()
	s, err := OpenStore(Config{
		MemstoreFlushBytes: 1 << 30, // flushes only when asked
		MaxStoreFiles:      100,     // no automatic compaction
		BlockBytes:         256,
		OpenBackend:        func() (StorageBackend, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < n; b++ {
		for i := 0; i < 20; i++ {
			if err := s.Put(fmt.Sprintf("b%02d-k%03d", b, i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumFiles(); got != n {
		t.Fatalf("setup flushed %d files, want %d", got, n)
	}
	return s, g
}

// TestPutsProceedDuringCompaction is the acceptance regression for the
// background-compaction subsystem: while a compaction is blocked deep
// inside its backend write (simulated disk I/O), Puts, Gets and Scans
// must all complete — i.e. no compaction I/O happens under the store
// write lock. Before this subsystem, the compaction ran inside the lock
// and this test would deadlock-timeout.
func TestPutsProceedDuringCompaction(t *testing.T) {
	s, g := openGatedStore(t, 3)
	defer s.Close()
	ids := make([]uint64, 0, 3)
	for _, fs := range s.FileStats() {
		ids = append(ids, fs.ID)
	}

	g.armed.Store(true)
	compDone := make(chan error, 1)
	go func() {
		_, err := s.CompactFiles(CompactionSelection{IDs: ids})
		compDone <- err
	}()
	<-g.entered // compaction is now mid-"disk write"

	// Serving must proceed while the compaction is in flight.
	served := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			if err := s.Put(fmt.Sprintf("live-%03d", i), []byte("x")); err != nil {
				served <- err
				return
			}
		}
		if _, err := s.Get("live-000"); err != nil {
			served <- err
			return
		}
		if _, err := s.Scan("b00", "b01", -1); err != nil {
			served <- err
			return
		}
		served <- nil
	}()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serving failed during in-flight compaction: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Puts blocked behind an in-flight compaction — compaction I/O is back under the write lock")
	}
	select {
	case err := <-compDone:
		t.Fatalf("compaction finished while gated: %v", err)
	default:
	}

	g.armed.Store(false)
	close(g.gate)
	if err := <-compDone; err != nil {
		t.Fatalf("compaction: %v", err)
	}
	if got := s.NumFiles(); got != 1 {
		t.Fatalf("files after compaction = %d, want 1", got)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Get(fmt.Sprintf("live-%03d", i)); err != nil {
			t.Fatalf("write acknowledged during compaction lost: %v", err)
		}
	}
	for b := 0; b < 3; b++ {
		if _, err := s.Get(fmt.Sprintf("b%02d-k%03d", b, 7)); err != nil {
			t.Fatalf("compacted key lost: %v", err)
		}
	}
}

// TestCompactFilesSubsetKeepsTombstones: a compaction that does not
// reach the oldest file must keep tombstones (they still shadow older
// files), even when asked for a major compaction; a whole-stack major
// drops them.
func TestCompactFilesSubsetKeepsTombstones(t *testing.T) {
	s := NewStore(Config{MemstoreFlushBytes: 1 << 30, MaxStoreFiles: 100, BlockBytes: 256})
	defer s.Close()
	// f1 (oldest): a=1. f2: tombstone a. f3 (newest): b.
	mustPut := func(k, v string) {
		t.Helper()
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut("a", "1")
	s.Flush()
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	mustPut("b", "2")
	s.Flush()

	stats := s.FileStats() // newest first: [f3, f2, f1]
	if len(stats) != 3 {
		t.Fatalf("files = %d", len(stats))
	}
	// Merge the two newest; the tombstone must survive the merge.
	if _, err := s.CompactFiles(CompactionSelection{IDs: []uint64{stats[0].ID, stats[1].ID}, Major: true}); err != nil {
		t.Fatal(err)
	}
	if got := s.NumFiles(); got != 2 {
		t.Fatalf("files = %d, want 2", got)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone dropped by a partial compaction: Get(a) = %v, want ErrNotFound", err)
	}
	merged := s.FileStats()[0]
	if merged.Entries != 2 {
		t.Fatalf("merged file entries = %d, want 2 (b + kept tombstone)", merged.Entries)
	}

	// Whole-stack major: tombstone and its shadowed version both go.
	if err := s.Compact(true); err != nil {
		t.Fatal(err)
	}
	if got := s.FileStats()[0].Entries; got != 1 {
		t.Fatalf("entries after full major = %d, want just b", got)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(a) after major = %v", err)
	}
	if v, err := s.Get("b"); err != nil || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
}

// TestCompactFilesRejectsBadSelections: stale or non-contiguous
// selections fail with ErrCompactionConflict so a scheduler re-plans
// instead of corrupting the stack.
func TestCompactFilesRejectsBadSelections(t *testing.T) {
	s := NewStore(Config{MemstoreFlushBytes: 1 << 30, MaxStoreFiles: 100, BlockBytes: 256})
	defer s.Close()
	for b := 0; b < 3; b++ {
		s.Put(fmt.Sprintf("k%d", b), []byte("v"))
		s.Flush()
	}
	stats := s.FileStats()

	// Non-contiguous run (newest + oldest, skipping the middle).
	_, err := s.CompactFiles(CompactionSelection{IDs: []uint64{stats[0].ID, stats[2].ID}})
	if !errors.Is(err, ErrCompactionConflict) {
		t.Fatalf("non-contiguous selection: err = %v, want ErrCompactionConflict", err)
	}
	// Unknown ID.
	_, err = s.CompactFiles(CompactionSelection{IDs: []uint64{stats[0].ID, 999999}})
	if !errors.Is(err, ErrCompactionConflict) {
		t.Fatalf("unknown id: err = %v, want ErrCompactionConflict", err)
	}
	// Stale: compact everything, then replay the old selection.
	old := []uint64{stats[0].ID, stats[1].ID, stats[2].ID}
	if err := s.Compact(false); err != nil {
		t.Fatal(err)
	}
	_, err = s.CompactFiles(CompactionSelection{IDs: old})
	if !errors.Is(err, ErrCompactionConflict) {
		t.Fatalf("stale selection: err = %v, want ErrCompactionConflict", err)
	}
	// The failures must not have harmed the data.
	for b := 0; b < 3; b++ {
		if _, err := s.Get(fmt.Sprintf("k%d", b)); err != nil {
			t.Fatalf("Get after rejected selections: %v", err)
		}
	}
}

// recordingTrigger collects CompactionNeeded notifications.
type recordingTrigger struct {
	mu    sync.Mutex
	calls []CompactionPressure
}

func (r *recordingTrigger) CompactionNeeded(_ *Store, p CompactionPressure) {
	r.mu.Lock()
	r.calls = append(r.calls, p)
	r.mu.Unlock()
}

// TestFlushTriggersCompactorInsteadOfInline: with a Compactor
// configured, crossing MaxStoreFiles must notify the trigger and leave
// the files alone (no inline merge under the lock).
func TestFlushTriggersCompactorInsteadOfInline(t *testing.T) {
	trig := &recordingTrigger{}
	s := NewStore(Config{MemstoreFlushBytes: 1 << 30, MaxStoreFiles: 2, BlockBytes: 256, Compactor: trig})
	defer s.Close()
	for b := 0; b < 4; b++ {
		s.Put(fmt.Sprintf("k%d", b), []byte("v"))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumFiles(); got != 4 {
		t.Fatalf("files = %d, want 4 (no inline compaction with a Compactor)", got)
	}
	trig.mu.Lock()
	calls := len(trig.calls)
	last := CompactionPressure{}
	if calls > 0 {
		last = trig.calls[calls-1]
	}
	trig.mu.Unlock()
	if calls == 0 {
		t.Fatal("compactor never notified")
	}
	if last.NumFiles <= 2 || last.TotalBytes <= 0 {
		t.Fatalf("pressure = %+v", last)
	}

	// Without a Compactor the same sequence compacts inline.
	s2 := NewStore(Config{MemstoreFlushBytes: 1 << 30, MaxStoreFiles: 2, BlockBytes: 256})
	defer s2.Close()
	for b := 0; b < 4; b++ {
		s2.Put(fmt.Sprintf("k%d", b), []byte("v"))
		s2.Flush()
	}
	if got := s2.NumFiles(); got > 2 {
		t.Fatalf("legacy inline path: files = %d, want <= 2", got)
	}
}

// TestWriteStallAccountsAndReleases: at the hard ceiling a writer
// stalls; the stall is accounted (never hidden) and a compaction that
// shrinks the stack releases it long before the stall timeout.
func TestWriteStallAccountsAndReleases(t *testing.T) {
	trig := &recordingTrigger{}
	s := NewStore(Config{
		MemstoreFlushBytes: 1 << 30,
		MaxStoreFiles:      2,
		HardMaxStoreFiles:  3,
		StallTimeout:       100 * time.Millisecond,
		BlockBytes:         256,
		Compactor:          trig,
	})
	defer s.Close()
	for b := 0; b < 3; b++ {
		s.Put(fmt.Sprintf("k%d", b), []byte("v"))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// 3 files = hard ceiling; with nobody compacting, the next Put must
	// stall for the full timeout, then proceed.
	start := time.Now()
	if err := s.Put("stalled", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 100*time.Millisecond {
		t.Fatalf("write did not stall at the hard ceiling (took %v)", e)
	}
	st := s.Stats()
	if st.StallNanos < int64(100*time.Millisecond) || st.StalledWrites == 0 {
		t.Fatalf("stall not accounted: %+v", st)
	}

	// Now stall again, but release via a compaction: the Put must
	// return promptly, far inside the generous timeout.
	s.Flush() // 4 files, still over the ceiling
	cfg := s.Config()
	if cfg.StallTimeout != 100*time.Millisecond {
		t.Fatalf("config timeout = %v", cfg.StallTimeout)
	}
	done := make(chan error, 1)
	go func() { done <- s.Put("released", []byte("v")) }()
	time.Sleep(10 * time.Millisecond) // let the Put park at the gate
	if err := s.Compact(false); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write not released by the compaction")
	}
	if got := s.NumFiles(); got != 1 {
		t.Fatalf("files = %d", got)
	}
}

// TestStallQueueDepthGauge: NoteCompactionQueued must drive the
// Stats.CompactionQueueDepth gauge both ways.
func TestStallQueueDepthGauge(t *testing.T) {
	s := NewStore(Config{})
	defer s.Close()
	s.NoteCompactionQueued(1)
	if got := s.Stats().CompactionQueueDepth; got != 1 {
		t.Fatalf("depth = %d", got)
	}
	s.NoteCompactionQueued(-1)
	if got := s.Stats().CompactionQueueDepth; got != 0 {
		t.Fatalf("depth = %d", got)
	}
}

// TestWriteAmplificationReported: after flushes and a compaction the
// snapshot must report amplification = physical/logical > 0.
func TestWriteAmplificationReported(t *testing.T) {
	s := NewStore(Config{MemstoreFlushBytes: 1 << 30, MaxStoreFiles: 100, BlockBytes: 256})
	defer s.Close()
	for b := 0; b < 3; b++ {
		for i := 0; i < 50; i++ {
			s.Put(fmt.Sprintf("b%d-k%02d", b, i), []byte("0123456789"))
		}
		s.Flush()
	}
	if err := s.Compact(false); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.UserBytes <= 0 || st.FlushedBytes <= 0 || st.CompactionBytesWritten <= 0 {
		t.Fatalf("byte counters: %+v", st)
	}
	want := float64(st.FlushedBytes+st.CompactionBytesWritten) / float64(st.UserBytes)
	if st.WriteAmplification != want || st.WriteAmplification <= 1 {
		t.Fatalf("write amp = %v, want %v (> 1: flush + compaction rewrite)", st.WriteAmplification, want)
	}
	// Aggregation recomputes the ratio from summed counters.
	sum := st.Add(st)
	if sum.WriteAmplification != want {
		t.Fatalf("aggregated amp = %v, want %v", sum.WriteAmplification, want)
	}
}

// TestCompactFilesRacesFlushSafely: a flush landing between a
// compaction's snapshot and its swap must neither be lost nor block —
// the contiguous-run splice leaves the newer file on top.
func TestCompactFilesRacesFlushSafely(t *testing.T) {
	s, g := openGatedStore(t, 3)
	defer s.Close()
	ids := make([]uint64, 0, 3)
	for _, fs := range s.FileStats() {
		ids = append(ids, fs.ID)
	}
	g.armed.Store(true)
	done := make(chan error, 1)
	go func() {
		_, err := s.CompactFiles(CompactionSelection{IDs: ids, Major: true})
		done <- err
	}()
	<-g.entered
	// Flush a new file mid-compaction.
	if err := s.Put("mid-flight", []byte("v")); err != nil {
		t.Fatal(err)
	}
	g.armed.Store(false)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(g.gate)
	if err := <-done; err != nil {
		t.Fatalf("compaction racing flush: %v", err)
	}
	if got := s.NumFiles(); got != 2 {
		t.Fatalf("files = %d, want 2 (mid-flight flush + merged)", got)
	}
	if _, err := s.Get("mid-flight"); err != nil {
		t.Fatalf("flush during compaction lost: %v", err)
	}
	for b := 0; b < 3; b++ {
		if _, err := s.Get(fmt.Sprintf("b%02d-k%03d", b, 3)); err != nil {
			t.Fatalf("compacted key lost: %v", err)
		}
	}
}
