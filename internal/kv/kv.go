// Package kv implements the storage engine underlying the simulated HBase
// region server: an LSM-style store with an in-memory memstore
// (skiplist), immutable block-organized store files, an LRU block cache
// with byte accounting, a write-ahead log, flushes, minor/major
// compactions, and merged iterators for scans.
//
// The engine mirrors the knobs the paper tunes per node profile:
//
//   - memstore flush threshold (memstore size),
//   - block cache capacity (block cache size),
//   - block size (random-read vs sequential-scan trade-off).
//
// It is a real store — data written is data served — so the functional
// layer of the reproduction (examples, unit and property tests) runs
// against genuine reads, writes, scans, flushes and compactions.
//
// # Storage backends
//
// Store files are views over a pluggable BlockSource, and the whole
// persistence layer hangs off one StorageBackend interface: with a nil
// backend (NewStore) files live on the heap; with a durable backend
// (OpenStore + Config.OpenBackend, implemented by met/internal/durable)
// flushes and compactions write real SSTables, mutations are logged to
// an fsynced WAL before acknowledgement, and OpenStore recovers both on
// restart. The engine code path — cache, index, iterators, compaction —
// is identical either way.
//
// # Concurrency model
//
// A Store is safe for concurrent use by any number of goroutines. Its
// reader/writer lock lets Gets proceed in parallel over the immutable
// store-file stack and the memstore, while Puts, Deletes, flushes,
// Recover and Close serialize as exclusive writers. Scan holds the read
// lock only long enough to snapshot the memstore pointer and the file
// stack, then iterates lock-free: store files are immutable, the file
// stack is replaced rather than mutated, and the memstore skiplist
// publishes nodes through atomic pointers, so a long scan never stalls
// the write path. The BlockCache is internally locked (every lookup
// mutates LRU recency) and may be shared across stores; the engine
// counters behind Stats are atomics. Lock ordering is Store.mu before
// BlockCache.mu — the cache never calls back into a store, so the order
// cannot invert. With a group-commit WAL, writers append and apply
// under the write lock but wait for the shared fsync outside it, so
// concurrent writers batch their durability cost.
//
// # Background compaction
//
// Compaction I/O never runs under the store write lock. CompactFiles
// merges a selected contiguous run of files in three phases — snapshot
// under a brief read lock, merge and persist with no lock held
// (rate-limited by a shared IOBudget), splice under a brief write lock
// — so Gets, Puts and Scans proceed throughout a compaction. With
// Config.Compactor set, a flush that pushes the file count over
// MaxStoreFiles fires the trigger (outside all locks) and a scheduler
// (met/internal/compaction) plans and executes CompactFiles on worker
// goroutines; at Config.HardMaxStoreFiles writers stall — outside the
// locks, bounded by StallTimeout, accounted in Stats.StallNanos — until
// compaction catches up. Without a Compactor the engine keeps its
// legacy behavior: flushes compact inline under the write lock, which
// the pure-simulation layers still use.
//
// # Static analysis & invariants
//
// The concurrency contract above is machine-checked: cmd/metlint (an
// in-repo go/analysis-style suite, run by CI as `go vet -vettool`)
// fails the build when code violates it. The invariants it enforces
// here:
//
//   - locksafe: no blocking call (file I/O, fsync, time.Sleep,
//     Budget.WaitBackground, CompactFiles, ...) and no channel
//     send/receive while Store.mu is held. This is what keeps Gets
//     behind a flush or compaction fast — the only waits allowed under
//     the lock are memory-speed.
//   - atomicfield: a field accessed through sync/atomic anywhere is
//     accessed through sync/atomic everywhere; atomic.* typed fields
//     are never copied or read as plain values. The Stats counters and
//     the skiplist's published pointers rely on this.
//   - nolockcopy: no function receives or returns a Store (or anything
//     embedding a sync primitive) by value.
//   - syncerr: the error from WAL.Append and StorageBackend.Close is
//     never silently discarded — dropping it would acknowledge a write
//     that never became durable.
//
// The analyzers are intraprocedural: they see a lock and its critical
// section within one function body. Helpers that lock on behalf of a
// caller are outside their scope, which is why the engine keeps
// lock/unlock pairs and the guarded work in the same function. Real
// exceptions carry an inline `//lint:allow <analyzer> <reason>`; the
// reason is mandatory and reviewed, not boilerplate.
package kv

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrNotFound is returned by Get when the key has no live version.
	ErrNotFound = errors.New("kv: key not found")
	// ErrClosed is returned when operating on a closed store.
	ErrClosed = errors.New("kv: store closed")
)

// Entry is one versioned cell. HBase's model is (row, column, timestamp)
// -> value; the reproduction flattens row+column into Key, which is what
// the paper's YCSB usage does too (single column family, one field blob).
type Entry struct {
	Key       string
	Value     []byte
	Timestamp uint64
	Tombstone bool
}

// Size returns the approximate heap footprint of the entry in bytes,
// used for memstore accounting and block packing.
func (e Entry) Size() int { return len(e.Key) + len(e.Value) + 16 }

// String implements fmt.Stringer for debugging.
func (e Entry) String() string {
	if e.Tombstone {
		return fmt.Sprintf("%s@%d<deleted>", e.Key, e.Timestamp)
	}
	return fmt.Sprintf("%s@%d=%dB", e.Key, e.Timestamp, len(e.Value))
}

// supersedes reports whether e should shadow other for the same key:
// newer timestamps win; on a timestamp tie the later write (which the
// store tracks via sequence numbers folded into the timestamp) wins.
func (e Entry) supersedes(other Entry) bool { return e.Timestamp >= other.Timestamp }

// Iterator walks entries in ascending key order. Next returns false when
// exhausted. The same Entry memory may be reused between calls; callers
// that retain entries must copy them.
type Iterator interface {
	// Next advances to the next entry, returning false at the end.
	Next() bool
	// Entry returns the current entry. Only valid after Next returned true.
	Entry() Entry
}

// Stats aggregates engine activity counters. All counters are cumulative
// since store creation.
type Stats struct {
	Gets            int64
	Puts            int64
	Deletes         int64
	Scans           int64
	ScannedEntries  int64
	CacheHits       int64
	CacheMisses     int64
	Flushes         int64
	FlushedBytes    int64
	Compactions     int64
	CompactedBytes  int64
	BlocksRead      int64
	FilterNegatives int64 // Gets answered "absent" by a file filter, no block read
	MemstoreCurrent int64

	// UserBytes is the logical payload written by Put/Delete/Import —
	// the denominator of write amplification.
	UserBytes int64
	// CompactionBytesWritten is the total size of files produced by
	// compactions (minor and major).
	CompactionBytesWritten int64
	// StallNanos is the cumulative time writers spent blocked on the
	// hard store-file ceiling waiting for background compaction to
	// catch up. Reported, never hidden: a stalled serving path shows up
	// here rather than as unexplained latency.
	StallNanos int64
	// StalledWrites counts mutations that hit the stall path at all.
	StalledWrites int64
	// CompactionQueueDepth is the number of compaction requests for
	// this store currently sitting in a scheduler queue (a gauge, not
	// cumulative; typically 0 or 1 because schedulers coalesce).
	CompactionQueueDepth int64
	// WriteAmplification is (FlushedBytes + CompactionBytesWritten) /
	// UserBytes — how many bytes the engine wrote per logical byte the
	// user wrote. Zero until the first flush.
	WriteAmplification float64
}

// CacheHitRatio returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) CacheHitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Add returns the element-wise sum of two stats snapshots; embedders use
// it to aggregate per-store stats to a server-wide view. The derived
// WriteAmplification is recomputed from the summed byte counters.
func (s Stats) Add(o Stats) Stats {
	out := Stats{
		Gets:                   s.Gets + o.Gets,
		Puts:                   s.Puts + o.Puts,
		Deletes:                s.Deletes + o.Deletes,
		Scans:                  s.Scans + o.Scans,
		ScannedEntries:         s.ScannedEntries + o.ScannedEntries,
		CacheHits:              s.CacheHits + o.CacheHits,
		CacheMisses:            s.CacheMisses + o.CacheMisses,
		Flushes:                s.Flushes + o.Flushes,
		FlushedBytes:           s.FlushedBytes + o.FlushedBytes,
		Compactions:            s.Compactions + o.Compactions,
		CompactedBytes:         s.CompactedBytes + o.CompactedBytes,
		BlocksRead:             s.BlocksRead + o.BlocksRead,
		FilterNegatives:        s.FilterNegatives + o.FilterNegatives,
		MemstoreCurrent:        s.MemstoreCurrent + o.MemstoreCurrent,
		UserBytes:              s.UserBytes + o.UserBytes,
		CompactionBytesWritten: s.CompactionBytesWritten + o.CompactionBytesWritten,
		StallNanos:             s.StallNanos + o.StallNanos,
		StalledWrites:          s.StalledWrites + o.StalledWrites,
		CompactionQueueDepth:   s.CompactionQueueDepth + o.CompactionQueueDepth,
	}
	if out.UserBytes > 0 {
		out.WriteAmplification = float64(out.FlushedBytes+out.CompactionBytesWritten) / float64(out.UserBytes)
	}
	return out
}
