// Package kv implements the storage engine underlying the simulated HBase
// region server: an LSM-style store with an in-memory memstore
// (skiplist), immutable block-organized store files, an LRU block cache
// with byte accounting, a write-ahead log, background-free flush and
// major compaction, and merged iterators for scans.
//
// The engine mirrors the knobs the paper tunes per node profile:
//
//   - memstore flush threshold (memstore size),
//   - block cache capacity (block cache size),
//   - block size (random-read vs sequential-scan trade-off).
//
// It is a real store — data written is data served — so the functional
// layer of the reproduction (examples, unit and property tests) runs
// against genuine reads, writes, scans, flushes and compactions.
//
// # Storage backends
//
// Store files are views over a pluggable BlockSource, and the whole
// persistence layer hangs off one StorageBackend interface: with a nil
// backend (NewStore) files live on the heap; with a durable backend
// (OpenStore + Config.OpenBackend, implemented by met/internal/durable)
// flushes and compactions write real SSTables, mutations are logged to
// an fsynced WAL before acknowledgement, and OpenStore recovers both on
// restart. The engine code path — cache, index, iterators, compaction —
// is identical either way.
//
// # Concurrency model
//
// A Store is safe for concurrent use by any number of goroutines. Its
// reader/writer lock lets Gets proceed in parallel over the immutable
// store-file stack and the memstore, while Puts, Deletes, flushes,
// compactions, Recover and Close serialize as exclusive writers. Scan
// holds the read lock only long enough to snapshot the memstore pointer
// and the file stack, then iterates lock-free: store files are
// immutable, the file stack is replaced rather than mutated, and the
// memstore skiplist publishes nodes through atomic pointers, so a long
// scan never stalls the write path. The BlockCache is internally locked
// (every lookup mutates LRU recency) and may be shared across stores;
// the engine counters behind Stats are atomics. Lock ordering is
// Store.mu before BlockCache.mu — the cache never calls back into a
// store, so the order cannot invert. With a group-commit WAL, writers
// append and apply under the write lock but wait for the shared fsync
// outside it, so concurrent writers batch their durability cost.
package kv

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrNotFound is returned by Get when the key has no live version.
	ErrNotFound = errors.New("kv: key not found")
	// ErrClosed is returned when operating on a closed store.
	ErrClosed = errors.New("kv: store closed")
)

// Entry is one versioned cell. HBase's model is (row, column, timestamp)
// -> value; the reproduction flattens row+column into Key, which is what
// the paper's YCSB usage does too (single column family, one field blob).
type Entry struct {
	Key       string
	Value     []byte
	Timestamp uint64
	Tombstone bool
}

// Size returns the approximate heap footprint of the entry in bytes,
// used for memstore accounting and block packing.
func (e Entry) Size() int { return len(e.Key) + len(e.Value) + 16 }

// String implements fmt.Stringer for debugging.
func (e Entry) String() string {
	if e.Tombstone {
		return fmt.Sprintf("%s@%d<deleted>", e.Key, e.Timestamp)
	}
	return fmt.Sprintf("%s@%d=%dB", e.Key, e.Timestamp, len(e.Value))
}

// supersedes reports whether e should shadow other for the same key:
// newer timestamps win; on a timestamp tie the later write (which the
// store tracks via sequence numbers folded into the timestamp) wins.
func (e Entry) supersedes(other Entry) bool { return e.Timestamp >= other.Timestamp }

// Iterator walks entries in ascending key order. Next returns false when
// exhausted. The same Entry memory may be reused between calls; callers
// that retain entries must copy them.
type Iterator interface {
	// Next advances to the next entry, returning false at the end.
	Next() bool
	// Entry returns the current entry. Only valid after Next returned true.
	Entry() Entry
}

// Stats aggregates engine activity counters. All counters are cumulative
// since store creation.
type Stats struct {
	Gets            int64
	Puts            int64
	Deletes         int64
	Scans           int64
	ScannedEntries  int64
	CacheHits       int64
	CacheMisses     int64
	Flushes         int64
	FlushedBytes    int64
	Compactions     int64
	CompactedBytes  int64
	BlocksRead      int64
	FilterNegatives int64 // Gets answered "absent" by a file filter, no block read
	MemstoreCurrent int64
}

// CacheHitRatio returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) CacheHitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}
