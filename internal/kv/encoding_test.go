package kv

import (
	"fmt"
	"testing"
	"testing/quick"

	"met/internal/sim"
)

func TestBlockCodecRoundTrip(t *testing.T) {
	entries := []Entry{
		{Key: "a", Value: []byte("1"), Timestamp: 1},
		{Key: "b", Value: nil, Timestamp: 2, Tombstone: true},
		{Key: "c", Value: []byte("long value with spaces"), Timestamp: 1 << 40},
	}
	got, err := DecodeBlock(EncodeBlock(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range entries {
		e, g := entries[i], got[i]
		if e.Key != g.Key || string(e.Value) != string(g.Value) ||
			e.Timestamp != g.Timestamp || e.Tombstone != g.Tombstone {
			t.Fatalf("entry %d: %v != %v", i, g, e)
		}
	}
	// Empty block round-trips too.
	if got, err := DecodeBlock(EncodeBlock(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty block: %v, %v", got, err)
	}
}

func TestBlockCodecProperty(t *testing.T) {
	err := quick.Check(func(keys []string, vals [][]byte, seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		var entries []Entry
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			entries = append(entries, Entry{
				Key: k, Value: v, Timestamp: rng.Uint64() >> 1, Tombstone: rng.Intn(2) == 0,
			})
		}
		got, err := DecodeBlock(EncodeBlock(entries))
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i].Key != entries[i].Key || string(got[i].Value) != string(entries[i].Value) ||
				got[i].Timestamp != entries[i].Timestamp || got[i].Tombstone != entries[i].Tombstone {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBlockCorrupt(t *testing.T) {
	good := EncodeBlock([]Entry{{Key: "k", Value: []byte("v"), Timestamp: 3}})
	cases := [][]byte{
		nil,
		{},
		good[:len(good)-1], // truncated
		append(good, 0xff), // trailing garbage
		{0x05},             // claims 5 entries, has none
		{0x01, 0x00, 0xff}, // bogus key length
	}
	for i, c := range cases {
		if _, err := DecodeBlock(c); err == nil {
			t.Errorf("case %d: corrupt block decoded", i)
		}
	}
}

func TestFileCodecRoundTrip(t *testing.T) {
	var entries []Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, Entry{
			Key:       fmt.Sprintf("key%04d", i),
			Value:     []byte(fmt.Sprintf("value-%d", i)),
			Timestamp: uint64(i + 1),
		})
	}
	f := BuildStoreFile(9, entries, 512)
	if f.NumBlocks() < 2 {
		t.Fatalf("want multiple blocks, got %d", f.NumBlocks())
	}
	wire, err := EncodeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFile(10, 512, wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entries() != f.Entries() {
		t.Fatalf("entries %d != %d", back.Entries(), f.Entries())
	}
	minK, maxK := back.KeyRange()
	wantMin, wantMax := f.KeyRange()
	if minK != wantMin || maxK != wantMax {
		t.Fatalf("range [%s,%s] != [%s,%s]", minK, maxK, wantMin, wantMax)
	}
	// Every key findable in the decoded file.
	for i := 0; i < 500; i += 37 {
		key := fmt.Sprintf("key%04d", i)
		e, found, _ := back.get(key, nil, nil, nil)
		if !found || string(e.Value) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %s lost in round trip", key)
		}
	}
}

func TestDecodeFileCorruption(t *testing.T) {
	f := BuildStoreFile(1, []Entry{{Key: "k", Value: []byte("v"), Timestamp: 1}}, 64)
	wire, err := EncodeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	// Bad magic.
	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xff
	if _, err := DecodeFile(2, 64, bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), wire...)
	bad[4] = 99
	if _, err := DecodeFile(2, 64, bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// Flipped payload bit breaks the CRC.
	bad = append([]byte(nil), wire...)
	bad[len(bad)-6] ^= 0x01
	if _, err := DecodeFile(2, 64, bad); err == nil {
		t.Fatal("CRC violation accepted")
	}
	// Truncated file.
	if _, err := DecodeFile(2, 64, wire[:len(wire)-3]); err == nil {
		t.Fatal("truncated file accepted")
	}
	if _, err := DecodeFile(2, 64, nil); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestFileCodecEmptyFile(t *testing.T) {
	f := BuildStoreFile(1, nil, 64)
	wire, err := EncodeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFile(2, 64, wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entries() != 0 {
		t.Fatalf("entries = %d", back.Entries())
	}
}
