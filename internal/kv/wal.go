package kv

// WAL is the write-ahead log contract. Every mutation is appended before
// it is applied to the memstore; Truncate is called once a flush has made
// the logged entries durable in a store file.
//
// The simulated deployment uses MemoryWAL (the experiments account for
// WAL I/O in the performance model instead); the interface exists so an
// embedder can plug a durable implementation.
type WAL interface {
	// Append records a mutation. It must not retain e.Value.
	Append(e Entry) error
	// Truncate discards entries with Timestamp <= upTo.
	Truncate(upTo uint64)
	// Entries returns the retained entries, oldest first (recovery).
	Entries() []Entry
}

// GroupWAL is an optional WAL extension for group commit. AppendBuffered
// writes the record to the log's buffer (establishing its position in the
// replay order) and returns a commit function; the caller invokes commit
// outside the engine lock, where it blocks until the record is durable on
// disk. Concurrent writers that buffer before the next fsync share that
// one fsync — the classic group commit amortization. The engine detects
// the extension with a type assertion, so plain WALs keep working.
type GroupWAL interface {
	WAL
	// AppendBuffered buffers a mutation and returns the function that
	// waits for its durability. It must not retain e.Value.
	AppendBuffered(e Entry) (commit func() error, err error)
}

// MemoryWAL is an in-memory WAL used by tests and the simulation. It
// copies values on append so callers may reuse buffers.
type MemoryWAL struct {
	entries []Entry
}

// NewMemoryWAL returns an empty in-memory WAL.
func NewMemoryWAL() *MemoryWAL { return &MemoryWAL{} }

// Append implements WAL.
func (w *MemoryWAL) Append(e Entry) error {
	e.Value = append([]byte(nil), e.Value...)
	w.entries = append(w.entries, e)
	return nil
}

// Truncate implements WAL.
func (w *MemoryWAL) Truncate(upTo uint64) {
	kept := w.entries[:0]
	for _, e := range w.entries {
		if e.Timestamp > upTo {
			kept = append(kept, e)
		}
	}
	// Zero the tail so retained values can be collected.
	for i := len(kept); i < len(w.entries); i++ {
		w.entries[i] = Entry{}
	}
	w.entries = kept
}

// Entries implements WAL.
func (w *MemoryWAL) Entries() []Entry { return w.entries }

// Len returns the number of retained entries.
func (w *MemoryWAL) Len() int { return len(w.entries) }
