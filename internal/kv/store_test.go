package kv

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"met/internal/sim"
)

func newTestStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return NewStore(cfg)
}

func TestPutGet(t *testing.T) {
	s := newTestStore(t, Config{})
	if err := s.Put("user1", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("user1")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "alice" {
		t.Fatalf("got %q", v)
	}
	if _, err := s.Get("nope"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	s := newTestStore(t, Config{})
	for i := 0; i < 10; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v9" {
		t.Fatalf("got %q, want v9", v)
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("k", []byte("v"))
	s.Delete("k")
	if _, err := s.Get("k"); err != ErrNotFound {
		t.Fatalf("deleted key err = %v", err)
	}
	// Re-put after delete resurrects.
	s.Put("k", []byte("v2"))
	v, err := s.Get("k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestGetAcrossFlush(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("a", []byte("1"))
	s.Flush()
	s.Put("b", []byte("2"))
	s.Flush()
	s.Put("c", []byte("3"))
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, err := s.Get(k)
		if err != nil || string(v) != want {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	if s.NumFiles() != 2 {
		t.Fatalf("files = %d, want 2", s.NumFiles())
	}
}

func TestNewestVersionWinsAcrossFiles(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("k", []byte("old"))
	s.Flush()
	s.Put("k", []byte("mid"))
	s.Flush()
	s.Put("k", []byte("new"))
	v, _ := s.Get("k")
	if string(v) != "new" {
		t.Fatalf("got %q", v)
	}
	s.Flush()
	v, _ = s.Get("k")
	if string(v) != "new" {
		t.Fatalf("after flush got %q", v)
	}
}

func TestDeleteShadowsAcrossFlush(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("k", []byte("v"))
	s.Flush()
	s.Delete("k")
	s.Flush()
	if _, err := s.Get("k"); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
	// Major compaction drops the tombstone but must not resurrect.
	s.Compact(true)
	if _, err := s.Get("k"); err != ErrNotFound {
		t.Fatalf("after compact err = %v", err)
	}
}

func TestAutoFlushOnThreshold(t *testing.T) {
	s := newTestStore(t, Config{MemstoreFlushBytes: 1024})
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("key%03d", i), bytes.Repeat([]byte("x"), 64))
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("no automatic flush happened")
	}
	if st.MemstoreCurrent >= 1024 {
		t.Fatalf("memstore still %d bytes", st.MemstoreCurrent)
	}
	// All keys remain readable.
	for i := 0; i < 100; i++ {
		if _, err := s.Get(fmt.Sprintf("key%03d", i)); err != nil {
			t.Fatalf("key%03d lost: %v", i, err)
		}
	}
}

func TestMinorCompactionCapsFiles(t *testing.T) {
	s := newTestStore(t, Config{MaxStoreFiles: 3})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
		s.Flush()
	}
	if got := s.NumFiles(); got > 4 {
		t.Fatalf("files = %d, want <= 4", got)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("no compaction ran")
	}
}

func TestScanRange(t *testing.T) {
	s := newTestStore(t, Config{})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("%d", i)))
	}
	s.Flush()
	for i := 20; i < 30; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("%d", i)))
	}
	got, err := s.Scan("k05", "k25", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("scan returned %d entries, want 20", len(got))
	}
	if got[0].Key != "k05" || got[19].Key != "k24" {
		t.Fatalf("range [%s..%s]", got[0].Key, got[19].Key)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key <= got[i-1].Key {
			t.Fatal("scan not sorted")
		}
	}
}

func TestScanLimit(t *testing.T) {
	s := newTestStore(t, Config{})
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	got, err := s.Scan("", "", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
}

func TestScanSkipsTombstonesAndOldVersions(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Put("b", []byte("2x"))
	s.Put("c", []byte("3"))
	s.Flush()
	s.Delete("a")
	got, err := s.Scan("", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scan = %v", got)
	}
	if got[0].Key != "b" || string(got[0].Value) != "2x" || got[1].Key != "c" {
		t.Fatalf("scan = %v", got)
	}
}

func TestScanEmptyStore(t *testing.T) {
	s := newTestStore(t, Config{})
	got, err := s.Scan("", "", -1)
	if err != nil || len(got) != 0 {
		t.Fatalf("scan = %v, %v", got, err)
	}
}

func TestMajorCompactionShrinks(t *testing.T) {
	s := newTestStore(t, Config{MaxStoreFiles: 100})
	for i := 0; i < 100; i++ {
		s.Put("hot", bytes.Repeat([]byte("v"), 100))
		s.Put(fmt.Sprintf("cold%d", i), []byte("x"))
		if i%10 == 9 {
			s.Flush()
		}
	}
	s.Flush()
	before := s.DataBytes()
	s.Compact(true)
	after := s.DataBytes()
	if after >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, after)
	}
	if s.NumFiles() != 1 {
		t.Fatalf("files = %d", s.NumFiles())
	}
	v, err := s.Get("hot")
	if err != nil || len(v) != 100 {
		t.Fatalf("hot lost: %v", err)
	}
}

func TestCacheServesRepeatedReads(t *testing.T) {
	s := newTestStore(t, Config{BlockCacheBytes: 1 << 20, BlockBytes: 256})
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte("v"), 32))
	}
	s.Flush()
	for i := 0; i < 100; i++ {
		s.Get("k050")
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits")
	}
	if s.CacheHitRatio() < 0.9 {
		t.Fatalf("hit ratio %.2f too low", s.CacheHitRatio())
	}
}

func TestTinyCacheThrashes(t *testing.T) {
	// A cache smaller than the working set must evict; reads still work.
	s := newTestStore(t, Config{BlockCacheBytes: 600, BlockBytes: 512})
	for i := 0; i < 500; i++ {
		s.Put(fmt.Sprintf("k%04d", i), bytes.Repeat([]byte("v"), 64))
	}
	s.Flush()
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i += 50 {
			if _, err := s.Get(fmt.Sprintf("k%04d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("expected misses with tiny cache")
	}
}

func TestWALRecovery(t *testing.T) {
	wal := NewMemoryWAL()
	s := NewStore(Config{WAL: wal, Seed: 1})
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Delete("a")
	// Simulate a crash: rebuild a fresh store over the same WAL.
	s2 := NewStore(Config{WAL: wal, Seed: 1})
	if n := s2.Recover(); n != 3 {
		t.Fatalf("recovered %d entries, want 3", n)
	}
	if _, err := s2.Get("a"); err != ErrNotFound {
		t.Fatalf("a err = %v", err)
	}
	v, err := s2.Get("b")
	if err != nil || string(v) != "2" {
		t.Fatalf("b = %q, %v", v, err)
	}
}

func TestWALTruncatedOnFlush(t *testing.T) {
	wal := NewMemoryWAL()
	s := NewStore(Config{WAL: wal, Seed: 1})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if wal.Len() != 10 {
		t.Fatalf("wal len = %d", wal.Len())
	}
	s.Flush()
	if wal.Len() != 0 {
		t.Fatalf("wal not truncated: %d", wal.Len())
	}
	s.Put("post", []byte("v"))
	if wal.Len() != 1 {
		t.Fatalf("wal len = %d", wal.Len())
	}
}

func TestClosedStore(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("k", []byte("v"))
	s.Close()
	if err := s.Put("k2", []byte("v")); err != ErrClosed {
		t.Fatalf("Put err = %v", err)
	}
	if _, err := s.Get("k"); err != ErrClosed {
		t.Fatalf("Get err = %v", err)
	}
	if _, err := s.Scan("", "", -1); err != ErrClosed {
		t.Fatalf("Scan err = %v", err)
	}
	if err := s.Delete("k"); err != ErrClosed {
		t.Fatalf("Delete err = %v", err)
	}
}

func TestGetCopiesValue(t *testing.T) {
	s := newTestStore(t, Config{})
	s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get returned aliased memory")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := newTestStore(t, Config{})
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Put retained caller's buffer")
	}
}

// TestStoreMatchesModel drives the store with a random operation sequence
// and compares every result against a plain map model.
func TestStoreMatchesModel(t *testing.T) {
	rng := sim.NewRNG(2024)
	s := newTestStore(t, Config{MemstoreFlushBytes: 2048, BlockBytes: 256, MaxStoreFiles: 3})
	model := make(map[string]string)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	for step := 0; step < 5000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put
			v := fmt.Sprintf("v%d", step)
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 4: // delete
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 5: // flush or compact occasionally
			if rng.Intn(4) == 0 {
				s.Compact(rng.Intn(2) == 0)
			} else {
				s.Flush()
			}
		default: // get
			v, err := s.Get(k)
			want, ok := model[k]
			if ok {
				if err != nil || string(v) != want {
					t.Fatalf("step %d: Get(%q) = %q, %v; want %q", step, k, v, err, want)
				}
			} else if err != ErrNotFound {
				t.Fatalf("step %d: Get(%q) err = %v, want ErrNotFound", step, k, err)
			}
		}
	}
	// Final full-scan comparison.
	got, err := s.Scan("", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	if len(got) != len(wantKeys) {
		t.Fatalf("scan has %d keys, model %d", len(got), len(wantKeys))
	}
	for i, e := range got {
		if e.Key != wantKeys[i] || string(e.Value) != model[e.Key] {
			t.Fatalf("scan[%d] = %s=%q, want %s=%q", i, e.Key, e.Value, wantKeys[i], model[wantKeys[i]])
		}
	}
}

// TestScanEqualsSortedModel is a property test: for random key sets, a
// full scan equals the sorted live key set.
func TestScanEqualsSortedModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed uint16, n uint8) bool {
		rng := sim.NewRNG(uint64(seed))
		s := NewStore(Config{Seed: uint64(seed) + 1, MemstoreFlushBytes: 1024, BlockBytes: 128})
		model := map[string]bool{}
		for i := 0; i < int(n); i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(100))
			if rng.Intn(4) == 0 {
				s.Delete(k)
				delete(model, k)
			} else {
				s.Put(k, []byte("v"))
				model[k] = true
			}
		}
		got, err := s.Scan("", "", -1)
		if err != nil {
			return false
		}
		if len(got) != len(model) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Key >= got[i].Key {
				return false
			}
		}
		for _, e := range got {
			if !model[e.Key] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStorePut(b *testing.B) {
	s := NewStore(Config{Seed: 1, MemstoreFlushBytes: 64 << 20})
	val := bytes.Repeat([]byte("v"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key%08d", i), val)
	}
}

func BenchmarkStoreGetCached(b *testing.B) {
	s := NewStore(Config{Seed: 1})
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("key%08d", i), val)
	}
	s.Flush()
	rng := sim.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("key%08d", rng.Intn(10000)))
	}
}

func BenchmarkStoreScan100(b *testing.B) {
	s := NewStore(Config{Seed: 1})
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("key%08d", i), val)
	}
	s.Flush()
	rng := sim.NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := fmt.Sprintf("key%08d", rng.Intn(9900))
		s.Scan(start, "", 100)
	}
}
