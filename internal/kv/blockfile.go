package kv

import (
	"fmt"
	"sort"
)

// Block is one unit of a store file: a run of consecutive entries that is
// loaded (and cached) as a whole. The configured block size trades random
// reads (small blocks load less extraneous data) against sequential scans
// (large blocks amortize per-block overhead), mirroring HBase's HFile
// block size knob.
type Block struct {
	entries []Entry
	bytes   int
}

// Len returns the number of entries in the block.
func (b *Block) Len() int { return len(b.entries) }

// Bytes returns the approximate byte size of the block.
func (b *Block) Bytes() int { return b.bytes }

// StoreFile is an immutable sorted file produced by a memstore flush or a
// compaction. Entries are partitioned into blocks; a sparse index maps
// the first key of each block. StoreFile corresponds to an HBase HFile.
type StoreFile struct {
	id        uint64
	blocks    []*Block
	firstKeys []string // firstKeys[i] is blocks[i].entries[0].Key
	minKey    string
	maxKey    string
	entries   int
	bytes     int
	maxTS     uint64
}

// BuildStoreFile packs sorted entries (key asc, timestamp desc) into a
// file with blocks of at most blockSize bytes. It panics when entries are
// unsorted: store files are only ever built from sorted iterators, so
// unsorted input means engine corruption.
func BuildStoreFile(id uint64, entries []Entry, blockSize int) *StoreFile {
	if blockSize <= 0 {
		blockSize = 64 * 1024
	}
	f := &StoreFile{id: id}
	var cur *Block
	for i, e := range entries {
		if i > 0 && less(e, entries[i-1]) {
			panic(fmt.Sprintf("kv: unsorted entries building file %d", id))
		}
		if cur == nil || (cur.bytes+e.Size() > blockSize && cur.Len() > 0) {
			cur = &Block{}
			f.blocks = append(f.blocks, cur)
			f.firstKeys = append(f.firstKeys, e.Key)
		}
		cur.entries = append(cur.entries, e)
		cur.bytes += e.Size()
		f.bytes += e.Size()
		f.entries++
		if e.Timestamp > f.maxTS {
			f.maxTS = e.Timestamp
		}
	}
	if f.entries > 0 {
		f.minKey = entries[0].Key
		f.maxKey = entries[len(entries)-1].Key
	}
	return f
}

// ID returns the file's unique identifier.
func (f *StoreFile) ID() uint64 { return f.id }

// Bytes returns the file's total data size.
func (f *StoreFile) Bytes() int { return f.bytes }

// Entries returns the number of entry versions stored.
func (f *StoreFile) Entries() int { return f.entries }

// NumBlocks returns the number of blocks.
func (f *StoreFile) NumBlocks() int { return len(f.blocks) }

// KeyRange returns the smallest and largest keys in the file.
func (f *StoreFile) KeyRange() (minKey, maxKey string) { return f.minKey, f.maxKey }

// MaxTimestamp returns the newest timestamp in the file.
func (f *StoreFile) MaxTimestamp() uint64 { return f.maxTS }

// blockFor returns the index of the block that could contain key, or -1
// when the key is out of range.
func (f *StoreFile) blockFor(key string) int {
	if f.entries == 0 || key > f.maxKey {
		return -1
	}
	// The first block whose first key is > key is one past the target.
	i := sort.SearchStrings(f.firstKeys, key)
	if i < len(f.firstKeys) && f.firstKeys[i] == key {
		return i
	}
	if i == 0 {
		if key < f.minKey {
			return -1
		}
		return 0
	}
	return i - 1
}

// get looks up the newest version of key, loading the candidate block
// through the cache. found=false means the key is not in this file.
func (f *StoreFile) get(key string, cache *BlockCache, stats *storeStats) (Entry, bool) {
	bi := f.blockFor(key)
	if bi < 0 {
		return Entry{}, false
	}
	b := f.loadBlock(bi, cache, stats)
	// Entries are (key asc, ts desc); find first entry >= (key, maxTS).
	probe := Entry{Key: key, Timestamp: ^uint64(0)}
	i := sort.Search(len(b.entries), func(i int) bool { return !less(b.entries[i], probe) })
	if i < len(b.entries) && b.entries[i].Key == key {
		return b.entries[i], true
	}
	return Entry{}, false
}

// loadBlock fetches block bi through the cache, recording hit/miss stats.
func (f *StoreFile) loadBlock(bi int, cache *BlockCache, stats *storeStats) *Block {
	if cache == nil {
		if stats != nil {
			stats.cacheMisses.Add(1)
			stats.blocksRead.Add(1)
		}
		return f.blocks[bi]
	}
	key := blockKey{file: f.id, block: bi}
	if b, ok := cache.get(key); ok {
		if stats != nil {
			stats.cacheHits.Add(1)
		}
		return b
	}
	b := f.blocks[bi]
	cache.put(key, b)
	if stats != nil {
		stats.cacheMisses.Add(1)
		stats.blocksRead.Add(1)
	}
	return b
}

// iterator walks the whole file in order, loading blocks through cache.
func (f *StoreFile) iterator(cache *BlockCache, stats *storeStats) Iterator {
	return &fileIter{f: f, cache: cache, stats: stats, block: -1}
}

// iteratorFrom positions at the first entry with key >= start.
func (f *StoreFile) iteratorFrom(start string, cache *BlockCache, stats *storeStats) Iterator {
	it := &fileIter{f: f, cache: cache, stats: stats, block: -1}
	if f.entries == 0 || start > f.maxKey {
		it.block = len(f.blocks) // exhausted
		return it
	}
	bi := f.blockFor(start)
	if bi < 0 {
		bi = 0
	}
	it.block = bi
	it.cur = f.loadBlock(bi, cache, stats)
	probe := Entry{Key: start, Timestamp: ^uint64(0)}
	it.idx = sort.Search(len(it.cur.entries), func(i int) bool { return !less(it.cur.entries[i], probe) }) - 1
	return it
}

type fileIter struct {
	f     *StoreFile
	cache *BlockCache
	stats *storeStats
	block int
	cur   *Block
	idx   int
}

func (it *fileIter) Next() bool {
	for {
		if it.block >= len(it.f.blocks) {
			return false
		}
		if it.cur == nil || it.idx+1 >= len(it.cur.entries) {
			it.block++
			if it.block >= len(it.f.blocks) {
				return false
			}
			it.cur = it.f.loadBlock(it.block, it.cache, it.stats)
			it.idx = -1
			if len(it.cur.entries) == 0 {
				continue
			}
		}
		it.idx++
		return true
	}
}

func (it *fileIter) Entry() Entry { return it.cur.entries[it.idx] }
