package kv

import (
	"fmt"
	"sort"

	"met/internal/obs"
)

// Block is one unit of a store file: a run of consecutive entries that is
// loaded (and cached) as a whole. The configured block size trades random
// reads (small blocks load less extraneous data) against sequential scans
// (large blocks amortize per-block overhead), mirroring HBase's HFile
// block size knob.
type Block struct {
	entries []Entry
	bytes   int
}

// NewBlock builds a block from sorted entries, computing its logical byte
// size. Block sources outside this package (met/internal/durable) use it
// to hand decoded data blocks back to the engine.
func NewBlock(entries []Entry) *Block {
	b := &Block{entries: entries}
	for _, e := range entries {
		b.bytes += e.Size()
	}
	return b
}

// Len returns the number of entries in the block.
func (b *Block) Len() int { return len(b.entries) }

// Bytes returns the approximate byte size of the block.
func (b *Block) Bytes() int { return b.bytes }

// Entries returns the block's entries (shared, not copied; callers must
// treat them as immutable).
func (b *Block) Entries() []Entry { return b.entries }

// BlockSource is the storage behind a StoreFile: an ordered sequence of
// immutable blocks plus an optional membership filter. The engine layers
// the block cache, the sparse key index and the iterators on top, so a
// source only has to produce blocks — from memory (memorySource) or from
// an on-disk SSTable (met/internal/durable).
type BlockSource interface {
	// NumBlocks returns the number of data blocks.
	NumBlocks() int
	// FirstKey returns the first key of block i (the sparse index).
	FirstKey(i int) string
	// LoadBlock materializes block i. The engine caches the result, so a
	// source may read and decode from disk on every call.
	LoadBlock(i int) (*Block, error)
	// MayContain is a fast membership filter: false means the key is
	// definitely absent and no block needs to be read (bloom filter);
	// true means "maybe". Sources without a filter return true.
	MayContain(key string) bool
}

// FileMeta carries the summary statistics a StoreFile serves without
// touching its blocks.
type FileMeta struct {
	Entries int
	Bytes   int
	MinKey  string
	MaxKey  string
	MaxTS   uint64
}

// StoreFile is an immutable sorted file produced by a memstore flush or a
// compaction, corresponding to an HBase HFile. It wraps a BlockSource
// with the sparse first-key index, the block cache and the negative-
// lookup filter, so in-memory and on-disk files serve reads through the
// same code path.
type StoreFile struct {
	id        uint64
	src       BlockSource
	firstKeys []string // firstKeys[i] is the first key of block i
	meta      FileMeta
}

// NewStoreFile wraps a block source and its metadata as a store file.
// The sparse index is copied out of the source once, up front.
func NewStoreFile(id uint64, meta FileMeta, src BlockSource) *StoreFile {
	f := &StoreFile{id: id, src: src, meta: meta}
	f.firstKeys = make([]string, src.NumBlocks())
	for i := range f.firstKeys {
		f.firstKeys[i] = src.FirstKey(i)
	}
	return f
}

// memorySource is the heap-resident BlockSource used by the memory
// backend: blocks live in RAM and every key "may" be present.
type memorySource struct {
	blocks []*Block
}

func (m *memorySource) NumBlocks() int                  { return len(m.blocks) }
func (m *memorySource) FirstKey(i int) string           { return m.blocks[i].entries[0].Key }
func (m *memorySource) LoadBlock(i int) (*Block, error) { return m.blocks[i], nil }
func (m *memorySource) MayContain(key string) bool      { return true }

// PackBlocks partitions sorted entries (key asc, timestamp desc) into
// blocks of at most blockSize bytes and returns them with the file
// metadata. It panics when entries are unsorted: files are only ever
// built from sorted iterators, so unsorted input means engine corruption.
// Both the memory backend and the durable SSTable writer build on it so
// the two formats pack identically.
func PackBlocks(entries []Entry, blockSize int) ([]*Block, FileMeta) {
	if blockSize <= 0 {
		blockSize = 64 * 1024
	}
	var blocks []*Block
	var meta FileMeta
	var cur *Block
	for i, e := range entries {
		if i > 0 && less(e, entries[i-1]) {
			panic(fmt.Sprintf("kv: unsorted entries packing blocks (%q after %q)", e.Key, entries[i-1].Key))
		}
		if cur == nil || (cur.bytes+e.Size() > blockSize && cur.Len() > 0) {
			cur = &Block{}
			blocks = append(blocks, cur)
		}
		cur.entries = append(cur.entries, e)
		cur.bytes += e.Size()
		meta.Bytes += e.Size()
		meta.Entries++
		if e.Timestamp > meta.MaxTS {
			meta.MaxTS = e.Timestamp
		}
	}
	if meta.Entries > 0 {
		meta.MinKey = entries[0].Key
		meta.MaxKey = entries[len(entries)-1].Key
	}
	return blocks, meta
}

// BuildStoreFile packs sorted entries into an in-memory store file.
func BuildStoreFile(id uint64, entries []Entry, blockSize int) *StoreFile {
	blocks, meta := PackBlocks(entries, blockSize)
	return NewStoreFile(id, meta, &memorySource{blocks: blocks})
}

// ID returns the file's unique identifier.
func (f *StoreFile) ID() uint64 { return f.id }

// Bytes returns the file's total data size (for durable files, the real
// on-disk size).
func (f *StoreFile) Bytes() int { return f.meta.Bytes }

// Entries returns the number of entry versions stored.
func (f *StoreFile) Entries() int { return f.meta.Entries }

// NumBlocks returns the number of blocks.
func (f *StoreFile) NumBlocks() int { return len(f.firstKeys) }

// KeyRange returns the smallest and largest keys in the file.
func (f *StoreFile) KeyRange() (minKey, maxKey string) { return f.meta.MinKey, f.meta.MaxKey }

// MaxTimestamp returns the newest timestamp in the file.
func (f *StoreFile) MaxTimestamp() uint64 { return f.meta.MaxTS }

// blockFor returns the index of the block that could contain key, or -1
// when the key is out of range.
func (f *StoreFile) blockFor(key string) int {
	if f.meta.Entries == 0 || key > f.meta.MaxKey {
		return -1
	}
	// The first block whose first key is > key is one past the target.
	i := sort.SearchStrings(f.firstKeys, key)
	if i < len(f.firstKeys) && f.firstKeys[i] == key {
		return i
	}
	if i == 0 {
		if key < f.meta.MinKey {
			return -1
		}
		return 0
	}
	return i - 1
}

// get looks up the newest version of key, loading the candidate block
// through the cache. found=false with a nil error means the key is not in
// this file; the filter check comes first, so a negative lookup on a
// bloom-filtered file reads no data block at all. A non-nil trace
// records a span per consulted stage (bloom negative, cache hit, or
// SSTable read).
func (f *StoreFile) get(key string, cache *BlockCache, stats *storeStats, tr *obs.Trace) (Entry, bool, error) {
	bi := f.blockFor(key)
	if bi < 0 {
		return Entry{}, false, nil
	}
	st := tr.StartSpan()
	if !f.src.MayContain(key) {
		if stats != nil {
			stats.filterNegatives.Add(1)
		}
		tr.EndSpan("bloom-negative", st)
		return Entry{}, false, nil
	}
	b, err := f.loadBlock(bi, cache, stats, tr)
	if err != nil {
		return Entry{}, false, err
	}
	// Entries are (key asc, ts desc); find first entry >= (key, maxTS).
	probe := Entry{Key: key, Timestamp: ^uint64(0)}
	i := sort.Search(len(b.entries), func(i int) bool { return !less(b.entries[i], probe) })
	if i < len(b.entries) && b.entries[i].Key == key {
		return b.entries[i], true, nil
	}
	return Entry{}, false, nil
}

// loadBlock fetches block bi through the cache, recording hit/miss
// stats and — when traced — a "block-cache" span for a hit or an
// "sstable-read" span for a source load.
func (f *StoreFile) loadBlock(bi int, cache *BlockCache, stats *storeStats, tr *obs.Trace) (*Block, error) {
	st := tr.StartSpan()
	if cache == nil {
		if stats != nil {
			stats.cacheMisses.Add(1)
			stats.blocksRead.Add(1)
		}
		b, err := f.src.LoadBlock(bi)
		tr.EndSpan("sstable-read", st)
		return b, err
	}
	key := blockKey{file: f.id, block: bi}
	if b, ok := cache.get(key); ok {
		if stats != nil {
			stats.cacheHits.Add(1)
		}
		tr.EndSpan("block-cache", st)
		return b, nil
	}
	b, err := f.src.LoadBlock(bi)
	if err != nil {
		return nil, err
	}
	cache.put(key, b)
	if stats != nil {
		stats.cacheMisses.Add(1)
		stats.blocksRead.Add(1)
	}
	tr.EndSpan("sstable-read", st)
	return b, nil
}

// iterator walks the whole file in order, loading blocks through cache.
func (f *StoreFile) iterator(cache *BlockCache, stats *storeStats) Iterator {
	return &fileIter{f: f, cache: cache, stats: stats, block: -1}
}

// iteratorFrom positions at the first entry with key >= start.
func (f *StoreFile) iteratorFrom(start string, cache *BlockCache, stats *storeStats) Iterator {
	it := &fileIter{f: f, cache: cache, stats: stats, block: -1}
	if f.meta.Entries == 0 || start > f.meta.MaxKey {
		it.block = len(f.firstKeys) // exhausted
		return it
	}
	bi := f.blockFor(start)
	if bi < 0 {
		bi = 0
	}
	it.block = bi
	cur, err := f.loadBlock(bi, cache, stats, nil)
	if err != nil {
		it.err = err
		it.block = len(f.firstKeys)
		return it
	}
	it.cur = cur
	probe := Entry{Key: start, Timestamp: ^uint64(0)}
	it.idx = sort.Search(len(it.cur.entries), func(i int) bool { return !less(it.cur.entries[i], probe) }) - 1
	return it
}

// fileIter iterates a store file. A block-load failure (possible only for
// disk-backed sources) stops the iteration; Err reports it afterwards.
type fileIter struct {
	f     *StoreFile
	cache *BlockCache
	stats *storeStats
	block int
	cur   *Block
	idx   int
	err   error
}

func (it *fileIter) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.block >= len(it.f.firstKeys) {
			return false
		}
		if it.cur == nil || it.idx+1 >= len(it.cur.entries) {
			it.block++
			if it.block >= len(it.f.firstKeys) {
				return false
			}
			cur, err := it.f.loadBlock(it.block, it.cache, it.stats, nil)
			if err != nil {
				it.err = err
				it.block = len(it.f.firstKeys)
				return false
			}
			it.cur = cur
			it.idx = -1
			if len(it.cur.entries) == 0 {
				continue
			}
		}
		it.idx++
		return true
	}
}

func (it *fileIter) Entry() Entry { return it.cur.entries[it.idx] }

// Err reports a block-load failure encountered during iteration.
func (it *fileIter) Err() error { return it.err }

// iterErr extracts the error from any iterator that tracks one.
func iterErr(it Iterator) error {
	if e, ok := it.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}
