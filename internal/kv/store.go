package kv

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// fileIDCounter mints store-file IDs that are unique process-wide, so
// stores sharing one BlockCache can never collide on cache keys.
var fileIDCounter atomic.Uint64

func nextFileID() uint64 { return fileIDCounter.Add(1) }

// Config holds the engine knobs the paper's node profiles tune.
type Config struct {
	// MemstoreFlushBytes is the memstore size at which a flush to an
	// immutable store file is triggered (HBase: memstore size fraction
	// of the heap). Defaults to 64 MiB.
	MemstoreFlushBytes int
	// BlockCacheBytes is the block cache capacity (HBase: block cache
	// size fraction of the heap). Defaults to 256 MiB.
	BlockCacheBytes int
	// BlockBytes is the store-file block size (HBase: HFile block
	// size). Defaults to 64 KiB.
	BlockBytes int
	// MaxStoreFiles triggers an automatic minor compaction when the
	// number of files exceeds it. Defaults to 8. Zero disables.
	MaxStoreFiles int
	// Seed keeps the memstore skiplist deterministic.
	Seed uint64
	// WAL receives every mutation before it is applied. Nil disables
	// logging.
	WAL WAL
	// Cache, when non-nil, is used instead of a private cache built
	// from BlockCacheBytes. A region server shares one cache across all
	// of its regions' stores, as HBase does.
	Cache *BlockCache
}

func (c Config) withDefaults() Config {
	if c.MemstoreFlushBytes <= 0 {
		c.MemstoreFlushBytes = 64 << 20
	}
	if c.BlockCacheBytes < 0 {
		c.BlockCacheBytes = 0
	} else if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 256 << 20
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 64 << 10
	}
	if c.MaxStoreFiles == 0 {
		c.MaxStoreFiles = 8
	}
	return c
}

// storeStats holds the engine counters as atomics so the concurrent read
// path (Get/Scan under the store's read lock) can bump them without an
// exclusive lock. Stats() snapshots them into the exported Stats value.
type storeStats struct {
	gets, puts, deletes    atomic.Int64
	scans, scannedEntries  atomic.Int64
	cacheHits, cacheMisses atomic.Int64
	flushes, flushedBytes  atomic.Int64
	compactions            atomic.Int64
	compactedBytes         atomic.Int64
	blocksRead             atomic.Int64
}

func (st *storeStats) snapshot() Stats {
	return Stats{
		Gets:           st.gets.Load(),
		Puts:           st.puts.Load(),
		Deletes:        st.deletes.Load(),
		Scans:          st.scans.Load(),
		ScannedEntries: st.scannedEntries.Load(),
		CacheHits:      st.cacheHits.Load(),
		CacheMisses:    st.cacheMisses.Load(),
		Flushes:        st.flushes.Load(),
		FlushedBytes:   st.flushedBytes.Load(),
		Compactions:    st.compactions.Load(),
		CompactedBytes: st.compactedBytes.Load(),
		BlocksRead:     st.blocksRead.Load(),
	}
}

// Store is the LSM engine: one memstore plus a stack of immutable store
// files, newest first, fronted by a block cache. A Store backs exactly
// one Region in the simulated HBase.
//
// Concurrency model: mu is a reader/writer lock over the engine
// structure (memstore pointer and contents, file stack, seq, closed).
// Get and Scan take the read lock, so any number of readers proceed in
// parallel; Put, Delete, Flush, Compact, Recover and Close take the
// write lock, which also makes them the only memstore mutators — a
// skiplist traversal under RLock can therefore never observe a
// half-linked node. Store files are immutable once built, the shared
// BlockCache is internally locked, and engine counters are atomics, so
// the read path touches no unprotected shared state. A Scan holds the
// read lock for its whole iteration: it sees a consistent snapshot and
// delays writers, which matches HBase's scanner semantics at region
// granularity.
type Store struct {
	mu     sync.RWMutex
	cfg    Config
	mem    *Memstore
	files  []*StoreFile // newest first
	cache  *BlockCache
	stats  storeStats
	seq    uint64 // logical clock for timestamps; mutated under mu (write)
	sealed bool
	closed bool
}

// NewStore creates an empty store with the given configuration.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = NewBlockCache(cfg.BlockCacheBytes)
	}
	return &Store{
		cfg:   cfg,
		mem:   NewMemstore(cfg.Seed),
		cache: cache,
	}
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// nextTimestamp returns a strictly increasing logical timestamp. Callers
// must hold the write lock.
func (s *Store) nextTimestamp() uint64 {
	s.seq++
	return s.seq
}

// Put writes a value. Writes are atomic and immediately visible to
// subsequent reads, matching HBase's contract.
func (s *Store) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.sealed {
		return ErrClosed
	}
	e := Entry{Key: key, Value: append([]byte(nil), value...), Timestamp: s.nextTimestamp()}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Append(e); err != nil {
			return fmt.Errorf("kv: wal append: %w", err)
		}
	}
	s.mem.Add(e)
	s.stats.puts.Add(1)
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		s.flushLocked()
	}
	return nil
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.sealed {
		return ErrClosed
	}
	e := Entry{Key: key, Timestamp: s.nextTimestamp(), Tombstone: true}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Append(e); err != nil {
			return fmt.Errorf("kv: wal append: %w", err)
		}
	}
	s.mem.Add(e)
	s.stats.deletes.Add(1)
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		s.flushLocked()
	}
	return nil
}

// Get returns the newest live value for key, or ErrNotFound. Gets run
// concurrently with each other and with Scans; they only exclude
// writers.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.gets.Add(1)
	best, ok := s.mem.Get(key)
	for _, f := range s.files {
		if ok && best.Timestamp >= f.MaxTimestamp() {
			break // nothing newer can exist in older files
		}
		if e, found := f.get(key, s.cache, &s.stats); found {
			if !ok || e.supersedes(best) {
				best, ok = e, true
			}
		}
	}
	if !ok || best.Tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), best.Value...), nil
}

// Scan returns up to limit live entries with start <= key < end, in key
// order. An empty end means "to the end of the store"; limit < 0 means
// unlimited. The read lock is held for the whole iteration, so the scan
// sees one consistent snapshot.
func (s *Store) Scan(start, end string, limit int) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.scans.Add(1)
	sources := make([]Iterator, 0, len(s.files)+1)
	sources = append(sources, s.mem.IteratorFrom(start))
	for _, f := range s.files {
		sources = append(sources, f.iteratorFrom(start, s.cache, &s.stats))
	}
	it := newLimitIterator(newBoundIterator(newDedupIterator(newMergeIterator(sources), true), end), limit)
	var out []Entry
	scanned := int64(0)
	for it.Next() {
		e := it.Entry()
		e.Value = append([]byte(nil), e.Value...)
		out = append(out, e)
		scanned++
	}
	s.stats.scannedEntries.Add(scanned)
	return out, nil
}

// Flush forces the memstore to a new store file.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if s.mem.Len() == 0 {
		return
	}
	entries := make([]Entry, 0, s.mem.Len())
	it := s.mem.Iterator()
	for it.Next() {
		entries = append(entries, it.Entry())
	}
	f := BuildStoreFile(nextFileID(), entries, s.cfg.BlockBytes)
	maxTS := s.mem.MaxTimestamp()
	s.files = append([]*StoreFile{f}, s.files...)
	s.stats.flushes.Add(1)
	s.stats.flushedBytes.Add(int64(f.Bytes()))
	s.mem = NewMemstore(s.cfg.Seed + f.ID())
	if s.cfg.WAL != nil {
		s.cfg.WAL.Truncate(maxTS)
	}
	if s.cfg.MaxStoreFiles > 0 && len(s.files) > s.cfg.MaxStoreFiles {
		s.compactLocked(false)
	}
}

// Compact merges every store file (and nothing from the memstore) into a
// single file. With major=true, tombstones and shadowed versions are
// dropped — HBase's "major compact", the operation MeT issues to restore
// data locality after moving regions.
func (s *Store) Compact(major bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked(major)
}

func (s *Store) compactLocked(major bool) {
	if len(s.files) <= 1 && !major {
		return
	}
	if len(s.files) == 0 {
		return
	}
	sources := make([]Iterator, 0, len(s.files))
	var inBytes int
	for _, f := range s.files {
		sources = append(sources, f.iterator(nil, nil))
		inBytes += f.Bytes()
	}
	it := newDedupIterator(newMergeIterator(sources), major)
	var entries []Entry
	for it.Next() {
		entries = append(entries, it.Entry())
	}
	for _, f := range s.files {
		s.cache.invalidateFile(f.id)
	}
	merged := BuildStoreFile(nextFileID(), entries, s.cfg.BlockBytes)
	s.files = []*StoreFile{merged}
	s.stats.compactions.Add(1)
	s.stats.compactedBytes.Add(int64(inBytes))
}

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	memBytes := int64(s.mem.Bytes())
	s.mu.RUnlock()
	st := s.stats.snapshot()
	st.MemstoreCurrent = memBytes
	return st
}

// DataBytes returns the approximate total bytes held (memstore + files).
func (s *Store) DataBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.mem.Bytes()
	for _, f := range s.files {
		total += f.Bytes()
	}
	return total
}

// NumFiles returns the current number of store files.
func (s *Store) NumFiles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// CacheHitRatio exposes the block cache's observed hit ratio.
func (s *Store) CacheHitRatio() float64 {
	return s.cache.HitRatio()
}

// Recover rebuilds the memstore from the WAL; used after a simulated
// crash. Returns the number of entries replayed.
func (s *Store) Recover() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.WAL == nil {
		return 0
	}
	n := 0
	for _, e := range s.cfg.WAL.Entries() {
		s.mem.Add(e)
		if e.Timestamp > s.seq {
			s.seq = e.Timestamp
		}
		n++
	}
	return n
}

// Seal stops accepting mutations — Put and Delete fail with ErrClosed —
// while reads keep being served. Region migrations (reopen on restart,
// splits) seal the source store before copying it so that every write
// ever acknowledged is either in the copy or was never acknowledged:
// a Put that returned nil completed under the write lock before Seal
// acquired it, and is therefore visible to the migration's Scan.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
}

// Unseal re-enables mutations on a sealed store; an aborted migration
// uses it to hand the store back to the serving path.
func (s *Store) Unseal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = false
}

// Close marks the store closed; subsequent operations fail with
// ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
