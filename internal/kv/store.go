package kv

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"met/internal/obs"
)

// fileIDCounter mints store-file IDs that are unique process-wide, so
// stores sharing one BlockCache can never collide on cache keys. Durable
// backends persist IDs inside file names; OpenStore bumps the counter
// past every ID it loads so new files never collide with recovered ones.
var fileIDCounter atomic.Uint64

func nextFileID() uint64 { return fileIDCounter.Add(1) }

// bumpFileID raises the counter to at least floor.
func bumpFileID(floor uint64) {
	for {
		cur := fileIDCounter.Load()
		if cur >= floor || fileIDCounter.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// StorageBackend persists a store's immutable files and provides its
// write-ahead log. The engine calls it with sorted entries at flush and
// compaction time and asks it to enumerate surviving files at open time;
// everything else (caching, indexes, iterators, recovery ordering) is
// engine-side. The memory backend is implicit (a nil backend); the
// durable implementation lives in met/internal/durable.
type StorageBackend interface {
	// WAL returns the backend's write-ahead log, or nil when the backend
	// does not log (Config.WAL then still applies).
	WAL() WAL
	// Create persists sorted entries as immutable file id and returns
	// its reader. The file must be durable when Create returns, because
	// the engine truncates the WAL after a flush.
	Create(id uint64, entries []Entry, blockBytes int) (*StoreFile, error)
	// Remove deletes a file retired by a compaction, releasing its
	// reader. The engine calls it only once no in-flight iteration can
	// still reference the file (see drainRetired), so implementations
	// may close handles eagerly.
	Remove(id uint64) error
	// Load enumerates the persisted files, any order.
	Load(blockBytes int) ([]*StoreFile, error)
	// Close releases the backend's resources (open files, WAL).
	Close() error
}

// TimestampFloorCreator is an optional StorageBackend extension for
// backends that persist a per-file max-timestamp property. Compactions
// use it to pass the maximum timestamp of their input files: a merge
// that drops the newest version of a key (a shadowed put, an elided
// tombstone in a major compaction) must not regress the output file's
// recorded clock, because a store seeded from that file alone (snapshot
// restore, replica failover) resumes its logical clock from the
// property — and a regressed clock breaks the dense-timestamp
// accounting failover uses to count lost writes.
type TimestampFloorCreator interface {
	// CreateWithMaxTS is Create with the file's recorded max timestamp
	// raised to at least maxTS.
	CreateWithMaxTS(id uint64, entries []Entry, blockBytes int, maxTS uint64) (*StoreFile, error)
}

// Config holds the engine knobs the paper's node profiles tune.
type Config struct {
	// MemstoreFlushBytes is the memstore size at which a flush to an
	// immutable store file is triggered (HBase: memstore size fraction
	// of the heap). Defaults to 64 MiB.
	MemstoreFlushBytes int
	// BlockCacheBytes is the block cache capacity (HBase: block cache
	// size fraction of the heap). Defaults to 256 MiB.
	BlockCacheBytes int
	// BlockBytes is the store-file block size (HBase: HFile block
	// size). Defaults to 64 KiB.
	BlockBytes int
	// MaxStoreFiles triggers an automatic minor compaction when the
	// number of files exceeds it. Defaults to 8. Zero disables.
	MaxStoreFiles int
	// Seed keeps the memstore skiplist deterministic.
	Seed uint64
	// WAL receives every mutation before it is applied. Nil disables
	// logging (unless OpenBackend supplies one).
	WAL WAL
	// OpenBackend, when set, is invoked by OpenStore to create the
	// store's durable storage backend. It is a factory rather than an
	// instance so a region reopen (server restart) can close the old
	// store's backend and open a fresh one over the same directory.
	OpenBackend func() (StorageBackend, error)
	// Cache, when non-nil, is used instead of a private cache built
	// from BlockCacheBytes. A region server shares one cache across all
	// of its regions' stores, as HBase does.
	Cache *BlockCache

	// Compactor, when set, takes over compaction: flushes never compact
	// inline (and never do compaction I/O under the write lock); when a
	// flush pushes the file count over MaxStoreFiles the trigger is
	// fired outside the engine locks and the scheduler is expected to
	// call CompactFiles. Nil keeps the legacy inline behavior the
	// simulation layer uses.
	Compactor CompactionTrigger
	// HardMaxStoreFiles is the file count at which writers stall until
	// background compaction catches up (HBase's blockingStoreFiles).
	// Only meaningful with a Compactor; 0 defaults to 3×MaxStoreFiles,
	// negative disables stalling.
	HardMaxStoreFiles int
	// StallTimeout bounds a single write's stall; past it the write
	// proceeds and the file count grows unbounded (reported via
	// Stats.StallNanos either way). 0 defaults to 10s.
	StallTimeout time.Duration
	// CompactionBudget, when set, rate-limits CompactFiles I/O and
	// receives foreground accounting from flushes, so compaction and
	// serving share one disk-bandwidth budget.
	CompactionBudget IOBudget
	// OnFilesChanged, when set, is invoked outside all engine locks
	// after the immutable file stack changes — a flush added a file, or
	// a compaction spliced one in. Embedders that mirror the stack into
	// an external system (HDFS bookkeeping, SSTable replication) use it
	// as their wake-up; consecutive changes may coalesce into one call,
	// so implementations must reconcile against the current stack rather
	// than assume one event per file. Swappable at runtime with
	// SetFilesChanged (a region move re-homes the store onto another
	// server's replicator).
	OnFilesChanged func()
}

func (c Config) withDefaults() Config {
	if c.MemstoreFlushBytes <= 0 {
		c.MemstoreFlushBytes = 64 << 20
	}
	if c.BlockCacheBytes < 0 {
		c.BlockCacheBytes = 0
	} else if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 256 << 20
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 64 << 10
	}
	if c.MaxStoreFiles == 0 {
		c.MaxStoreFiles = 8
	}
	// The stall ceiling is only safe when every stall has a compaction
	// request pending to release it: automatic compaction must be on,
	// and the ceiling must sit above the trigger threshold. Incoherent
	// combinations are normalized rather than left to wedge writers.
	if c.MaxStoreFiles < 0 {
		c.HardMaxStoreFiles = -1
	} else if c.HardMaxStoreFiles == 0 {
		c.HardMaxStoreFiles = 3 * c.MaxStoreFiles
	} else if c.HardMaxStoreFiles > 0 && c.HardMaxStoreFiles <= c.MaxStoreFiles {
		c.HardMaxStoreFiles = c.MaxStoreFiles + 1
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 10 * time.Second
	}
	return c
}

// storeStats holds the engine counters as atomics so the concurrent read
// path (Get/Scan under the store's read lock) can bump them without an
// exclusive lock. Stats() snapshots them into the exported Stats value.
type storeStats struct {
	gets, puts, deletes    atomic.Int64
	scans, scannedEntries  atomic.Int64
	cacheHits, cacheMisses atomic.Int64
	flushes, flushedBytes  atomic.Int64
	compactions            atomic.Int64
	compactedBytes         atomic.Int64
	blocksRead             atomic.Int64
	filterNegatives        atomic.Int64
	userBytes              atomic.Int64
	compactionBytesWritten atomic.Int64
	stallNanos             atomic.Int64
	stalledWrites          atomic.Int64
	compactionQueued       atomic.Int64
}

func (st *storeStats) snapshot() Stats {
	s := Stats{
		Gets:                   st.gets.Load(),
		Puts:                   st.puts.Load(),
		Deletes:                st.deletes.Load(),
		Scans:                  st.scans.Load(),
		ScannedEntries:         st.scannedEntries.Load(),
		CacheHits:              st.cacheHits.Load(),
		CacheMisses:            st.cacheMisses.Load(),
		Flushes:                st.flushes.Load(),
		FlushedBytes:           st.flushedBytes.Load(),
		Compactions:            st.compactions.Load(),
		CompactedBytes:         st.compactedBytes.Load(),
		BlocksRead:             st.blocksRead.Load(),
		FilterNegatives:        st.filterNegatives.Load(),
		UserBytes:              st.userBytes.Load(),
		CompactionBytesWritten: st.compactionBytesWritten.Load(),
		StallNanos:             st.stallNanos.Load(),
		StalledWrites:          st.stalledWrites.Load(),
		CompactionQueueDepth:   st.compactionQueued.Load(),
	}
	if s.UserBytes > 0 {
		s.WriteAmplification = float64(s.FlushedBytes+s.CompactionBytesWritten) / float64(s.UserBytes)
	}
	return s
}

// Store is the LSM engine: one memstore plus a stack of immutable store
// files, newest first, fronted by a block cache. A Store backs exactly
// one Region in the simulated HBase.
//
// Concurrency model: mu is a reader/writer lock over the engine
// structure (memstore pointer and contents, file stack, seq, closed).
// Get takes the read lock, so any number of readers proceed in parallel;
// Put, Delete, Flush, Compact, Recover and Close take the write lock,
// which also makes them the only memstore mutators. Scan takes the read
// lock only long enough to snapshot the memstore pointer and the file
// stack, then iterates lock-free: the file stack is replaced (never
// mutated) by flushes and compactions, store files are immutable once
// built, and the memstore skiplist publishes nodes with atomic pointers,
// so a reader never observes a half-linked node even while the single
// writer (under the write lock) keeps inserting. The shared BlockCache
// is internally locked and engine counters are atomics, so the read path
// touches no unprotected shared state.
//
// Durability: with a group-commit WAL (GroupWAL), a mutation is appended
// to the log and applied to the memstore under the write lock, but the
// caller is acknowledged only after the log record is fsynced — the wait
// happens outside the lock, so concurrent writers batch into one fsync.
// A crash can therefore lose only writes that were never acknowledged
// (readers may have glimpsed them, the same window HBase exposes).
type Store struct {
	mu        sync.RWMutex
	cfg       Config
	mem       *Memstore
	files     []*StoreFile // newest first
	cache     *BlockCache
	backend   StorageBackend
	stats     storeStats
	seq       uint64 // logical clock for timestamps; mutated under mu (write)
	recovered int    // WAL entries replayed at open
	sealed    bool
	closed    bool

	// Retired-file reclamation: compaction may retire files while
	// lock-free scans still iterate them, so backend removal (which
	// closes the reader and unlinks the file) is deferred until no scan
	// is in flight. activeScans counts lock-free iterations; retired
	// holds file IDs awaiting removal. A scan that started after the
	// retirement snapshotted the new stack and never touches retired
	// files, so "no active scans" is a safe drain condition.
	activeScans atomic.Int64
	retiredMu   sync.Mutex
	retired     []uint64

	// Background compaction state (see compaction.go). compactMu
	// serializes CompactFiles calls so at most one merge is in flight
	// per store; compactionWanted latches "a flush crossed the soft
	// threshold" under the write lock for the trigger fired after it is
	// released; stallMu+stallGate park writers at the hard file-count
	// ceiling until a compaction shrinks the stack.
	compactMu        sync.Mutex
	compactionWanted atomic.Bool
	stallMu          sync.Mutex
	stallGate        chan struct{}

	// wiring is the store's attribution plumbing — which scheduler
	// services it, which I/O budget its bytes charge, where writers
	// stall. It starts as the Config values but is swappable at runtime
	// (SetCompaction) because a region move re-homes a live store onto
	// another server's compactor pool; an atomic pointer keeps the
	// lock-free readers (maybeStall, maybeTriggerCompaction, phase-2
	// compaction I/O) racing a rewire safe.
	wiring atomic.Pointer[compactionWiring]

	// File-stack change notification (Config.OnFilesChanged): flushes
	// and compaction splices latch filesDirty under the write lock; the
	// mutation paths fire the hook once outside every lock, exactly like
	// the compaction trigger. The hook itself is an atomic pointer so a
	// region move can swap it (SetFilesChanged) without racing a flush.
	onFilesChanged atomic.Pointer[func()]
	filesDirty     atomic.Bool

	// flushHist is the lock-free distribution of memstore-flush
	// durations (met/internal/obs); the telemetry plane merges it
	// across a server's regions.
	flushHist obs.Histogram
}

// compactionWiring bundles the rewirable background-compaction hooks.
type compactionWiring struct {
	trigger CompactionTrigger
	budget  IOBudget
	hardMax int
}

// NewStore creates an empty in-memory store with the given configuration.
// Config.OpenBackend is ignored; durable stores are created with
// OpenStore, which can also report recovery errors.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = NewBlockCache(cfg.BlockCacheBytes)
	}
	s := &Store{
		cfg:   cfg,
		mem:   NewMemstore(cfg.Seed),
		cache: cache,
	}
	s.wiring.Store(&compactionWiring{
		trigger: cfg.Compactor,
		budget:  cfg.CompactionBudget,
		hardMax: cfg.HardMaxStoreFiles,
	})
	if cfg.OnFilesChanged != nil {
		fn := cfg.OnFilesChanged
		s.onFilesChanged.Store(&fn)
	}
	return s
}

// OpenStore creates a store and, when Config.OpenBackend is set, opens
// its durable backend: persisted files are loaded, the WAL is replayed
// into the memstore (recovery), and the logical clock resumes past every
// recovered timestamp, so a reopened store acknowledges no timestamp
// twice. Recovered() reports how many WAL entries were replayed.
func OpenStore(cfg Config) (*Store, error) {
	s := NewStore(cfg)
	if cfg.OpenBackend == nil {
		return s, nil
	}
	backend, err := cfg.OpenBackend()
	if err != nil {
		return nil, fmt.Errorf("kv: open backend: %w", err)
	}
	files, err := backend.Load(s.cfg.BlockBytes)
	if err != nil {
		backend.Close() //lint:allow syncerr best-effort cleanup of a failed open; the load error is the one to surface
		return nil, fmt.Errorf("kv: load files: %w", err)
	}
	// Newest first; durable file IDs are minted in increasing order.
	sort.Slice(files, func(i, j int) bool { return files[i].ID() > files[j].ID() })
	s.backend = backend
	s.files = files
	for _, f := range files {
		bumpFileID(f.ID())
		if f.MaxTimestamp() > s.seq {
			s.seq = f.MaxTimestamp()
		}
	}
	if s.cfg.WAL == nil {
		s.cfg.WAL = backend.WAL()
	}
	if s.cfg.WAL != nil {
		entries, err := replayWAL(s.cfg.WAL)
		if err != nil {
			backend.Close() //lint:allow syncerr best-effort cleanup of a failed open; the replay error is the one to surface
			return nil, fmt.Errorf("kv: wal replay: %w", err)
		}
		// Records at or below the file stack's clock are already durable
		// in an SSTable. A private log never holds such records (flushes
		// truncate it), but a shared server-wide log reclaims segments
		// only when every region's flush mark passes them, so replay can
		// surface records an earlier flush already persisted.
		baseline := s.seq
		for _, e := range entries {
			if e.Timestamp <= baseline {
				continue
			}
			s.mem.Add(e)
			if e.Timestamp > s.seq {
				s.seq = e.Timestamp
			}
			s.recovered++
		}
	}
	// A recovered stack can already be over the compaction threshold
	// (crash during a backlog); ask for service now rather than letting
	// the first post-recovery write stall at the hard ceiling waiting
	// for a compaction nobody queued.
	if s.cfg.MaxStoreFiles > 0 && len(s.files) > s.cfg.MaxStoreFiles {
		s.compactionWanted.Store(true)
	}
	s.maybeTriggerCompaction()
	return s, nil
}

// replayWAL prefers the error-reporting recovery path when the WAL
// offers one: a torn tail is an expected crash artifact, but a real read
// error during recovery must fail the open loudly — silently dropping
// the log would violate the acknowledged-writes-survive guarantee.
func replayWAL(w WAL) ([]Entry, error) {
	if rw, ok := w.(interface{ ReplayEntries() ([]Entry, error) }); ok {
		return rw.ReplayEntries()
	}
	return w.Entries(), nil
}

// Config returns the store's configuration. Note that the background-
// compaction hooks (Compactor, CompactionBudget, HardMaxStoreFiles) may
// have been rewired since the store was opened — see SetCompaction —
// and the WAL may have been swapped (SwitchWAL).
func (s *Store) Config() Config {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg
}

// WAL exposes the store's write-ahead log (nil for stores that do not
// log). Embedders that re-home a store use it to swap log-level
// accounting hooks alongside SetCompaction.
func (s *Store) WAL() WAL {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg.WAL
}

// SwitchWAL re-homes the store's logging onto a different write-ahead
// log — the engine half of moving a region between servers when each
// server owns one shared log. The memstore is flushed first (under the
// write lock), so every record the old log held for this store becomes
// durable in an SSTable and is truncated away; from the next mutation
// on, records land in w. The old log is not closed — it belongs to its
// server.
func (s *Store) SwitchWAL(w WAL) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("kv: switch wal flush: %w", err)
	}
	s.cfg.WAL = w
	s.mu.Unlock()
	s.maybeTriggerCompaction()
	s.notifyFilesChanged()
	return nil
}

// SetCompaction rewires the store's background-compaction plumbing to a
// new scheduler, I/O budget and hard file ceiling — the engine half of
// re-homing a live store onto a different server (a region move): from
// the next flush on, compaction requests go to trigger, compaction and
// flush bytes charge budget, and writers stall against hardMax.
// hardMax is normalized exactly like Config.HardMaxStoreFiles (0 =
// 3×MaxStoreFiles, negative disables); a nil trigger reverts the store
// to inline compaction at flush time. The swap is atomic: a concurrent
// writer observes either the old wiring or the new, never a mix.
func (s *Store) SetCompaction(trigger CompactionTrigger, budget IOBudget, hardMax int) {
	if s.cfg.MaxStoreFiles < 0 {
		hardMax = -1
	} else if hardMax == 0 {
		hardMax = 3 * s.cfg.MaxStoreFiles
	} else if hardMax > 0 && hardMax <= s.cfg.MaxStoreFiles {
		hardMax = s.cfg.MaxStoreFiles + 1
	}
	s.wiring.Store(&compactionWiring{trigger: trigger, budget: budget, hardMax: hardMax})
	// A writer parked on the old server's stall gate must not wait for a
	// pool that no longer services this store; wake it to re-evaluate
	// against the new wiring.
	s.releaseStall()
}

// SetFilesChanged rewires the store's file-stack change hook (see
// Config.OnFilesChanged) — the engine half of re-homing a live store's
// replication onto a different server. nil disables notification. The
// swap is atomic; a flush racing it fires either the old hook or the
// new, never a torn pointer.
func (s *Store) SetFilesChanged(fn func()) {
	if fn == nil {
		s.onFilesChanged.Store(nil)
		return
	}
	s.onFilesChanged.Store(&fn)
}

// notifyFilesChanged fires the files-changed hook if a flush or
// compaction latched a stack change since the last call. Called outside
// all engine locks by the mutation paths, Flush and CompactFiles.
func (s *Store) notifyFilesChanged() {
	fn := s.onFilesChanged.Load()
	if fn == nil {
		return
	}
	if !s.filesDirty.CompareAndSwap(true, false) {
		return
	}
	(*fn)()
}

// Recovered returns the number of WAL entries replayed when the store
// was opened (0 for in-memory stores).
func (s *Store) Recovered() int { return s.recovered }

// MaxTimestamp returns the store's logical clock: the timestamp of the
// newest mutation ever applied (acknowledged or in flight). Because
// timestamps are minted densely — one per mutation — the difference
// between two stores' clocks counts the mutations one has that the
// other lacks; failover uses that to report exactly how many
// acknowledged writes a lost server's replica did not cover.
func (s *Store) MaxTimestamp() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// nextTimestamp returns a strictly increasing logical timestamp. Callers
// must hold the write lock.
func (s *Store) nextTimestamp() uint64 {
	s.seq++
	return s.seq
}

// mutate is the shared Put/Delete path: log, apply to the memstore, and
// flush if over threshold, all under the write lock; then — outside the
// lock — wait for the WAL record to be durable before acknowledging.
// With a background compactor the write first passes the stall gate
// (file-count backpressure) and afterwards fires the compaction trigger,
// both outside the lock.
func (s *Store) mutate(e Entry, counter *atomic.Int64, tr *obs.Trace) error {
	s.maybeStall()
	s.mu.Lock()
	if s.closed || s.sealed {
		s.mu.Unlock()
		return ErrClosed
	}
	e.Timestamp = s.nextTimestamp()
	var commit func() error
	if s.cfg.WAL != nil {
		st := tr.StartSpan()
		if gw, ok := s.cfg.WAL.(GroupWAL); ok {
			c, err := gw.AppendBuffered(e)
			if err != nil {
				s.mu.Unlock()
				return fmt.Errorf("kv: wal append: %w", err)
			}
			commit = c
		} else if err := s.cfg.WAL.Append(e); err != nil { //lint:allow locksafe plain kv.WAL is the in-memory path; durable logs implement GroupWAL and fsync outside the lock via commit()
			s.mu.Unlock()
			return fmt.Errorf("kv: wal append: %w", err)
		}
		tr.EndSpan("wal-append", st)
	}
	st := tr.StartSpan()
	s.mem.Add(e)
	tr.EndSpan("memstore", st)
	counter.Add(1)
	s.stats.userBytes.Add(int64(e.Size()))
	var flushErr error
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		st = tr.StartSpan()
		flushErr = s.flushLocked()
		tr.EndSpan("flush", st)
	}
	s.mu.Unlock()
	s.maybeTriggerCompaction()
	s.notifyFilesChanged()
	if commit != nil {
		st = tr.StartSpan()
		err := commit()
		tr.EndSpan("wal-sync", st)
		if err != nil {
			return fmt.Errorf("kv: wal sync: %w", err)
		}
	}
	if flushErr != nil {
		return fmt.Errorf("kv: flush: %w", flushErr)
	}
	return nil
}

// Put writes a value. Writes are atomic and immediately visible to
// subsequent reads, matching HBase's contract; with a group-commit WAL
// the call returns only once the write is durable.
func (s *Store) Put(key string, value []byte) error {
	return s.PutTraced(key, value, nil)
}

// PutTraced is Put with a trace context: the WAL append, memstore
// apply, inline flush and group-commit wait each record a span. A nil
// trace is free.
func (s *Store) PutTraced(key string, value []byte, tr *obs.Trace) error {
	return s.mutate(Entry{Key: key, Value: append([]byte(nil), value...)}, &s.stats.puts, tr)
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key string) error {
	return s.DeleteTraced(key, nil)
}

// DeleteTraced is Delete with a trace context.
func (s *Store) DeleteTraced(key string, tr *obs.Trace) error {
	return s.mutate(Entry{Key: key, Tombstone: true}, &s.stats.deletes, tr)
}

// ImportEntries bulk-loads entries as fresh writes — the migration path
// (region splits, store reopens) uses it instead of per-entry Puts so a
// durable store pays one group-commit fsync for the whole batch instead
// of one per entry. Entries are re-timestamped in order, so they shadow
// nothing newer than themselves.
func (s *Store) ImportEntries(entries []Entry) error {
	s.maybeStall()
	s.mu.Lock()
	if s.closed || s.sealed {
		s.mu.Unlock()
		return ErrClosed
	}
	gw, _ := s.cfg.WAL.(GroupWAL)
	var commit func() error
	for _, e := range entries {
		ne := Entry{
			Key:       e.Key,
			Value:     append([]byte(nil), e.Value...),
			Tombstone: e.Tombstone,
			Timestamp: s.nextTimestamp(),
		}
		if s.cfg.WAL != nil {
			if gw != nil {
				c, err := gw.AppendBuffered(ne)
				if err != nil {
					s.mu.Unlock()
					return fmt.Errorf("kv: wal append: %w", err)
				}
				commit = c
			} else if err := s.cfg.WAL.Append(ne); err != nil { //lint:allow locksafe plain kv.WAL is the in-memory path; durable logs implement GroupWAL and fsync outside the lock via commit()
				s.mu.Unlock()
				return fmt.Errorf("kv: wal append: %w", err)
			}
		}
		s.mem.Add(ne)
		s.stats.puts.Add(1)
		s.stats.userBytes.Add(int64(ne.Size()))
	}
	var flushErr error
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		flushErr = s.flushLocked()
	}
	s.mu.Unlock()
	s.maybeTriggerCompaction()
	s.notifyFilesChanged()
	if commit != nil {
		if err := commit(); err != nil {
			return fmt.Errorf("kv: wal sync: %w", err)
		}
	}
	if flushErr != nil {
		return fmt.Errorf("kv: flush: %w", flushErr)
	}
	return nil
}

// ApplyReplayed applies recovered records from another store's log —
// the replicated WAL tail a failover replays over replica SSTables.
// Unlike ImportEntries it preserves the original timestamps (the
// records were minted by the dead store's clock, and keeping them dense
// keeps failover loss accounting exact); records at or below this
// store's clock are already present and are skipped. Entries must be in
// ascending timestamp order. It returns how many records were applied.
func (s *Store) ApplyReplayed(entries []Entry) (int, error) {
	s.mu.Lock()
	if s.closed || s.sealed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	gw, _ := s.cfg.WAL.(GroupWAL)
	var commit func() error
	applied := 0
	for _, e := range entries {
		if e.Timestamp <= s.seq {
			continue
		}
		ne := Entry{
			Key:       e.Key,
			Value:     append([]byte(nil), e.Value...),
			Tombstone: e.Tombstone,
			Timestamp: e.Timestamp,
		}
		if s.cfg.WAL != nil {
			if gw != nil {
				c, err := gw.AppendBuffered(ne)
				if err != nil {
					s.mu.Unlock()
					return applied, fmt.Errorf("kv: wal append: %w", err)
				}
				commit = c
			} else if err := s.cfg.WAL.Append(ne); err != nil { //lint:allow locksafe plain kv.WAL is the in-memory path; durable logs implement GroupWAL and fsync outside the lock via commit()
				s.mu.Unlock()
				return applied, fmt.Errorf("kv: wal append: %w", err)
			}
		}
		s.mem.Add(ne)
		s.seq = ne.Timestamp
		s.stats.userBytes.Add(int64(ne.Size()))
		applied++
	}
	var flushErr error
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		flushErr = s.flushLocked()
	}
	s.mu.Unlock()
	s.maybeTriggerCompaction()
	s.notifyFilesChanged()
	if commit != nil {
		if err := commit(); err != nil {
			return applied, fmt.Errorf("kv: wal sync: %w", err)
		}
	}
	if flushErr != nil {
		return applied, fmt.Errorf("kv: flush: %w", flushErr)
	}
	return applied, nil
}

// Get returns the newest live value for key, or ErrNotFound. Gets run
// concurrently with each other and with Scans; they only exclude
// writers.
func (s *Store) Get(key string) ([]byte, error) {
	return s.GetTraced(key, nil)
}

// GetTraced is Get with a trace context: the memstore probe and every
// consulted file (bloom negative, block-cache hit or SSTable read)
// record spans. A nil trace is free — no clock reads, no allocation.
func (s *Store) GetTraced(key string, tr *obs.Trace) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.gets.Add(1)
	st := tr.StartSpan()
	best, ok := s.mem.Get(key)
	tr.EndSpan("memstore", st)
	for _, f := range s.files {
		if ok && best.Timestamp >= f.MaxTimestamp() {
			break // nothing newer can exist in older files
		}
		e, found, err := f.get(key, s.cache, &s.stats, tr)
		if err != nil {
			return nil, fmt.Errorf("kv: read file %d: %w", f.ID(), err)
		}
		if found {
			if !ok || e.supersedes(best) {
				best, ok = e, true
			}
		}
	}
	if !ok || best.Tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), best.Value...), nil
}

// Scan returns up to limit live entries with start <= key < end, in key
// order. An empty end means "to the end of the store"; limit < 0 means
// unlimited. The read lock is held only to snapshot the memstore and the
// immutable file stack; the iteration itself runs lock-free, so long
// scans never stall writers. The snapshot is consistent at the moment it
// is taken; entries written afterwards may or may not be observed, which
// matches HBase's scanner semantics.
func (s *Store) Scan(start, end string, limit int) ([]Entry, error) {
	return s.ScanTraced(start, end, limit, nil)
}

// ScanTraced is Scan with a trace context: the snapshot acquisition and
// the merge iteration record spans. A nil trace is free.
func (s *Store) ScanTraced(start, end string, limit int, tr *obs.Trace) ([]Entry, error) {
	st := tr.StartSpan()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	mem := s.mem
	files := s.files
	s.activeScans.Add(1)
	s.mu.RUnlock()
	defer func() {
		if s.activeScans.Add(-1) == 0 {
			s.drainRetired(false)
		}
	}()
	tr.EndSpan("snapshot", st)

	s.stats.scans.Add(1)
	st = tr.StartSpan()
	sources := make([]Iterator, 0, len(files)+1)
	sources = append(sources, mem.IteratorFrom(start))
	for _, f := range files {
		sources = append(sources, f.iteratorFrom(start, s.cache, &s.stats))
	}
	it := newLimitIterator(newBoundIterator(newDedupIterator(newMergeIterator(sources), true), end), limit)
	var out []Entry
	scanned := int64(0)
	for it.Next() {
		e := it.Entry()
		e.Value = append([]byte(nil), e.Value...)
		out = append(out, e)
		scanned++
	}
	tr.EndSpan("iterate", st)
	s.stats.scannedEntries.Add(scanned)
	for _, src := range sources {
		if err := iterErr(src); err != nil {
			return nil, fmt.Errorf("kv: scan: %w", err)
		}
	}
	return out, nil
}

// FlushLatency returns the distribution of this store's memstore-flush
// durations.
func (s *Store) FlushLatency() obs.Snapshot { return s.flushHist.Snapshot() }

// Flush forces the memstore to a new store file.
func (s *Store) Flush() error {
	s.mu.Lock()
	err := s.flushLocked()
	s.mu.Unlock()
	s.maybeTriggerCompaction()
	s.notifyFilesChanged()
	return err
}

func (s *Store) flushLocked() error {
	if s.mem.Len() == 0 {
		return nil
	}
	flushStart := time.Now()
	entries := make([]Entry, 0, s.mem.Len())
	it := s.mem.Iterator()
	for it.Next() {
		entries = append(entries, it.Entry())
	}
	f, err := s.createFile(nextFileID(), entries)
	if err != nil {
		// Keep the memstore: the data stays readable and logged; the
		// next flush retries.
		return err
	}
	maxTS := s.mem.MaxTimestamp()
	s.files = append([]*StoreFile{f}, s.files...)
	s.filesDirty.Store(true)
	s.stats.flushes.Add(1)
	s.stats.flushedBytes.Add(int64(f.Bytes()))
	s.flushHist.Since(flushStart)
	w := s.wiring.Load()
	if w.budget != nil {
		// Flush I/O is foreground: it is accounted against the shared
		// budget (so compaction yields to it) but never blocked.
		w.budget.NoteForeground(f.Bytes())
	}
	s.mem = NewMemstore(s.cfg.Seed + f.ID())
	if s.cfg.WAL != nil {
		s.cfg.WAL.Truncate(maxTS)
	}
	if s.cfg.MaxStoreFiles > 0 && len(s.files) > s.cfg.MaxStoreFiles {
		if w.trigger == nil {
			// Legacy inline path (simulation backend): compact under
			// the write lock, as before background compaction existed.
			return s.compactLocked(false)
		}
		// Background path: latch the request; the trigger fires once
		// the caller has released the write lock.
		s.compactionWanted.Store(true)
	}
	return nil
}

// createFile persists sorted entries through the backend (or in memory).
func (s *Store) createFile(id uint64, entries []Entry) (*StoreFile, error) {
	return s.createFileWithFloor(id, entries, 0)
}

// createFileWithFloor is createFile with the file's recorded max
// timestamp raised to at least maxTSFloor — compactions pass the
// maximum of their inputs so dropping a newest-version entry cannot
// regress the output's clock (see TimestampFloorCreator). Backends
// without the extension get an in-memory clamp, which preserves the
// clock for the life of this process.
func (s *Store) createFileWithFloor(id uint64, entries []Entry, maxTSFloor uint64) (*StoreFile, error) {
	var f *StoreFile
	var err error
	if s.backend != nil {
		if fc, ok := s.backend.(TimestampFloorCreator); ok && maxTSFloor > 0 {
			f, err = fc.CreateWithMaxTS(id, entries, s.cfg.BlockBytes, maxTSFloor)
		} else {
			f, err = s.backend.Create(id, entries, s.cfg.BlockBytes)
		}
	} else {
		f = BuildStoreFile(id, entries, s.cfg.BlockBytes)
	}
	if err != nil {
		return nil, err
	}
	if f.meta.MaxTS < maxTSFloor {
		f.meta.MaxTS = maxTSFloor
	}
	return f, nil
}

// Compact merges every store file (and nothing from the memstore) into a
// single file. With major=true, tombstones and shadowed versions are
// dropped — HBase's "major compact", the operation MeT issues to restore
// data locality after moving regions. The merge I/O runs outside the
// store locks (CompactFiles), so reads and writes proceed throughout; a
// flush that lands mid-compaction simply stays as its own file until the
// next compaction. The rare conflict with the legacy inline path is
// absorbed by re-planning against the fresh stack.
func (s *Store) Compact(major bool) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	for attempt := 0; ; attempt++ {
		s.mu.RLock()
		n := len(s.files)
		s.mu.RUnlock()
		if n == 0 || (n <= 1 && !major) {
			return nil
		}
		_, err := s.compactFilesLocked(CompactionSelection{Major: major})
		if err == ErrCompactionConflict && attempt < 3 {
			continue
		}
		return err
	}
}

func (s *Store) compactLocked(major bool) error {
	if len(s.files) <= 1 && !major {
		return nil
	}
	if len(s.files) == 0 {
		return nil
	}
	sources := make([]Iterator, 0, len(s.files))
	var inBytes int
	var maxTSFloor uint64
	for _, f := range s.files {
		sources = append(sources, f.iterator(nil, nil))
		inBytes += f.Bytes()
		if f.MaxTimestamp() > maxTSFloor {
			maxTSFloor = f.MaxTimestamp()
		}
	}
	it := newDedupIterator(newMergeIterator(sources), major)
	var entries []Entry
	for it.Next() {
		entries = append(entries, it.Entry())
	}
	for _, src := range sources {
		if err := iterErr(src); err != nil {
			return fmt.Errorf("kv: compact read: %w", err)
		}
	}
	merged, err := s.createFileWithFloor(nextFileID(), entries, maxTSFloor)
	if err != nil {
		return fmt.Errorf("kv: compact write: %w", err)
	}
	old := s.files
	s.files = []*StoreFile{merged}
	s.filesDirty.Store(true)
	for _, f := range old {
		s.cache.invalidateFile(f.id)
		if s.backend != nil {
			s.retiredMu.Lock()
			s.retired = append(s.retired, f.ID())
			s.retiredMu.Unlock()
		}
	}
	s.drainRetired(false)
	s.stats.compactions.Add(1)
	s.stats.compactedBytes.Add(int64(inBytes))
	s.stats.compactionBytesWritten.Add(int64(merged.Bytes()))
	s.releaseStall()
	return nil
}

// drainRetired removes retired files through the backend — closing their
// readers and unlinking them — once no lock-free scan can still be
// reading them. force skips the active-scan check (Close: racing scans
// already fail with ErrClosed once the backend shuts).
func (s *Store) drainRetired(force bool) {
	if s.backend == nil {
		return
	}
	if !force && s.activeScans.Load() != 0 {
		return
	}
	s.retiredMu.Lock()
	ids := s.retired
	s.retired = nil
	s.retiredMu.Unlock()
	// A scan starting now snapshots the current stack, which no longer
	// references these files, so removing them cannot affect it.
	for _, id := range ids {
		_ = s.backend.Remove(id)
	}
}

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	memBytes := int64(s.mem.Bytes())
	s.mu.RUnlock()
	st := s.stats.snapshot()
	st.MemstoreCurrent = memBytes
	return st
}

// DataBytes returns the approximate total bytes held (memstore + files).
func (s *Store) DataBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.mem.Bytes()
	for _, f := range s.files {
		total += f.Bytes()
	}
	return total
}

// NumFiles returns the current number of store files.
func (s *Store) NumFiles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// FileInfo describes one immutable store file, for embedders that mirror
// the engine's file stack into an external system (the HDFS layer).
type FileInfo struct {
	ID    uint64
	Bytes int64
}

// FileInfos snapshots the current immutable file stack, newest first.
func (s *Store) FileInfos() []FileInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]FileInfo, len(s.files))
	for i, f := range s.files {
		out[i] = FileInfo{ID: f.ID(), Bytes: int64(f.Bytes())}
	}
	return out
}

// ExportedFile names one immutable store file by its on-disk path, for
// byte-level shipping: replication copies it to follower servers,
// snapshots archive it. The file at Path is immutable while it remains
// in the stack; a compaction may unlink it after the snapshot is taken,
// in which case an opener sees ENOENT and the file's contents are
// guaranteed to live on in a newer (higher-ID) exported file.
type ExportedFile struct {
	ID    uint64
	Bytes int64
	MaxTS uint64
	Path  string
}

// FileExporter is an optional StorageBackend extension for backends
// whose files are real on-disk artifacts that can be copied byte for
// byte (the durable backend). FilePath returns the path file id lives
// at; it must be stable for the life of the file.
type FileExporter interface {
	FilePath(id uint64) string
}

// ExportFiles snapshots the current file stack as on-disk paths, newest
// first. ok is false when the store's backend cannot export files (the
// in-memory backend) — there is nothing to ship, and callers should
// treat the store as replication-exempt rather than empty.
func (s *Store) ExportFiles() ([]ExportedFile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	exp, ok := s.backend.(FileExporter)
	if !ok {
		return nil, false
	}
	out := make([]ExportedFile, len(s.files))
	for i, f := range s.files {
		out[i] = ExportedFile{
			ID:    f.ID(),
			Bytes: int64(f.Bytes()),
			MaxTS: f.MaxTimestamp(),
			Path:  exp.FilePath(f.ID()),
		}
	}
	return out, true
}

// CacheHitRatio exposes the block cache's observed hit ratio.
func (s *Store) CacheHitRatio() float64 {
	return s.cache.HitRatio()
}

// Recover rebuilds the memstore from the WAL; used after a simulated
// crash with an in-memory WAL (durable stores instead recover inside
// OpenStore). Returns the number of entries replayed.
func (s *Store) Recover() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.WAL == nil {
		return 0
	}
	n := 0
	for _, e := range s.cfg.WAL.Entries() {
		s.mem.Add(e)
		if e.Timestamp > s.seq {
			s.seq = e.Timestamp
		}
		n++
	}
	return n
}

// Seal stops accepting mutations — Put and Delete fail with ErrClosed —
// while reads keep being served. Region migrations (reopen on restart,
// splits) seal the source store before copying it so that every write
// ever acknowledged is either in the copy or never acknowledged: a Put
// that returned nil completed under the write lock before Seal acquired
// it, and is therefore visible to the migration's Scan.
func (s *Store) Seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
	// A stalled writer must observe the seal and fail rather than wait
	// out its full stall timeout against a store being migrated.
	s.releaseStall()
}

// Unseal re-enables mutations on a sealed store; an aborted migration
// uses it to hand the store back to the serving path.
func (s *Store) Unseal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = false
}

// Close marks the store closed and releases its backend (open file
// handles, WAL); subsequent operations fail with ErrClosed. A durable
// store must be closed before its directory is reopened.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.backend != nil {
		s.drainRetired(true)
		//lint:allow syncerr the close error is unreportable from a void Close; acknowledged data was fsynced by its own commit round
		_ = s.backend.Close() //lint:allow locksafe exclusive shutdown: closed=true fences every other path, so nothing can stall behind the final release
	}
	s.mu.Unlock()
	s.releaseStall()
}
