package kv

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// fileIDCounter mints store-file IDs that are unique process-wide, so
// stores sharing one BlockCache can never collide on cache keys.
var fileIDCounter atomic.Uint64

func nextFileID() uint64 { return fileIDCounter.Add(1) }

// Config holds the engine knobs the paper's node profiles tune.
type Config struct {
	// MemstoreFlushBytes is the memstore size at which a flush to an
	// immutable store file is triggered (HBase: memstore size fraction
	// of the heap). Defaults to 64 MiB.
	MemstoreFlushBytes int
	// BlockCacheBytes is the block cache capacity (HBase: block cache
	// size fraction of the heap). Defaults to 256 MiB.
	BlockCacheBytes int
	// BlockBytes is the store-file block size (HBase: HFile block
	// size). Defaults to 64 KiB.
	BlockBytes int
	// MaxStoreFiles triggers an automatic minor compaction when the
	// number of files exceeds it. Defaults to 8. Zero disables.
	MaxStoreFiles int
	// Seed keeps the memstore skiplist deterministic.
	Seed uint64
	// WAL receives every mutation before it is applied. Nil disables
	// logging.
	WAL WAL
	// Cache, when non-nil, is used instead of a private cache built
	// from BlockCacheBytes. A region server shares one cache across all
	// of its regions' stores, as HBase does.
	Cache *BlockCache
}

func (c Config) withDefaults() Config {
	if c.MemstoreFlushBytes <= 0 {
		c.MemstoreFlushBytes = 64 << 20
	}
	if c.BlockCacheBytes < 0 {
		c.BlockCacheBytes = 0
	} else if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 256 << 20
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 64 << 10
	}
	if c.MaxStoreFiles == 0 {
		c.MaxStoreFiles = 8
	}
	return c
}

// Store is the LSM engine: one memstore plus a stack of immutable store
// files, newest first, fronted by a block cache. A Store backs exactly
// one Region in the simulated HBase.
type Store struct {
	mu     sync.Mutex
	cfg    Config
	mem    *Memstore
	files  []*StoreFile // newest first
	cache  *BlockCache
	stats  Stats
	seq    uint64 // logical clock for timestamps
	closed bool
}

// NewStore creates an empty store with the given configuration.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = NewBlockCache(cfg.BlockCacheBytes)
	}
	return &Store{
		cfg:   cfg,
		mem:   NewMemstore(cfg.Seed),
		cache: cache,
	}
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// nextTimestamp returns a strictly increasing logical timestamp.
func (s *Store) nextTimestamp() uint64 {
	s.seq++
	return s.seq
}

// Put writes a value. Writes are atomic and immediately visible to
// subsequent reads, matching HBase's contract.
func (s *Store) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e := Entry{Key: key, Value: append([]byte(nil), value...), Timestamp: s.nextTimestamp()}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Append(e); err != nil {
			return fmt.Errorf("kv: wal append: %w", err)
		}
	}
	s.mem.Add(e)
	s.stats.Puts++
	s.stats.MemstoreCurrent = int64(s.mem.Bytes())
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		s.flushLocked()
	}
	return nil
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e := Entry{Key: key, Timestamp: s.nextTimestamp(), Tombstone: true}
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.Append(e); err != nil {
			return fmt.Errorf("kv: wal append: %w", err)
		}
	}
	s.mem.Add(e)
	s.stats.Deletes++
	s.stats.MemstoreCurrent = int64(s.mem.Bytes())
	if s.mem.Bytes() >= s.cfg.MemstoreFlushBytes {
		s.flushLocked()
	}
	return nil
}

// Get returns the newest live value for key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.Gets++
	best, ok := s.mem.Get(key)
	for _, f := range s.files {
		if ok && best.Timestamp >= f.MaxTimestamp() {
			break // nothing newer can exist in older files
		}
		if e, found := f.get(key, s.cache, &s.stats); found {
			if !ok || e.supersedes(best) {
				best, ok = e, true
			}
		}
	}
	if !ok || best.Tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), best.Value...), nil
}

// Scan returns up to limit live entries with start <= key < end, in key
// order. An empty end means "to the end of the store"; limit < 0 means
// unlimited.
func (s *Store) Scan(start, end string, limit int) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.Scans++
	sources := make([]Iterator, 0, len(s.files)+1)
	sources = append(sources, s.mem.IteratorFrom(start))
	for _, f := range s.files {
		sources = append(sources, f.iteratorFrom(start, s.cache, &s.stats))
	}
	it := newLimitIterator(newBoundIterator(newDedupIterator(newMergeIterator(sources), true), end), limit)
	var out []Entry
	for it.Next() {
		e := it.Entry()
		e.Value = append([]byte(nil), e.Value...)
		out = append(out, e)
		s.stats.ScannedEntries++
	}
	return out, nil
}

// Flush forces the memstore to a new store file.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if s.mem.Len() == 0 {
		return
	}
	entries := make([]Entry, 0, s.mem.Len())
	it := s.mem.Iterator()
	for it.Next() {
		entries = append(entries, it.Entry())
	}
	f := BuildStoreFile(nextFileID(), entries, s.cfg.BlockBytes)
	maxTS := s.mem.MaxTimestamp()
	s.files = append([]*StoreFile{f}, s.files...)
	s.stats.Flushes++
	s.stats.FlushedBytes += int64(f.Bytes())
	s.mem = NewMemstore(s.cfg.Seed + f.ID())
	s.stats.MemstoreCurrent = 0
	if s.cfg.WAL != nil {
		s.cfg.WAL.Truncate(maxTS)
	}
	if s.cfg.MaxStoreFiles > 0 && len(s.files) > s.cfg.MaxStoreFiles {
		s.compactLocked(false)
	}
}

// Compact merges every store file (and nothing from the memstore) into a
// single file. With major=true, tombstones and shadowed versions are
// dropped — HBase's "major compact", the operation MeT issues to restore
// data locality after moving regions.
func (s *Store) Compact(major bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked(major)
}

func (s *Store) compactLocked(major bool) {
	if len(s.files) <= 1 && !major {
		return
	}
	if len(s.files) == 0 {
		return
	}
	sources := make([]Iterator, 0, len(s.files))
	var inBytes int
	for _, f := range s.files {
		sources = append(sources, f.iterator(nil, nil))
		inBytes += f.Bytes()
	}
	it := newDedupIterator(newMergeIterator(sources), major)
	var entries []Entry
	for it.Next() {
		entries = append(entries, it.Entry())
	}
	for _, f := range s.files {
		s.cache.invalidateFile(f.id)
	}
	merged := BuildStoreFile(nextFileID(), entries, s.cfg.BlockBytes)
	s.files = []*StoreFile{merged}
	s.stats.Compactions++
	s.stats.CompactedBytes += int64(inBytes)
}

// Stats returns a snapshot of the engine counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemstoreCurrent = int64(s.mem.Bytes())
	return st
}

// DataBytes returns the approximate total bytes held (memstore + files).
func (s *Store) DataBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.mem.Bytes()
	for _, f := range s.files {
		total += f.Bytes()
	}
	return total
}

// NumFiles returns the current number of store files.
func (s *Store) NumFiles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// CacheHitRatio exposes the block cache's observed hit ratio.
func (s *Store) CacheHitRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.HitRatio()
}

// Recover rebuilds the memstore from the WAL; used after a simulated
// crash. Returns the number of entries replayed.
func (s *Store) Recover() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.WAL == nil {
		return 0
	}
	n := 0
	for _, e := range s.cfg.WAL.Entries() {
		s.mem.Add(e)
		if e.Timestamp > s.seq {
			s.seq = e.Timestamp
		}
		n++
	}
	return n
}

// Close marks the store closed; subsequent operations fail with
// ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
