package kv

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"met/internal/sim"
)

func TestMemstoreAddGet(t *testing.T) {
	m := NewMemstore(1)
	m.Add(Entry{Key: "b", Value: []byte("1"), Timestamp: 1})
	m.Add(Entry{Key: "a", Value: []byte("2"), Timestamp: 2})
	e, ok := m.Get("a")
	if !ok || string(e.Value) != "2" {
		t.Fatalf("Get(a) = %v, %v", e, ok)
	}
	if _, ok := m.Get("zz"); ok {
		t.Fatal("found missing key")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestMemstoreNewestVersionFirst(t *testing.T) {
	m := NewMemstore(1)
	m.Add(Entry{Key: "k", Value: []byte("old"), Timestamp: 1})
	m.Add(Entry{Key: "k", Value: []byte("new"), Timestamp: 2})
	e, ok := m.Get("k")
	if !ok || string(e.Value) != "new" {
		t.Fatalf("Get = %v", e)
	}
	if m.Len() != 2 {
		t.Fatalf("versions = %d, want 2", m.Len())
	}
}

func TestMemstoreSameCoordinatesReplace(t *testing.T) {
	m := NewMemstore(1)
	m.Add(Entry{Key: "k", Value: []byte("a"), Timestamp: 5})
	m.Add(Entry{Key: "k", Value: []byte("bb"), Timestamp: 5})
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
	e, _ := m.Get("k")
	if string(e.Value) != "bb" {
		t.Fatalf("value = %q", e.Value)
	}
}

func TestMemstoreIteratorSorted(t *testing.T) {
	m := NewMemstore(7)
	rng := sim.NewRNG(9)
	for i := 0; i < 500; i++ {
		m.Add(Entry{Key: fmt.Sprintf("k%04d", rng.Intn(200)), Timestamp: uint64(i + 1)})
	}
	it := m.Iterator()
	var prev Entry
	first := true
	count := 0
	for it.Next() {
		e := it.Entry()
		if !first && less(e, prev) {
			t.Fatalf("out of order: %v after %v", e, prev)
		}
		prev, first = e, false
		count++
	}
	if count != m.Len() {
		t.Fatalf("iterated %d, len %d", count, m.Len())
	}
}

func TestMemstoreIteratorFrom(t *testing.T) {
	m := NewMemstore(1)
	for i := 0; i < 10; i++ {
		m.Add(Entry{Key: fmt.Sprintf("k%d", i), Timestamp: uint64(i + 1)})
	}
	it := m.IteratorFrom("k5")
	if !it.Next() || it.Entry().Key != "k5" {
		t.Fatalf("first = %v", it.Entry())
	}
	it = m.IteratorFrom("zzz")
	if it.Next() {
		t.Fatal("iterator past end returned entries")
	}
}

func TestMemstoreBytesAccounting(t *testing.T) {
	m := NewMemstore(1)
	if m.Bytes() != 0 {
		t.Fatal("empty memstore has bytes")
	}
	e := Entry{Key: "key", Value: []byte("value"), Timestamp: 1}
	m.Add(e)
	if m.Bytes() != e.Size() {
		t.Fatalf("bytes = %d, want %d", m.Bytes(), e.Size())
	}
	m.Add(Entry{Key: "key", Value: []byte("v2"), Timestamp: 1}) // replace
	want := Entry{Key: "key", Value: []byte("v2")}.Size()
	if m.Bytes() != want {
		t.Fatalf("bytes after replace = %d, want %d", m.Bytes(), want)
	}
}

func TestMemstoreMaxTimestamp(t *testing.T) {
	m := NewMemstore(1)
	m.Add(Entry{Key: "a", Timestamp: 5})
	m.Add(Entry{Key: "b", Timestamp: 3})
	if m.MaxTimestamp() != 5 {
		t.Fatalf("max ts = %d", m.MaxTimestamp())
	}
}

// Property: memstore iteration equals sorting the inserted entries.
func TestMemstorePropertySorted(t *testing.T) {
	err := quick.Check(func(seed uint16, n uint8) bool {
		rng := sim.NewRNG(uint64(seed))
		m := NewMemstore(uint64(seed) + 1)
		var entries []Entry
		for i := 0; i < int(n)+1; i++ {
			e := Entry{Key: fmt.Sprintf("k%03d", rng.Intn(64)), Timestamp: uint64(i + 1)}
			m.Add(e)
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool { return less(entries[i], entries[j]) })
		it := m.Iterator()
		for _, want := range entries {
			if !it.Next() {
				return false
			}
			got := it.Entry()
			if got.Key != want.Key || got.Timestamp != want.Timestamp {
				return false
			}
		}
		return !it.Next()
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildStoreFileBlocks(t *testing.T) {
	var entries []Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{Key: fmt.Sprintf("k%03d", i), Value: make([]byte, 48), Timestamp: uint64(i + 1)})
	}
	f := BuildStoreFile(1, entries, 256)
	if f.Entries() != 100 {
		t.Fatalf("entries = %d", f.Entries())
	}
	if f.NumBlocks() < 10 {
		t.Fatalf("blocks = %d, expected many with 256B blocks", f.NumBlocks())
	}
	minKey, maxKey := f.KeyRange()
	if minKey != "k000" || maxKey != "k099" {
		t.Fatalf("range = [%s, %s]", minKey, maxKey)
	}
	// Every key is findable.
	for i := 0; i < 100; i++ {
		if _, ok, _ := f.get(fmt.Sprintf("k%03d", i), nil, nil, nil); !ok {
			t.Fatalf("k%03d missing", i)
		}
	}
	if _, ok, _ := f.get("k100", nil, nil, nil); ok {
		t.Fatal("found key past range")
	}
	if _, ok, _ := f.get("a", nil, nil, nil); ok {
		t.Fatal("found key before range")
	}
}

func TestBuildStoreFileUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildStoreFile(1, []Entry{{Key: "b", Timestamp: 1}, {Key: "a", Timestamp: 2}}, 64)
}

func TestStoreFileEmpty(t *testing.T) {
	f := BuildStoreFile(1, nil, 64)
	if f.Entries() != 0 || f.NumBlocks() != 0 {
		t.Fatal("empty file not empty")
	}
	if _, ok, _ := f.get("k", nil, nil, nil); ok {
		t.Fatal("empty file found key")
	}
	it := f.iterator(nil, nil)
	if it.Next() {
		t.Fatal("empty iterator returned entries")
	}
}

func TestStoreFileIteratorFrom(t *testing.T) {
	var entries []Entry
	for i := 0; i < 50; i++ {
		entries = append(entries, Entry{Key: fmt.Sprintf("k%02d", i*2), Timestamp: uint64(i + 1)})
	}
	f := BuildStoreFile(1, entries, 200)
	// Exact key.
	it := f.iteratorFrom("k10", nil, nil)
	if !it.Next() || it.Entry().Key != "k10" {
		t.Fatalf("from k10 -> %v", it.Entry())
	}
	// Between keys: k11 doesn't exist, expect k12.
	it = f.iteratorFrom("k11", nil, nil)
	if !it.Next() || it.Entry().Key != "k12" {
		t.Fatalf("from k11 -> %v", it.Entry())
	}
	// Before range.
	it = f.iteratorFrom("a", nil, nil)
	if !it.Next() || it.Entry().Key != "k00" {
		t.Fatalf("from a -> %v", it.Entry())
	}
	// Past range.
	it = f.iteratorFrom("z", nil, nil)
	if it.Next() {
		t.Fatal("from z returned entries")
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := NewBlockCache(300)
	mk := func(n int) *Block { return &Block{bytes: n} }
	c.put(blockKey{1, 0}, mk(100))
	c.put(blockKey{1, 1}, mk(100))
	c.put(blockKey{1, 2}, mk(100))
	if c.Used() != 300 || c.Len() != 3 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	// Touch block 0 so block 1 is LRU.
	c.get(blockKey{1, 0})
	c.put(blockKey{1, 3}, mk(100))
	if _, ok := c.get(blockKey{1, 1}); ok {
		t.Fatal("LRU block not evicted")
	}
	if _, ok := c.get(blockKey{1, 0}); !ok {
		t.Fatal("recently used block evicted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestBlockCacheOversizedBlock(t *testing.T) {
	c := NewBlockCache(100)
	c.put(blockKey{1, 0}, &Block{bytes: 200})
	if c.Len() != 0 {
		t.Fatal("oversized block cached")
	}
}

func TestBlockCacheInvalidateFile(t *testing.T) {
	c := NewBlockCache(1000)
	c.put(blockKey{1, 0}, &Block{bytes: 100})
	c.put(blockKey{1, 1}, &Block{bytes: 100})
	c.put(blockKey{2, 0}, &Block{bytes: 100})
	c.invalidateFile(1)
	if c.Len() != 1 || c.Used() != 100 {
		t.Fatalf("len=%d used=%d after invalidate", c.Len(), c.Used())
	}
	if _, ok := c.get(blockKey{2, 0}); !ok {
		t.Fatal("unrelated file evicted")
	}
}

func TestBlockCacheResize(t *testing.T) {
	c := NewBlockCache(1000)
	for i := 0; i < 10; i++ {
		c.put(blockKey{1, i}, &Block{bytes: 100})
	}
	c.Resize(250)
	if c.Used() > 250 {
		t.Fatalf("used = %d after resize", c.Used())
	}
	if c.Capacity() != 250 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
}

func TestBlockCacheHitRatio(t *testing.T) {
	c := NewBlockCache(1000)
	if c.HitRatio() != 0 {
		t.Fatal("empty cache ratio != 0")
	}
	c.put(blockKey{1, 0}, &Block{bytes: 10})
	c.get(blockKey{1, 0})
	c.get(blockKey{9, 9})
	if c.HitRatio() != 0.5 {
		t.Fatalf("ratio = %v", c.HitRatio())
	}
}

func TestMergeIteratorInterleaves(t *testing.T) {
	a := BuildStoreFile(1, []Entry{{Key: "a", Timestamp: 1}, {Key: "c", Timestamp: 2}}, 64)
	b := BuildStoreFile(2, []Entry{{Key: "b", Timestamp: 3}, {Key: "d", Timestamp: 4}}, 64)
	it := newMergeIterator([]Iterator{a.iterator(nil, nil), b.iterator(nil, nil)})
	var keys []string
	for it.Next() {
		keys = append(keys, it.Entry().Key)
	}
	want := []string{"a", "b", "c", "d"}
	if len(keys) != 4 {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestMergeIteratorVersionOrder(t *testing.T) {
	newer := BuildStoreFile(1, []Entry{{Key: "k", Value: []byte("new"), Timestamp: 9}}, 64)
	older := BuildStoreFile(2, []Entry{{Key: "k", Value: []byte("old"), Timestamp: 3}}, 64)
	it := newMergeIterator([]Iterator{newer.iterator(nil, nil), older.iterator(nil, nil)})
	if !it.Next() || string(it.Entry().Value) != "new" {
		t.Fatalf("first version = %v", it.Entry())
	}
	if !it.Next() || string(it.Entry().Value) != "old" {
		t.Fatalf("second version = %v", it.Entry())
	}
}

func TestDedupDropsTombstones(t *testing.T) {
	f := BuildStoreFile(1, []Entry{
		{Key: "a", Timestamp: 2, Tombstone: true},
		{Key: "a", Timestamp: 1, Value: []byte("old")},
		{Key: "b", Timestamp: 3, Value: []byte("live")},
	}, 64)
	it := newDedupIterator(f.iterator(nil, nil), true)
	if !it.Next() || it.Entry().Key != "b" {
		t.Fatalf("entry = %v", it.Entry())
	}
	if it.Next() {
		t.Fatal("extra entries")
	}
	// Keeping tombstones (minor merge) retains the marker.
	it = newDedupIterator(f.iterator(nil, nil), false)
	if !it.Next() || it.Entry().Key != "a" || !it.Entry().Tombstone {
		t.Fatalf("entry = %v", it.Entry())
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Key: "k", Value: []byte("abc"), Timestamp: 7}
	if e.String() == "" {
		t.Fatal("empty String")
	}
	d := Entry{Key: "k", Timestamp: 8, Tombstone: true}
	if d.String() == e.String() {
		t.Fatal("tombstone string identical")
	}
}

func TestStatsCacheHitRatio(t *testing.T) {
	s := Stats{CacheHits: 3, CacheMisses: 1}
	if s.CacheHitRatio() != 0.75 {
		t.Fatalf("ratio = %v", s.CacheHitRatio())
	}
	if (Stats{}).CacheHitRatio() != 0 {
		t.Fatal("empty ratio != 0")
	}
}
