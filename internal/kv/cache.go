package kv

import "container/list"

// blockKey identifies a cached block by file and block index.
type blockKey struct {
	file  uint64
	block int
}

// BlockCache is a byte-capacity LRU over store-file blocks, the analogue
// of HBase's block cache. Its capacity is the knob MeT's node profiles
// tune: read-profile nodes get 55% of the heap, write-profile nodes 10%.
type BlockCache struct {
	capacity int
	used     int
	order    *list.List // front = most recently used
	items    map[blockKey]*list.Element

	hits, misses, evictions int64
}

type cacheItem struct {
	key   blockKey
	block *Block
}

// NewBlockCache returns a cache with the given byte capacity. A zero or
// negative capacity yields a cache that stores nothing (all misses),
// which is still safe to use.
func NewBlockCache(capacity int) *BlockCache {
	return &BlockCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[blockKey]*list.Element),
	}
}

// get returns the cached block and promotes it to most recently used.
func (c *BlockCache) get(k blockKey) (*Block, bool) {
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).block, true
}

// put inserts a block, evicting least-recently-used blocks as needed.
// Blocks larger than the whole capacity are not cached.
func (c *BlockCache) put(k blockKey, b *Block) {
	if b.Bytes() > c.capacity {
		return
	}
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		old := el.Value.(*cacheItem)
		c.used += b.Bytes() - old.block.Bytes()
		old.block = b
	} else {
		el := c.order.PushFront(&cacheItem{key: k, block: b})
		c.items[k] = el
		c.used += b.Bytes()
	}
	for c.used > c.capacity {
		c.evictOldest()
	}
}

func (c *BlockCache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	item := el.Value.(*cacheItem)
	c.order.Remove(el)
	delete(c.items, item.key)
	c.used -= item.block.Bytes()
	c.evictions++
}

// invalidateFile drops every cached block of the given file; called when
// compaction retires a file.
func (c *BlockCache) invalidateFile(fileID uint64) {
	for k, el := range c.items {
		if k.file == fileID {
			item := el.Value.(*cacheItem)
			c.order.Remove(el)
			delete(c.items, k)
			c.used -= item.block.Bytes()
		}
	}
}

// Resize changes the capacity, evicting as needed. This supports node
// reconfiguration in tests; the simulated cluster instead restarts the
// store, as real HBase must (the paper calls out the lack of online
// reconfiguration as the dominant actuation cost).
func (c *BlockCache) Resize(capacity int) {
	c.capacity = capacity
	for c.used > c.capacity {
		c.evictOldest()
	}
}

// Used returns the current cached bytes.
func (c *BlockCache) Used() int { return c.used }

// Capacity returns the configured byte capacity.
func (c *BlockCache) Capacity() int { return c.capacity }

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int { return c.order.Len() }

// HitRatio returns hits/(hits+misses) observed by the cache itself.
func (c *BlockCache) HitRatio() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// Evictions returns the number of blocks evicted so far.
func (c *BlockCache) Evictions() int64 { return c.evictions }
