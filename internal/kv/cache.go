package kv

import (
	"container/list"
	"sync"
)

// blockKey identifies a cached block by file and block index.
type blockKey struct {
	file  uint64
	block int
}

// BlockCache is a byte-capacity LRU over store-file blocks, the analogue
// of HBase's block cache. Its capacity is the knob MeT's node profiles
// tune: read-profile nodes get 55% of the heap, write-profile nodes 10%.
//
// The cache is safe for concurrent use: one region server shares a
// single BlockCache across all of its regions' stores, whose readers run
// in parallel under their stores' read locks. Every lookup mutates the
// LRU recency list, so even get takes the internal mutex; the critical
// sections are a few pointer moves, which keeps the cache far from being
// the bottleneck the coarse store lock used to be.
type BlockCache struct {
	mu       sync.Mutex
	capacity int
	used     int
	order    *list.List // front = most recently used
	items    map[blockKey]*list.Element

	hits, misses, evictions int64
}

type cacheItem struct {
	key   blockKey
	block *Block
}

// NewBlockCache returns a cache with the given byte capacity. A zero or
// negative capacity yields a cache that stores nothing (all misses),
// which is still safe to use.
func NewBlockCache(capacity int) *BlockCache {
	return &BlockCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[blockKey]*list.Element),
	}
}

// get returns the cached block and promotes it to most recently used.
func (c *BlockCache) get(k blockKey) (*Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).block, true
}

// put inserts a block, evicting least-recently-used blocks as needed.
// Blocks larger than the whole capacity are not cached.
func (c *BlockCache) put(k blockKey, b *Block) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b.Bytes() > c.capacity {
		return
	}
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		old := el.Value.(*cacheItem)
		c.used += b.Bytes() - old.block.Bytes()
		old.block = b
	} else {
		el := c.order.PushFront(&cacheItem{key: k, block: b})
		c.items[k] = el
		c.used += b.Bytes()
	}
	for c.used > c.capacity {
		c.evictOldestLocked()
	}
}

func (c *BlockCache) evictOldestLocked() {
	el := c.order.Back()
	if el == nil {
		return
	}
	item := el.Value.(*cacheItem)
	c.order.Remove(el)
	delete(c.items, item.key)
	c.used -= item.block.Bytes()
	c.evictions++
}

// invalidateFile drops every cached block of the given file; called when
// compaction retires a file.
func (c *BlockCache) invalidateFile(fileID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, el := range c.items {
		if k.file == fileID {
			item := el.Value.(*cacheItem)
			c.order.Remove(el)
			delete(c.items, k)
			c.used -= item.block.Bytes()
		}
	}
}

// Resize changes the capacity, evicting as needed. This supports node
// reconfiguration in tests; the simulated cluster instead restarts the
// store, as real HBase must (the paper calls out the lack of online
// reconfiguration as the dominant actuation cost).
func (c *BlockCache) Resize(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	for c.used > c.capacity {
		c.evictOldestLocked()
	}
}

// Used returns the current cached bytes.
func (c *BlockCache) Used() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte capacity.
func (c *BlockCache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// HitRatio returns hits/(hits+misses) observed by the cache itself.
func (c *BlockCache) HitRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// Evictions returns the number of blocks evicted so far.
func (c *BlockCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
