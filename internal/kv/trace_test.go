package kv

import (
	"sync"
	"testing"
	"time"

	"met/internal/obs"
)

// delaySource wraps a BlockSource and sleeps on every LoadBlock — a
// deterministic stand-in for a slow disk read.
type delaySource struct {
	BlockSource
	delay time.Duration
}

func (d *delaySource) LoadBlock(i int) (*Block, error) {
	time.Sleep(d.delay)
	return d.BlockSource.LoadBlock(i)
}

func slowFile(t *testing.T, delay time.Duration) *StoreFile {
	t.Helper()
	entries := []Entry{
		{Key: "a", Value: []byte("1"), Timestamp: 1},
		{Key: "b", Value: []byte("2"), Timestamp: 1},
	}
	blocks, meta := PackBlocks(entries, 1<<20)
	src := &delaySource{BlockSource: &memorySource{blocks: blocks}, delay: delay}
	return NewStoreFile(1, meta, src)
}

// TestTraceCapturesSlowSSTableRead injects a slow block load and checks
// the trace attributes the time to the sstable-read stage, and that the
// traced op lands in a slow log with that span intact.
func TestTraceCapturesSlowSSTableRead(t *testing.T) {
	const delay = 5 * time.Millisecond
	f := slowFile(t, delay)

	tr := obs.StartTrace("get", "t", "a")
	if _, found, err := f.get("a", nil, nil, tr); err != nil || !found {
		t.Fatalf("get: found=%v err=%v", found, err)
	}
	var read time.Duration
	for _, sp := range tr.Spans() {
		if sp.Stage == "sstable-read" {
			read = sp.Dur
		}
	}
	if read < delay {
		t.Fatalf("sstable-read span %v, want >= injected delay %v", read, delay)
	}

	log := obs.NewSlowLog(4)
	log.Observe(tr, tr.Elapsed())
	ops := log.Snapshot()
	if len(ops) != 1 {
		t.Fatalf("slow log holds %d ops, want 1", len(ops))
	}
	var logged time.Duration
	for _, sp := range ops[0].Spans {
		if sp.Stage == "sstable-read" {
			logged = sp.Dur
		}
	}
	if logged != read {
		t.Fatalf("slow log span %v != trace span %v", logged, read)
	}
	if ops[0].Total < delay {
		t.Fatalf("slow op total %v < injected delay %v", ops[0].Total, delay)
	}
}

// TestTraceCacheHitSpan checks that a cached block records block-cache,
// not sstable-read.
func TestTraceCacheHitSpan(t *testing.T) {
	f := slowFile(t, 0)
	cache := NewBlockCache(1 << 20)

	tr := obs.StartTrace("get", "t", "a")
	if _, _, err := f.get("a", cache, nil, tr); err != nil {
		t.Fatal(err)
	}
	tr2 := obs.StartTrace("get", "t", "a")
	if _, _, err := f.get("a", cache, nil, tr2); err != nil {
		t.Fatal(err)
	}
	want := func(tr *obs.Trace, stage string) {
		t.Helper()
		for _, sp := range tr.Spans() {
			if sp.Stage == stage {
				return
			}
		}
		t.Fatalf("missing %q span in %+v", stage, tr.Spans())
	}
	want(tr, "sstable-read")
	want(tr2, "block-cache")
}

// TestTracedOpsConcurrent hammers a slow file from many goroutines with
// traces and a shared slow log; run under -race this checks the whole
// trace/slow-log path for data races.
func TestTracedOpsConcurrent(t *testing.T) {
	f := slowFile(t, 100*time.Microsecond)
	log := obs.NewSlowLog(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tr := obs.StartTrace("get", "t", "a")
				if _, _, err := f.get("a", nil, nil, tr); err != nil {
					t.Error(err)
					return
				}
				log.Observe(tr, tr.Elapsed())
			}
		}()
	}
	wg.Wait()
	if log.Total() != 160 {
		t.Fatalf("slow log total = %d, want 160", log.Total())
	}
	if got := len(log.Snapshot()); got != 16 {
		t.Fatalf("ring retained %d, want 16", got)
	}
}
