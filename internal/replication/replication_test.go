package replication

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"met/internal/durable"
	"met/internal/kv"
)

// openDurableStore builds a small durable store that flushes often.
func openDurableStore(t *testing.T, dir string) *kv.Store {
	t.Helper()
	s, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: 2 << 10,
		BlockBytes:         1 << 10,
		MaxStoreFiles:      -1, // no automatic compaction; tests drive it
		OpenBackend:        durable.Opener(dir, durable.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func fill(t *testing.T, s *kv.Store, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := s.Put(fmt.Sprintf("k%05d", i), []byte("0123456789abcdefghijklmnopqrstuv")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// track wires a store to a replicator under one region name and dest.
func track(r *Replicator, s *kv.Store, region string, dests ...string) {
	r.Track(region, s.ExportFiles, func() []string { return dests }, nil)
	s.SetFilesChanged(func() { r.Notify(region) })
}

// replicaIDs reads the SSTable IDs in dir (empty when absent).
func replicaIDs(t *testing.T, dir string) []uint64 {
	t.Helper()
	ids, err := ListSSTables(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func storeIDs(s *kv.Store) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, fi := range s.FileInfos() {
		out[fi.ID] = true
	}
	return out
}

// TestReplicatorMirrorsFlushesAndCompactions: every flush ships its
// SSTable; a compaction ships the merged file and retires the inputs,
// leaving the replica directory exactly equal to the primary stack.
func TestReplicatorMirrorsFlushesAndCompactions(t *testing.T) {
	base := t.TempDir()
	primary := filepath.Join(base, "primary")
	replica := filepath.Join(base, "replica")
	s := openDurableStore(t, primary)
	r := New(Config{})
	defer r.Close()
	track(r, s, "region-a", replica)

	for round := 0; round < 3; round++ {
		fill(t, s, round*100, (round+1)*100)
	}
	r.Quiesce()
	want := storeIDs(s)
	got := replicaIDs(t, replica)
	if len(got) != len(want) {
		t.Fatalf("replica holds %d files, primary %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("replica holds file %d the primary lacks", id)
		}
	}

	// Compact: the merged file ships, the retired inputs disappear.
	if err := s.Compact(true); err != nil {
		t.Fatal(err)
	}
	r.Quiesce()
	got = replicaIDs(t, replica)
	want = storeIDs(s)
	if len(got) != 1 || len(want) != 1 || !want[got[0]] {
		t.Fatalf("after compaction: replica %v, primary %v", got, want)
	}
	st := r.Stats()
	if st.FilesShipped < 4 || st.FilesRetired < 3 {
		t.Fatalf("stats did not account shipping: %+v", st)
	}

	// The replica files are byte-identical to the primary's.
	pPath := SSTablePath(primary, got[0])
	rPath := SSTablePath(replica, got[0])
	pb, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(rPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(rb) {
		t.Fatal("replica SSTable differs from primary")
	}
}

// TestReplicaDirectoryOpensAsStore: a store opened over a directory
// seeded with replica SSTables serves every replicated row — the
// property RecoverServer depends on.
func TestReplicaDirectoryOpensAsStore(t *testing.T) {
	base := t.TempDir()
	primary := filepath.Join(base, "primary")
	replica := filepath.Join(base, "replica")
	s := openDurableStore(t, primary)
	r := New(Config{})
	defer r.Close()
	track(r, s, "region-a", replica)
	fill(t, s, 0, 200)
	r.Quiesce()

	recovered, err := kv.OpenStore(kv.Config{
		BlockBytes:  1 << 10,
		OpenBackend: durable.Opener(replica, durable.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	for i := 0; i < 200; i++ {
		if _, err := recovered.Get(fmt.Sprintf("k%05d", i)); err != nil {
			t.Fatalf("replicated row k%05d unreadable from replica: %v", i, err)
		}
	}
	if got, want := recovered.MaxTimestamp(), s.MaxTimestamp(); got != want {
		t.Fatalf("replica clock %d != primary clock %d after full flush", got, want)
	}
}

// TestReplicatorCleansTempDebris: a .tmp file (a copy killed mid-ship)
// is removed at the next reconciliation and never shadows a real copy.
func TestReplicatorCleansTempDebris(t *testing.T) {
	base := t.TempDir()
	primary := filepath.Join(base, "primary")
	replica := filepath.Join(base, "replica")
	if err := os.MkdirAll(replica, 0o755); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(replica, "sst-0000000000000042.sst.tmp")
	if err := os.WriteFile(debris, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openDurableStore(t, primary)
	r := New(Config{})
	defer r.Close()
	track(r, s, "region-a", replica)
	fill(t, s, 0, 50)
	r.Quiesce()
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("temp debris survived reconciliation: %v", err)
	}
	if got := replicaIDs(t, replica); len(got) == 0 {
		t.Fatal("no SSTable shipped")
	}
}

// TestReplicatorFansOutToMultipleFollowers: replication factor 3 means
// two follower directories, each a complete copy.
func TestReplicatorFansOutToMultipleFollowers(t *testing.T) {
	base := t.TempDir()
	primary := filepath.Join(base, "primary")
	f1 := filepath.Join(base, "f1")
	f2 := filepath.Join(base, "f2")
	s := openDurableStore(t, primary)
	r := New(Config{})
	defer r.Close()
	track(r, s, "region-a", f1, f2)
	fill(t, s, 0, 100)
	r.Quiesce()
	want := len(storeIDs(s))
	if got := len(replicaIDs(t, f1)); got != want {
		t.Fatalf("follower 1 holds %d files, want %d", got, want)
	}
	if got := len(replicaIDs(t, f2)); got != want {
		t.Fatalf("follower 2 holds %d files, want %d", got, want)
	}
}

// TestUntrackStopsShipping: an untracked region's queued notifications
// are dropped, and new flushes no longer ship.
func TestUntrackStopsShipping(t *testing.T) {
	base := t.TempDir()
	primary := filepath.Join(base, "primary")
	replica := filepath.Join(base, "replica")
	s := openDurableStore(t, primary)
	r := New(Config{})
	defer r.Close()
	track(r, s, "region-a", replica)
	fill(t, s, 0, 50)
	r.Quiesce()
	before := len(replicaIDs(t, replica))
	r.Untrack("region-a")
	fill(t, s, 50, 150)
	r.Quiesce()
	if got := len(replicaIDs(t, replica)); got != before {
		t.Fatalf("untracked region kept shipping: %d -> %d files", before, got)
	}
}

// countingBudget records background byte accounting.
type countingBudget struct {
	mu    sync.Mutex
	bytes int64
}

func (b *countingBudget) WaitBackground(n int) {
	b.mu.Lock()
	b.bytes += int64(n)
	b.mu.Unlock()
}
func (b *countingBudget) NoteForeground(int) {}

// TestReplicatorChargesBudget: every shipped byte passes through the
// shared I/O budget as background traffic.
func TestReplicatorChargesBudget(t *testing.T) {
	base := t.TempDir()
	primary := filepath.Join(base, "primary")
	replica := filepath.Join(base, "replica")
	s := openDurableStore(t, primary)
	budget := &countingBudget{}
	r := New(Config{Budget: budget})
	defer r.Close()
	track(r, s, "region-a", replica)
	fill(t, s, 0, 100)
	r.Quiesce()
	st := r.Stats()
	budget.mu.Lock()
	charged := budget.bytes
	budget.mu.Unlock()
	if charged == 0 || charged != st.BytesShipped {
		t.Fatalf("budget charged %d bytes, stats say %d shipped", charged, st.BytesShipped)
	}
}

// TestInMemoryStoreIsReplicationExempt: a store on the memory backend
// exports nothing and the replicator treats it as a no-op, not as an
// empty primary to mirror (which would delete real replica files).
func TestInMemoryStoreIsReplicationExempt(t *testing.T) {
	base := t.TempDir()
	replica := filepath.Join(base, "replica")
	if err := os.MkdirAll(replica, 0o755); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(replica, "sst-0000000000000007.sst")
	if err := os.WriteFile(keep, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := kv.NewStore(kv.Config{MemstoreFlushBytes: 1 << 10})
	defer s.Close()
	r := New(Config{})
	defer r.Close()
	track(r, s, "region-a", replica)
	r.Notify("region-a")
	r.Quiesce()
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("replication-exempt store clobbered replica dir: %v", err)
	}
}
