// Package replication maintains real on-disk copies of every region's
// immutable SSTables on follower servers, so a hard-killed server's
// regions can be reopened elsewhere from the copies alone — the
// HBase-on-HDFS property (region data survives a datanode loss) that
// the simulated hdfs layer only pretended to have.
//
// # Replica layout
//
// Each region server owns one Replicator (like its compactor pool).
// The replicator tracks the server's hosted regions; whenever a
// region's store changes its file stack — a flush added an SSTable, a
// compaction replaced a run (kv.Config.OnFilesChanged, plus the
// compactor pool's OnCompacted fan-out) — the region is enqueued and a
// background worker *reconciles* each follower's replica directory
// against the primary's current stack:
//
//	<DataDir>/regions/<region>             primary store (WAL + SSTables)
//	<DataDir>/replica/<follower>/<region>  that follower's copy
//	                                       (SSTables only, same names)
//
// Missing SSTables are copied in (write-to-temp/fsync/rename, so a
// crash never leaves a half-copied file visible); SSTables the primary
// has compacted away are retired. Copies are charged to the shared
// compaction I/O budget as background bytes, so shipping yields to
// foreground serving exactly like compaction does. Followers are chosen
// by the hdfs.Namenode's replica placement (local-first, least-used)
// and recorded per region in the META catalog's table rows, which is
// how a cold start — and Master.RecoverServer — rediscovers placement.
//
// # Tail streaming
//
// SSTables alone leave a loss window on a server kill: the primary's
// unflushed memstore. Each reconciliation therefore also ships the
// region's synced WAL tail — its durable-but-unflushed records, taken
// from the server's shared log (durable.WAL.SyncedTail) — as one
// atomically-replaced wal-tail.log frame file per replica directory. A
// flush empties the tail (the records moved into a shipped SSTable) and
// the next reconcile removes the file. Master.RecoverServer replays the
// shipped tail over the replica SSTables, so the loss window shrinks to
// the records no fsync covered plus shipping lag — 0 after a Quiesce.
// The tail is snapshotted before the file stack: a flush racing the
// reconcile can then only duplicate records between the tail file and a
// shipped SSTable (replay dedups by timestamp), never drop them from
// both.
//
// # Recovery ordering
//
// The replica directory is crash-consistent by construction: every
// visible file is a complete, fsynced copy of an immutable SSTable, and
// a directory holding both a compaction's inputs and its output is the
// exact state the engine itself tolerates after a crash mid-compaction
// (duplicate entries dedup at read time); the tail file is replaced
// atomically and CRC-framed, so a torn ship truncates to the last good
// record. Reopening a store over a seeded directory therefore needs no
// replication-specific recovery code — Master.RecoverServer copies the
// replica's SSTables into a fresh region directory, opens it like any
// other cold store, replays the tail file through the engine, then
// commits the new layout through the catalog (see hbase.RecoverServer
// for the commit ordering).
package replication

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"met/internal/durable"
	"met/internal/kv"
	"met/internal/obs"
)

// Config tunes a Replicator. The zero value gets one worker, an
// unlimited budget and the default bounded-lag tail floor.
type Config struct {
	// Workers is the number of concurrent shipping goroutines.
	// Defaults to 1; distinct regions ship in parallel with more.
	Workers int
	// Budget, when non-nil, receives every copied byte as background
	// I/O (compaction.Budget implements this), so replication shares
	// the compaction/serving bandwidth arbitration: shipping blocks
	// when foreground traffic has depleted the budget. Tail ships are
	// exempt (see the TailFloor fields).
	Budget kv.IOBudget
	// TailFloorRecords is K in the bounded-lag guarantee: once a region
	// has accumulated K freshly synced records (NoteTailRecords) since
	// its last tail ship, its tail ships directly — bypassing both the
	// worker queue and the I/O budget, because a mid-burst reconcile can
	// sit behind budget-starved SSTable copies for arbitrarily long and
	// the loss bound would silently become "whatever the burst wrote".
	// 0 means the default (256); negative disables the record floor.
	TailFloorRecords int
	// TailFloorInterval is T in the bounded-lag guarantee: any region
	// with at least one unshipped synced record has its tail shipped at
	// least every T. 0 means the default (200ms); negative disables the
	// timer floor.
	TailFloorInterval time.Duration
}

// Tail-floor defaults (Config.TailFloorRecords/TailFloorInterval zero
// values).
const (
	DefaultTailFloorRecords  = 256
	DefaultTailFloorInterval = 200 * time.Millisecond
)

// target is one tracked region: how to snapshot its primary file stack
// and synced WAL tail, and where its replicas live. All are closures so
// the replicator always sees the region's *current* store and follower
// set — a server restart swaps the store, a follower re-pick changes
// the destinations, and none needs to re-register.
type target struct {
	files func() ([]kv.ExportedFile, bool)
	dests func() []string
	tail  func() []kv.Entry

	// tailMu serializes tail ships for this region across the worker
	// and floor goroutines: the tail is snapshotted and written under
	// it, so an older snapshot can never overwrite a newer file.
	tailMu sync.Mutex
	// lag counts synced-but-unshipped records (guarded by Replicator.mu;
	// reset under tailMu *before* the snapshot, so every counted record
	// is in the snapshot that zeroed it).
	lag int
}

// Replicator ships immutable SSTables to follower replica directories,
// one per region server. Notifications coalesce: a region enqueued ten
// times before a worker gets to it is reconciled once, against the
// newest stack.
type Replicator struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	targets map[string]*target
	queued  map[string]bool
	queue   []string // FIFO of region names
	active  int
	closed  bool
	wg      sync.WaitGroup

	// kick wakes the tail-floor goroutine when some region's lag crossed
	// TailFloorRecords (buffered: one pending wake is enough — the floor
	// re-scans every lagged region per wake). stopc ends the goroutine.
	kick  chan struct{}
	stopc chan struct{}

	filesShipped   atomic.Int64
	bytesShipped   atomic.Int64
	filesRetired   atomic.Int64
	failures       atomic.Int64
	syncs          atomic.Int64
	tailShips      atomic.Int64
	tailBytes      atomic.Int64
	tailFrames     atomic.Int64
	tailFloorShips atomic.Int64

	// shipHist times replica-directory reconciles that copied at least
	// one SSTable; tailHist times WAL-tail frame-file ships.
	shipHist obs.Histogram
	tailHist obs.Histogram
}

// New starts a replicator with cfg.Workers background workers plus, when
// the bounded-lag tail floor is enabled, one floor goroutine.
func New(cfg Config) *Replicator {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.TailFloorRecords == 0 {
		cfg.TailFloorRecords = DefaultTailFloorRecords
	}
	if cfg.TailFloorInterval == 0 {
		cfg.TailFloorInterval = DefaultTailFloorInterval
	}
	r := &Replicator{
		cfg:     cfg,
		targets: make(map[string]*target),
		queued:  make(map[string]bool),
		kick:    make(chan struct{}, 1),
		stopc:   make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	if cfg.TailFloorRecords > 0 || cfg.TailFloorInterval > 0 {
		r.wg.Add(1)
		go r.floorLoop()
	}
	return r
}

// Track registers a region for replication. files snapshots the
// region's current primary SSTable stack (kv.Store.ExportFiles of
// whatever store currently backs it); dests returns the absolute
// replica directories to keep in sync (one per follower); tail, when
// non-nil, snapshots the region's synced-but-unflushed WAL records
// (durable.WAL.SyncedTail) for tail streaming — nil disables it (no
// shared log, or an in-memory store). Tracking is idempotent by region
// name; re-tracking replaces the closures.
func (r *Replicator) Track(region string, files func() ([]kv.ExportedFile, bool), dests func() []string, tail func() []kv.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.targets[region] = &target{files: files, dests: dests, tail: tail}
}

// Untrack stops replicating a region (it moved away or was retired).
// In-flight reconciliation of the region finishes; queued work is
// dropped at pop time.
func (r *Replicator) Untrack(region string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.targets, region)
}

// Notify enqueues a tracked region for reconciliation. Repeated
// notifications for the same region coalesce until a worker pops it.
func (r *Replicator) Notify(region string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.targets[region] == nil || r.queued[region] {
		return
	}
	r.queued[region] = true
	r.queue = append(r.queue, region)
	// Broadcast, not Signal: workers and Quiesce callers share the
	// condition variable, and a lone signal could wake a quiescer (who
	// just re-waits) instead of an idle worker.
	r.cond.Broadcast()
}

// NoteTailRecords credits region with n freshly fsync-covered records
// (the WAL's OnSynced counts). When the accumulated lag reaches
// Config.TailFloorRecords the floor goroutine is woken to ship the
// region's tail directly — the "ship at least every K records" half of
// the bounded-lag guarantee. Must never block: it runs on a committing
// writer's goroutine.
func (r *Replicator) NoteTailRecords(region string, n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	t := r.targets[region]
	var over bool
	if t != nil && !r.closed {
		t.lag += n
		over = r.cfg.TailFloorRecords > 0 && t.lag >= r.cfg.TailFloorRecords
	}
	r.mu.Unlock()
	if over {
		select {
		case r.kick <- struct{}{}:
		default: // a wake is already pending; the floor re-scans all lag
		}
	}
}

// floorLoop is the bounded-lag tail shipper: woken by NoteTailRecords
// when any region's lag crosses the record floor, and by a ticker so no
// synced record waits longer than the interval floor. It ships tails
// directly — not through the worker queue, whose budget-charged SSTable
// copies can starve for arbitrarily long mid-burst.
func (r *Replicator) floorLoop() {
	defer r.wg.Done()
	var tick <-chan time.Time
	if r.cfg.TailFloorInterval > 0 {
		ticker := time.NewTicker(r.cfg.TailFloorInterval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-r.stopc:
			return
		case <-r.kick:
			r.shipLagged(r.cfg.TailFloorRecords)
		case <-tick:
			r.shipLagged(1)
		}
	}
}

// shipLagged ships the tail of every region whose lag is at least min.
func (r *Replicator) shipLagged(min int) {
	if min < 1 {
		min = 1
	}
	type lagged struct {
		region string
		t      *target
	}
	var work []lagged
	r.mu.Lock()
	for region, t := range r.targets {
		if t.lag >= min && t.tail != nil {
			work = append(work, lagged{region, t})
		}
	}
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	for _, w := range work {
		if err := r.shipTail(w.t, true); err != nil {
			r.failures.Add(1)
		}
	}
}

// Quiesce blocks until every queued notification has been reconciled
// and no worker is mid-ship — the "replication caught up" barrier the
// failover gate uses between a clean flush and a hard kill. New
// notifications arriving during the wait extend it.
func (r *Replicator) Quiesce() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.queue) > 0 || r.active > 0 {
		r.cond.Wait()
	}
}

// Close stops the workers after the in-flight reconciliations finish;
// queued work is dropped. A closed replicator ignores Track/Notify.
func (r *Replicator) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.queue = nil
	r.queued = make(map[string]bool)
	r.cond.Broadcast()
	r.mu.Unlock()
	close(r.stopc)
	r.wg.Wait()
}

func (r *Replicator) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		region := r.queue[0]
		r.queue = r.queue[1:]
		delete(r.queued, region)
		t := r.targets[region]
		r.active++
		r.mu.Unlock()

		if t != nil {
			if err := r.sync(t); err != nil {
				r.failures.Add(1)
			}
			r.syncs.Add(1)
		}

		r.mu.Lock()
		r.active--
		// Wake Quiesce waiters (and idle workers racing a concurrent
		// enqueue; spurious wakeups re-check the loop condition).
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// sync reconciles every destination directory against one snapshot of
// the primary stack. A primary file unlinked between the snapshot and
// the copy (a racing compaction) is skipped: the compaction latched a
// fresh notification, so the region re-reconciles against the
// post-compaction stack. The tail ships before the stack is
// snapshotted, so a racing flush duplicates records between the two
// (replay dedups) rather than dropping them from both.
func (r *Replicator) sync(t *target) error {
	firstErr := r.shipTail(t, false)
	files, ok := t.files()
	if !ok {
		return firstErr // in-memory backend: nothing shippable
	}
	for _, dir := range t.dests() {
		shippedBefore := r.filesShipped.Load()
		shipStart := time.Now()
		if err := r.syncDir(dir, files); err != nil && firstErr == nil {
			firstErr = err
		}
		if r.filesShipped.Load() > shippedBefore {
			r.shipHist.Since(shipStart)
		}
	}
	return firstErr
}

// shipTail writes one fresh snapshot of the region's synced WAL tail to
// every replica directory. Both the worker reconcile and the bounded-lag
// floor land here; t.tailMu serializes them so an older snapshot can
// never overwrite a newer file, and the lag counter is zeroed under it
// *before* the snapshot is taken, so every record the counter credited
// is inside the snapshot that cleared it.
//
// Tail bytes are deliberately NOT charged to the background I/O budget:
// the tail is small (bounded by the unflushed working set), and the
// bounded-lag loss guarantee depends on it shipping even while the
// budget is drained by a write burst — the exact moment the guarantee
// matters most.
func (r *Replicator) shipTail(t *target, floor bool) error {
	if t.tail == nil {
		return nil
	}
	t.tailMu.Lock()
	defer t.tailMu.Unlock()
	r.mu.Lock()
	t.lag = 0
	r.mu.Unlock()
	tail := t.tail()
	var firstErr error
	for _, dir := range t.dests() {
		if len(tail) > 0 {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		tailStart := time.Now()
		n, err := durable.WriteTailFile(durable.TailFilePath(dir), tail, false)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if n > 0 {
			r.tailHist.Since(tailStart)
			r.tailShips.Add(1)
			r.tailBytes.Add(n)
			r.tailFrames.Add(int64(len(tail)))
			if floor {
				r.tailFloorShips.Add(1)
			}
		}
	}
	return firstErr
}

// ShipLatency returns the distribution of replica reconcile durations
// that copied at least one SSTable.
func (r *Replicator) ShipLatency() obs.Snapshot { return r.shipHist.Snapshot() }

// TailShipLatency returns the distribution of WAL-tail ship durations.
func (r *Replicator) TailShipLatency() obs.Snapshot { return r.tailHist.Snapshot() }

// syncDir makes dir hold exactly the snapshot's SSTables (modulo files
// newer than the snapshot, which a pending notification owns).
func (r *Replicator) syncDir(dir string, files []kv.ExportedFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	have, _, err := listSSTables(dir)
	if err != nil {
		return err
	}
	want := make(map[uint64]bool, len(files))
	var maxWant uint64
	var firstErr error
	for _, f := range files {
		want[f.ID] = true
		if f.ID > maxWant {
			maxWant = f.ID
		}
		if have[f.ID] {
			continue
		}
		n, err := CopyFile(f.Path, filepath.Join(dir, filepath.Base(f.Path)))
		if err != nil {
			if os.IsNotExist(err) {
				// Compacted away mid-ship; the splice queued a fresh
				// notification that will ship its replacement.
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if r.cfg.Budget != nil {
			r.cfg.Budget.WaitBackground(int(n))
		}
		r.filesShipped.Add(1)
		r.bytesShipped.Add(n)
	}
	// Retire replica files the primary no longer has — but only those
	// older than the snapshot's newest file: an ID above maxWant means
	// the snapshot is stale (a flush landed after it), and that file's
	// own notification is still queued.
	for id := range have {
		if want[id] || id > maxWant {
			continue
		}
		if err := os.Remove(filepath.Join(dir, durable.SSTableFileName(id))); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.filesRetired.Add(1)
	}
	if err := syncDirEntry(dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// listSSTables enumerates the SSTable IDs already present in dir,
// removing stale temp files (the debris of a copy killed mid-ship).
func listSSTables(dir string) (map[uint64]bool, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	have := make(map[uint64]bool)
	var max uint64
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		id, ok := durable.ParseSSTableFileName(name)
		if !ok {
			continue
		}
		have[id] = true
		if id > max {
			max = id
		}
	}
	return have, max, nil
}

// ListSSTables returns the SSTable IDs present in a replica or snapshot
// directory, sorted — the recovery and restore paths use it to pick the
// files to copy back into a fresh region directory. A missing directory
// is an empty replica, not an error.
func ListSSTables(dir string) ([]uint64, error) {
	have, _, err := listSSTables(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	ids := make([]uint64, 0, len(have))
	for id := range have {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// SSTablePath returns the path SSTable id occupies inside a replica or
// snapshot directory.
func SSTablePath(dir string, id uint64) string {
	return filepath.Join(dir, durable.SSTableFileName(id))
}

// CopyFile copies src to dst crash-consistently: the bytes land in a
// temp file that is fsynced and renamed into place, then the directory
// is fsynced — a crash at any point leaves either no visible file or a
// complete one, never a torn copy. It returns the bytes copied.
func CopyFile(src, dst string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := out.ReadFrom(in)
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return n, err
	}
	if err := os.Rename(tmp, dst); err != nil {
		_ = os.Remove(tmp)
		return n, err
	}
	return n, syncDirEntry(filepath.Dir(dst))
}

// syncDirEntry fsyncs a directory so renames and removals in it are
// durable.
func syncDirEntry(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is a snapshot of a replicator's activity.
type Stats struct {
	// QueueDepth is the number of regions awaiting reconciliation.
	QueueDepth int
	// Active is the number of in-flight reconciliations.
	Active int
	// FilesShipped / BytesShipped count SSTable copies to replica
	// directories; FilesRetired counts replica files removed after the
	// primary compacted them away.
	FilesShipped int64
	BytesShipped int64
	FilesRetired int64
	// Syncs counts reconciliation rounds; Failures counts rounds that
	// hit an I/O error (the next notification retries).
	Syncs    int64
	Failures int64
	// TailShips / TailBytes / TailFrames count WAL-tail files written to
	// replica directories, their physical bytes, and the records they
	// carried (empty tails remove the file and count nothing).
	// TailFloorShips counts the subset forced by the bounded-lag floor
	// (K records / T ms) rather than a worker reconcile.
	TailShips      int64
	TailBytes      int64
	TailFrames     int64
	TailFloorShips int64
}

// Add returns the element-wise sum of two snapshots (cluster roll-up).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		QueueDepth:     s.QueueDepth + o.QueueDepth,
		Active:         s.Active + o.Active,
		FilesShipped:   s.FilesShipped + o.FilesShipped,
		BytesShipped:   s.BytesShipped + o.BytesShipped,
		FilesRetired:   s.FilesRetired + o.FilesRetired,
		Syncs:          s.Syncs + o.Syncs,
		Failures:       s.Failures + o.Failures,
		TailShips:      s.TailShips + o.TailShips,
		TailBytes:      s.TailBytes + o.TailBytes,
		TailFrames:     s.TailFrames + o.TailFrames,
		TailFloorShips: s.TailFloorShips + o.TailFloorShips,
	}
}

// Stats snapshots the replicator.
func (r *Replicator) Stats() Stats {
	r.mu.Lock()
	depth, active := len(r.queue), r.active
	r.mu.Unlock()
	return Stats{
		QueueDepth:     depth,
		Active:         active,
		FilesShipped:   r.filesShipped.Load(),
		BytesShipped:   r.bytesShipped.Load(),
		FilesRetired:   r.filesRetired.Load(),
		Syncs:          r.syncs.Load(),
		Failures:       r.failures.Load(),
		TailShips:      r.tailShips.Load(),
		TailBytes:      r.tailBytes.Load(),
		TailFrames:     r.tailFrames.Load(),
		TailFloorShips: r.tailFloorShips.Load(),
	}
}
