package durable

// Fuzz harnesses for the two binary parsers that read bytes straight
// off disk: the WAL segment/frame decoder and the SSTable
// footer/index/block parser. Both must reject arbitrary corruption
// with an error — never a panic or an attacker-sized allocation.
// CI runs each target briefly (-fuzztime) on every PR; the seeds
// below cover every format version plus torn and bit-flipped files.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"met/internal/kv"
)

// walSeedSegment assembles an on-disk segment image: magic, version
// byte, then the given frames back to back.
func walSeedSegment(version byte, frames ...[]byte) []byte {
	seg := append([]byte(walMagic), version)
	for _, f := range frames {
		seg = append(seg, f...)
	}
	return seg
}

// walSeedFrameV1 hand-builds a legacy v1 frame: the v2 payload layout
// minus the region field.
func walSeedFrameV1(key, value string, ts uint64) []byte {
	p := []byte{0}
	p = binary.AppendUvarint(p, ts)
	p = binary.AppendUvarint(p, uint64(len(key)))
	p = append(p, key...)
	p = binary.AppendUvarint(p, uint64(len(value)))
	p = append(p, value...)
	frame := make([]byte, frameHeaderSize+len(p))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, castagnoli))
	copy(frame[frameHeaderSize:], p)
	return frame
}

func FuzzWALReadSegment(f *testing.F) {
	rec := encodeRecord("users", kv.Entry{Key: "k", Value: []byte("v"), Timestamp: 7}, false)
	tomb := encodeRecord("", kv.Entry{Key: "gone", Tombstone: true, Timestamp: 9}, true)
	f.Add(walSeedSegment(walVersion, rec, tomb))
	f.Add(walSeedSegment(walVersionV1, walSeedFrameV1("a", "b", 3)))
	f.Add(walSeedSegment(walVersion, rec[:len(rec)-3])) // torn tail
	corrupt := walSeedSegment(walVersion, rec, tomb)
	corrupt[len(corrupt)-1] ^= 0xff // payload bit flip, CRC must catch
	f.Add(corrupt)
	f.Add([]byte(walMagic))
	f.Add(walSeedSegment(99)) // unknown version

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "seg.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Corruption must surface as an error (or a silent stop at a
		// torn tail), never a panic.
		_ = readSegment(path, func(walRecord) {})
	})
}

func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add("users", "k", []byte("v"), uint64(7), false, false)
	f.Add("", "", []byte(nil), uint64(0), true, true)
	f.Add("r", "key.with.dots", bytes.Repeat([]byte{0}, 100), uint64(1<<40), false, true)

	f.Fuzz(func(t *testing.T, region, key string, value []byte, ts uint64, tombstone, drop bool) {
		e := kv.Entry{Key: key, Timestamp: ts, Tombstone: tombstone}
		if len(value) > 0 {
			e.Value = value
		}
		frame := encodeRecord(region, e, drop)
		payload := frame[frameHeaderSize:]
		if got := binary.LittleEndian.Uint32(frame[0:4]); int(got) != len(payload) {
			t.Fatalf("frame length header %d, payload %d bytes", got, len(payload))
		}
		if got := binary.LittleEndian.Uint32(frame[4:8]); got != crc32.Checksum(payload, castagnoli) {
			t.Fatalf("frame CRC header does not cover payload")
		}
		rec, err := decodePayload(payload, walVersion)
		if err != nil {
			t.Fatalf("decodePayload of freshly encoded record: %v", err)
		}
		if rec.region != region || rec.drop != drop {
			t.Fatalf("round trip: got region %q drop %v, want %q %v", rec.region, rec.drop, region, drop)
		}
		if rec.e.Key != key || rec.e.Timestamp != ts || rec.e.Tombstone != tombstone || !bytes.Equal(rec.e.Value, value) {
			t.Fatalf("round trip entry mismatch: got %+v want %+v", rec.e, e)
		}
	})
}

func FuzzSSTableOpen(f *testing.F) {
	entries := []kv.Entry{
		{Key: "a", Value: []byte("1"), Timestamp: 1},
		{Key: "b", Timestamp: 2, Tombstone: true},
		{Key: "c", Value: bytes.Repeat([]byte("x"), 64), Timestamp: 3},
		{Key: "d", Value: []byte("4"), Timestamp: 4},
	}
	seed := filepath.Join(f.TempDir(), "seed.sst")
	var written atomic.Int64
	if _, err := writeSSTable(seed, entries, 32, Options{NoSync: true}, &written, 0); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2]) // truncated mid-file
	flip := append([]byte(nil), data...)
	flip[len(flip)/3] ^= 0x40 // index/props corruption
	f.Add(flip)
	f.Add([]byte("METS\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.sst")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tbl, err := openSSTable(path)
		if err != nil {
			return // rejected; that is the correct outcome for garbage
		}
		defer tbl.Close()
		// Whatever survived the footer checks must be fully readable
		// without panicking; per-block CRCs may still reject content.
		_ = tbl.Meta()
		_ = tbl.MayContain("a")
		for i := 0; i < tbl.NumBlocks(); i++ {
			_ = tbl.FirstKey(i)
			_, _ = tbl.LoadBlock(i)
		}
	})
}
