package durable

import (
	"fmt"
	"sync/atomic"
	"testing"

	"met/internal/kv"
)

func benchStore(b *testing.B, durable bool) *kv.Store {
	b.Helper()
	cfg := kv.Config{MemstoreFlushBytes: 8 << 20, BlockBytes: 8 << 10}
	if durable {
		cfg.OpenBackend = Opener(b.TempDir(), Options{})
	}
	s, err := kv.OpenStore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func BenchmarkDurablePut(b *testing.B) {
	s := benchStore(b, true)
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key-%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurablePutParallel exercises group commit: concurrent writers
// share fsyncs, so per-op cost drops well below the serial case on
// hardware with real sync latency.
func BenchmarkDurablePutParallel(b *testing.B) {
	s := benchStore(b, true)
	val := make([]byte, 128)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			if err := s.Put(fmt.Sprintf("key-%09d", i), val); err != nil {
				b.Fatal(err)
			}
		}
	})
	if w, ok := s.Config().WAL.(*WAL); ok && w.SyncRounds() > 0 {
		b.ReportMetric(float64(b.N)/float64(w.SyncRounds()), "writes/fsync")
	}
}

func BenchmarkMemoryPut(b *testing.B) {
	s := benchStore(b, false)
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key-%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDurableGet(b *testing.B) {
	s := benchStore(b, true)
	val := make([]byte, 128)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%09d", i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableNegativeGet measures the bloom filter's fast path.
func BenchmarkDurableNegativeGet(b *testing.B) {
	s := benchStore(b, true)
	val := make([]byte, 128)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%09d", i*2), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%09d", (i%n)*2+1)); err != kv.ErrNotFound {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	w, err := OpenWAL(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { w.Close() })
	e := kv.Entry{Key: "benchmark-key", Value: make([]byte, 128)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Timestamp = uint64(i + 1)
		if err := w.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}
