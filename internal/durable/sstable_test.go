package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"met/internal/kv"
)

func sortedEntries(n int) []kv.Entry {
	out := make([]kv.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, kv.Entry{
			Key:       fmt.Sprintf("key-%05d", i),
			Value:     []byte(fmt.Sprintf("value-%05d", i)),
			Timestamp: uint64(i + 1),
		})
	}
	return out
}

func TestSSTableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sst-1.sst")
	entries := sortedEntries(500)
	meta, err := writeSSTable(path, entries, 1<<10, Options{}.withDefaults(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(meta.Bytes) != st.Size() {
		t.Fatalf("meta.Bytes=%d, on-disk=%d", meta.Bytes, st.Size())
	}
	r, err := openSSTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta().Entries != 500 || r.Meta().MaxTS != 500 {
		t.Fatalf("meta = %+v", r.Meta())
	}
	if r.Meta().MinKey != "key-00000" || r.Meta().MaxKey != "key-00499" {
		t.Fatalf("key range = [%s, %s]", r.Meta().MinKey, r.Meta().MaxKey)
	}
	if r.NumBlocks() < 2 {
		t.Fatalf("blocks = %d, want several at 1KiB", r.NumBlocks())
	}
	// Walk every block and verify every entry came back intact.
	i := 0
	for bi := 0; bi < r.NumBlocks(); bi++ {
		b, err := r.LoadBlock(bi)
		if err != nil {
			t.Fatal(err)
		}
		if b.Entries()[0].Key != r.FirstKey(bi) {
			t.Fatalf("block %d first key index mismatch", bi)
		}
		for _, e := range b.Entries() {
			want := entries[i]
			if e.Key != want.Key || string(e.Value) != string(want.Value) || e.Timestamp != want.Timestamp {
				t.Fatalf("entry %d mangled: %+v", i, e)
			}
			i++
		}
	}
	if i != 500 {
		t.Fatalf("iterated %d entries", i)
	}
}

func TestSSTableEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sst-2.sst")
	if _, err := writeSSTable(path, nil, 1<<10, Options{}.withDefaults(), nil, 0); err != nil {
		t.Fatal(err)
	}
	r, err := openSSTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumBlocks() != 0 || r.Meta().Entries != 0 {
		t.Fatalf("empty table has %d blocks, %d entries", r.NumBlocks(), r.Meta().Entries)
	}
}

func TestSSTableCorruptBlockChecksum(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sst-3.sst")
	if _, err := writeSSTable(path, sortedEntries(100), 1<<10, Options{}.withDefaults(), nil, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first data block (past the 5-byte header).
	if _, err := f.WriteAt([]byte{0xff}, sstHeaderSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := openSSTable(path) // index/bloom/props are clean
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.LoadBlock(0); err == nil {
		t.Fatal("corrupt block loaded without error")
	}
}

func TestSSTableUnlinkWhileOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sst-4.sst")
	if _, err := writeSSTable(path, sortedEntries(100), 1<<10, Options{}.withDefaults(), nil, 0); err != nil {
		t.Fatal(err)
	}
	r, err := openSSTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// Compaction semantics: the unlinked file keeps serving reads until
	// the handle closes.
	b, err := r.LoadBlock(0)
	if err != nil {
		t.Fatalf("read after unlink: %v", err)
	}
	if b.Len() == 0 {
		t.Fatal("unlinked block empty")
	}
}

func TestBloomFilterBasics(t *testing.T) {
	b := newBloomFilter(1000, 10)
	for i := 0; i < 1000; i++ {
		b.add(fmt.Sprintf("present-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(fmt.Sprintf("present-%d", i)) {
			t.Fatalf("false negative on present-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	// 10 bits/key targets ~1%; allow generous slack.
	if fp > 500 {
		t.Fatalf("false positive rate %d/10000 is way over target", fp)
	}
	// Round trip.
	back, err := unmarshalBloom(b.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !back.mayContain("present-42") {
		t.Fatal("marshaled filter lost membership")
	}
}

// TestBloomNegativeGetReadsNoBlocks is the acceptance check: a Get for a
// key a flushed file cannot contain is answered by the bloom filter with
// zero data-block reads from disk.
func TestBloomNegativeGetReadsNoBlocks(t *testing.T) {
	dir := t.TempDir()
	// Dense filter so none of the fixed probe keys is a false positive
	// (at the default 10 bits/key ~1% of them would be, by design).
	backend, err := Open(dir, Options{BitsPerKey: 24})
	if err != nil {
		t.Fatal(err)
	}
	cfg := kv.Config{
		BlockBytes:  1 << 10,
		OpenBackend: func() (kv.StorageBackend, error) { return backend, nil },
	}
	s, err := kv.OpenStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if err := s.Put(fmt.Sprintf("key-%05d", i*2), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	infos := s.FileInfos()
	if len(infos) != 1 {
		t.Fatalf("files = %d, want 1", len(infos))
	}
	reader := backend.Reader(infos[0].ID)
	if reader == nil {
		t.Fatal("no reader for flushed file")
	}
	base := reader.BlockReads()

	// In-range keys (odd suffixes) that were never written: the sparse
	// index alone cannot reject them, only the bloom filter can.
	misses := 0
	for i := 0; i < 500; i++ {
		_, err := s.Get(fmt.Sprintf("key-%05d", i*2+1))
		if err != kv.ErrNotFound {
			t.Fatalf("expected ErrNotFound, got %v", err)
		}
		misses++
	}
	if got := reader.BlockReads() - base; got != 0 {
		t.Fatalf("negative Gets read %d data blocks, want 0", got)
	}
	if st := s.Stats(); st.FilterNegatives < int64(misses) {
		t.Fatalf("FilterNegatives = %d, want >= %d", st.FilterNegatives, misses)
	}

	// Sanity: a present key does read (or cache) a block.
	if _, err := s.Get("key-00000"); err != nil {
		t.Fatal(err)
	}
	if reader.BlockReads() == base {
		t.Fatal("positive Get read no block at all")
	}
}
