package durable

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"met/internal/kv"
)

// crashBackend wraps the real durable backend so a test can freeze it at
// the two crash points of a background compaction: right after the
// merged SSTable became durable (but before the engine swapped it in),
// and right before the retired inputs are unlinked. Freezing — and then
// simply abandoning the frozen store while a fresh one reopens the same
// directory — is the unit-test equivalent of a hard process kill at
// that instant.
type crashBackend struct {
	inner *Backend
	// mode: 0 = pass-through, 1 = freeze inside Create (after the
	// durable write), 2 = freeze at the first Remove (before unlink).
	mode    atomic.Int32
	entered chan struct{}
	frozen  chan struct{} // never closed: the "process" dies here
}

func (c *crashBackend) freeze() {
	select {
	case c.entered <- struct{}{}:
	default:
	}
	<-c.frozen // parked forever: the crashed process never resumes
}

func (c *crashBackend) WAL() kv.WAL { return c.inner.WAL() }

func (c *crashBackend) Create(id uint64, entries []kv.Entry, blockBytes int) (*kv.StoreFile, error) {
	f, err := c.inner.Create(id, entries, blockBytes)
	if err == nil && c.mode.Load() == 1 {
		c.freeze()
	}
	return f, err
}

func (c *crashBackend) Remove(id uint64) error {
	if c.mode.Load() == 2 {
		c.freeze()
	}
	return c.inner.Remove(id)
}

func (c *crashBackend) Load(blockBytes int) ([]*kv.StoreFile, error) { return c.inner.Load(blockBytes) }
func (c *crashBackend) Close() error                                 { return c.inner.Close() }

// crashStoreConfig opens a durable store in dir behind a crashBackend,
// with flush sizes small enough that a few hundred puts produce a real
// SSTable stack.
func crashStoreConfig(dir string, cb **crashBackend) kv.Config {
	return kv.Config{
		MemstoreFlushBytes: 4 << 10,
		BlockBytes:         1 << 10,
		MaxStoreFiles:      1000, // no automatic compaction; the test drives it
		OpenBackend: func() (kv.StorageBackend, error) {
			b, err := Open(dir, Options{})
			if err != nil {
				return nil, err
			}
			*cb = &crashBackend{inner: b, entered: make(chan struct{}, 1), frozen: make(chan struct{})}
			return *cb, nil
		},
	}
}

// testCrashMidCompaction acknowledges 500 writes, freezes a background
// compaction at the given crash point, verifies serving continues past
// the frozen compaction, then reopens the directory as a fresh process
// would after a hard kill and requires every acknowledged write back.
func testCrashMidCompaction(t *testing.T, mode int32) {
	dir := t.TempDir()
	var cb *crashBackend
	s, err := kv.OpenStore(crashStoreConfig(dir, &cb))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%04d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxx")) }
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("k%04d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumFiles() < 2 {
		t.Fatalf("only %d SSTables; not enough to compact", s.NumFiles())
	}

	cb.mode.Store(mode)
	go s.CompactFiles(kv.CompactionSelection{}) // whole stack; will freeze
	select {
	case <-cb.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("compaction never reached the crash point")
	}

	// The wedged compaction holds no engine lock: an acknowledged write
	// must still go through (and must survive the crash below).
	ackDone := make(chan error, 1)
	go func() { ackDone <- s.Put("k-last-ack", val(9999)) }()
	select {
	case err := <-ackDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Put blocked behind a wedged compaction")
	}

	// Hard kill: the frozen store is abandoned without Close (its
	// compaction goroutine stays parked forever, like a killed
	// process's threads), and recovery opens the same directory.
	fresh, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: 4 << 10,
		BlockBytes:         1 << 10,
		MaxStoreFiles:      1000,
		OpenBackend:        func() (kv.StorageBackend, error) { return Open(dir, Options{}) },
	})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer fresh.Close()
	for i := 0; i < n; i++ {
		got, err := fresh.Get(fmt.Sprintf("k%04d", i))
		if err != nil {
			t.Fatalf("acknowledged write k%04d lost after crash mid-compaction: %v", i, err)
		}
		if string(got) != string(val(i)) {
			t.Fatalf("k%04d = %q, want %q", i, got, val(i))
		}
	}
	if _, err := fresh.Get("k-last-ack"); err != nil {
		t.Fatalf("write acknowledged during the compaction lost: %v", err)
	}
	// A fresh compaction on the recovered store reclaims any duplicated
	// files the crash left behind.
	if err := fresh.Compact(true); err != nil {
		t.Fatal(err)
	}
	if got := fresh.NumFiles(); got != 1 {
		t.Fatalf("files after recovery compaction = %d", got)
	}
}

// TestCrashAfterMergedSSTableDurable kills the process after the
// compaction's output file is fsynced but before the engine installed
// it: recovery sees both the merged file and its inputs; duplicated
// entries dedupe at read time.
func TestCrashAfterMergedSSTableDurable(t *testing.T) {
	testCrashMidCompaction(t, 1)
}

// TestCrashBeforeRetiredInputsUnlinked kills the process after the
// merged file was installed but before any retired input was unlinked.
func TestCrashBeforeRetiredInputsUnlinked(t *testing.T) {
	testCrashMidCompaction(t, 2)
}
