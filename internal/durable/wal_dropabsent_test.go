package durable

import (
	"path/filepath"
	"testing"
)

// walFileCount counts the on-disk segment files in dir.
func walFileCount(t *testing.T, dir string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return len(paths)
}

// TestWALDropAbsentReclaimsOrphanRegions is the cold-start pinning bug
// in miniature: region A's records survive in a reopened log, A never
// re-registers (it moved away before the stop), so its zero flush mark
// pins the segment no matter how often the live region B flushes —
// until DropAbsent voids it.
func TestWALDropAbsentReclaimsOrphanRegions(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{KeepTail: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Region("A"), w.Region("B")
	for i := 1; i <= 5; i++ {
		if err := a.Append(regionEntry("A", i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(regionEntry("B", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: only B re-registers. A's records are back in the
	// (sealed) segment scan and in the shippable tail.
	w2, err := OpenWAL(dir, Options{KeepTail: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	b2 := w2.Region("B")
	if got := w2.SyncedTail("A"); len(got) != 5 {
		t.Fatalf("reopened tail for orphan A: %d records, want 5", len(got))
	}

	// Flushing B alone cannot reclaim anything: the segment is pinned by
	// A's records and A's flush clock will never advance.
	b2.Truncate(5)
	if n := walFileCount(t, dir); n < 2 {
		t.Fatalf("segment reclaimed while still pinned by orphan region: %d files", n)
	}

	dropped, err := w2.DropAbsent(map[string]bool{"B": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != "A" {
		t.Fatalf("DropAbsent dropped %v, want [A]", dropped)
	}
	if got := w2.SyncedTail("A"); len(got) != 0 {
		t.Fatalf("orphan A still in shippable tail after DropAbsent: %d records", len(got))
	}
	// B's records were already truncated, so with A voided every old
	// segment is reclaimable; only the fresh active segment remains.
	if n := walFileCount(t, dir); n != 1 {
		t.Fatalf("after DropAbsent: %d segment files on disk, want 1", n)
	}
	// Idempotent: the marker is durable, a second pass finds nothing.
	if dropped, err := w2.DropAbsent(map[string]bool{"B": true}); err != nil || len(dropped) != 0 {
		t.Fatalf("second DropAbsent: %v, %v; want none", dropped, err)
	}

	// The marker is durable: a further restart must not resurrect A.
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(dir, Options{KeepTail: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := w3.SyncedTail("A"); len(got) != 0 {
		t.Fatalf("orphan A resurrected across restart: %d records", len(got))
	}
	if entries, err := w3.Region("A").ReplayEntries(); err != nil || len(entries) != 0 {
		t.Fatalf("orphan A replays %d entries after drop (err %v), want 0", len(entries), err)
	}
}
