package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"

	"met/internal/kv"
)

const (
	sstMagic       = "METS"
	sstVersion     = 1
	sstHeaderSize  = 5
	sstFooterMagic = "METSFOOT"
	// footer: 6 × u32 section coordinates + 16 reserved + 8 magic.
	sstFooterSize = 6*4 + 16 + 8
)

// blockSpan locates one data block inside the file.
type blockSpan struct {
	firstKey string
	off      uint64
	length   uint64
}

// writeSSTable persists sorted entries as one SSTable at path, atomically
// (write to temp, fsync, rename, fsync dir). Blocks are packed with the
// same rule as the in-memory backend. It returns the file's metadata with
// Bytes set to the real on-disk size. written, when non-nil, accumulates
// the physical bytes (backend I/O accounting). maxTSFloor raises the
// recorded max-timestamp property (see Backend.CreateWithMaxTS).
func writeSSTable(path string, entries []kv.Entry, blockBytes int, opts Options, written *atomic.Int64, maxTSFloor uint64) (kv.FileMeta, error) {
	blocks, meta := kv.PackBlocks(entries, blockBytes)
	if meta.MaxTS < maxTSFloor {
		meta.MaxTS = maxTSFloor
	}

	var buf []byte
	buf = append(buf, sstMagic...)
	buf = append(buf, sstVersion)

	spans := make([]blockSpan, 0, len(blocks))
	for _, b := range blocks {
		payload := kv.EncodeBlock(b.Entries())
		spans = append(spans, blockSpan{
			firstKey: b.Entries()[0].Key,
			off:      uint64(len(buf)),
			length:   uint64(len(payload) + 4),
		})
		buf = append(buf, payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	}

	indexOff := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(spans)))
	for _, sp := range spans {
		buf = binary.AppendUvarint(buf, uint64(len(sp.firstKey)))
		buf = append(buf, sp.firstKey...)
		buf = binary.AppendUvarint(buf, sp.off)
		buf = binary.AppendUvarint(buf, sp.length)
	}
	indexLen := len(buf) - indexOff

	bloom := newBloomFilter(distinctKeys(entries), opts.BitsPerKey)
	for _, e := range entries {
		bloom.add(e.Key)
	}
	bloomOff := len(buf)
	buf = append(buf, bloom.marshal()...)
	bloomLen := len(buf) - bloomOff

	propsOff := len(buf)
	buf = binary.AppendUvarint(buf, uint64(meta.Entries))
	buf = binary.AppendUvarint(buf, meta.MaxTS)
	buf = binary.AppendUvarint(buf, uint64(len(meta.MinKey)))
	buf = append(buf, meta.MinKey...)
	buf = binary.AppendUvarint(buf, uint64(len(meta.MaxKey)))
	buf = append(buf, meta.MaxKey...)
	propsLen := len(buf) - propsOff

	footer := make([]byte, 0, sstFooterSize)
	for _, v := range []int{indexOff, indexLen, bloomOff, bloomLen, propsOff, propsLen} {
		footer = binary.LittleEndian.AppendUint32(footer, uint32(v))
	}
	footer = append(footer, make([]byte, 16)...) // reserved
	footer = append(footer, sstFooterMagic...)
	buf = append(buf, footer...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return kv.FileMeta{}, err
	}
	if _, err := (meteredWriter{w: f, count: written}).Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return kv.FileMeta{}, err
	}
	if err := syncFile(f, opts.NoSync); err != nil {
		f.Close()
		os.Remove(tmp)
		return kv.FileMeta{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return kv.FileMeta{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return kv.FileMeta{}, err
	}
	meta.Bytes = len(buf)
	return meta, nil
}

// distinctKeys counts key changes in a sorted entry run (bloom sizing).
func distinctKeys(entries []kv.Entry) int {
	n := 0
	for i, e := range entries {
		if i == 0 || e.Key != entries[i-1].Key {
			n++
		}
	}
	return n
}

// sstable reads one SSTable through an open file handle, implementing
// kv.BlockSource: the block index and bloom filter live in memory, data
// blocks are pread + checksum-verified + decoded on demand (the kv
// engine caches them). The handle stays open for the reader's lifetime,
// so a compaction may unlink the file while lock-free scans are still
// reading it (unlink-while-open).
type sstable struct {
	path  string
	f     *os.File
	meta  kv.FileMeta
	index []blockSpan
	bloom *bloomFilter

	// blockReads counts physical data-block reads; the bloom filter
	// tests assert it stays at zero for negative lookups. readBytes,
	// when set by the owning backend, accumulates physical bytes read
	// across the backend's files (IOStats).
	blockReads atomic.Int64
	readBytes  *atomic.Int64
	closed     atomic.Bool
}

// openSSTable opens and validates path: header, footer, index, bloom
// filter and properties are read eagerly; data blocks stay on disk.
func openSSTable(path string) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < sstHeaderSize+sstFooterSize {
		f.Close()
		return nil, corruptf("sstable %s too short", path)
	}
	hdr := make([]byte, sstHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:4]) != sstMagic {
		f.Close()
		return nil, corruptf("sstable %s magic", path)
	}
	if hdr[4] != sstVersion {
		f.Close()
		return nil, fmt.Errorf("durable: unsupported sstable version %d in %s", hdr[4], path)
	}
	footer := make([]byte, sstFooterSize)
	if _, err := f.ReadAt(footer, size-sstFooterSize); err != nil {
		f.Close()
		return nil, err
	}
	if string(footer[len(footer)-8:]) != sstFooterMagic {
		f.Close()
		return nil, corruptf("sstable %s footer magic", path)
	}
	sec := make([]uint32, 6)
	for i := range sec {
		sec[i] = binary.LittleEndian.Uint32(footer[i*4 : i*4+4])
	}
	indexOff, indexLen := int64(sec[0]), int64(sec[1])
	bloomOff, bloomLen := int64(sec[2]), int64(sec[3])
	propsOff, propsLen := int64(sec[4]), int64(sec[5])
	limit := size - sstFooterSize
	for _, span := range [][2]int64{{indexOff, indexLen}, {bloomOff, bloomLen}, {propsOff, propsLen}} {
		if span[0] < 0 || span[1] < 0 || span[0]+span[1] > limit {
			f.Close()
			return nil, corruptf("sstable %s section out of bounds", path)
		}
	}

	t := &sstable{path: path, f: f}
	t.meta.Bytes = int(size)

	readSection := func(off, n int64) ([]byte, error) {
		buf := make([]byte, n)
		_, err := f.ReadAt(buf, off)
		return buf, err
	}
	idxBuf, err := readSection(indexOff, indexLen)
	if err != nil {
		f.Close()
		return nil, err
	}
	count, n := binary.Uvarint(idxBuf)
	if n <= 0 {
		f.Close()
		return nil, corruptf("sstable %s index count", path)
	}
	idxBuf = idxBuf[n:]
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(idxBuf)
		if n <= 0 || uint64(len(idxBuf)-n) < klen {
			f.Close()
			return nil, corruptf("sstable %s index key", path)
		}
		key := string(idxBuf[n : n+int(klen)])
		idxBuf = idxBuf[n+int(klen):]
		off, n := binary.Uvarint(idxBuf)
		if n <= 0 {
			f.Close()
			return nil, corruptf("sstable %s index offset", path)
		}
		idxBuf = idxBuf[n:]
		length, n := binary.Uvarint(idxBuf)
		if n <= 0 {
			f.Close()
			return nil, corruptf("sstable %s index length", path)
		}
		idxBuf = idxBuf[n:]
		// Validate the span now so LoadBlock can trust it: a corrupt
		// length would otherwise size an allocation (and a pread)
		// straight from disk bytes. Every block lives between the
		// header and the footer and carries at least a CRC trailer.
		if length < 4 || off < sstHeaderSize || off > uint64(limit) ||
			length > uint64(limit)-off {
			f.Close()
			return nil, corruptf("sstable %s index span out of bounds", path)
		}
		t.index = append(t.index, blockSpan{firstKey: key, off: off, length: length})
	}

	bloomBuf, err := readSection(bloomOff, bloomLen)
	if err != nil {
		f.Close()
		return nil, err
	}
	if t.bloom, err = unmarshalBloom(bloomBuf); err != nil {
		f.Close()
		return nil, err
	}

	propsBuf, err := readSection(propsOff, propsLen)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := t.parseProps(propsBuf); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func (t *sstable) parseProps(buf []byte) error {
	entries, n := binary.Uvarint(buf)
	if n <= 0 {
		return corruptf("sstable %s props entries", t.path)
	}
	buf = buf[n:]
	maxTS, n := binary.Uvarint(buf)
	if n <= 0 {
		return corruptf("sstable %s props maxTS", t.path)
	}
	buf = buf[n:]
	readStr := func() (string, error) {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return "", corruptf("sstable %s props key", t.path)
		}
		s := string(buf[n : n+int(l)])
		buf = buf[n+int(l):]
		return s, nil
	}
	minKey, err := readStr()
	if err != nil {
		return err
	}
	maxKey, err := readStr()
	if err != nil {
		return err
	}
	t.meta.Entries = int(entries)
	t.meta.MaxTS = maxTS
	t.meta.MinKey = minKey
	t.meta.MaxKey = maxKey
	return nil
}

// Meta returns the file metadata (Bytes = real on-disk size).
func (t *sstable) Meta() kv.FileMeta { return t.meta }

// BlockReads returns the number of physical data-block reads served.
func (t *sstable) BlockReads() int64 { return t.blockReads.Load() }

// NumBlocks implements kv.BlockSource.
func (t *sstable) NumBlocks() int { return len(t.index) }

// FirstKey implements kv.BlockSource.
func (t *sstable) FirstKey(i int) string { return t.index[i].firstKey }

// MayContain implements kv.BlockSource via the bloom filter.
func (t *sstable) MayContain(key string) bool { return t.bloom.mayContain(key) }

// LoadBlock implements kv.BlockSource: pread the block, verify its
// checksum, decode. Reads racing a Close (store retired under a
// lock-free scan) surface kv.ErrClosed, which the serving layer already
// absorbs.
func (t *sstable) LoadBlock(i int) (*kv.Block, error) {
	sp := t.index[i]
	buf := make([]byte, sp.length)
	if _, err := t.f.ReadAt(buf, int64(sp.off)); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil, kv.ErrClosed
		}
		return nil, err
	}
	if len(buf) < 4 {
		return nil, corruptf("sstable %s block %d too short", t.path, i)
	}
	payload, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, corruptf("sstable %s block %d checksum", t.path, i)
	}
	entries, err := kv.DecodeBlock(payload)
	if err != nil {
		return nil, fmt.Errorf("sstable %s block %d: %w", t.path, i, err)
	}
	t.blockReads.Add(1)
	if t.readBytes != nil {
		t.readBytes.Add(int64(len(buf)))
	}
	return kv.NewBlock(entries), nil
}

// Close releases the file handle.
func (t *sstable) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	return t.f.Close()
}

var _ kv.BlockSource = (*sstable)(nil)
