package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"met/internal/kv"
)

func testEntry(i int) kv.Entry {
	return kv.Entry{
		Key:       fmt.Sprintf("key-%04d", i),
		Value:     []byte(fmt.Sprintf("value-%04d", i)),
		Timestamp: uint64(i),
	}
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(kv.Entry{Key: "dead", Timestamp: 11, Tombstone: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	entries, report, err := w2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if report.Torn {
		t.Fatalf("clean log reported torn at %s", report.TornSegment)
	}
	if len(entries) != 11 {
		t.Fatalf("replayed %d entries, want 11", len(entries))
	}
	for i := 1; i <= 10; i++ {
		e := entries[i-1]
		if e.Key != fmt.Sprintf("key-%04d", i) || string(e.Value) != fmt.Sprintf("value-%04d", i) || e.Timestamp != uint64(i) {
			t.Fatalf("entry %d mangled: %+v", i, e)
		}
	}
	if last := entries[10]; !last.Tombstone || last.Key != "dead" {
		t.Fatalf("tombstone mangled: %+v", last)
	}
}

// activeSegment returns the newest wal segment file in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	last := paths[0]
	for _, p := range paths {
		if p > last {
			last = p
		}
	}
	return last
}

func TestWALTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Hard kill: no Close. Simulate a crash mid-write by appending a
	// frame header that promises more payload than was written.
	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3} // claims 100 bytes, has 3
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	entries, report, err := w2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Torn {
		t.Fatal("torn tail not reported")
	}
	if len(entries) != 5 {
		t.Fatalf("replayed %d entries, want the 5 intact ones", len(entries))
	}
}

func TestWALCorruptCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the second record: replay must keep
	// record 1 and stop, dropping records 2 and 3.
	seg := activeSegment(t, dir)
	frame1 := encodeRecord("", testEntry(1), false)
	off := int64(walHeaderSize + len(frame1) + frameHeaderSize + 1)
	f, err := os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	entries, report, err := w2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Torn {
		t.Fatal("mid-log corruption not reported")
	}
	if len(entries) != 1 || entries[0].Timestamp != 1 {
		t.Fatalf("want exactly the pre-corruption prefix, got %d entries", len(entries))
	}
}

func TestWALEmptySegments(t *testing.T) {
	dir := t.TempDir()
	// Open and close twice with no records: two empty sealed segments.
	for i := 0; i < 2; i++ {
		w, err := OpenWAL(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testEntry(1)); err != nil {
		t.Fatal(err)
	}
	entries, report, err := w.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if report.Torn || len(entries) != 1 {
		t.Fatalf("replay across empty segments: %d entries, torn=%v", len(entries), report.Torn)
	}
	w.Close()
}

func TestWALReplayOrderingAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 64}) // rotate almost every record
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 5 {
		t.Fatalf("expected many segments, got %d", w.SegmentCount())
	}
	w.Close()

	w2, err := OpenWAL(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	entries := w2.Entries()
	if len(entries) != n {
		t.Fatalf("replayed %d, want %d", len(entries), n)
	}
	for i, e := range entries {
		if e.Timestamp != uint64(i+1) {
			t.Fatalf("replay out of order at %d: ts=%d", i, e.Timestamp)
		}
	}
}

func TestWALTruncateWholeSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 20; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.SegmentCount()
	// A flush made everything with ts <= 10 durable elsewhere; the
	// segments fully below the bar disappear, anything holding ts > 10
	// stays whole.
	w.Truncate(10)
	after := w.SegmentCount()
	if after >= before {
		t.Fatalf("truncate freed no segments (%d -> %d)", before, after)
	}
	entries := w.Entries()
	seen := map[uint64]bool{}
	for _, e := range entries {
		seen[e.Timestamp] = true
	}
	for ts := uint64(11); ts <= 20; ts++ {
		if !seen[ts] {
			t.Fatalf("truncate lost unflushed entry ts=%d", ts)
		}
	}
}

func TestWALTruncateAfterPartialFlushKeepsMixedSegment(t *testing.T) {
	dir := t.TempDir()
	// One big segment: ts 1..10 all live in the active segment, so a
	// flush covering only ts <= 5 must delete nothing.
	w, err := OpenWAL(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 10; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Truncate(5)
	entries := w.Entries()
	if len(entries) != 10 {
		t.Fatalf("partial-flush truncate dropped records: %d left, want all 10", len(entries))
	}
	// Once the flush covers the whole segment, it is rotated and deleted.
	w.Truncate(10)
	if n := len(w.Entries()); n != 0 {
		t.Fatalf("full truncate left %d records", n)
	}
}

func TestWALGroupCommitSharesOneSync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var commits []func() error
	for i := 1; i <= 5; i++ {
		c, err := w.AppendBuffered(testEntry(i))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
	}
	// Committing the newest record fsyncs once and covers all five.
	if err := commits[4](); err != nil {
		t.Fatal(err)
	}
	if got := w.SyncRounds(); got != 1 {
		t.Fatalf("sync rounds = %d, want 1", got)
	}
	for i, c := range commits[:4] {
		if err := c(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if got := w.SyncRounds(); got != 1 {
		t.Fatalf("older commits triggered extra syncs: %d rounds", got)
	}
}

func TestWALConcurrentAppendDurability(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := kv.Entry{
					Key:       fmt.Sprintf("w%d-%d", g, i),
					Value:     []byte("v"),
					Timestamp: uint64(g*per + i + 1),
				}
				if err := w.Append(e); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if n := len(w2.Entries()); n != workers*per {
		t.Fatalf("replayed %d, want %d", n, workers*per)
	}
}
