package durable

import "hash/fnv"

// bloomFilter is a classic Bloom filter over string keys, using double
// hashing (Kirsch–Mitzenmacher) on one FNV-1a base hash: probe i tests
// bit (h1 + i·h2) mod m. It answers "definitely absent" or "maybe
// present"; SSTable Gets use it to skip disk entirely for keys the file
// cannot contain.
type bloomFilter struct {
	k    uint32
	bits []byte
}

// newBloomFilter sizes a filter for n keys at bitsPerKey density. The
// number of probes k ≈ bitsPerKey·ln2 is the false-positive-optimal
// choice. A nil filter (bitsPerKey < 0 or n == 0) means "no filter":
// mayContain always answers maybe.
func newBloomFilter(n, bitsPerKey int) *bloomFilter {
	if bitsPerKey < 0 || n <= 0 {
		return nil
	}
	if bitsPerKey == 0 {
		bitsPerKey = 10
	}
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	mBits := n * bitsPerKey
	if mBits < 64 {
		mBits = 64
	}
	return &bloomFilter{k: k, bits: make([]byte, (mBits+7)/8)}
}

func bloomHash(key string) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 = h.Sum64()
	h2 = h1>>17 | h1<<47 // odd-ish rotation as the second hash
	return h1, h2
}

func (b *bloomFilter) add(key string) {
	if b == nil {
		return
	}
	h1, h2 := bloomHash(key)
	m := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloomFilter) mayContain(key string) bool {
	if b == nil {
		return true
	}
	h1, h2 := bloomHash(key)
	m := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter as k (1 byte) followed by the bit array.
// A nil filter marshals to nil (zero-length section in the SSTable).
func (b *bloomFilter) marshal() []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, 1+len(b.bits))
	out[0] = byte(b.k)
	copy(out[1:], b.bits)
	return out
}

// unmarshalBloom parses a marshaled filter; empty input means no filter.
func unmarshalBloom(buf []byte) (*bloomFilter, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	if len(buf) < 2 || buf[0] == 0 || buf[0] > 30 {
		return nil, corruptf("bloom filter header")
	}
	return &bloomFilter{k: uint32(buf[0]), bits: append([]byte(nil), buf[1:]...)}, nil
}
