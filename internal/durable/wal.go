package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"met/internal/kv"
)

const (
	walMagic        = "METW"
	walVersion      = 1
	walHeaderSize   = 5
	frameHeaderSize = 8 // length (4, LE) + crc32c (4, LE)
	walTombstone    = 1 << 0
	// maxFrameBytes bounds a decoded frame length so a corrupt length
	// field cannot drive a huge allocation.
	maxFrameBytes = 1 << 30
)

// walSegment is the in-memory record of one sealed on-disk segment.
type walSegment struct {
	idx   uint64
	path  string
	maxTS uint64
	count int
}

// WAL is the segmented write-ahead log. It implements kv.GroupWAL:
// records are framed with CRC32C, segments rotate at a size threshold,
// Truncate deletes whole segments whose entries a flush has made durable
// elsewhere, and commit acknowledgement batches concurrent writers into
// a single fsync (group commit; see the package documentation for the
// leader/follower protocol).
//
// Locking: mu serializes appends, rotation, truncation and replay.
// Commit waiters synchronize on the separate committer lock so that an
// in-flight fsync never blocks appends — that overlap is what gives
// group commit its batching. Lock order is mu before committer.mu is
// never required: the sync leader samples (file, seq) under mu while NOT
// holding committer.mu, so the two locks never nest in both orders.
type WAL struct {
	dir  string
	opts Options

	mu          sync.Mutex
	active      *os.File
	activeIdx   uint64
	activePath  string
	activeBytes int64
	activeMaxTS uint64
	activeCount int
	sealed      []walSegment // oldest first
	seq         uint64       // records buffered so far (monotonic)
	syncs       int64        // commit-path sync rounds (group-commit batching metric)
	closed      bool

	// bytesAppended counts physical log bytes (frames + segment
	// headers); appends also report to opts.Account for the shared
	// foreground I/O budget.
	bytesAppended atomic.Int64

	committer committer
}

// committer implements the group-commit rendezvous: the first waiter
// becomes the leader, fsyncs the active segment once, and advances
// synced past every record buffered before the fsync; followers just
// wait.
type committer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	synced  uint64 // highest record number covered by an fsync
	leading bool
	err     error  // last failed round's error
	failed  uint64 // highest record number the failed round covered
}

// OpenWAL opens (or creates) the log in dir. Existing segments — from a
// previous process, crashed or not — are all sealed; appends go to a
// fresh segment, so recovery state is never appended to in place.
func OpenWAL(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts}
	w.committer.cond = sync.NewCond(&w.committer.mu)

	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths) // zero-padded indices sort numerically
	maxIdx := uint64(0)
	for _, p := range paths {
		var idx uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &idx); err != nil {
			continue
		}
		seg := walSegment{idx: idx, path: p}
		// Scan for metadata; torn tails are fine here (recovery proper
		// re-reads the segment and stops at the same point).
		_ = readSegment(p, func(e kv.Entry) {
			seg.count++
			if e.Timestamp > seg.maxTS {
				seg.maxTS = e.Timestamp
			}
		})
		w.sealed = append(w.sealed, seg)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if err := w.openSegmentLocked(maxIdx + 1); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegmentLocked creates and becomes the active segment idx.
func (w *WAL) openSegmentLocked(idx uint64) error {
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016d.log", idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := (meteredWriter{w: f, count: &w.bytesAppended}).Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeIdx = idx
	w.activePath = path
	w.activeBytes = walHeaderSize
	w.activeMaxTS = 0
	w.activeCount = 0
	return syncDir(w.dir, w.opts.NoSync)
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. Because the outgoing segment is fsynced, every record
// buffered so far is durable; the committer is advanced so pending
// commit waiters return without another fsync.
func (w *WAL) rotateLocked() error {
	if err := syncFile(w.active, w.opts.NoSync); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, walSegment{
		idx: w.activeIdx, path: w.activePath, maxTS: w.activeMaxTS, count: w.activeCount,
	})
	seq := w.seq
	if err := w.openSegmentLocked(w.activeIdx + 1); err != nil {
		return err
	}
	c := &w.committer
	c.mu.Lock()
	if seq > c.synced {
		c.synced = seq
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return nil
}

// encodeFrame serializes one entry as a CRC32C-framed record.
func encodeFrame(e kv.Entry) []byte {
	payload := make([]byte, 0, 1+binary.MaxVarintLen64*3+len(e.Key)+len(e.Value))
	var flags byte
	if e.Tombstone {
		flags |= walTombstone
	}
	payload = append(payload, flags)
	payload = binary.AppendUvarint(payload, e.Timestamp)
	payload = binary.AppendUvarint(payload, uint64(len(e.Key)))
	payload = append(payload, e.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(e.Value)))
	payload = append(payload, e.Value...)

	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

// decodePayload parses a frame payload back into an entry.
func decodePayload(payload []byte) (kv.Entry, error) {
	if len(payload) < 1 {
		return kv.Entry{}, corruptf("empty wal payload")
	}
	e := kv.Entry{Tombstone: payload[0]&walTombstone != 0}
	buf := payload[1:]
	ts, n := binary.Uvarint(buf)
	if n <= 0 {
		return kv.Entry{}, corruptf("wal timestamp")
	}
	e.Timestamp = ts
	buf = buf[n:]
	klen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < klen {
		return kv.Entry{}, corruptf("wal key")
	}
	e.Key = string(buf[n : n+int(klen)])
	buf = buf[n+int(klen):]
	vlen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) != vlen {
		return kv.Entry{}, corruptf("wal value")
	}
	if vlen > 0 {
		e.Value = append([]byte(nil), buf[n:n+int(vlen)]...)
	}
	return e, nil
}

// AppendBuffered implements kv.GroupWAL: the record is written to the
// active segment (establishing its replay position) and a commit
// function is returned that blocks until an fsync covers it.
func (w *WAL) AppendBuffered(e kv.Entry) (func() error, error) {
	frame := encodeFrame(e)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.activeBytes >= w.opts.SegmentBytes && w.activeCount > 0 {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return nil, err
		}
	}
	out := meteredWriter{w: w.active, count: &w.bytesAppended, account: w.opts.Account}
	if _, err := out.Write(frame); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	w.activeBytes += int64(len(frame))
	w.activeCount++
	if e.Timestamp > w.activeMaxTS {
		w.activeMaxTS = e.Timestamp
	}
	w.seq++
	seq := w.seq
	w.mu.Unlock()
	return func() error { return w.commitTo(seq) }, nil
}

// Append implements kv.WAL: append and wait for durability.
func (w *WAL) Append(e kv.Entry) error {
	commit, err := w.AppendBuffered(e)
	if err != nil {
		return err
	}
	return commit()
}

// commitTo blocks until record seq is fsync-covered. The first arriving
// waiter leads: it fsyncs once and credits every record buffered before
// the fsync, so all concurrent waiters are released together.
func (w *WAL) commitTo(seq uint64) error {
	c := &w.committer
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.synced >= seq {
			return nil
		}
		if c.err != nil && c.failed >= seq {
			return c.err
		}
		if c.leading {
			c.cond.Wait()
			continue
		}
		c.leading = true
		c.mu.Unlock()
		target, err := w.syncActive()
		c.mu.Lock()
		c.leading = false
		if err != nil {
			c.err = err
			if target > c.failed {
				c.failed = target
			}
		} else {
			c.err = nil
			if target > c.synced {
				c.synced = target
			}
		}
		c.cond.Broadcast()
	}
}

// syncActive fsyncs the active segment, returning the highest record
// number that fsync covers. Records in already-sealed segments were
// fsynced at rotation, so covering "everything buffered into the current
// active segment" covers everything up to the sampled sequence number.
func (w *WAL) syncActive() (uint64, error) {
	w.mu.Lock()
	f := w.active
	target := w.seq
	closed := w.closed
	w.mu.Unlock()
	if closed || f == nil {
		// Close fsyncs before closing, so everything buffered is durable.
		return target, nil
	}
	err := syncFile(f, w.opts.NoSync)
	w.mu.Lock()
	w.syncs++
	w.mu.Unlock()
	if err != nil && errors.Is(err, os.ErrClosed) {
		// A rotation sealed this segment after we sampled it; sealing
		// fsyncs first, so the records are durable.
		err = nil
	}
	return target, err
}

// Truncate implements kv.WAL: entries with Timestamp <= upTo are durable
// elsewhere (a flushed SSTable), so every segment whose newest record is
// <= upTo is deleted whole — no rewriting. If the active segment itself
// only holds flushed entries it is sealed first, so the log shrinks to
// one empty active segment after each flush.
func (w *WAL) Truncate(upTo uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	if w.activeCount > 0 && w.activeMaxTS <= upTo {
		if err := w.rotateLocked(); err != nil {
			return // keep the data; truncation is only an optimization
		}
	}
	kept := w.sealed[:0]
	removed := false
	for _, seg := range w.sealed {
		if seg.maxTS <= upTo {
			_ = os.Remove(seg.path)
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	w.sealed = kept
	if removed {
		_ = syncDir(w.dir, w.opts.NoSync)
	}
}

// ReplayReport describes what recovery found.
type ReplayReport struct {
	// Replayed is the number of records returned.
	Replayed int
	// Torn is true when replay stopped before the end of the log —
	// a torn tail after a crash, or mid-log corruption.
	Torn bool
	// TornSegment is the path of the segment replay stopped in.
	TornSegment string
}

// Replay reads every intact record, oldest segment first, in append
// order — the recovery stream. It stops at the first bad frame (short
// header, short payload, checksum mismatch, or undecodable payload):
// everything before it is returned, everything after is dropped, exactly
// the contract a physical log can honor after a crash.
func (w *WAL) Replay() ([]kv.Entry, ReplayReport, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var entries []kv.Entry
	var report ReplayReport
	segs := append([]walSegment(nil), w.sealed...)
	if w.activeCount > 0 {
		segs = append(segs, walSegment{idx: w.activeIdx, path: w.activePath})
	}
	for _, seg := range segs {
		err := readSegment(seg.path, func(e kv.Entry) { entries = append(entries, e) })
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				report.Torn = true
				report.TornSegment = seg.path
				break
			}
			return nil, report, err
		}
	}
	report.Replayed = len(entries)
	return entries, report, nil
}

// ReplayEntries is the recovery entry point kv.OpenStore prefers: a
// torn tail or mid-log corruption is an expected crash artifact and
// only truncates the result, but a real I/O error fails recovery
// loudly — silently returning a partial log would break the
// acknowledged-writes-survive guarantee.
func (w *WAL) ReplayEntries() ([]kv.Entry, error) {
	entries, _, err := w.Replay()
	return entries, err
}

// Entries implements kv.WAL for recovery; torn tails are dropped
// silently (Replay reports them).
func (w *WAL) Entries() []kv.Entry {
	entries, _, err := w.Replay()
	if err != nil {
		return nil
	}
	return entries
}

// readSegment streams a segment's intact records into fn. A torn or
// corrupt frame yields ErrCorrupt; records before it are still
// delivered.
func readSegment(path string, fn func(kv.Entry)) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(buf) < walHeaderSize || string(buf[:4]) != walMagic {
		return corruptf("wal segment header %s", filepath.Base(path))
	}
	if buf[4] != walVersion {
		return fmt.Errorf("durable: unsupported wal version %d in %s", buf[4], filepath.Base(path))
	}
	buf = buf[walHeaderSize:]
	for len(buf) > 0 {
		if len(buf) < frameHeaderSize {
			return corruptf("torn frame header in %s", filepath.Base(path))
		}
		length := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if length > maxFrameBytes || uint64(len(buf)-frameHeaderSize) < uint64(length) {
			return corruptf("torn frame payload in %s", filepath.Base(path))
		}
		payload := buf[frameHeaderSize : frameHeaderSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return corruptf("frame checksum mismatch in %s", filepath.Base(path))
		}
		e, err := decodePayload(payload)
		if err != nil {
			return err
		}
		fn(e)
		buf = buf[frameHeaderSize+int(length):]
	}
	return nil
}

// SetAccount swaps the foreground-accounting hook (Options.Account) the
// log charges its append bytes to. A region move re-homes a live store
// onto another server, whose I/O budget must absorb the WAL traffic from
// then on; appends read the hook under the same mutex, so the swap is
// race-free and takes effect at the next append. fn may be nil
// (accounting off).
func (w *WAL) SetAccount(fn func(bytes int)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.opts.Account = fn
}

// BytesAppended returns the physical bytes written to the log so far.
func (w *WAL) BytesAppended() int64 { return w.bytesAppended.Load() }

// SyncRounds returns how many commit-path sync rounds have run; with N
// concurrent writers it stays well below N appends (group commit).
func (w *WAL) SyncRounds() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// SegmentCount returns the number of on-disk segments (sealed + active).
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// Close fsyncs and closes the active segment. Pending commit waiters are
// released successfully — their records are durable after the final
// fsync.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	seq := w.seq
	err := syncFile(w.active, w.opts.NoSync)
	if cerr := w.active.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()

	c := &w.committer
	c.mu.Lock()
	if err == nil && seq > c.synced {
		c.synced = seq
	} else if err != nil && seq > c.failed {
		c.err = err
		c.failed = seq
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}

var _ kv.GroupWAL = (*WAL)(nil)
