package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"met/internal/kv"
	"met/internal/obs"
)

const (
	walMagic   = "METW"
	walVersion = 2 // region-tagged frames (shared, server-wide log)
	// walVersionV1 is the legacy single-store format: frames carry no
	// region field. Readable forever; never written anymore.
	walVersionV1    = 1
	walHeaderSize   = 5
	frameHeaderSize = 8 // length (4, LE) + crc32c (4, LE)
	walTombstone    = 1 << 0
	// walDrop marks a region-drop record: every record for the same
	// region appended before it is obsolete (the region's store was
	// discarded). Replay applies markers in order, so a later store that
	// re-mints the same region name cannot resurrect a predecessor's
	// records.
	walDrop = 1 << 1
	// maxFrameBytes bounds a decoded frame length so a corrupt length
	// field cannot drive a huge allocation.
	maxFrameBytes = 1 << 30
)

// Hooks for the truncation and sync paths, swappable by tests (slow
// filesystems, failing fsyncs). Production never touches them.
var (
	walRemoveFile = os.Remove
	walSyncFile   = syncFile
)

// walRecord is one decoded log record: an entry tagged with the region
// whose store appended it (empty for the legacy single-store format),
// or a region-drop marker.
type walRecord struct {
	region string
	drop   bool
	e      kv.Entry
}

// walSegment is the in-memory record of one sealed on-disk segment.
type walSegment struct {
	idx  uint64
	path string
	// maxTS maps each region with live records in this segment to its
	// newest timestamp here. The segment may be deleted only when every
	// one of those regions has flushed past that timestamp (or was
	// dropped) — the truncation rule of the shared log.
	maxTS map[string]uint64
	count int
}

// covered reports whether the segment holds nothing recovery still
// needs: every region with records here has flushed past its newest
// record (or carries a drop marker).
func (s *walSegment) covered(flushed map[string]uint64, dropped map[string]bool) bool {
	for region, max := range s.maxTS {
		if dropped[region] {
			continue
		}
		if flushed[region] < max {
			return false
		}
	}
	return true
}

// tailRec is one unflushed record retained in memory for tail-streaming
// (Options.KeepTail): the replicator ships the synced prefix of the
// tail to followers so a failover can replay what the memstore held.
type tailRec struct {
	seq    uint64
	region string
	e      kv.Entry
}

// WAL is the segmented, group-committed write-ahead log. One WAL serves
// a whole RegionServer: every hosted region appends through a
// region-scoped handle (Region), so N regions share one fsync stream —
// HBase's one-log-per-server design. The zero region name ("") is the
// legacy single-store mode used when a kv backend owns a private log.
//
// Records are framed with CRC32C, segments rotate at a size threshold,
// and Truncate deletes whole segments once *every* region's flushed
// high-water mark passes the segment's per-region maxima. Commit
// acknowledgement batches concurrent writers into a single fsync (group
// commit; see the package documentation for the leader/follower
// protocol).
//
// Locking: mu serializes appends, rotation, truncation and replay.
// Commit waiters synchronize on the separate committer lock so that an
// in-flight fsync never blocks appends — that overlap is what gives
// group commit its batching. Lock order is mu before committer.mu is
// never required: the sync leader samples (file, seq) under mu while NOT
// holding committer.mu, so the two locks never nest in both orders.
type WAL struct {
	dir  string
	opts Options

	mu          sync.Mutex
	active      *os.File
	activeIdx   uint64
	activePath  string
	activeBytes int64
	activeMaxTS map[string]uint64
	activeCount int
	sealed      []walSegment // oldest first
	seq         uint64       // records buffered so far (monotonic)
	syncs       int64        // successful commit-path sync rounds
	closed      bool

	flushed map[string]uint64 // per-region flushed high-water marks
	dropped map[string]bool   // regions whose records a drop marker voids
	pending map[string]int    // records appended per region since the last good fsync
	tail    []tailRec         // synced-but-unflushed records (KeepTail)

	// bytesAppended counts physical log bytes (frames + segment
	// headers); appends also report to opts.Account for the shared
	// foreground I/O budget.
	bytesAppended atomic.Int64

	// fsyncHist is the lock-free distribution of successful commit-path
	// fsync round durations (met/internal/obs).
	fsyncHist obs.Histogram

	committer committer
}

// FsyncLatency returns the distribution of successful commit-path
// fsync round durations.
func (w *WAL) FsyncLatency() obs.Snapshot { return w.fsyncHist.Snapshot() }

// committer implements the group-commit rendezvous: the first waiter
// becomes the leader, fsyncs the active segment once, and advances
// synced past every record buffered before the fsync; followers just
// wait.
type committer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	synced  uint64 // highest record number covered by an fsync
	leading bool
	err     error  // last failed round's error
	failed  uint64 // highest record number the failed round covered
}

// OpenWAL opens (or creates) the log in dir. Existing segments — from a
// previous process, crashed or not — are all sealed; appends go to a
// fresh segment, so recovery state is never appended to in place.
func OpenWAL(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:     dir,
		opts:    opts,
		flushed: make(map[string]uint64),
		dropped: make(map[string]bool),
		pending: make(map[string]int),
	}
	w.committer.cond = sync.NewCond(&w.committer.mu)

	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths) // zero-padded indices sort numerically
	maxIdx := uint64(0)
	for _, p := range paths {
		var idx uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &idx); err != nil {
			continue
		}
		seg := walSegment{idx: idx, path: p, maxTS: make(map[string]uint64)}
		// Scan for metadata; torn tails are fine here (recovery proper
		// re-reads the segment and stops at the same point). A drop
		// marker voids the region's records in every earlier segment, so
		// those records must not pin segments either.
		_ = readSegment(p, func(r walRecord) {
			seg.count++
			if r.drop {
				w.dropped[r.region] = true
				for i := range w.sealed {
					delete(w.sealed[i].maxTS, r.region)
				}
				delete(seg.maxTS, r.region)
				w.dropTailLocked(r.region, ^uint64(0))
				return
			}
			delete(w.dropped, r.region)
			if r.e.Timestamp > seg.maxTS[r.region] {
				seg.maxTS[r.region] = r.e.Timestamp
			}
			// Recovered records are durable-but-unflushed until a flush
			// truncation says otherwise — exactly the tail invariant. A
			// restarted server must keep offering them to the replicator,
			// or an empty post-restart tail ship would revoke the
			// followers' coverage of records that now exist only in this
			// server's memstores and its own log. Zero seq keeps them
			// below every future fsync watermark (immediately shippable).
			if opts.KeepTail {
				w.tail = append(w.tail, tailRec{region: r.region, e: r.e})
			}
		})
		w.sealed = append(w.sealed, seg)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if err := w.openSegmentLocked(maxIdx + 1); err != nil {
		return nil, err
	}
	return w, nil
}

// Region returns the append/truncate/replay handle for one region's
// records in the shared log. The handle implements kv.GroupWAL, so a
// kv.Store plugs it in as its WAL. Registering a name clears a pending
// drop marker for it — a re-minted region starts with a clean slate and
// a zero flush high-water mark.
func (w *WAL) Region(name string) *RegionLog {
	w.mu.Lock()
	if w.dropped[name] {
		delete(w.dropped, name)
		// The marker voided the predecessor's records; purge its
		// bookkeeping so stale maxima cannot pin segments against the
		// new store's (restarted) flush clock.
		for i := range w.sealed {
			delete(w.sealed[i].maxTS, name)
		}
		delete(w.activeMaxTS, name)
	}
	// The new store's flush clock starts from its own recovered state; a
	// stale high-water mark must not mark its future records as covered.
	delete(w.flushed, name)
	w.mu.Unlock()
	return &RegionLog{w: w, name: name}
}

// openSegmentLocked creates and becomes the active segment idx.
func (w *WAL) openSegmentLocked(idx uint64) error {
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016d.log", idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := (meteredWriter{w: f, count: &w.bytesAppended}).Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeIdx = idx
	w.activePath = path
	w.activeBytes = walHeaderSize
	w.activeMaxTS = make(map[string]uint64)
	w.activeCount = 0
	return syncDir(w.dir, w.opts.NoSync)
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. Because the outgoing segment is fsynced, every record
// buffered so far is durable; the committer is advanced so pending
// commit waiters return without another fsync. Regions stay in the
// pending set — the next commit-path sync (or an explicit replication
// reconcile) notifies them.
func (w *WAL) rotateLocked() error {
	if err := syncFile(w.active, w.opts.NoSync); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, walSegment{
		idx: w.activeIdx, path: w.activePath, maxTS: w.activeMaxTS, count: w.activeCount,
	})
	seq := w.seq
	if err := w.openSegmentLocked(w.activeIdx + 1); err != nil {
		return err
	}
	c := &w.committer
	c.mu.Lock()
	if seq > c.synced {
		c.synced = seq
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return nil
}

// encodeRecord serializes one record as a CRC32C-framed v2 frame.
func encodeRecord(region string, e kv.Entry, drop bool) []byte {
	payload := make([]byte, 0, 2+binary.MaxVarintLen64*4+len(region)+len(e.Key)+len(e.Value))
	var flags byte
	if e.Tombstone {
		flags |= walTombstone
	}
	if drop {
		flags |= walDrop
	}
	payload = append(payload, flags)
	payload = binary.AppendUvarint(payload, e.Timestamp)
	payload = binary.AppendUvarint(payload, uint64(len(region)))
	payload = append(payload, region...)
	payload = binary.AppendUvarint(payload, uint64(len(e.Key)))
	payload = append(payload, e.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(e.Value)))
	payload = append(payload, e.Value...)

	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

// decodePayload parses a frame payload back into a record. Version 1
// frames carry no region field and decode with region "".
func decodePayload(payload []byte, version byte) (walRecord, error) {
	if len(payload) < 1 {
		return walRecord{}, corruptf("empty wal payload")
	}
	flags := payload[0]
	rec := walRecord{
		drop: flags&walDrop != 0,
		e:    kv.Entry{Tombstone: flags&walTombstone != 0},
	}
	buf := payload[1:]
	ts, n := binary.Uvarint(buf)
	if n <= 0 {
		return walRecord{}, corruptf("wal timestamp")
	}
	rec.e.Timestamp = ts
	buf = buf[n:]
	if version >= walVersion {
		rlen, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < rlen {
			return walRecord{}, corruptf("wal region")
		}
		rec.region = string(buf[n : n+int(rlen)])
		buf = buf[n+int(rlen):]
	}
	klen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < klen {
		return walRecord{}, corruptf("wal key")
	}
	rec.e.Key = string(buf[n : n+int(klen)])
	buf = buf[n+int(klen):]
	vlen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) != vlen {
		return walRecord{}, corruptf("wal value")
	}
	if vlen > 0 {
		rec.e.Value = append([]byte(nil), buf[n:n+int(vlen)]...)
	}
	return rec, nil
}

// appendRecord writes one framed record for region and returns the
// commit function that blocks until an fsync covers it.
func (w *WAL) appendRecord(region string, e kv.Entry, drop bool) (func() error, error) {
	frame := encodeRecord(region, e, drop)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.activeBytes >= w.opts.SegmentBytes && w.activeCount > 0 {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return nil, err
		}
	}
	out := meteredWriter{w: w.active, count: &w.bytesAppended, account: w.opts.Account}
	if _, err := out.Write(frame); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	w.activeBytes += int64(len(frame))
	w.activeCount++
	w.seq++
	seq := w.seq
	if drop {
		w.dropped[region] = true
		delete(w.activeMaxTS, region)
		for i := range w.sealed {
			delete(w.sealed[i].maxTS, region)
		}
		delete(w.flushed, region)
		w.dropTailLocked(region, ^uint64(0))
	} else {
		delete(w.dropped, region)
		if e.Timestamp > w.activeMaxTS[region] {
			w.activeMaxTS[region] = e.Timestamp
		}
		if w.opts.KeepTail {
			cp := e
			cp.Value = append([]byte(nil), e.Value...)
			w.tail = append(w.tail, tailRec{seq: seq, region: region, e: cp})
		}
	}
	w.pending[region]++
	w.mu.Unlock()
	return func() error { return w.commitTo(seq) }, nil
}

// AppendBuffered implements kv.GroupWAL in legacy single-store mode:
// the record is written to the active segment (establishing its replay
// position) and a commit function is returned that blocks until an
// fsync covers it.
func (w *WAL) AppendBuffered(e kv.Entry) (func() error, error) {
	return w.appendRecord("", e, false)
}

// Append implements kv.WAL: append and wait for durability.
func (w *WAL) Append(e kv.Entry) error {
	commit, err := w.AppendBuffered(e)
	if err != nil {
		return err
	}
	return commit()
}

// Drop durably voids every record region has appended: a marker frame
// is written and fsynced, after which replay (live or after a restart)
// returns nothing for the region. Called when a region's store is
// discarded (split parent, failed daughter, moved-away region) so its
// records stop pinning segments and a re-minted region name cannot
// resurrect them.
func (w *WAL) Drop(region string) error {
	commit, err := w.appendRecord(region, kv.Entry{}, true)
	if err != nil {
		return err
	}
	return commit()
}

// commitTo blocks until record seq is fsync-covered. The first arriving
// waiter leads: it fsyncs once and credits every record buffered before
// the fsync, so all concurrent waiters are released together.
func (w *WAL) commitTo(seq uint64) error {
	c := &w.committer
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.synced >= seq {
			return nil
		}
		if c.err != nil && c.failed >= seq {
			return c.err
		}
		if c.leading {
			c.cond.Wait()
			continue
		}
		c.leading = true
		c.mu.Unlock()
		target, err := w.syncActive()
		c.mu.Lock()
		c.leading = false
		if err != nil {
			c.err = err
			if target > c.failed {
				c.failed = target
			}
		} else {
			c.err = nil
			if target > c.synced {
				c.synced = target
			}
		}
		c.cond.Broadcast()
	}
}

// syncActive fsyncs the active segment, returning the highest record
// number that fsync covers. Records in already-sealed segments were
// fsynced at rotation, so covering "everything buffered into the current
// active segment" covers everything up to the sampled sequence number.
//
// Only successful rounds count toward SyncRounds — the writes/fsync
// metric measures achieved batching, and a failed fsync durably covered
// nothing. On success the regions that gained coverage are reported to
// Options.OnSynced (off-lock), the replicator's cue to ship fresh tail.
func (w *WAL) syncActive() (uint64, error) {
	w.mu.Lock()
	f := w.active
	target := w.seq
	closed := w.closed
	var regions map[string]int
	if w.opts.OnSynced != nil && len(w.pending) > 0 {
		regions = w.pending
		w.pending = make(map[string]int)
	}
	w.mu.Unlock()
	if closed || f == nil {
		// Unreachable by design: Close claims the committer leader slot
		// before publishing closed, and only the current leader reaches
		// this point — so a sync leader can never observe a closed log.
		// Should the fence ever break, refuse to credit durability for
		// an fsync that may not have run: put the regions back for the
		// next round and fail loudly.
		w.mu.Lock()
		for r, n := range regions {
			w.pending[r] += n
		}
		w.mu.Unlock()
		return target, ErrClosed
	}
	syncStart := time.Now()
	err := walSyncFile(f, w.opts.NoSync)
	if err != nil && errors.Is(err, os.ErrClosed) {
		// A rotation sealed this segment after we sampled it; sealing
		// fsyncs first, so the records are durable.
		err = nil
	}
	if err != nil {
		// The round covered nothing: don't count it, and put the regions
		// back so the next successful round reports them.
		w.mu.Lock()
		for r, n := range regions {
			w.pending[r] += n
		}
		w.mu.Unlock()
		return target, err
	}
	w.fsyncHist.Since(syncStart)
	w.mu.Lock()
	w.syncs++
	w.mu.Unlock()
	if len(regions) > 0 {
		w.opts.OnSynced(regions)
	}
	return target, nil
}

// activeCoveredLocked reports whether every record in the active
// segment is flushed (or dropped), i.e. sealing it now would yield an
// immediately deletable segment.
func (w *WAL) activeCoveredLocked() bool {
	for region, max := range w.activeMaxTS {
		if w.dropped[region] {
			continue
		}
		if w.flushed[region] < max {
			return false
		}
	}
	return true
}

// dropTailLocked removes region's retained tail records with
// Timestamp <= upTo.
func (w *WAL) dropTailLocked(region string, upTo uint64) {
	if len(w.tail) == 0 {
		return
	}
	kept := w.tail[:0]
	for _, rec := range w.tail {
		if rec.region == region && rec.e.Timestamp <= upTo {
			continue
		}
		kept = append(kept, rec)
	}
	for i := len(kept); i < len(w.tail); i++ {
		w.tail[i] = tailRec{}
	}
	w.tail = kept
}

// truncateRegion raises region's flushed high-water mark to upTo and
// runs a reclamation sweep. Entries <= upTo are durable elsewhere (a
// flushed SSTable), so segments whose per-region maxima are all covered
// can be deleted whole — no rewriting.
func (w *WAL) truncateRegion(region string, upTo uint64) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if upTo > w.flushed[region] {
		w.flushed[region] = upTo
	}
	w.dropTailLocked(region, upTo)
	w.mu.Unlock()
	w.sweep()
}

// sweep is the segment-reclamation pass shared by truncation and
// DropAbsent: seal the active segment if everything in it is covered,
// then delete the covered prefix of sealed segments. Deletable segments
// are taken strictly oldest-first (a prefix): a drop marker voids
// records in *earlier* segments, so a marker's segment must outlive
// them on disk or a crash could resurrect what it voided.
//
// The unlink and directory sync run after the lock is released —
// directory I/O on a slow filesystem must not stall concurrent appends
// (every flush truncates, so this is a hot path).
func (w *WAL) sweep() {
	var doomed []string
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if w.activeCount > 0 && w.activeCoveredLocked() {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return // keep the data; reclamation is only an optimization
		}
	}
	cut := 0
	for cut < len(w.sealed) && w.sealed[cut].covered(w.flushed, w.dropped) {
		doomed = append(doomed, w.sealed[cut].path)
		cut++
	}
	if cut > 0 {
		w.sealed = append([]walSegment(nil), w.sealed[cut:]...)
	}
	w.mu.Unlock()
	if len(doomed) > 0 {
		for _, p := range doomed {
			_ = walRemoveFile(p)
		}
		//lint:allow syncerr truncation is an optimization: a missed dir sync only resurrects removed segments, whose records replay as already-flushed
		_ = syncDir(w.dir, w.opts.NoSync)
	}
}

// DropAbsent durably voids the records of every region present in the
// log but absent from live, then sweeps reclaimable segments. It closes
// a cold-start leak: a region that moved away before the last shutdown
// left records in this server's log, and since the region never
// re-registers here after a restart its flush clock never advances —
// without a drop marker those records pin their segments forever.
// OpenCluster calls this once per revived server, after every region
// the catalog assigns to it has been reopened.
//
// Markers append to the active (newest) segment, and the sweep deletes
// covered segments strictly oldest-first, so a marker always outlives
// the records it voids. Returns the region names dropped (sorted).
func (w *WAL) DropAbsent(live map[string]bool) ([]string, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	present := make(map[string]bool)
	for i := range w.sealed {
		for region := range w.sealed[i].maxTS {
			present[region] = true
		}
	}
	for region := range w.activeMaxTS {
		present[region] = true
	}
	for _, rec := range w.tail {
		present[rec.region] = true
	}
	var orphans []string
	for region := range present {
		// "" is the legacy single-store mode's region name — never a
		// catalog-registered region, never an orphan.
		if region == "" || live[region] || w.dropped[region] {
			continue
		}
		orphans = append(orphans, region)
	}
	w.mu.Unlock()
	if len(orphans) == 0 {
		return nil, nil
	}
	sort.Strings(orphans)
	var last func() error
	for _, region := range orphans {
		commit, err := w.appendRecord(region, kv.Entry{}, true)
		if err != nil {
			return nil, err
		}
		last = commit
	}
	// One group commit covers every marker buffered above.
	if err := last(); err != nil {
		return nil, err
	}
	w.sweep()
	return orphans, nil
}

// Truncate implements kv.WAL in legacy single-store mode.
func (w *WAL) Truncate(upTo uint64) { w.truncateRegion("", upTo) }

// ReplayReport describes what recovery found.
type ReplayReport struct {
	// Replayed is the number of records returned.
	Replayed int
	// Torn is true when replay stopped before the end of the log —
	// a torn tail after a crash, or mid-log corruption.
	Torn bool
	// TornSegment is the path of the segment replay stopped in.
	TornSegment string
}

// replayRecords reads every intact record, oldest segment first, in
// append order, applying drop markers (a marker removes the region's
// earlier records from the result). Caller holds w.mu.
func (w *WAL) replayRecords() ([]walRecord, ReplayReport, error) {
	var recs []walRecord
	var report ReplayReport
	segs := append([]walSegment(nil), w.sealed...)
	if w.activeCount > 0 {
		segs = append(segs, walSegment{idx: w.activeIdx, path: w.activePath})
	}
	for _, seg := range segs {
		err := readSegment(seg.path, func(r walRecord) {
			if r.drop {
				kept := recs[:0]
				for _, rr := range recs {
					if rr.region != r.region {
						kept = append(kept, rr)
					}
				}
				recs = kept
				return
			}
			recs = append(recs, r)
		})
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				report.Torn = true
				report.TornSegment = seg.path
				break
			}
			return nil, report, err
		}
	}
	report.Replayed = len(recs)
	return recs, report, nil
}

// Replay reads every intact record across all regions, oldest segment
// first, in append order — the recovery stream. It stops at the first
// bad frame (short header, short payload, checksum mismatch, or
// undecodable payload): everything before it is returned, everything
// after is dropped, exactly the contract a physical log can honor after
// a crash.
func (w *WAL) Replay() ([]kv.Entry, ReplayReport, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	recs, report, err := w.replayRecords()
	if err != nil {
		return nil, report, err
	}
	entries := make([]kv.Entry, 0, len(recs))
	for _, r := range recs {
		entries = append(entries, r.e)
	}
	return entries, report, nil
}

// replayRegion returns the intact records belonging to one region.
func (w *WAL) replayRegion(region string) ([]kv.Entry, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	recs, _, err := w.replayRecords()
	if err != nil {
		return nil, err
	}
	var entries []kv.Entry
	for _, r := range recs {
		if r.region == region {
			entries = append(entries, r.e)
		}
	}
	return entries, nil
}

// ReplayEntries is the recovery entry point kv.OpenStore prefers: a
// torn tail or mid-log corruption is an expected crash artifact and
// only truncates the result, but a real I/O error fails recovery
// loudly — silently returning a partial log would break the
// acknowledged-writes-survive guarantee.
func (w *WAL) ReplayEntries() ([]kv.Entry, error) {
	entries, _, err := w.Replay()
	return entries, err
}

// Entries implements kv.WAL for recovery; torn tails are dropped
// silently (Replay reports them).
func (w *WAL) Entries() []kv.Entry {
	entries, _, err := w.Replay()
	if err != nil {
		return nil
	}
	return entries
}

// SyncedTail returns region's durable-but-unflushed records: everything
// an fsync has covered that no flush has truncated yet. This is the
// frame stream the replicator ships to followers — after a failover the
// recovering master replays it over the replica SSTables, shrinking the
// loss window from "whole memstore" to the unsynced in-flight tail.
// Requires Options.KeepTail.
func (w *WAL) SyncedTail(region string) []kv.Entry {
	c := &w.committer
	c.mu.Lock()
	synced := c.synced
	c.mu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []kv.Entry
	for _, rec := range w.tail {
		if rec.region != region || rec.seq > synced {
			continue
		}
		out = append(out, rec.e)
	}
	return out
}

// readSegment streams a segment's intact records into fn. A torn or
// corrupt frame yields ErrCorrupt; records before it are still
// delivered.
func readSegment(path string, fn func(walRecord)) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(buf) < walHeaderSize || string(buf[:4]) != walMagic {
		return corruptf("wal segment header %s", filepath.Base(path))
	}
	version := buf[4]
	if version != walVersionV1 && version != walVersion {
		return fmt.Errorf("durable: unsupported wal version %d in %s", version, filepath.Base(path))
	}
	buf = buf[walHeaderSize:]
	for len(buf) > 0 {
		if len(buf) < frameHeaderSize {
			return corruptf("torn frame header in %s", filepath.Base(path))
		}
		length := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if length > maxFrameBytes || uint64(len(buf)-frameHeaderSize) < uint64(length) {
			return corruptf("torn frame payload in %s", filepath.Base(path))
		}
		payload := buf[frameHeaderSize : frameHeaderSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return corruptf("frame checksum mismatch in %s", filepath.Base(path))
		}
		rec, err := decodePayload(payload, version)
		if err != nil {
			return err
		}
		fn(rec)
		buf = buf[frameHeaderSize+int(length):]
	}
	return nil
}

// SetAccount swaps the foreground-accounting hook (Options.Account) the
// log charges its append bytes to. A region move re-homes a live store
// onto another server, whose I/O budget must absorb the WAL traffic from
// then on; appends read the hook under the same mutex, so the swap is
// race-free and takes effect at the next append. fn may be nil
// (accounting off).
func (w *WAL) SetAccount(fn func(bytes int)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.opts.Account = fn
}

// BytesAppended returns the physical bytes written to the log so far.
func (w *WAL) BytesAppended() int64 { return w.bytesAppended.Load() }

// Appends returns the number of records buffered so far.
func (w *WAL) Appends() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(w.seq)
}

// SyncRounds returns how many commit-path sync rounds have succeeded;
// with N concurrent writers — across any number of regions on a shared
// log — it stays well below N appends (group commit).
func (w *WAL) SyncRounds() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// SegmentCount returns the number of on-disk segments (sealed + active).
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// Close fsyncs and closes the active segment. Pending commit waiters
// are released — successfully when the final fsync succeeded (their
// records are durable), with the fsync error otherwise.
//
// Ordering: Close first claims the committer leader slot, so no commit
// round is in flight, and only then publishes closed and runs the final
// fsync. A sync leader therefore can never observe closed == true —
// doing so would require Close to hold the leader slot the observer
// itself holds — so no commit round can acknowledge records whose
// covering fsync has not actually run, and a failed final fsync reaches
// every waiter instead of being masked by an optimistic synced credit.
func (w *WAL) Close() error {
	c := &w.committer
	c.mu.Lock()
	for c.leading {
		c.cond.Wait()
	}
	c.leading = true
	c.mu.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		c.mu.Lock()
		c.leading = false
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil
	}
	w.closed = true // fences appendRecord: seq is final from here on
	seq := w.seq
	f := w.active
	w.mu.Unlock()

	// The final fsync runs outside w.mu like every other sync round
	// (locksafe gate). The fd cannot rotate out from under us: rotation
	// runs under w.mu and appendRecord refuses once closed is set.
	err := walSyncFile(f, w.opts.NoSync)
	if cerr := f.Close(); err == nil {
		err = cerr
	}

	c.mu.Lock()
	c.leading = false
	if err == nil {
		if seq > c.synced {
			c.synced = seq
		}
	} else {
		c.err = err
		if seq > c.failed {
			c.failed = seq
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}

// RegionLog is a region-scoped handle on a shared WAL, implementing
// kv.GroupWAL: appends tag records with the region name, Truncate
// raises only this region's flushed high-water mark (segments are
// reclaimed when every region's mark passes them), and replay filters
// to this region's records.
type RegionLog struct {
	w    *WAL
	name string
}

// Owner returns the shared WAL this handle appends to; the hosting
// layer uses it to detect a store still wired to another server's log
// after a region move.
func (h *RegionLog) Owner() *WAL { return h.w }

// Name returns the region name the handle scopes to.
func (h *RegionLog) Name() string { return h.name }

// Append implements kv.WAL: append and wait for durability.
func (h *RegionLog) Append(e kv.Entry) error {
	commit, err := h.w.appendRecord(h.name, e, false)
	if err != nil {
		return err
	}
	return commit()
}

// AppendBuffered implements kv.GroupWAL.
func (h *RegionLog) AppendBuffered(e kv.Entry) (func() error, error) {
	return h.w.appendRecord(h.name, e, false)
}

// Truncate implements kv.WAL: this region's entries <= upTo are durable
// in a flushed SSTable.
func (h *RegionLog) Truncate(upTo uint64) { h.w.truncateRegion(h.name, upTo) }

// Entries implements kv.WAL for recovery; errors surface as an empty
// result (ReplayEntries reports them).
func (h *RegionLog) Entries() []kv.Entry {
	entries, err := h.ReplayEntries()
	if err != nil {
		return nil
	}
	return entries
}

// ReplayEntries is the recovery entry point kv.OpenStore prefers (see
// WAL.ReplayEntries).
func (h *RegionLog) ReplayEntries() ([]kv.Entry, error) {
	return h.w.replayRegion(h.name)
}

// SyncedTail returns this region's durable-but-unflushed records (see
// WAL.SyncedTail).
func (h *RegionLog) SyncedTail() []kv.Entry { return h.w.SyncedTail(h.name) }

var _ kv.GroupWAL = (*WAL)(nil)
var _ kv.GroupWAL = (*RegionLog)(nil)
