package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"testing"
	"time"

	"met/internal/kv"
)

// encodeFrameV1 hand-builds a legacy v1 frame (no region field) for the
// version-compat test; production code only ever writes v2.
func encodeFrameV1(e kv.Entry) []byte {
	payload := []byte{0}
	payload = binary.AppendUvarint(payload, e.Timestamp)
	payload = binary.AppendUvarint(payload, uint64(len(e.Key)))
	payload = append(payload, e.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(e.Value)))
	payload = append(payload, e.Value...)
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

func regionEntry(region string, i int) kv.Entry {
	return kv.Entry{
		Key:       fmt.Sprintf("%s-key-%04d", region, i),
		Value:     []byte(fmt.Sprintf("%s-val-%04d", region, i)),
		Timestamp: uint64(i),
	}
}

// Cross-region group commit: buffered appends from two regions, one
// commit, one fsync. This is the server-wide log's whole point — N
// hosted regions share a single fsync stream instead of one each.
func TestSharedWALCrossRegionGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	a, b := w.Region("A"), w.Region("B")
	var commits []func() error
	for i := 1; i <= 3; i++ {
		ca, err := a.AppendBuffered(regionEntry("A", i))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.AppendBuffered(regionEntry("B", i))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, ca, cb)
	}
	// Committing the newest record covers all six across both regions.
	if err := commits[len(commits)-1](); err != nil {
		t.Fatal(err)
	}
	if got := w.SyncRounds(); got != 1 {
		t.Fatalf("6 appends over 2 regions took %d sync rounds, want 1", got)
	}
	for i, c := range commits[:len(commits)-1] {
		if err := c(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if got := w.SyncRounds(); got != 1 {
		t.Fatalf("older commits triggered extra syncs: %d rounds", got)
	}
	// Replay through a region handle filters to that region's records.
	for name, h := range map[string]*RegionLog{"A": a, "B": b} {
		entries, err := h.ReplayEntries()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("region %s replayed %d records, want 3", name, len(entries))
		}
		for i, e := range entries {
			if want := fmt.Sprintf("%s-key-%04d", name, i+1); e.Key != want {
				t.Fatalf("region %s record %d: key %q, want %q", name, i, e.Key, want)
			}
		}
	}
}

// One region's flush must not free segments another region still needs:
// truncation is per-region high-water marks, segment deletion only when
// every region's mark passes the segment's maxima.
func TestSharedWALPerRegionTruncationPinning(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 64}) // rotate almost every record
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	a, b := w.Region("A"), w.Region("B")
	for i := 1; i <= 10; i++ {
		if err := a.Append(regionEntry("A", i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(regionEntry("B", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.SegmentCount()
	if before < 5 {
		t.Fatalf("expected many segments, got %d", before)
	}
	// A is fully flushed; every segment still holds B records, so none
	// may be deleted and B's records must all survive.
	a.Truncate(10)
	entries, err := b.ReplayEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("A's flush truncated B's records: %d left, want 10", len(entries))
	}
	// Once B flushes too, the shared prefix is reclaimed.
	b.Truncate(10)
	if after := w.SegmentCount(); after >= before {
		t.Fatalf("both regions flushed but no segments freed (%d -> %d)", before, after)
	}
	if got := len(w.Entries()); got != 0 {
		t.Fatalf("fully flushed log still replays %d records", got)
	}
}

// A drop marker durably voids a region's records: they stop pinning
// segments immediately, survive a restart as "absent", and a re-minted
// region under the same name starts clean instead of resurrecting them.
func TestSharedWALDropMarkerVoidsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Region("A"), w.Region("B")
	for i := 1; i <= 8; i++ {
		if err := a.Append(regionEntry("A", i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(regionEntry("B", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.SegmentCount()
	if err := w.Drop("A"); err != nil {
		t.Fatal(err)
	}
	// A never flushed, yet with its records voided B's flush alone must
	// reclaim the shared prefix.
	b.Truncate(8)
	if after := w.SegmentCount(); after >= before {
		t.Fatalf("dropped region still pins segments (%d -> %d)", before, after)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	a2 := w2.Region("A")
	if entries, err := a2.ReplayEntries(); err != nil || len(entries) != 0 {
		t.Fatalf("dropped region replayed %d records after restart (err=%v), want 0", len(entries), err)
	}
	// The re-minted region's own records replay normally.
	if err := a2.Append(regionEntry("A", 100)); err != nil {
		t.Fatal(err)
	}
	entries, err := a2.ReplayEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Timestamp != 100 {
		t.Fatalf("re-minted region replay: %+v, want just ts=100", entries)
	}
}

// Regression: Truncate used to hold the log mutex across the segment
// unlink and directory sync, so a slow filesystem stalled every
// concurrent append for the duration. The unlink must run off-lock.
func TestSharedWALTruncateUnlinksOffLock(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 20; i++ {
		if err := w.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Slow-filesystem shim: the first unlink parks until released.
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	prev := walRemoveFile
	walRemoveFile = func(path string) error {
		entered <- struct{}{}
		<-release
		return os.Remove(path)
	}
	defer func() { walRemoveFile = prev }()

	truncDone := make(chan struct{})
	go func() {
		w.Truncate(20)
		close(truncDone)
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("truncate never reached the unlink")
	}
	// The unlink is parked; an append (including its fsync) must still
	// complete. With the old under-lock deletion this deadlocks.
	appendDone := make(chan error, 1)
	go func() { appendDone <- w.Append(testEntry(21)) }()
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatalf("append during slow unlink: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append stalled behind a slow segment unlink")
	}
	close(release)
	<-truncDone
}

// Regression: a failed fsync used to count toward SyncRounds, skewing
// the writes-per-fsync metric with rounds that durably covered nothing.
// Only successful rounds count, and the pending-region notification is
// deferred to the next good round.
func TestSharedWALFailedFsyncNotCounted(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	notified := make(map[string]int)
	w, err := OpenWAL(dir, Options{OnSynced: func(regions map[string]int) {
		mu.Lock()
		for r, n := range regions {
			notified[r] += n
		}
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	h := w.Region("r1")

	injected := errors.New("injected fsync failure")
	prev := walSyncFile
	walSyncFile = func(f *os.File, noSync bool) error { return injected }
	failedErr := h.Append(regionEntry("r1", 1))
	walSyncFile = prev

	if !errors.Is(failedErr, injected) {
		t.Fatalf("append over failing fsync returned %v, want injected error", failedErr)
	}
	if got := w.SyncRounds(); got != 0 {
		t.Fatalf("failed fsync counted as a sync round: %d", got)
	}
	mu.Lock()
	n := len(notified)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("failed round notified regions %v", notified)
	}

	// The next good round covers both records and reports the region.
	if err := h.Append(regionEntry("r1", 2)); err != nil {
		t.Fatal(err)
	}
	if got := w.SyncRounds(); got != 1 {
		t.Fatalf("sync rounds after recovery = %d, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	// The failed round's record carries over: the good round reports
	// both records' counts, not just its own.
	if notified["r1"] != 2 {
		t.Fatalf("good round reported %v, want r1 credited with both records", notified)
	}
}

// SyncedTail hands the replicator exactly the durable-but-unflushed
// records: nothing before the fsync, evicted by flush truncation.
func TestSharedWALSyncedTailLifecycle(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{KeepTail: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	h := w.Region("r")
	commit, err := h.AppendBuffered(regionEntry("r", 1))
	if err != nil {
		t.Fatal(err)
	}
	if tail := h.SyncedTail(); len(tail) != 0 {
		t.Fatalf("unsynced record already in tail: %+v", tail)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	tail := h.SyncedTail()
	if len(tail) != 1 || tail[0].Timestamp != 1 {
		t.Fatalf("synced tail = %+v, want the one committed record", tail)
	}
	// Another region's flush must not evict it.
	w.Region("other").Truncate(99)
	if tail := h.SyncedTail(); len(tail) != 1 {
		t.Fatalf("foreign truncate evicted tail: %+v", tail)
	}
	// Our flush does.
	h.Truncate(1)
	if tail := h.SyncedTail(); len(tail) != 0 {
		t.Fatalf("flushed record still in tail: %+v", tail)
	}
}

// Regression: a reopened log must seed the tail from its surviving
// segments. KeepTail used to start empty after a restart, so the first
// reconciliation shipped an empty tail and deleted the followers' tail
// files — revoking coverage of records that exist only in the restarted
// server's memstores and its own log.
func TestSharedWALTailSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{KeepTail: true})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Region("r")
	for i := 1; i <= 4; i++ {
		if err := h.Append(regionEntry("r", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Drop("gone"); err != nil { // voided region: must not resurface
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, Options{KeepTail: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	h2 := w2.Region("r")
	tail := h2.SyncedTail()
	if len(tail) != 4 {
		t.Fatalf("reopened tail has %d records, want the 4 unflushed ones", len(tail))
	}
	if got := w2.SyncedTail("gone"); len(got) != 0 {
		t.Fatalf("dropped region resurfaced in reopened tail: %+v", got)
	}
	// A flush truncation still evicts recovered records.
	h2.Truncate(4)
	if tail := h2.SyncedTail(); len(tail) != 0 {
		t.Fatalf("flushed recovered records still in tail: %+v", tail)
	}
}

// Tail-file roundtrip plus the torn-frame contract ReadTailFile gives
// recovery: the intact prefix is returned and the tear is reported, so
// a follower that died mid-ship still contributes what it verified.
func TestTailFileRoundtripAndTornFrame(t *testing.T) {
	dir := t.TempDir()
	path := TailFilePath(dir)
	if entries, torn, err := ReadTailFile(path); err != nil || torn || len(entries) != 0 {
		t.Fatalf("missing tail file: %d entries, torn=%v, err=%v; want empty clean", len(entries), torn, err)
	}
	var want []kv.Entry
	for i := 1; i <= 5; i++ {
		want = append(want, regionEntry("r", i))
	}
	if _, err := WriteTailFile(path, want, false); err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadTailFile(path)
	if err != nil || torn {
		t.Fatalf("clean tail read: torn=%v, err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("roundtrip lost records: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) || got[i].Timestamp != want[i].Timestamp {
			t.Fatalf("record %d mangled: %+v != %+v", i, got[i], want[i])
		}
	}
	// Torn final frame: claims 200 payload bytes, has 1.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, torn, err = ReadTailFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn frame not reported")
	}
	if len(got) != len(want) {
		t.Fatalf("torn read returned %d records, want the %d intact ones", len(got), len(want))
	}
	// An empty ship removes the file (the tail was flushed away).
	if _, err := WriteTailFile(path, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("empty tail write left the file behind: %v", err)
	}
}

// Legacy v1 segments (single-store logs from before the shared-WAL
// format) still replay: the version byte selects the old payload
// layout without a region field.
func TestSharedWALReadsV1Segments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seg := activeSegment(t, dir)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the sealed segment as a v1 log by hand: v1 header, then
	// v1 frames (flags|ts|klen|key|vlen|value — no region field).
	buf := append([]byte(walMagic), walVersionV1)
	for i := 1; i <= 3; i++ {
		buf = append(buf, encodeFrameV1(testEntry(i))...)
	}
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	entries, report, err := w2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if report.Torn || len(entries) != 3 {
		t.Fatalf("v1 replay: %d entries, torn=%v; want 3 clean", len(entries), report.Torn)
	}
	for i, e := range entries {
		if e.Timestamp != uint64(i+1) || e.Key != fmt.Sprintf("key-%04d", i+1) {
			t.Fatalf("v1 record %d mangled: %+v", i, e)
		}
	}
}

// Regression: Close used to publish closed and drop w.mu before its
// final fsync, so a racing commit leader hit syncActive's closed
// fast-path and acknowledged records as durable inside the pre-fsync
// window — and when that fsync then failed, the already-credited synced
// watermark masked the error from waiters. Close now settles the final
// fsync through the committer leader slot, so a failed final fsync must
// reach every buffered-commit waiter.
func TestSharedWALCloseFailedFsyncFailsWaiters(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Region("r")
	commit, err := h.AppendBuffered(regionEntry("r", 1))
	if err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected close fsync failure")
	prev := walSyncFile
	walSyncFile = func(f *os.File, noSync bool) error { return injected }
	closeErr := w.Close()
	walSyncFile = prev

	if !errors.Is(closeErr, injected) {
		t.Fatalf("Close over failing fsync returned %v, want injected error", closeErr)
	}
	if err := commit(); !errors.Is(err, injected) {
		t.Fatalf("commit after failed Close fsync returned %v, want injected error — a nil ack here claims durability no fsync provided", err)
	}
}

// Close must wait for an in-flight commit round to settle before it
// fences the log: the round's acknowledgement then rests on its own
// fsync having completed, never on a closed fast-path assuming Close
// already ran one.
func TestSharedWALCloseWaitsForInflightCommitRound(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Region("r")

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	prev := walSyncFile
	walSyncFile = func(f *os.File, noSync bool) error {
		once.Do(func() { entered <- struct{}{} })
		<-release
		return syncFile(f, noSync)
	}
	defer func() { walSyncFile = prev }()

	appendDone := make(chan error, 1)
	go func() { appendDone <- h.Append(regionEntry("r", 1)) }()
	<-entered // the commit leader is mid-fsync

	closeDone := make(chan error, 1)
	go func() { closeDone <- w.Close() }()
	select {
	case err := <-closeDone:
		t.Fatalf("Close completed (%v) while a commit round was mid-fsync", err)
	case <-time.After(100 * time.Millisecond):
		// Close is correctly parked behind the leader slot.
	}

	close(release)
	if err := <-appendDone; err != nil {
		t.Fatalf("append racing Close: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close after commit round settled: %v", err)
	}
}
