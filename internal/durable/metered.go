package durable

import (
	"io"
	"sync/atomic"
)

// IOStats snapshots a backend's physical I/O counters, so embedders can
// observe real disk traffic (and compute write amplification) without
// instrumenting the filesystem.
type IOStats struct {
	// BytesWritten is everything written through the backend: WAL
	// frames plus SSTable builds (flushes and compactions).
	BytesWritten int64
	// BytesRead is data-block bytes physically read (cache misses and
	// compaction reads).
	BytesRead int64
	// WALBytes is the WAL-append share of BytesWritten.
	WALBytes int64
}

// meteredWriter wraps the backend's file writes with I/O accounting and
// optional arbitration against a shared budget:
//
//   - count accumulates physical bytes for IOStats;
//   - account (never blocks) charges foreground bytes to the shared
//     compaction/serving budget so background work yields to them;
//   - throttle (may block) rate-limits the write before it happens —
//     the background side of the same budget.
//
// The WAL append path uses count+account (a client is waiting on the
// fsync, so it must never block on compaction's budget); SSTable builds
// use count and leave arbitration to the engine, which knows whether
// the build is a foreground flush or a background compaction.
type meteredWriter struct {
	w        io.Writer
	count    *atomic.Int64
	account  func(bytes int)
	throttle func(bytes int)
}

func (m meteredWriter) Write(p []byte) (int, error) {
	if m.throttle != nil {
		m.throttle(len(p))
	}
	n, err := m.w.Write(p)
	if n > 0 {
		if m.count != nil {
			m.count.Add(int64(n))
		}
		if m.account != nil {
			m.account(n)
		}
	}
	return n, err
}
