package durable

import (
	"fmt"
	"testing"
)

// Regression for the failover loss-accounting clock: a major compaction
// that drops every tombstone must not regress the store's recorded max
// timestamp. The merged SSTable records at least its inputs' maximum
// (see Backend.CreateWithMaxTS), so a reopen reseeds the clock where it
// left off — otherwise loss accounting (dead clock − replica clock)
// would overcount and new writes could re-mint used timestamps.
func TestMajorCompactionPreservesClockAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	const n = 60
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Delete(fmt.Sprintf("key-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.MaxTimestamp()
	if before < 2*n {
		t.Fatalf("clock %d after %d mutations, want at least %d", before, 2*n, 2*n)
	}
	// The major compaction drops every tombstone; without the floor the
	// merged file would record a stale (even zero) max timestamp.
	if err := s.Compact(true); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxTimestamp(); got < before {
		t.Fatalf("clock regressed in-process: %d < %d", got, before)
	}
	s.Close()
	s2 := openDurableStore(t, dir)
	defer s2.Close()
	if got := s2.MaxTimestamp(); got < before {
		t.Fatalf("clock regressed across reopen: %d < %d", got, before)
	}
}
