// Package durable is the on-disk storage engine behind met/internal/kv:
// a segmented, group-committed write-ahead log plus SSTable block files,
// packaged as a kv.StorageBackend so a Region's store can be flipped
// between the in-memory simulation backend and real disk I/O with one
// configuration knob. Every acknowledged write survives a hard process
// kill: Put is acknowledged only after its WAL record is fsynced, flushes
// write SSTables with write-to-temp/fsync/rename, and recovery replays
// the log into the memstore on open, dropping torn tails at the first
// bad checksum.
//
// # WAL format
//
// One WAL serves a whole RegionServer: every hosted region appends
// through a region-scoped handle (WAL.Region), so N regions share a
// single fsync stream — HBase's one-log-per-server design. The log is a
// sequence of segment files, wal-<seq>.log, appended in order and only
// ever deleted whole (Truncate never rewrites a segment in place):
//
//	segment := magic "METW" (4) | version (1) | frame*
//	frame   := length (4, LE)   | crc32c (4, LE, over payload) | payload
//	payload := flags (1) | timestamp (uvarint) |
//	           regionLen (uvarint) | region |          (version 2)
//	           keyLen (uvarint) | key | valLen (uvarint) | value
//
// flags bit 0 marks a tombstone; bit 1 marks a region-drop record that
// voids every earlier record of the same region (written when a
// region's store is discarded, so a re-minted region name cannot
// resurrect a predecessor's records). Version 1 segments — the old
// one-log-per-store format — carry no region field and read back with
// region "". crc32c is the Castagnoli polynomial. A reader accepts a
// frame only if the full header and payload are present and the
// checksum matches; anything else is a torn tail (a crash mid-write)
// and ends recovery at the last good record.
//
// Each segment tracks the newest timestamp per region it holds; a
// segment is reclaimed only once *every* region's flushed high-water
// mark passes its maximum there (or the region was dropped), and
// deletable segments are taken strictly oldest-first so a drop marker
// always outlives the records it voids. Per-region replay filters the
// shared stream back to one store's records, applying drop markers in
// order.
//
// Appends reach the operating system immediately but are acknowledged
// lazily: AppendBuffered returns a commit function that blocks until an
// fsync covers the record. The first committer becomes the sync leader
// and fsyncs once for every record buffered so far — across all regions
// (group commit), so N concurrent writers pay ~1 fsync, not N. With
// KeepTail enabled the log also retains its durable-but-unflushed
// records in memory (SyncedTail), the frame stream tail-streaming ships
// to follower replicas.
//
// # SSTable format
//
// One immutable sorted file per memstore flush or compaction,
// sst-<id>.sst, read back through the kv engine's block cache:
//
//	sstable := magic "METS" (4) | version (1)
//	           dataBlock* | index | bloom | props
//	           footer (48 bytes)
//	dataBlock := kv block payload | crc32c (4, LE)
//	index   := blockCount (uvarint), then per block:
//	           firstKeyLen (uvarint) | firstKey |
//	           offset (uvarint) | length (uvarint)
//	bloom   := k (1) | bit array
//	props   := entryCount | maxTimestamp |
//	           minKeyLen | minKey | maxKeyLen | maxKey   (uvarints)
//	footer  := indexOff | indexLen | bloomOff | bloomLen |
//	           propsOff | propsLen  (6 × u32, LE)
//	           | reserved (16) | magic "METSFOOT" (8)
//
// Data blocks use the kv wire encoding (kv.EncodeBlock), so the packing
// is bit-identical to the in-memory backend's blocks. The index and the
// bloom filter are loaded into memory at open; a Get that the bloom
// filter rejects performs zero data-block reads.
//
// # Static analysis & invariants
//
// The durability contract is machine-checked: cmd/metlint (an in-repo
// go/analysis-style suite, run by CI as `go vet -vettool`) fails the
// build on violations. The invariants it enforces here:
//
//   - syncerr: every error from an fsync-bearing call — WAL.Append,
//     WAL.Close, RegionLog.Append/Drop, (*os.File).Sync, syncFile,
//     syncDir — is handled or explicitly allowlisted with a reason. A
//     dropped sync error is an acknowledged write that may not exist
//     after a crash, the one lie this package must never tell.
//   - locksafe: no fsync, file I/O or channel operation while WAL.mu
//     is held. Group commit depends on this: appends serialize briefly
//     under the lock, but the fsync every committer waits on runs
//     outside it, so N writers share one sync instead of queueing N.
//   - crashpoint: in the hbase layer driving this package, every
//     crash-injection label (Master.crash, e.g. "snapshot.committed")
//     is unique and exercised by at least one test — a dangling crash
//     point is recovery code that nothing proves.
//
// Both on-disk parsers above (WAL frames, SSTable footer/index/blocks)
// are additionally fuzzed in CI with corpora seeded from real encoder
// output; they must reject any corruption with an error, never a panic
// or an attacker-sized allocation.
//
// The analyzers are intraprocedural (one function body at a time);
// helpers that lock on behalf of a caller are out of scope by design,
// so the package keeps each critical section lexically inside the
// function that takes the lock. Exceptions carry an inline
// `//lint:allow <analyzer> <reason>` with a mandatory reason.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Common errors.
var (
	// ErrClosed is returned when appending to a closed WAL or backend.
	ErrClosed = errors.New("durable: closed")
	// ErrCorrupt is returned when a file fails its integrity checks in a
	// position that cannot be a torn tail.
	ErrCorrupt = errors.New("durable: corrupt data")
)

// Options tune the durable engine. The zero value is ready for use.
type Options struct {
	// SegmentBytes is the WAL segment rotation threshold. A smaller
	// value makes Truncate (whole-segment deletion) reclaim space
	// sooner at the cost of more files. Defaults to 4 MiB.
	SegmentBytes int64
	// BitsPerKey is the bloom filter density for SSTables. 10 bits/key
	// gives ~1% false positives. Defaults to 10; negative disables the
	// filter.
	BitsPerKey int
	// NoSync skips every fsync. Only for tests and benchmarks that
	// measure non-durability costs; a crash can lose acknowledged
	// writes.
	NoSync bool
	// Account, when non-nil, receives the byte count of every
	// foreground serving-path write the backend performs (WAL frames —
	// bytes a client is actively waiting on). It feeds the I/O budget
	// shared with background compaction, so compaction yields to
	// serving; it must never block. Flush/compaction SSTable builds are
	// accounted by the engine, which knows which of the two classes a
	// build belongs to. Swappable on a live log via WAL.SetAccount —
	// a moved region's WAL bytes must charge its new host's budget.
	Account func(bytes int)
	// ExternalWAL opens the Backend without a private log: the store's
	// records live in a shared server-wide WAL instead (the engine is
	// handed a region-scoped handle via kv.Config.WAL). Backend.WAL and
	// Backend.Log return nil.
	ExternalWAL bool
	// KeepTail retains durable-but-unflushed records in memory so
	// WAL.SyncedTail can hand the replicator a tail frame stream to ship
	// to followers. Memory cost is bounded by the unflushed working set
	// (the same records sit in the memstores).
	KeepTail bool
	// OnSynced, when non-nil, is called after each successful
	// commit-path fsync with the regions whose records gained coverage
	// and how many records each contributed since the previous good
	// round — the replicator's cue that fresh tail is shippable, and the
	// record counts its bounded-lag floor accumulates. Called without
	// internal locks held; it must not block for long (it runs on a
	// committing writer's goroutine). Rotation-covered records are
	// reported with the next fsync, so a quiesce must reconcile
	// explicitly rather than wait for a callback.
	OnSynced func(regions map[string]int)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BitsPerKey == 0 {
		o.BitsPerKey = 10
	}
	return o
}

// castagnoli is the CRC32C table shared by the WAL and SSTable formats.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// syncFile fsyncs f unless disabled.
func syncFile(f *os.File, noSync bool) error {
	if noSync {
		return nil
	}
	return f.Sync()
}

// syncDir fsyncs a directory so renames and deletes within it are
// durable.
func syncDir(dir string, noSync bool) error {
	if noSync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
