package durable

import (
	"errors"
	"os"
	"path/filepath"

	"met/internal/kv"
)

// TailFileName is the shipped WAL-tail file the replicator maintains in
// each follower's replica directory, next to the copied SSTables. It
// holds the primary's durable-but-unflushed records for that region in
// the standard segment format; Master.RecoverServer replays it over the
// replica SSTables so a failover loses at most the unsynced in-flight
// window instead of the whole memstore.
const TailFileName = "wal-tail.log"

// TailFilePath returns the tail file's path inside a replica directory.
func TailFilePath(replicaDir string) string {
	return filepath.Join(replicaDir, TailFileName)
}

// WriteTailFile atomically replaces path with a tail file holding
// entries (write to temp, fsync, rename, fsync dir). An empty entries
// slice removes the file — the tail was flushed into shipped SSTables.
// It returns the physical bytes written (for I/O budgeting).
func WriteTailFile(path string, entries []kv.Entry, noSync bool) (int64, error) {
	if len(entries) == 0 {
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				return 0, nil
			}
			return 0, err
		}
		return 0, syncDir(filepath.Dir(path), noSync)
	}
	buf := append([]byte(walMagic), walVersion)
	for _, e := range entries {
		buf = append(buf, encodeRecord("", e, false)...)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := syncFile(f, noSync); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(filepath.Dir(path), noSync); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// ReadTailFile reads a shipped tail file back. A missing file is an
// empty tail. A torn or corrupt frame — the file was mid-ship when the
// follower's host died — ends the read at the last good record and
// reports torn; everything before it is intact (CRC-verified) and safe
// to replay. Only real I/O errors are returned.
func ReadTailFile(path string) (entries []kv.Entry, torn bool, err error) {
	err = readSegment(path, func(r walRecord) {
		if !r.drop {
			entries = append(entries, r.e)
		}
	})
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		if errors.Is(err, ErrCorrupt) {
			return entries, true, nil
		}
		return nil, false, err
	}
	return entries, false, nil
}

// SSTableMaxTimestamp reads the max-timestamp property of the SSTable
// at path without loading its data blocks. Recovery uses it to rank
// candidate replica sources by how much of the dead region's history
// their files cover.
func SSTableMaxTimestamp(path string) (uint64, error) {
	t, err := openSSTable(path)
	if err != nil {
		return 0, err
	}
	defer t.Close()
	return t.meta.MaxTS, nil
}
