package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"met/internal/kv"
)

// openDurableStore opens a kv.Store over dir with small thresholds so
// tests exercise flushes and rotation quickly.
func openDurableStore(t *testing.T, dir string) *kv.Store {
	t.Helper()
	s, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: 4 << 10,
		BlockBytes:         1 << 10,
		OpenBackend:        Opener(dir, Options{SegmentBytes: 8 << 10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableStorePutGetScanFlush(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	defer s.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumFiles() == 0 {
		t.Fatal("no flushes despite small memstore threshold")
	}
	ssts, _ := filepath.Glob(filepath.Join(dir, "sst-*.sst"))
	if len(ssts) != s.NumFiles() {
		t.Fatalf("on-disk files %d != engine files %d", len(ssts), s.NumFiles())
	}
	for i := 0; i < n; i += 17 {
		v, err := s.Get(fmt.Sprintf("key-%04d", i))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %d: %q, %v", i, v, err)
		}
	}
	entries, err := s.Scan("key-0100", "key-0110", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("scan returned %d entries, want 10", len(entries))
	}
}

// TestCrashRecoveryAcknowledgedWrites is the acceptance scenario: N
// acknowledged Puts, a hard kill (the store is abandoned without Close
// and the log grows a torn final record), and a reopen from the on-disk
// state must serve all N.
func TestCrashRecoveryAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumFiles() == 0 {
		t.Fatal("test wants a mix of flushed files and WAL tail")
	}
	// Hard kill: no Close, no final fsync. Then tear the log's tail the
	// way a crash mid-write does.
	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 0, 0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openDurableStore(t, dir)
	defer s2.Close()
	for i := 0; i < n; i++ {
		v, err := s2.Get(fmt.Sprintf("key-%04d", i))
		if err != nil {
			t.Fatalf("acknowledged key-%04d lost after crash: %v", i, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%04d corrupted: %q", i, v)
		}
	}
	if s2.Recovered() == 0 {
		t.Fatal("expected WAL entries to replay")
	}
}

func TestReopenAfterCleanCloseContinuesTimestamps(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := openDurableStore(t, dir)
	defer s2.Close()
	// Overwrites after reopen must shadow recovered versions — the
	// logical clock has to resume past every recovered timestamp.
	if err := s2.Put("k00", []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get("k00")
	if err != nil || string(v) != "new" {
		t.Fatalf("overwrite after reopen lost: %q, %v", v, err)
	}
}

func TestDeleteSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	if err := s.Put("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kept", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openDurableStore(t, dir)
	defer s2.Close()
	if _, err := s2.Get("gone"); err != kv.ErrNotFound {
		t.Fatalf("tombstone lost across reopen: %v", err)
	}
	if v, err := s2.Get("kept"); err != nil || string(v) != "y" {
		t.Fatalf("kept key: %q, %v", v, err)
	}
}

func TestCompactionRewritesDisk(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	defer s.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumFiles() < 2 {
		t.Fatalf("files = %d, want several before compaction", s.NumFiles())
	}
	if err := s.Compact(true); err != nil {
		t.Fatal(err)
	}
	ssts, _ := filepath.Glob(filepath.Join(dir, "sst-*.sst"))
	if len(ssts) != 1 {
		t.Fatalf("on-disk sstables after major compaction = %d, want 1", len(ssts))
	}
	for i := 0; i < 100; i++ {
		v, err := s.Get(fmt.Sprintf("k%03d", i))
		if err != nil || string(v) != "r2" {
			t.Fatalf("k%03d after compaction: %q, %v", i, v, err)
		}
	}
}

// TestCompactionReleasesRetiredReaders pins the fd-reclamation path:
// once a compaction retires SSTables and no scan is in flight, their
// readers (fd + in-memory index/bloom) are released, not held until the
// backend closes.
func TestCompactionReleasesRetiredReaders(t *testing.T) {
	dir := t.TempDir()
	backend, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: 64 << 20,
		BlockBytes:         1 << 10,
		OpenBackend:        func() (kv.StorageBackend, error) { return backend, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var oldIDs []uint64
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if err := s.Put(fmt.Sprintf("k%03d", i), []byte("value")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, fi := range s.FileInfos() {
		oldIDs = append(oldIDs, fi.ID)
	}
	if err := s.Compact(true); err != nil {
		t.Fatal(err)
	}
	for _, id := range oldIDs {
		if backend.Reader(id) != nil {
			t.Fatalf("retired file %d still holds an open reader", id)
		}
	}
	infos := s.FileInfos()
	if len(infos) != 1 || backend.Reader(infos[0].ID) == nil {
		t.Fatalf("compacted output reader missing: %v", infos)
	}
}

func TestWALTruncatedAfterFlush(t *testing.T) {
	dir := t.TempDir()
	backend, err := Open(dir, Options{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: 64 << 20, // manual flushes only
		BlockBytes:         1 << 10,
		OpenBackend:        func() (kv.StorageBackend, error) { return backend, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte("some value payload")); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(backend.Log().Entries()); n != 200 {
		t.Fatalf("wal holds %d records before flush", n)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(backend.Log().Entries()); n != 0 {
		t.Fatalf("wal holds %d records after flush, want 0 (whole-segment truncation)", n)
	}
}

func TestConcurrentDurablePutsAllRecovered(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-k%03d", g, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Hard kill (no Close), reopen, everything acknowledged is there.
	s2 := openDurableStore(t, dir)
	defer s2.Close()
	for g := 0; g < workers; g++ {
		for i := 0; i < per; i++ {
			key := fmt.Sprintf("w%d-k%03d", g, i)
			v, err := s2.Get(key)
			if err != nil || string(v) != key {
				t.Fatalf("%s lost after concurrent writes + crash: %q, %v", key, v, err)
			}
		}
	}
}

func TestBackendLoadSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := openDurableStore(t, dir)
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// A crashed flush leaves a temp file; reopen must ignore and remove it.
	tmp := filepath.Join(dir, "sst-9999.sst.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openDurableStore(t, dir)
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover temp file not cleaned up")
	}
	if v, err := s2.Get("k000"); err != nil || string(v) != "value" {
		t.Fatalf("data lost: %q, %v", v, err)
	}
}

func TestDestroyRemovesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "region")
	backend, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Create(1, sortedEntries(10), 1<<10); err != nil {
		t.Fatal(err)
	}
	if err := backend.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("destroy left the directory behind")
	}
}
