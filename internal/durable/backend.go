package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"met/internal/kv"
)

// Backend implements kv.StorageBackend over one directory: WAL segments
// (wal-*.log) and SSTables (sst-*.sst) side by side, one directory per
// store (per region). Opening the directory again after a crash — or
// after a clean close — recovers exactly the acknowledged writes: the
// SSTables hold everything flushed, the WAL replay holds everything
// since the last flush.
type Backend struct {
	dir  string
	opts Options
	wal  *WAL

	mu      sync.Mutex
	readers map[uint64]*sstable // every open reader, including unlinked ones
	closed  bool

	// Physical I/O accounting (see IOStats); WAL bytes are tracked by
	// the WAL itself.
	sstBytesWritten atomic.Int64
	sstBytesRead    atomic.Int64
}

// Open creates (or reopens) a durable backend rooted at dir. With
// Options.ExternalWAL the directory holds SSTables only — the store's
// log records live in a shared server-wide WAL owned by the caller.
func Open(dir string, opts Options) (*Backend, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &Backend{dir: dir, opts: opts, readers: make(map[uint64]*sstable)}
	if !opts.ExternalWAL {
		wal, err := OpenWAL(dir, opts)
		if err != nil {
			return nil, err
		}
		b.wal = wal
	}
	return b, nil
}

// Opener returns a factory suitable for kv.Config.OpenBackend.
func Opener(dir string, opts Options) func() (kv.StorageBackend, error) {
	return func() (kv.StorageBackend, error) { return Open(dir, opts) }
}

// Dir returns the backend's directory.
func (b *Backend) Dir() string { return b.dir }

// WAL implements kv.StorageBackend; nil under Options.ExternalWAL (the
// engine is wired to a shared-log handle instead).
func (b *Backend) WAL() kv.WAL {
	if b.wal == nil {
		return nil
	}
	return b.wal
}

// Log exposes the concrete WAL (tests, tooling); nil under
// Options.ExternalWAL.
func (b *Backend) Log() *WAL { return b.wal }

func (b *Backend) sstPath(id uint64) string {
	return filepath.Join(b.dir, SSTableFileName(id))
}

// SSTableFileName is the canonical on-disk name for SSTable id; the
// replication and snapshot subsystems reuse it so a directory seeded
// with copied files is indistinguishable from one the backend wrote
// itself (Load enumerates by this pattern).
func SSTableFileName(id uint64) string {
	return fmt.Sprintf("sst-%016d.sst", id)
}

// ParseSSTableFileName inverts SSTableFileName; ok is false for names
// that are not SSTables (temp files, WAL segments, foreign debris).
func ParseSSTableFileName(name string) (id uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "sst-%d.sst", &id); err != nil {
		return 0, false
	}
	return id, true
}

// FilePath implements kv.FileExporter: the stable on-disk path of
// SSTable id, for byte-level shipping to replicas and snapshots.
func (b *Backend) FilePath(id uint64) string { return b.sstPath(id) }

// Create implements kv.StorageBackend: entries become an SSTable that is
// durable (fsynced and atomically visible) before Create returns, which
// is what lets the engine truncate the WAL right after a flush.
func (b *Backend) Create(id uint64, entries []kv.Entry, blockBytes int) (*kv.StoreFile, error) {
	return b.CreateWithMaxTS(id, entries, blockBytes, 0)
}

// CreateWithMaxTS implements kv.TimestampFloorCreator: like Create, but
// the file's recorded max timestamp is at least maxTS. Compactions pass
// the maximum of their inputs so that dropping a newest-version entry
// (a shadowed put, an elided tombstone) cannot regress the file's
// timestamp — a store seeded from the file (snapshot restore, replica
// failover) resumes its clock from that property, and a regressed clock
// makes failover loss accounting overcount.
func (b *Backend) CreateWithMaxTS(id uint64, entries []kv.Entry, blockBytes int, maxTS uint64) (*kv.StoreFile, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.mu.Unlock()
	path := b.sstPath(id)
	if _, err := writeSSTable(path, entries, blockBytes, b.opts, &b.sstBytesWritten, maxTS); err != nil {
		return nil, fmt.Errorf("durable: write sstable %d: %w", id, err)
	}
	if err := syncDir(b.dir, b.opts.NoSync); err != nil {
		return nil, err
	}
	return b.openFile(id, path)
}

// openFile opens a reader for id and wraps it as an engine store file.
func (b *Backend) openFile(id uint64, path string) (*kv.StoreFile, error) {
	t, err := openSSTable(path)
	if err != nil {
		return nil, fmt.Errorf("durable: open sstable %d: %w", id, err)
	}
	t.readBytes = &b.sstBytesRead
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		t.Close()
		return nil, ErrClosed
	}
	b.readers[id] = t
	b.mu.Unlock()
	return kv.NewStoreFile(id, t.Meta(), t), nil
}

// Remove implements kv.StorageBackend: the file is unlinked and its
// reader closed, releasing the fd and the in-memory index/bloom. The
// engine guarantees no in-flight read still references the file (it
// defers removal until lock-free scans drain), so closing here cannot
// break a reader.
func (b *Backend) Remove(id uint64) error {
	b.mu.Lock()
	t := b.readers[id]
	delete(b.readers, id)
	b.mu.Unlock()
	if t != nil {
		_ = t.Close()
	}
	if err := os.Remove(b.sstPath(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(b.dir, b.opts.NoSync)
}

// Load implements kv.StorageBackend: enumerate the surviving SSTables.
// A leftover .tmp file is an unfinished (crashed) flush whose WAL
// records still exist; it is deleted.
func (b *Backend) Load(blockBytes int) ([]*kv.StoreFile, error) {
	tmps, _ := filepath.Glob(filepath.Join(b.dir, "*.tmp"))
	for _, p := range tmps {
		_ = os.Remove(p)
	}
	paths, err := filepath.Glob(filepath.Join(b.dir, "sst-*.sst"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var files []*kv.StoreFile
	for _, p := range paths {
		id, ok := ParseSSTableFileName(filepath.Base(p))
		if !ok {
			continue
		}
		f, err := b.openFile(id, p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// IOStats snapshots the backend's physical I/O counters. Under
// Options.ExternalWAL the log's bytes are accounted by its owner.
func (b *Backend) IOStats() IOStats {
	var wal int64
	if b.wal != nil {
		wal = b.wal.BytesAppended()
	}
	return IOStats{
		BytesWritten: b.sstBytesWritten.Load() + wal,
		BytesRead:    b.sstBytesRead.Load(),
		WALBytes:     wal,
	}
}

// Reader returns the open reader for file id (tests).
func (b *Backend) Reader(id uint64) *sstable {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readers[id]
}

// Close implements kv.StorageBackend: the WAL is fsynced and closed, and
// every SSTable handle is released (reclaiming space for unlinked
// files).
func (b *Backend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	readers := make([]*sstable, 0, len(b.readers))
	for _, t := range b.readers {
		readers = append(readers, t)
	}
	b.mu.Unlock()
	var err error
	if b.wal != nil {
		err = b.wal.Close()
	}
	for _, t := range readers {
		if cerr := t.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Destroy closes the backend and deletes its directory; a region split
// uses it to reclaim the parent's store after the daughters take over.
func (b *Backend) Destroy() error {
	err := b.Close()
	if rerr := os.RemoveAll(b.dir); err == nil {
		err = rerr
	}
	return err
}

var _ kv.StorageBackend = (*Backend)(nil)
