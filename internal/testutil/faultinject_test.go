package testutil

import (
	"errors"
	"testing"
)

func TestHookCrashesOnceAtArmedPoint(t *testing.T) {
	inj := NewInjector()
	hook := inj.Hook()
	hook("a") // unarmed: records only
	ran := false
	CrashAt(t, inj, "a", func() {
		hook("b")
		hook("a")
		ran = true
	})
	if ran {
		t.Fatal("operation continued past an armed crash point")
	}
	hook("a") // disarmed after firing
	if got := inj.Hits("a"); got != 3 {
		t.Fatalf("point a hit %d times, want 3", got)
	}
}

func TestErrInjectionCountsDown(t *testing.T) {
	inj := NewInjector()
	boom := errors.New("boom")
	inj.FailOp("io", boom, 2)
	if err := inj.Err("io"); !errors.Is(err, boom) {
		t.Fatalf("first call: %v", err)
	}
	if err := inj.Err("io"); !errors.Is(err, boom) {
		t.Fatalf("second call: %v", err)
	}
	if err := inj.Err("io"); err != nil {
		t.Fatalf("exhausted arm still fired: %v", err)
	}
	inj.FailOp("forever", boom, -1)
	for i := 0; i < 5; i++ {
		if err := inj.Err("forever"); !errors.Is(err, boom) {
			t.Fatalf("unlimited arm stopped at %d: %v", i, err)
		}
	}
	inj.FailOp("forever", nil, 0)
	if err := inj.Err("forever"); err != nil {
		t.Fatalf("disarmed point still fired: %v", err)
	}
}

func TestCrashAtRepanicsForeignPanics(t *testing.T) {
	inj := NewInjector()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	CrashAt(t, inj, "never-hit", func() { panic("unrelated") })
}
