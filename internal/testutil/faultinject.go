// Package testutil is the shared fault-injection harness for crash and
// I/O-error testing across the storage stack (kv, durable, hbase). It
// generalizes the labeled crash-hook pattern the META catalog tests
// introduced: production code exposes a `func(point string)` hook fired
// at named points inside mutating operations; tests arm an Injector at
// one point and assert that a "process kill" there leaves recoverable
// on-disk state.
//
// Two fault classes are supported:
//
//   - Crashes: Arm(point) makes the injector's Hook panic with a
//     Crash sentinel the next time the point is hit — simulating a hard
//     kill between two specific writes. CrashAt drives an operation to
//     the point and requires that it died there.
//   - I/O errors: FailOp(point, err) makes Err(point) return err
//     (once, or until cleared with n<0), for code paths — like the
//     FlakyBackend storage wrapper — that consult the injector instead
//     of panicking, so error propagation (not just crash recovery) is
//     testable.
//
// The injector is safe for concurrent use; hit counts are recorded for
// every labeled point whether or not a fault is armed, so tests can
// also assert that an operation actually passed through a point.
package testutil

import (
	"fmt"
	"sync"
	"testing"

	"met/internal/kv"
)

// Crash is the sentinel an armed Hook panics with; CrashAt recovers
// exactly this type and re-panics anything else.
type Crash struct{ Point string }

func (c Crash) String() string { return fmt.Sprintf("injected crash at %q", c.Point) }

// Injector is a labeled fault registry.
type Injector struct {
	mu      sync.Mutex
	crashes map[string]bool
	errs    map[string]errArm
	hits    map[string]int
}

type errArm struct {
	err error
	n   int // remaining firings; <0 = unlimited
}

// NewInjector returns an empty injector.
func NewInjector() *Injector {
	return &Injector{
		crashes: make(map[string]bool),
		errs:    make(map[string]errArm),
		hits:    make(map[string]int),
	}
}

// Hook returns the function to install as a production crash hook
// (e.g. hbase.Master's crashHook). Hitting an armed point panics with
// Crash{point}; unarmed points only record the hit.
func (in *Injector) Hook() func(point string) {
	return func(point string) {
		in.mu.Lock()
		in.hits[point]++
		armed := in.crashes[point]
		delete(in.crashes, point)
		in.mu.Unlock()
		if armed {
			panic(Crash{Point: point})
		}
	}
}

// Arm makes the next Hook hit at point crash.
func (in *Injector) Arm(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashes[point] = true
}

// FailOp makes Err(point) return err for the next n calls (n < 0 means
// until disarmed with FailOp(point, nil, 0)).
func (in *Injector) FailOp(point string, err error, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err == nil {
		delete(in.errs, point)
		return
	}
	in.errs[point] = errArm{err: err, n: n}
}

// Err reports the injected error for point (nil when unarmed) and
// records the hit.
func (in *Injector) Err(point string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[point]++
	arm, ok := in.errs[point]
	if !ok {
		return nil
	}
	if arm.n > 0 {
		arm.n--
		if arm.n == 0 {
			delete(in.errs, point)
		} else {
			in.errs[point] = arm
		}
	}
	return arm.err
}

// Hits returns how many times point was reached (Hook or Err).
func (in *Injector) Hits(point string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// CrashAt arms inj at point, runs op, and fails the test unless op
// actually died at that point. The simulated kill is a panic recovered
// here, so the caller's in-memory state after CrashAt is as garbage as
// a real kill would leave it — recover through the durable path
// (reopen, OpenCluster), not by reusing the crashed objects.
func CrashAt(t testing.TB, inj *Injector, point string, op func()) {
	t.Helper()
	inj.Arm(point)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if c, ok := r.(Crash); ok && c.Point == point {
					crashed = true
					return
				}
				panic(r)
			}
		}()
		op()
	}()
	if !crashed {
		t.Fatalf("operation never reached crash point %q", point)
	}
}

// FlakyBackend wraps a kv.StorageBackend, consulting an Injector before
// every operation so storage-layer I/O errors can be injected from
// tests at labeled points:
//
//	<prefix>.create  — flush/compaction SSTable builds
//	<prefix>.remove  — retired-file unlinks
//	<prefix>.load    — open-time enumeration
//	<prefix>.close   — backend shutdown
//
// It passes kv.FileExporter through when the inner backend supports it,
// so replication keeps working over a flaky store.
type FlakyBackend struct {
	Inner  kv.StorageBackend
	Inj    *Injector
	Prefix string
}

// Wrap returns a kv.Config.OpenBackend factory that wraps every backend
// the inner factory produces.
func Wrap(inner func() (kv.StorageBackend, error), inj *Injector, prefix string) func() (kv.StorageBackend, error) {
	return func() (kv.StorageBackend, error) {
		b, err := inner()
		if err != nil {
			return nil, err
		}
		return &FlakyBackend{Inner: b, Inj: inj, Prefix: prefix}, nil
	}
}

func (f *FlakyBackend) point(op string) string { return f.Prefix + "." + op }

// WAL implements kv.StorageBackend.
func (f *FlakyBackend) WAL() kv.WAL { return f.Inner.WAL() }

// Create implements kv.StorageBackend with create-point injection.
func (f *FlakyBackend) Create(id uint64, entries []kv.Entry, blockBytes int) (*kv.StoreFile, error) {
	if err := f.Inj.Err(f.point("create")); err != nil {
		return nil, err
	}
	return f.Inner.Create(id, entries, blockBytes)
}

// CreateWithMaxTS implements kv.TimestampFloorCreator when the inner
// backend does, sharing the create injection point; otherwise the floor
// is dropped and the engine falls back to its in-memory clamp.
func (f *FlakyBackend) CreateWithMaxTS(id uint64, entries []kv.Entry, blockBytes int, maxTS uint64) (*kv.StoreFile, error) {
	if err := f.Inj.Err(f.point("create")); err != nil {
		return nil, err
	}
	if fc, ok := f.Inner.(kv.TimestampFloorCreator); ok {
		return fc.CreateWithMaxTS(id, entries, blockBytes, maxTS)
	}
	return f.Inner.Create(id, entries, blockBytes)
}

// Remove implements kv.StorageBackend with remove-point injection.
func (f *FlakyBackend) Remove(id uint64) error {
	if err := f.Inj.Err(f.point("remove")); err != nil {
		return err
	}
	return f.Inner.Remove(id)
}

// Load implements kv.StorageBackend with load-point injection.
func (f *FlakyBackend) Load(blockBytes int) ([]*kv.StoreFile, error) {
	if err := f.Inj.Err(f.point("load")); err != nil {
		return nil, err
	}
	return f.Inner.Load(blockBytes)
}

// Close implements kv.StorageBackend with close-point injection.
func (f *FlakyBackend) Close() error {
	if err := f.Inj.Err(f.point("close")); err != nil {
		return err
	}
	return f.Inner.Close()
}

// FilePath implements kv.FileExporter when the inner backend does.
func (f *FlakyBackend) FilePath(id uint64) string {
	if exp, ok := f.Inner.(kv.FileExporter); ok {
		return exp.FilePath(id)
	}
	return ""
}

var _ kv.StorageBackend = (*FlakyBackend)(nil)
var _ kv.FileExporter = (*FlakyBackend)(nil)
