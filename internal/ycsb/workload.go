package ycsb

import (
	"fmt"
	"math"

	"met/internal/sim"
)

// OpType is one YCSB operation kind.
type OpType int

// Operation kinds used by the six workloads.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpReadModifyWrite:
		return "rmw"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Workload is one tenant's YCSB configuration.
type Workload struct {
	// Name identifies the tenant ("A".."F").
	Name string
	// Proportions of each operation; they must sum to ~1.
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	ScanProportion   float64
	RMWProportion    float64
	// RecordCount is the initial population.
	RecordCount int64
	// FieldLengthBytes is the value size (YCSB default: 10 fields x
	// 100 B; the paper's data sizes match ~1 KB records).
	FieldLengthBytes int
	// MaxScanLength bounds scans (length drawn uniformly in [1, max]).
	MaxScanLength int
	// Threads is the closed-loop client thread count (50 in the paper,
	// 5 for WorkloadD).
	Threads int
	// TargetOpsPerSec throttles the workload (0 = unthrottled;
	// 1500 for WorkloadD in the paper).
	TargetOpsPerSec float64
	// Partitions is the number of equal-size data partitions (Regions)
	// the workload's table is pre-split into (4 in the paper, 1 for D).
	Partitions int
	// Scenario is the paper's application descriptor (documentation).
	Scenario string
}

// Validate checks proportions sum to 1 and fields are sane.
func (w Workload) Validate() error {
	sum := w.ReadProportion + w.UpdateProportion + w.InsertProportion + w.ScanProportion + w.RMWProportion
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("ycsb: workload %s proportions sum to %v", w.Name, sum)
	}
	if w.RecordCount <= 0 {
		return fmt.Errorf("ycsb: workload %s has no records", w.Name)
	}
	if w.Partitions < 1 {
		return fmt.Errorf("ycsb: workload %s has %d partitions", w.Name, w.Partitions)
	}
	return nil
}

// TableName returns the HBase table the workload lives in.
func (w Workload) TableName() string { return "usertable_" + w.Name }

// Key renders the i-th key in ordered form, zero padded so the
// lexicographic order equals the numeric order (keeps region math exact).
func (w Workload) Key(i int64) string { return fmt.Sprintf("user%012d", i) }

// SplitKeys returns the pre-split boundaries carving the initial
// keyspace into w.Partitions equal regions.
func (w Workload) SplitKeys() []string {
	var out []string
	for p := 1; p < w.Partitions; p++ {
		out = append(out, w.Key(w.RecordCount*int64(p)/int64(w.Partitions)))
	}
	return out
}

// ReadFraction returns the fraction of ops that read one record (reads +
// the read half of RMW).
func (w Workload) ReadFraction() float64 { return w.ReadProportion + w.RMWProportion/2 }

// WriteFraction returns the fraction of ops that write one record
// (updates + inserts + the write half of RMW).
func (w Workload) WriteFraction() float64 {
	return w.UpdateProportion + w.InsertProportion + w.RMWProportion/2
}

// ScanFraction returns the fraction of scan operations.
func (w Workload) ScanFraction() float64 { return w.ScanProportion }

// NextOp draws an operation type according to the proportions.
func (w Workload) NextOp(r *sim.RNG) OpType {
	x := r.Float64()
	if x < w.ReadProportion {
		return OpRead
	}
	x -= w.ReadProportion
	if x < w.UpdateProportion {
		return OpUpdate
	}
	x -= w.UpdateProportion
	if x < w.InsertProportion {
		return OpInsert
	}
	x -= w.InsertProportion
	if x < w.ScanProportion {
		return OpScan
	}
	return OpReadModifyWrite
}

// PaperWorkloads returns the six YCSB workloads exactly as Section 3.1
// configures them: A (50/50 session store), B (100% update, stocks),
// C (100% read, profile cache), D (5% read / 95% insert, logging),
// E (95% scan / 5% insert, threaded conversations), F (50% read / 50%
// RMW, user database). All are populated with 1,000,000 records and 4
// partitions except D (100,000 records, 1 partition, 5 threads, capped
// at 1500 ops/s).
func PaperWorkloads() []Workload {
	base := Workload{
		RecordCount:      1_000_000,
		FieldLengthBytes: 1000,
		MaxScanLength:    100,
		Threads:          50,
		Partitions:       4,
	}
	a := base
	a.Name = "A"
	a.ReadProportion, a.UpdateProportion = 0.5, 0.5
	a.Scenario = "session store recording recent actions"

	b := base
	b.Name = "B"
	b.UpdateProportion = 1.0
	b.Scenario = "stocks management"

	c := base
	c.Name = "C"
	c.ReadProportion = 1.0
	c.Scenario = "user profile cache"

	d := base
	d.Name = "D"
	d.ReadProportion, d.InsertProportion = 0.05, 0.95
	d.RecordCount = 100_000
	d.Partitions = 1
	d.Threads = 5
	d.TargetOpsPerSec = 1500
	d.Scenario = "logging/history"

	e := base
	e.Name = "E"
	e.ScanProportion, e.InsertProportion = 0.95, 0.05
	e.Scenario = "threaded conversations"

	f := base
	f.Name = "F"
	f.ReadProportion, f.RMWProportion = 0.5, 0.5
	f.Scenario = "user database"

	return []Workload{a, b, c, d, e, f}
}

// PartitionShares returns the fraction of the workload's requests hitting
// each of its partitions under the paper's hotspot distribution,
// estimated analytically (hot set uniform over its keys, cold set uniform
// over the rest). For the paper's 4-partition 50/40 hotspot this yields
// one hot partition (~31%), one intermediate (~27%) and two cold (~21%),
// matching the shape reported in Section 3.1.
func (w Workload) PartitionShares() []float64 {
	n := float64(w.RecordCount)
	hot := n * 0.4
	shares := make([]float64, w.Partitions)
	per := n / float64(w.Partitions)
	for p := 0; p < w.Partitions; p++ {
		lo, hi := per*float64(p), per*float64(p+1)
		hotOverlap := math.Max(0, math.Min(hi, hot)-lo)
		coldOverlap := math.Max(0, hi-math.Max(lo, hot))
		share := 0.0
		if hot > 0 {
			share += 0.5 * hotOverlap / hot
		}
		if n-hot > 0 {
			share += 0.5 * coldOverlap / (n - hot)
		}
		shares[p] = share
	}
	return shares
}
