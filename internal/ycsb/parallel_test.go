package ycsb

import (
	"testing"

	"met/internal/hbase"
	"met/internal/hdfs"
)

func parallelCluster(t *testing.T) (*hbase.Master, *hbase.Client) {
	t.Helper()
	m := hbase.NewMaster(hdfs.NewNamenode(2))
	for _, name := range []string{"rs0", "rs1", "rs2"} {
		if _, err := m.AddServer(name, hbase.DefaultServerConfig()); err != nil {
			t.Fatal(err)
		}
	}
	return m, hbase.NewClient(m)
}

// TestParallelRunnerMatchesWorkloadMix fans Workload A across 8 workers
// and checks the shared atomics add up: every operation completed, no
// errors, per-op counts near the configured 50/50 mix.
func TestParallelRunnerMatchesWorkloadMix(t *testing.T) {
	m, c := parallelCluster(t)
	w := PaperWorkloads()[0] // A: 50% read / 50% update
	w.RecordCount = 2000
	w.FieldLengthBytes = 32
	p, err := NewParallelRunner(w, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateTable(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Load(0); err != nil {
		t.Fatal(err)
	}
	const ops = 4000
	if err := p.Run(ops, 7); err != nil {
		t.Fatal(err)
	}
	if got := p.TotalCompleted(); got != ops {
		t.Fatalf("completed = %d, want %d", got, ops)
	}
	if p.Errors() != 0 {
		t.Fatalf("errors = %d", p.Errors())
	}
	done := p.Completed()
	if reads := done[OpRead]; reads < ops/4 || reads > 3*ops/4 {
		t.Fatalf("read mix off: %d of %d", reads, ops)
	}
	if done[OpRead]+done[OpUpdate] != ops {
		t.Fatalf("unexpected op types: %v", done)
	}
	// The cluster-side counters saw the same volume (reads may exceed
	// client reads only via retries; here routes are stable).
	var cluster int64
	for _, rs := range m.Servers() {
		req := rs.Requests()
		cluster += req.Reads + req.Writes
	}
	if cluster < ops {
		t.Fatalf("cluster counted %d ops, want >= %d", cluster, ops)
	}
}

// TestParallelRunnerInsertsExtendKeyspace verifies the atomic insert
// cursor: concurrent inserts mint unique keys and grow Inserts().
func TestParallelRunnerInsertsExtendKeyspace(t *testing.T) {
	m, c := parallelCluster(t)
	w := PaperWorkloads()[3] // D: 5% read / 95% insert
	w.RecordCount = 500
	w.FieldLengthBytes = 16
	p, err := NewParallelRunner(w, c, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateTable(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Load(0); err != nil {
		t.Fatal(err)
	}
	const ops = 1200
	if err := p.Run(ops, 3); err != nil {
		t.Fatal(err)
	}
	inserted := p.Completed()[OpInsert]
	if inserted == 0 {
		t.Fatal("no inserts in a 95% insert workload")
	}
	if got := p.Inserts(); got != w.RecordCount+inserted {
		t.Fatalf("keyspace = %d, want %d + %d", got, w.RecordCount, inserted)
	}
	// Every minted key actually landed: read back the full tail.
	for i := w.RecordCount; i < p.Inserts(); i++ {
		if _, err := c.Get(w.TableName(), w.Key(i)); err != nil {
			t.Fatalf("inserted key %d missing: %v", i, err)
		}
	}
}

// TestParallelRunnerValidation rejects bad configs up front.
func TestParallelRunnerValidation(t *testing.T) {
	_, c := parallelCluster(t)
	w := PaperWorkloads()[0]
	if _, err := NewParallelRunner(w, c, 0); err == nil {
		t.Fatal("zero concurrency accepted")
	}
	w.RecordCount = 0
	if _, err := NewParallelRunner(w, c, 4); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

// TestParallelRunnerRidesOutStoppedServer pins transient-error
// tolerance: operations routed to a stopped server are dropped and
// counted, not fatal to the worker, and the rest of the cluster keeps
// absorbing its share.
func TestParallelRunnerRidesOutStoppedServer(t *testing.T) {
	m, c := parallelCluster(t)
	w := PaperWorkloads()[0] // A: 50% read / 50% update, no inserts
	w.RecordCount = 1200
	w.FieldLengthBytes = 16
	p, err := NewParallelRunner(w, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateTable(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Load(0); err != nil {
		t.Fatal(err)
	}
	m.Servers()[0].Stop()
	const ops = 2000
	if err := p.Run(ops, 11); err != nil {
		t.Fatalf("run aborted on transient errors: %v", err)
	}
	if p.Errors() != 0 {
		t.Fatalf("hard errors = %d", p.Errors())
	}
	if p.Transient() == 0 {
		t.Fatal("no transient drops despite a stopped server")
	}
	if got := p.TotalCompleted() + p.Transient(); got != ops {
		t.Fatalf("completed %d + transient %d != %d", p.TotalCompleted(), p.Transient(), ops)
	}
}
