package ycsb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"met/internal/hbase"
	"met/internal/kv"
	"met/internal/obs"
	"met/internal/sim"
)

// numOpTypes sizes the per-op completion counters (OpRead..OpReadModifyWrite).
const numOpTypes = int(OpReadModifyWrite) + 1

// ParallelRunner drives one workload against the functional hbase
// cluster from many goroutines at once — the closed-loop thread pool
// real YCSB uses (the paper runs 50 client threads per workload).
// Hot-path shared state is limited to the few atomics that must be
// shared (the error counts and the insert cursor that extends the
// keyspace); per-op completions and latencies live in worker-private
// histogram shards (obs.Shard) merged into the runner when each worker
// finishes, so timing costs no cross-core contention at all. Every
// worker owns its RNG and key generator, so runs are deterministic for
// a given (seed, concurrency) pair.
type ParallelRunner struct {
	W           Workload
	Client      *hbase.Client
	Concurrency int

	inserts   atomic.Int64
	errors    atomic.Int64
	transient atomic.Int64

	mu  sync.Mutex
	lat [numOpTypes]obs.Snapshot // merged worker shards, all Runs so far
}

// NewParallelRunner prepares a runner fanning the workload across
// concurrency goroutines; call Load before Run.
func NewParallelRunner(w Workload, c *hbase.Client, concurrency int) (*ParallelRunner, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if concurrency < 1 {
		return nil, fmt.Errorf("ycsb: concurrency %d < 1", concurrency)
	}
	p := &ParallelRunner{W: w, Client: c, Concurrency: concurrency}
	p.inserts.Store(w.RecordCount)
	return p, nil
}

// CreateTable creates the workload's pre-split table on the master.
func (p *ParallelRunner) CreateTable(m *hbase.Master) error {
	_, err := m.CreateTable(p.W.TableName(), p.W.SplitKeys())
	return err
}

// Load populates the table with the initial records, fanning disjoint
// key ranges across the workers. count <= 0 loads the full RecordCount.
func (p *ParallelRunner) Load(count int64) error {
	if count <= 0 || count > p.W.RecordCount {
		count = p.W.RecordCount
	}
	val := p.value()
	var wg sync.WaitGroup
	errs := make([]error, p.Concurrency)
	for wkr := 0; wkr < p.Concurrency; wkr++ {
		lo := count * int64(wkr) / int64(p.Concurrency)
		hi := count * int64(wkr+1) / int64(p.Concurrency)
		wg.Add(1)
		go func(wkr int, lo, hi int64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := p.Client.Put(p.W.TableName(), p.W.Key(i), val); err != nil {
					errs[wkr] = fmt.Errorf("ycsb: load %s: %w", p.W.Name, err)
					return
				}
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// value builds a deterministic filler value of the configured size.
func (p *ParallelRunner) value() []byte {
	return bytes.Repeat([]byte{'x'}, p.W.FieldLengthBytes)
}

// Run executes n operations split across the configured workers,
// stopping each worker at its first hard error and returning the union
// of failures. Reads of missing keys are benign (sparse test loads).
func (p *ParallelRunner) Run(n int, seed uint64) error {
	var wg sync.WaitGroup
	errs := make([]error, p.Concurrency)
	for wkr := 0; wkr < p.Concurrency; wkr++ {
		share := n / p.Concurrency
		if wkr < n%p.Concurrency {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(wkr, share int) {
			defer wg.Done()
			w := &worker{
				p:   p,
				rng: sim.NewRNG(seed + uint64(wkr)*0x9e3779b97f4a7c15),
				gen: NewPaperHotspot(p.W.RecordCount),
			}
			defer p.mergeWorker(w)
			for i := 0; i < share; i++ {
				if err := w.step(); err != nil {
					errs[wkr] = err
					return
				}
			}
		}(wkr, share)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// worker is one closed-loop client goroutine: private RNG, generator
// and latency shards; only the keyspace cursor and error counts touch
// shared atomics.
type worker struct {
	p   *ParallelRunner
	rng *sim.RNG
	gen Generator
	lat [numOpTypes]obs.Shard
}

// mergeWorker folds a finished worker's latency shards into the
// runner's merged snapshots.
func (p *ParallelRunner) mergeWorker(w *worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for op := 0; op < numOpTypes; op++ {
		s := w.lat[op].Snapshot()
		p.lat[op].Merge(s)
	}
}

// step executes one operation drawn from the workload mix, timing it so
// measured per-op-class latencies (OpNanos) can calibrate the
// performance model against real engine costs.
func (w *worker) step() error {
	p := w.p
	op := p.W.NextOp(w.rng)
	table := p.W.TableName()
	start := time.Now()
	var err error
	switch op {
	case OpRead:
		_, err = p.Client.Get(table, w.key())
		if errors.Is(err, hbase.ErrNotFound) {
			err = nil // sparse loads in tests make misses benign
		}
	case OpUpdate:
		err = p.Client.Put(table, w.key(), p.value())
	case OpInsert:
		k := p.W.Key(p.inserts.Add(1) - 1)
		err = p.Client.Put(table, k, p.value())
	case OpScan:
		length := 1 + w.rng.Intn(p.W.MaxScanLength)
		_, err = p.Client.Scan(table, w.key(), "", length)
	case OpReadModifyWrite:
		err = p.Client.ReadModifyWrite(table, w.key(), func([]byte) []byte { return p.value() })
	}
	if err != nil {
		// Topology churn (a server mid-restart, a store retired by a
		// split) is the workload's weather, not a worker-fatal fault:
		// real YCSB threads ride out NotServingRegionException the same
		// way. Count it and keep the worker alive.
		if errors.Is(err, hbase.ErrServerStopped) || errors.Is(err, kv.ErrClosed) {
			p.transient.Add(1)
			return nil
		}
		p.errors.Add(1)
		return err
	}
	w.lat[op].RecordNanos(int64(time.Since(start)))
	return nil
}

// key draws a key index from the distribution, clamped to the loaded
// range grown by inserts.
func (w *worker) key() string {
	i := w.gen.Next(w.rng)
	if n := w.p.inserts.Load(); i >= n {
		i = n - 1
	}
	return w.p.W.Key(i)
}

// Completed returns per-op completion counts (merged from finished
// workers; stable once Run has returned).
func (p *ParallelRunner) Completed() map[OpType]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[OpType]int64, numOpTypes)
	for op := 0; op < numOpTypes; op++ {
		if n := p.lat[op].Count(); n > 0 {
			out[OpType(op)] = n
		}
	}
	return out
}

// OpNanos returns the mean measured latency per completed operation of
// each class, in nanoseconds — the raw material for calibrating the
// performance model's cost constants against the real engine. The mean
// is exact (histogram sums are exact; only percentiles are bucketed).
func (p *ParallelRunner) OpNanos() map[OpType]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[OpType]float64, numOpTypes)
	for op := 0; op < numOpTypes; op++ {
		if n := p.lat[op].Count(); n > 0 {
			out[OpType(op)] = float64(p.lat[op].Sum()) / float64(n)
		}
	}
	return out
}

// OpLatencies returns the per-op-class latency distribution summaries
// (count, exact mean, bucketed p50/p95/p99/p999, max).
func (p *ParallelRunner) OpLatencies() map[OpType]obs.LatencySummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[OpType]obs.LatencySummary, numOpTypes)
	for op := 0; op < numOpTypes; op++ {
		if p.lat[op].Count() > 0 {
			out[OpType(op)] = p.lat[op].Summary()
		}
	}
	return out
}

// TotalCompleted returns the total successful operations.
func (p *ParallelRunner) TotalCompleted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum int64
	for op := 0; op < numOpTypes; op++ {
		sum += p.lat[op].Count()
	}
	return sum
}

// Errors returns the number of hard-failed operations.
func (p *ParallelRunner) Errors() int64 { return p.errors.Load() }

// Transient returns the number of operations dropped on topology churn
// (server restarting, store retired by a split); they are neither
// completed nor hard errors.
func (p *ParallelRunner) Transient() int64 { return p.transient.Load() }

// Inserts returns the current keyspace size (initial + inserted).
func (p *ParallelRunner) Inserts() int64 { return p.inserts.Load() }
