// Package ycsb reimplements the YCSB workload generator (Cooper et al.,
// SoCC 2010) as used by the paper: the six standard workloads A–F with
// the paper's modified proportions (WorkloadB: 100% update, WorkloadD: 5%
// read / 95% insert), the hotspot key distribution configured so that 50%
// of requests hit 40% of the key space, and zipfian / latest / uniform
// generators for completeness. A closed-loop runner drives the functional
// hbase cluster for examples and integration tests; the experiment
// harness uses the same specs to parameterize the performance model.
package ycsb

import (
	"math"

	"met/internal/sim"
)

// Generator produces keys indices in [0, Count()).
type Generator interface {
	// Next returns the next key index.
	Next(r *sim.RNG) int64
	// Count returns the current key-space size.
	Count() int64
}

// Uniform picks keys uniformly at random.
type Uniform struct {
	N int64
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n int64) *Uniform { return &Uniform{N: n} }

// Next implements Generator.
func (u *Uniform) Next(r *sim.RNG) int64 { return r.Int63n(u.N) }

// Count implements Generator.
func (u *Uniform) Count() int64 { return u.N }

// Hotspot is YCSB's hotspot distribution: HotOpnFraction of operations
// target the first HotsetFraction of the key space (uniformly), the rest
// go uniformly to the cold set. The paper uses 0.5 / 0.4: "50% of the
// requests accessing a subset of keys that account for 40% of the key
// space".
type Hotspot struct {
	N              int64
	HotsetFraction float64
	HotOpnFraction float64
}

// NewPaperHotspot returns the paper's 50/40 hotspot over n keys.
func NewPaperHotspot(n int64) *Hotspot {
	return &Hotspot{N: n, HotsetFraction: 0.4, HotOpnFraction: 0.5}
}

// Next implements Generator.
func (h *Hotspot) Next(r *sim.RNG) int64 {
	hot := int64(float64(h.N) * h.HotsetFraction)
	if hot < 1 {
		hot = 1
	}
	if r.Float64() < h.HotOpnFraction {
		return r.Int63n(hot)
	}
	if h.N <= hot {
		return r.Int63n(h.N)
	}
	return hot + r.Int63n(h.N-hot)
}

// Count implements Generator.
func (h *Hotspot) Count() int64 { return h.N }

// Zipfian implements the Gray et al. quick zipfian sampler YCSB uses,
// with constant 0.99.
type Zipfian struct {
	n              int64
	theta          float64
	alpha          float64
	zetan          float64
	eta            float64
	zeta2theta     float64
	countForZeta   int64
	allowDecrement bool
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian returns a zipfian generator over [0, n).
func NewZipfian(n int64) *Zipfian {
	z := &Zipfian{n: n, theta: ZipfianConstant}
	z.zeta2theta = zetaStatic(2, z.theta)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.zetan = zetaStatic(n, z.theta)
	z.countForZeta = n
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next(r *sim.RNG) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Count implements Generator.
func (z *Zipfian) Count() int64 { return z.n }

// Scrambled wraps a zipfian so popular items are spread over the key
// space (YCSB's ScrambledZipfian), avoiding adjacency of hot keys.
type Scrambled struct {
	Z *Zipfian
}

// NewScrambled returns a scrambled zipfian over [0, n).
func NewScrambled(n int64) *Scrambled { return &Scrambled{Z: NewZipfian(n)} }

// Next implements Generator.
func (s *Scrambled) Next(r *sim.RNG) int64 {
	raw := s.Z.Next(r)
	return int64(fnv64(uint64(raw)) % uint64(s.Z.n))
}

// Count implements Generator.
func (s *Scrambled) Count() int64 { return s.Z.n }

func fnv64(v uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Latest favors recently inserted records (YCSB's latest distribution,
// used by workload D in stock YCSB). It reads the insert counter owned by
// the keyspace.
type Latest struct {
	Counter *int64
	z       *Zipfian
}

// NewLatest returns a latest-skewed generator tracking counter.
func NewLatest(counter *int64) *Latest {
	return &Latest{Counter: counter, z: NewZipfian(*counter + 1)}
}

// Next implements Generator.
func (l *Latest) Next(r *sim.RNG) int64 {
	n := *l.Counter
	if n <= 0 {
		return 0
	}
	if l.z.n != n {
		l.z = NewZipfian(n)
	}
	off := l.z.Next(r)
	return n - 1 - off
}

// Count implements Generator.
func (l *Latest) Count() int64 { return *l.Counter }
