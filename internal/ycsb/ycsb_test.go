package ycsb

import (
	"fmt"
	"math"
	"testing"

	"met/internal/hbase"
	"met/internal/hdfs"
	"met/internal/sim"
)

func TestUniformCoversRange(t *testing.T) {
	g := NewUniform(100)
	r := sim.NewRNG(1)
	seen := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		k := g.Next(r)
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
	if g.Count() != 100 {
		t.Fatal("count wrong")
	}
}

func TestHotspotPaperShape(t *testing.T) {
	// 50% of requests to the first 40% of the key space.
	g := NewPaperHotspot(10000)
	r := sim.NewRNG(2)
	hot := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if g.Next(r) < 4000 {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("hot traffic fraction = %v, want ~0.5", frac)
	}
}

func TestHotspotDegenerate(t *testing.T) {
	g := &Hotspot{N: 1, HotsetFraction: 0.4, HotOpnFraction: 0.5}
	r := sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		if k := g.Next(r); k != 0 {
			t.Fatalf("key = %d", k)
		}
	}
	// Hot set spanning everything.
	g = &Hotspot{N: 10, HotsetFraction: 1.0, HotOpnFraction: 0.5}
	for i := 0; i < 100; i++ {
		if k := g.Next(r); k < 0 || k >= 10 {
			t.Fatalf("key = %d", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewZipfian(1000)
	r := sim.NewRNG(4)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		k := g.Next(r)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must dominate; top-10 keys should take a large share.
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if counts[0] < counts[500] {
		t.Fatal("zipfian not skewed toward 0")
	}
	if float64(top10)/n < 0.2 {
		t.Fatalf("top-10 share = %v, want > 0.2", float64(top10)/n)
	}
	if g.Count() != 1000 {
		t.Fatal("count wrong")
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	g := NewScrambled(1000)
	r := sim.NewRNG(5)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		k := g.Next(r)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The most popular key should NOT be key 0 in general (scrambling),
	// and skew should persist (some key far above average).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("scrambled lost skew: max=%d", max)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	counter := int64(1000)
	g := NewLatest(&counter)
	r := sim.NewRNG(6)
	recent := 0
	const n = 50000
	for i := 0; i < n; i++ {
		k := g.Next(r)
		if k < 0 || k >= counter {
			t.Fatalf("key %d out of range", k)
		}
		if k >= 900 {
			recent++
		}
	}
	if float64(recent)/n < 0.3 {
		t.Fatalf("recent share = %v, want > 0.3", float64(recent)/n)
	}
	// Growing the counter shifts the window.
	counter = 2000
	k := g.Next(r)
	if k < 0 || k >= 2000 {
		t.Fatalf("key %d out of range after growth", k)
	}
	// Degenerate empty counter.
	counter = 0
	if g.Next(r) != 0 {
		t.Fatal("empty latest should return 0")
	}
}

func TestPaperWorkloadsValid(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 6 {
		t.Fatalf("%d workloads", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s invalid: %v", w.Name, err)
		}
	}
	byName := map[string]Workload{}
	for _, w := range ws {
		byName[w.Name] = w
	}
	if byName["B"].UpdateProportion != 1.0 {
		t.Error("B must be 100% update per the paper's modification")
	}
	if byName["D"].InsertProportion != 0.95 || byName["D"].ReadProportion != 0.05 {
		t.Error("D must be 5/95 read/insert per the paper's modification")
	}
	if byName["D"].RecordCount != 100_000 || byName["D"].Partitions != 1 ||
		byName["D"].Threads != 5 || byName["D"].TargetOpsPerSec != 1500 {
		t.Errorf("D parameters wrong: %+v", byName["D"])
	}
	if byName["E"].ScanProportion != 0.95 {
		t.Error("E must be 95% scan")
	}
	if byName["C"].ReadProportion != 1.0 {
		t.Error("C must be 100% read")
	}
	if byName["A"].Threads != 50 || byName["A"].Partitions != 4 || byName["A"].RecordCount != 1_000_000 {
		t.Errorf("A parameters wrong: %+v", byName["A"])
	}
}

func TestOverallReadWriteRatio(t *testing.T) {
	// Section 3.1: proportions were tuned for an overall read/write
	// ratio of roughly 1.9:1 across the six workloads. The ratio is
	// throughput-weighted in the paper; weighting each workload by its
	// client thread count approximates that.
	var reads, writes float64
	for _, w := range PaperWorkloads() {
		th := float64(w.Threads)
		reads += th * (w.ReadFraction() + w.ScanFraction())
		writes += th * w.WriteFraction()
	}
	ratio := reads / writes
	if ratio < 1.3 || ratio > 2.3 {
		t.Fatalf("overall read/write ratio = %v, expected near 1.9", ratio)
	}
}

func TestWorkloadValidateErrors(t *testing.T) {
	w := Workload{Name: "X", ReadProportion: 0.5, RecordCount: 10, Partitions: 1}
	if w.Validate() == nil {
		t.Fatal("proportions not summing to 1 accepted")
	}
	w = Workload{Name: "X", ReadProportion: 1, RecordCount: 0, Partitions: 1}
	if w.Validate() == nil {
		t.Fatal("zero records accepted")
	}
	w = Workload{Name: "X", ReadProportion: 1, RecordCount: 10, Partitions: 0}
	if w.Validate() == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestSplitKeysEqualRegions(t *testing.T) {
	w := PaperWorkloads()[0] // A: 1M records, 4 partitions
	keys := w.SplitKeys()
	if len(keys) != 3 {
		t.Fatalf("split keys = %v", keys)
	}
	if keys[0] != w.Key(250_000) || keys[1] != w.Key(500_000) || keys[2] != w.Key(750_000) {
		t.Fatalf("split keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("split keys not sorted")
		}
	}
}

func TestKeyOrderingMatchesNumeric(t *testing.T) {
	w := PaperWorkloads()[0]
	if w.Key(9) >= w.Key(10) || w.Key(999_999) >= w.Key(1_000_000) {
		t.Fatal("key encoding breaks lexicographic order")
	}
}

func TestNextOpProportions(t *testing.T) {
	w := PaperWorkloads()[3] // D: 5% read, 95% insert
	r := sim.NewRNG(7)
	counts := map[OpType]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.NextOp(r)]++
	}
	if frac := float64(counts[OpInsert]) / n; math.Abs(frac-0.95) > 0.01 {
		t.Fatalf("insert fraction = %v", frac)
	}
	if frac := float64(counts[OpRead]) / n; math.Abs(frac-0.05) > 0.01 {
		t.Fatalf("read fraction = %v", frac)
	}
	if counts[OpScan] != 0 || counts[OpUpdate] != 0 {
		t.Fatalf("unexpected ops: %v", counts)
	}
}

func TestPartitionSharesPaperShape(t *testing.T) {
	w := PaperWorkloads()[0]
	shares := w.PartitionShares()
	if len(shares) != 4 {
		t.Fatalf("shares = %v", shares)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Paper's shape: one hotspot (~34%), one intermediate (~26%), two
	// equal cold partitions (~20% each), descending.
	if !(shares[0] > shares[1] && shares[1] > shares[2]) {
		t.Fatalf("shares not descending: %v", shares)
	}
	if math.Abs(shares[2]-shares[3]) > 1e-9 {
		t.Fatalf("cold shares differ: %v", shares)
	}
	if shares[0] < 0.29 || shares[0] > 0.36 {
		t.Fatalf("hot share = %v, want ~0.31-0.34", shares[0])
	}
	// Empirical check: sampled hotspot traffic matches the analytic
	// shares within 2%.
	g := NewPaperHotspot(w.RecordCount)
	r := sim.NewRNG(8)
	got := make([]float64, 4)
	const n = 200000
	per := w.RecordCount / 4
	for i := 0; i < n; i++ {
		got[g.Next(r)/per]++
	}
	for i := range got {
		got[i] /= n
		if math.Abs(got[i]-shares[i]) > 0.02 {
			t.Fatalf("partition %d: sampled %v vs analytic %v", i, got[i], shares[i])
		}
	}
}

func TestPartitionSharesSinglePartition(t *testing.T) {
	w := PaperWorkloads()[3] // D has one partition
	shares := w.PartitionShares()
	if len(shares) != 1 || math.Abs(shares[0]-1) > 1e-9 {
		t.Fatalf("shares = %v", shares)
	}
}

func TestOpTypeString(t *testing.T) {
	for _, o := range []OpType{OpRead, OpUpdate, OpInsert, OpScan, OpReadModifyWrite} {
		if o.String() == "" {
			t.Fatal("empty op string")
		}
	}
	if OpType(42).String() == "" {
		t.Fatal("unknown op empty")
	}
}

// newTestCluster spins up a small functional cluster.
func newTestCluster(t *testing.T, servers int) (*hbase.Master, *hbase.Client) {
	t.Helper()
	m := hbase.NewMaster(hdfs.NewNamenode(2))
	for i := 0; i < servers; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), hbase.DefaultServerConfig()); err != nil {
			t.Fatal(err)
		}
	}
	return m, hbase.NewClient(m)
}

func TestRunnerEndToEnd(t *testing.T) {
	m, c := newTestCluster(t, 3)
	w := PaperWorkloads()[0] // A
	w.RecordCount = 2000     // shrink for test speed
	w.FieldLengthBytes = 64
	r, err := NewRunner(w, c, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CreateTable(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Load(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(2000); err != nil {
		t.Fatal(err)
	}
	if r.TotalCompleted() != 2000 {
		t.Fatalf("completed = %d", r.TotalCompleted())
	}
	done := r.Completed()
	if done[OpRead] == 0 || done[OpUpdate] == 0 {
		t.Fatalf("op mix missing kinds: %v", done)
	}
	if r.Errors() != 0 {
		t.Fatalf("errors = %d", r.Errors())
	}
}

func TestRunnerInsertsGrowKeyspace(t *testing.T) {
	m, c := newTestCluster(t, 1)
	w := PaperWorkloads()[3] // D: insert heavy
	w.RecordCount = 500
	w.FieldLengthBytes = 32
	r, _ := NewRunner(w, c, sim.NewRNG(10))
	r.CreateTable(m)
	r.Load(0)
	start := r.Inserts()
	if err := r.Run(1000); err != nil {
		t.Fatal(err)
	}
	if r.Inserts() <= start {
		t.Fatal("keyspace did not grow")
	}
	grown := r.Inserts() - start
	if float64(grown) < 900 {
		t.Fatalf("inserted %d of ~950 expected", grown)
	}
}

func TestRunnerScansWork(t *testing.T) {
	m, c := newTestCluster(t, 2)
	w := PaperWorkloads()[4] // E: scan heavy
	w.RecordCount = 1000
	w.FieldLengthBytes = 32
	r, _ := NewRunner(w, c, sim.NewRNG(11))
	r.CreateTable(m)
	r.Load(0)
	if err := r.Run(300); err != nil {
		t.Fatal(err)
	}
	if r.Completed()[OpScan] == 0 {
		t.Fatal("no scans completed")
	}
}

func TestRunnerRejectsInvalidWorkload(t *testing.T) {
	_, c := newTestCluster(t, 1)
	if _, err := NewRunner(Workload{Name: "bad"}, c, sim.NewRNG(1)); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestRunnerLoadPartial(t *testing.T) {
	m, c := newTestCluster(t, 1)
	w := PaperWorkloads()[2]
	w.RecordCount = 10000
	w.FieldLengthBytes = 16
	r, _ := NewRunner(w, c, sim.NewRNG(12))
	r.CreateTable(m)
	if err := r.Load(100); err != nil {
		t.Fatal(err)
	}
	// Reads against sparse load do not error (misses are benign).
	if err := r.Run(200); err != nil {
		t.Fatal(err)
	}
}
