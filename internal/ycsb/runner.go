package ycsb

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"met/internal/hbase"
	"met/internal/sim"
)

// Runner drives one workload against the functional hbase cluster. It is
// single-threaded and operation-count driven (virtual time lives in the
// performance model); examples and integration tests use it to exercise
// real reads, writes and scans end to end.
type Runner struct {
	W      Workload
	Client *hbase.Client
	RNG    *sim.RNG

	gen       Generator
	inserts   int64
	completed map[OpType]int64
	opNanos   map[OpType]int64
	errors    int64
}

// NewRunner prepares a runner; call Load before Run.
func NewRunner(w Workload, c *hbase.Client, rng *sim.RNG) (*Runner, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		W:         w,
		Client:    c,
		RNG:       rng,
		gen:       NewPaperHotspot(w.RecordCount),
		inserts:   w.RecordCount,
		completed: make(map[OpType]int64),
		opNanos:   make(map[OpType]int64),
	}, nil
}

// CreateTable creates the workload's pre-split table on the master.
func (r *Runner) CreateTable(m *hbase.Master) error {
	_, err := m.CreateTable(r.W.TableName(), r.W.SplitKeys())
	return err
}

// Load populates the table with the initial records. count <= 0 loads
// the full RecordCount; tests use smaller loads.
func (r *Runner) Load(count int64) error {
	if count <= 0 || count > r.W.RecordCount {
		count = r.W.RecordCount
	}
	val := r.value()
	for i := int64(0); i < count; i++ {
		if err := r.Client.Put(r.W.TableName(), r.W.Key(i), val); err != nil {
			return fmt.Errorf("ycsb: load %s: %w", r.W.Name, err)
		}
	}
	return nil
}

// value builds a deterministic filler value of the configured size.
func (r *Runner) value() []byte {
	return bytes.Repeat([]byte{'x'}, r.W.FieldLengthBytes)
}

// Step executes one operation drawn from the workload mix, timing it
// for per-op-class latency reporting (OpNanos).
func (r *Runner) Step() error {
	op := r.W.NextOp(r.RNG)
	table := r.W.TableName()
	start := time.Now()
	var err error
	switch op {
	case OpRead:
		_, err = r.Client.Get(table, r.key())
		if errors.Is(err, hbase.ErrNotFound) {
			err = nil // sparse loads in tests make misses benign
		}
	case OpUpdate:
		err = r.Client.Put(table, r.key(), r.value())
	case OpInsert:
		k := r.W.Key(r.inserts)
		r.inserts++
		err = r.Client.Put(table, k, r.value())
	case OpScan:
		length := 1 + r.RNG.Intn(r.W.MaxScanLength)
		_, err = r.Client.Scan(table, r.key(), "", length)
	case OpReadModifyWrite:
		err = r.Client.ReadModifyWrite(table, r.key(), func([]byte) []byte { return r.value() })
	}
	if err != nil {
		r.errors++
		return err
	}
	r.completed[op]++
	r.opNanos[op] += int64(time.Since(start))
	return nil
}

// key draws a key index from the distribution, clamped to the loaded
// range grown by inserts.
func (r *Runner) key() string {
	i := r.gen.Next(r.RNG)
	if i >= r.inserts {
		i = r.inserts - 1
	}
	return r.W.Key(i)
}

// Run executes n operations, stopping at the first hard error.
func (r *Runner) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Completed returns per-op completion counts.
func (r *Runner) Completed() map[OpType]int64 {
	out := make(map[OpType]int64, len(r.completed))
	for k, v := range r.completed {
		out[k] = v
	}
	return out
}

// OpNanos returns the mean measured latency per completed operation of
// each class, in nanoseconds.
func (r *Runner) OpNanos() map[OpType]float64 {
	out := make(map[OpType]float64, len(r.opNanos))
	for op, total := range r.opNanos {
		if n := r.completed[op]; n > 0 {
			out[op] = float64(total) / float64(n)
		}
	}
	return out
}

// TotalCompleted returns the total successful operations.
func (r *Runner) TotalCompleted() int64 {
	var sum int64
	for _, v := range r.completed {
		sum += v
	}
	return sum
}

// Errors returns the number of failed operations.
func (r *Runner) Errors() int64 { return r.errors }

// Inserts returns the current keyspace size (initial + inserted).
func (r *Runner) Inserts() int64 { return r.inserts }
