// Package autoscale implements the systems MeT is compared against in
// Section 6.4: Tiramola (Konstantinou et al., CIKM 2011) and the
// CloudWatch + Auto Scaling rule pattern. Both are oblivious to the
// database: they watch system-level metrics only, add or remove whole
// nodes, never reconfigure them, never move data deliberately (the
// database's random balancer redistributes), and never restore locality.
package autoscale

import (
	"fmt"

	"met/internal/metrics"
)

// Action is an autoscaler's verdict for one evaluation.
type Action int

// Possible actions.
const (
	ActionNone Action = iota
	ActionAddNode
	ActionRemoveNode
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionAddNode:
		return "add"
	case ActionRemoveNode:
		return "remove"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Params configure the Tiramola-style controller.
type Params struct {
	// CPUHigh: adding threshold on the cluster's average CPU.
	CPUHigh float64
	// CPULow: removal threshold; per the paper, Tiramola "only
	// releases resources when every node in the cluster is
	// underutilized", and this cannot be parameterized away.
	CPULow float64
	// MinNodes / MaxNodes bound the cluster.
	MinNodes int
	MaxNodes int
	// CooldownEvaluations suppresses actions for this many evaluations
	// after an action (avoids thrashing while a VM boots).
	CooldownEvaluations int
}

// DefaultParams returns thresholds matching the evaluation setup.
func DefaultParams() Params {
	return Params{
		CPUHigh:             0.85,
		CPULow:              0.30,
		MinNodes:            1,
		MaxNodes:            64,
		CooldownEvaluations: 6,
	}
}

// Tiramola is the baseline controller.
type Tiramola struct {
	Params   Params
	cooldown int
	actions  int
}

// NewTiramola returns a controller with the given parameters.
func NewTiramola(p Params) *Tiramola { return &Tiramola{Params: p} }

// Evaluate inspects per-node CPU utilizations and returns an action.
func (t *Tiramola) Evaluate(nodeCPU map[string]float64) Action {
	if t.cooldown > 0 {
		t.cooldown--
		return ActionNone
	}
	n := len(nodeCPU)
	if n == 0 {
		return ActionNone
	}
	var sum float64
	allLow := true
	for _, c := range nodeCPU {
		sum += c
		if c >= t.Params.CPULow {
			allLow = false
		}
	}
	avg := sum / float64(n)
	switch {
	case avg > t.Params.CPUHigh && n < t.Params.MaxNodes:
		t.cooldown = t.Params.CooldownEvaluations
		t.actions++
		return ActionAddNode
	case allLow && n > t.Params.MinNodes:
		t.cooldown = t.Params.CooldownEvaluations
		t.actions++
		return ActionRemoveNode
	default:
		return ActionNone
	}
}

// Actions returns how many scale actions have been taken.
func (t *Tiramola) Actions() int { return t.actions }

// Rule is one CloudWatch-style threshold rule: when Metric crosses
// Threshold in the given direction for Periods consecutive evaluations,
// Action fires.
type Rule struct {
	Name      string
	Metric    string // "cpu", "iowait", "memory"
	Above     bool   // true: fire when metric > threshold
	Threshold float64
	Periods   int
	Action    Action

	streak int
}

// RuleEngine evaluates a set of rules over aggregate metrics, mimicking
// CloudWatch alarms driving Auto Scaling policies.
type RuleEngine struct {
	Rules []*Rule
}

// Evaluate feeds one aggregate sample to every rule; the first rule whose
// streak completes wins (rules are priority-ordered).
func (e *RuleEngine) Evaluate(sample metrics.SystemMetrics) Action {
	value := func(metric string) float64 {
		switch metric {
		case "cpu":
			return sample.CPUUtilization
		case "iowait":
			return sample.IOWait
		case "memory":
			return sample.MemoryUsage
		default:
			return 0
		}
	}
	var fired Action = ActionNone
	for _, r := range e.Rules {
		v := value(r.Metric)
		crossed := (r.Above && v > r.Threshold) || (!r.Above && v < r.Threshold)
		if crossed {
			r.streak++
		} else {
			r.streak = 0
		}
		if r.streak >= r.Periods && fired == ActionNone {
			fired = r.Action
			r.streak = 0
		}
	}
	return fired
}
