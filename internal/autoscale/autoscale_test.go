package autoscale

import (
	"testing"

	"met/internal/metrics"
)

func cpus(vals ...float64) map[string]float64 {
	out := make(map[string]float64, len(vals))
	for i, v := range vals {
		out[string(rune('a'+i))] = v
	}
	return out
}

func TestAddOnHighAverage(t *testing.T) {
	p := DefaultParams()
	p.CooldownEvaluations = 0
	tr := NewTiramola(p)
	if got := tr.Evaluate(cpus(0.95, 0.9, 0.92)); got != ActionAddNode {
		t.Fatalf("action = %v", got)
	}
	if tr.Actions() != 1 {
		t.Fatalf("actions = %d", tr.Actions())
	}
}

func TestNoAddWhenAverageModerate(t *testing.T) {
	tr := NewTiramola(DefaultParams())
	// One hot node does not raise the average enough: this is exactly
	// the blindness to skew the paper criticizes.
	if got := tr.Evaluate(cpus(0.99, 0.2, 0.2, 0.2)); got != ActionNone {
		t.Fatalf("action = %v", got)
	}
}

func TestRemoveOnlyWhenAllIdle(t *testing.T) {
	p := DefaultParams()
	p.CooldownEvaluations = 0
	tr := NewTiramola(p)
	// One busy node blocks removal even if the average is low.
	if got := tr.Evaluate(cpus(0.05, 0.05, 0.6)); got != ActionNone {
		t.Fatalf("action = %v", got)
	}
	if got := tr.Evaluate(cpus(0.05, 0.05, 0.1)); got != ActionRemoveNode {
		t.Fatalf("action = %v", got)
	}
}

func TestMinMaxBounds(t *testing.T) {
	p := DefaultParams()
	p.CooldownEvaluations = 0
	p.MinNodes = 3
	p.MaxNodes = 3
	tr := NewTiramola(p)
	if got := tr.Evaluate(cpus(0.99, 0.99, 0.99)); got != ActionNone {
		t.Fatalf("add beyond max: %v", got)
	}
	if got := tr.Evaluate(cpus(0.01, 0.01, 0.01)); got != ActionNone {
		t.Fatalf("remove below min: %v", got)
	}
}

func TestCooldownSuppresses(t *testing.T) {
	p := DefaultParams()
	p.CooldownEvaluations = 2
	tr := NewTiramola(p)
	if tr.Evaluate(cpus(0.95, 0.95)) != ActionAddNode {
		t.Fatal("first add suppressed")
	}
	if tr.Evaluate(cpus(0.95, 0.95)) != ActionNone {
		t.Fatal("cooldown ignored")
	}
	if tr.Evaluate(cpus(0.95, 0.95)) != ActionNone {
		t.Fatal("cooldown ignored (2)")
	}
	if tr.Evaluate(cpus(0.95, 0.95)) != ActionAddNode {
		t.Fatal("post-cooldown add suppressed")
	}
}

func TestEmptyCluster(t *testing.T) {
	tr := NewTiramola(DefaultParams())
	if tr.Evaluate(nil) != ActionNone {
		t.Fatal("action on empty cluster")
	}
}

func TestActionString(t *testing.T) {
	for _, a := range []Action{ActionNone, ActionAddNode, ActionRemoveNode, Action(9)} {
		if a.String() == "" {
			t.Fatal("empty action string")
		}
	}
}

func TestRuleEngineStreaks(t *testing.T) {
	e := &RuleEngine{Rules: []*Rule{
		{Name: "scale-up", Metric: "cpu", Above: true, Threshold: 0.8, Periods: 2, Action: ActionAddNode},
		{Name: "scale-down", Metric: "cpu", Above: false, Threshold: 0.2, Periods: 3, Action: ActionRemoveNode},
	}}
	hot := metrics.SystemMetrics{CPUUtilization: 0.9}
	cold := metrics.SystemMetrics{CPUUtilization: 0.1}
	if e.Evaluate(hot) != ActionNone {
		t.Fatal("fired before streak complete")
	}
	if e.Evaluate(hot) != ActionAddNode {
		t.Fatal("did not fire after streak")
	}
	// Streak reset after firing.
	if e.Evaluate(hot) != ActionNone {
		t.Fatal("no reset after firing")
	}
	// Broken streaks reset.
	e.Evaluate(cold)
	e.Evaluate(cold)
	e.Evaluate(hot)
	if e.Evaluate(cold) != ActionNone {
		t.Fatal("broken streak counted")
	}
	e.Evaluate(cold)
	if e.Evaluate(cold) != ActionRemoveNode {
		t.Fatal("scale-down did not fire")
	}
}

func TestRuleEngineMetrics(t *testing.T) {
	e := &RuleEngine{Rules: []*Rule{
		{Metric: "iowait", Above: true, Threshold: 0.5, Periods: 1, Action: ActionAddNode},
		{Metric: "memory", Above: true, Threshold: 0.9, Periods: 1, Action: ActionAddNode},
		{Metric: "bogus", Above: true, Threshold: 0.1, Periods: 1, Action: ActionRemoveNode},
	}}
	if e.Evaluate(metrics.SystemMetrics{IOWait: 0.7}) != ActionAddNode {
		t.Fatal("iowait rule missed")
	}
	if e.Evaluate(metrics.SystemMetrics{MemoryUsage: 0.95}) != ActionAddNode {
		t.Fatal("memory rule missed")
	}
	// Unknown metrics evaluate to 0 and never fire an Above rule.
	if e.Evaluate(metrics.SystemMetrics{}) != ActionNone {
		t.Fatal("bogus rule fired")
	}
}
