package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"met/internal/hbase"
)

// RegionPerf describes one data partition to the model.
type RegionPerf struct {
	Name      string
	SizeBytes float64
	// HotDataFrac of the region's bytes receive HotTrafficFrac of its
	// requests (the within-region popularity curve; the paper's YCSB
	// hotspot distribution is uniform inside hot and cold sets).
	HotDataFrac    float64
	HotTrafficFrac float64
	// Locality is the fraction of the region's data local to its
	// current server (the HDFS locality index).
	Locality float64
}

// NodePerf describes one region server to the model.
type NodePerf struct {
	Name    string
	Config  hbase.ServerConfig
	Offline bool
	// BackgroundDiskBytesPerSec is extra disk traffic from major
	// compactions currently running on this node.
	BackgroundDiskBytesPerSec float64
	// ColdFraction models a cache still warming after a restart: the
	// steady-state hit ratio is scaled by (1 - ColdFraction). Zero
	// (the default) means fully warm.
	ColdFraction float64
}

// OpMix is a workload's operation mix (fractions sum to 1; RMW counts as
// one op that both reads and writes).
type OpMix struct {
	Read  float64
	Write float64
	Scan  float64
	RMW   float64
}

// WorkloadPerf describes one closed-loop tenant.
type WorkloadPerf struct {
	Name    string
	Threads int
	// TargetOpsPerSec caps throughput (0 = unthrottled).
	TargetOpsPerSec float64
	Mix             OpMix
	RecordBytes     float64
	AvgScanRecords  float64
	// RegionShares routes the workload's requests: fraction of its
	// operations touching each region (sums to 1).
	RegionShares map[string]float64
	// Active scales the workload on/off (0..1); phase 2 of the
	// elasticity experiment switches workloads off.
	Active bool
	// GrowthBytesPerOp is how many bytes each operation adds to the
	// workload's regions on average (insert-heavy workloads grow their
	// data set; WorkloadD grows ~1 KB per insert).
	GrowthBytesPerOp float64
}

// Model is a snapshot of cluster + workloads to solve for one instant.
type Model struct {
	Cost      CostModel
	Nodes     map[string]*NodePerf
	Regions   map[string]*RegionPerf
	Placement map[string]string // region -> node
	Workloads []*WorkloadPerf
}

// NewModel returns an empty model with default costs (or the calibrated
// override installed by SetDefaultCostModel).
func NewModel() *Model {
	return &Model{
		Cost:      activeCostModel(),
		Nodes:     make(map[string]*NodePerf),
		Regions:   make(map[string]*RegionPerf),
		Placement: make(map[string]string),
	}
}

// Solution reports the solved equilibrium.
type Solution struct {
	// ThroughputOps maps workload name to operations per second.
	ThroughputOps map[string]float64
	// NodeCPU, NodeDisk, NodeNet are per-node utilizations (0..1).
	NodeCPU  map[string]float64
	NodeDisk map[string]float64
	NodeNet  map[string]float64
	// ResponseTime maps workload name to mean seconds per op.
	ResponseTime map[string]float64
	// CacheHit maps node name to its weighted read hit ratio.
	CacheHit map[string]float64
	// PageHit maps node name to its OS page-cache coverage.
	PageHit map[string]float64
	// Stall maps node name to its GC/flush stall (seconds).
	Stall map[string]float64
	// NodeHandlers maps node name to RPC handler pool utilization.
	NodeHandlers map[string]float64
}

// Total returns the cluster-wide throughput.
func (s Solution) Total() float64 {
	var sum float64
	for _, x := range s.ThroughputOps {
		sum += x
	}
	return sum
}

// demands are the per-op resource seconds for one (workload, region).
type demands struct {
	cpu, disk, net float64
}

// regionsOn returns the regions placed on node n, sorted.
func (m *Model) regionsOn(n string) []string {
	var out []string
	for r, host := range m.Placement {
		if host == n {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks referential integrity.
func (m *Model) Validate() error {
	for r, n := range m.Placement {
		if _, ok := m.Regions[r]; !ok {
			return fmt.Errorf("perfmodel: placement references unknown region %q", r)
		}
		if _, ok := m.Nodes[n]; !ok {
			return fmt.Errorf("perfmodel: region %q placed on unknown node %q", r, n)
		}
	}
	for _, w := range m.Workloads {
		var sum float64
		for r, s := range w.RegionShares {
			if _, ok := m.Regions[r]; !ok {
				return fmt.Errorf("perfmodel: workload %s routes to unknown region %q", w.Name, r)
			}
			sum += s
		}
		if len(w.RegionShares) > 0 && math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("perfmodel: workload %s shares sum to %v", w.Name, sum)
		}
		mixSum := w.Mix.Read + w.Mix.Write + w.Mix.Scan + w.Mix.RMW
		if math.Abs(mixSum-1) > 1e-6 {
			return fmt.Errorf("perfmodel: workload %s mix sums to %v", w.Name, mixSum)
		}
	}
	return nil
}

// hitRatio estimates a region's block-cache hit probability given the
// cache bytes allocated to it: the cache fills with the most popular
// data first (LRU steady state), so coverage follows the two-segment
// popularity curve.
func hitRatio(r *RegionPerf, cacheBytes float64) float64 {
	if r.SizeBytes <= 0 {
		return 1
	}
	if cacheBytes >= r.SizeBytes {
		return 1
	}
	hotBytes := r.SizeBytes * r.HotDataFrac
	coldBytes := r.SizeBytes - hotBytes
	if hotBytes <= 0 {
		return cacheBytes / r.SizeBytes
	}
	if cacheBytes <= hotBytes {
		return r.HotTrafficFrac * cacheBytes / hotBytes
	}
	coldCov := 0.0
	if coldBytes > 0 {
		coldCov = (cacheBytes - hotBytes) / coldBytes
	}
	return r.HotTrafficFrac + (1-r.HotTrafficFrac)*coldCov
}

// writeAmp returns the flush/compaction write amplification for a region
// given its per-region memstore budget.
func (c CostModel) writeAmp(memstorePerRegion float64) float64 {
	if memstorePerRegion <= 0 {
		return c.FlushAmpMax
	}
	amp := c.FlushAmpBase * math.Sqrt(c.FlushRefBytes/memstorePerRegion)
	if amp < 1 {
		amp = 1
	}
	if amp > c.FlushAmpMax {
		amp = c.FlushAmpMax
	}
	return amp
}

// opDemands computes resource demands for workload w's single-record
// read, write, and scan on region r hosted by node n, given the region's
// cache hit probability.
func (m *Model) opDemands(w *WorkloadPerf, r *RegionPerf, n *NodePerf, hit, pageHit float64) (read, write, scan demands) {
	c := m.Cost
	blockBytes := float64(n.Config.BlockBytes)
	// A warming block cache hits less than steady state; the OS page
	// cache survives process restarts, so it stays warm.
	hit *= 1 - n.ColdFraction
	miss := 1 - hit

	// Read: CPU always; a block-cache miss is served from the OS page
	// cache when the node's hosted bytes fit there, and only otherwise
	// pays a random disk I/O — remote when the block is not local.
	read.cpu = c.CPURead + miss*c.CPUMiss
	remoteMiss := miss * (1 - r.Locality)
	blockXfer := blockBytes / c.DiskBytesPerSec
	diskMiss := miss * (1 - pageHit)
	// Every disk miss costs one random block I/O somewhere; in
	// aggregate the datanodes' disk work is symmetric across the
	// cluster, so the full disk demand is charged here. A non-local
	// miss additionally pays the network fetch round trip and transfer.
	read.disk = diskMiss * (c.DiskSeek + blockXfer)
	read.net = remoteMiss * (c.NetRemoteRTT + blockBytes/c.NetBytesPerSec)

	// Write: CPU + WAL sequential bytes + amortized flush/compaction
	// I/O, scaled by the write amplification from the node's memstore
	// share.
	numRegions := len(m.regionsOn(n.Name))
	if numRegions < 1 {
		numRegions = 1
	}
	memPerRegion := float64(n.Config.MemstoreBytes()) / float64(numRegions)
	amp := c.writeAmp(memPerRegion)
	write.cpu = c.CPUWrite + c.CPUWriteBackground
	write.disk = w.RecordBytes * (c.WALBytesFactor + amp) / c.DiskBytesPerSec
	// Replication of WAL/flush data to one other datanode.
	write.net = w.RecordBytes / c.NetBytesPerSec

	// Scan: setup + per-record and per-block CPU. Scans bypass the
	// block cache (standard HBase practice to avoid polluting it) and
	// read through the OS page cache; the uncached fraction pays
	// fractional seeks — fewer with larger blocks, the Table 1 scan
	// profile's rationale — plus sequential transfer.
	records := w.AvgScanRecords
	if records < 1 {
		records = 1
	}
	bytes := records * w.RecordBytes
	blocks := bytes / blockBytes
	scan.cpu = c.CPUScanSetup + records*c.CPUScanRecord + blocks*c.CPUScanBlock
	scanDiskMiss := 1 - pageHit
	scan.disk = scanDiskMiss * (blocks*c.DiskSeek + bytes/c.DiskBytesPerSec)
	scan.net = scanDiskMiss * (1 - r.Locality) * (blocks*c.NetRemoteRTT + bytes/c.NetBytesPerSec)
	return read, write, scan
}

// station indexes one queueing resource of one node.
type station struct {
	node string
	res  int // 0 = cpu, 1 = disk, 2 = net
}

// Solve finds the closed-loop equilibrium using Schweitzer's approximate
// Mean Value Analysis over a multiclass closed queueing network: each
// workload is a class with a population of Threads, each node contributes
// three queueing stations (CPU, disk, network), and the client round
// trip is a delay (think-time) term. Cache hit ratios — which depend on
// the throughputs through the traffic-proportional cache allocation —
// are refreshed inside the same fixed-point loop.
func (m *Model) Solve() Solution {
	c := m.Cost
	sol := Solution{
		ThroughputOps: make(map[string]float64),
		NodeCPU:       make(map[string]float64),
		NodeDisk:      make(map[string]float64),
		NodeNet:       make(map[string]float64),
		ResponseTime:  make(map[string]float64),
		CacheHit:      make(map[string]float64),
		PageHit:       make(map[string]float64),
		Stall:         make(map[string]float64),
		NodeHandlers:  make(map[string]float64),
	}
	var active []*WorkloadPerf
	for _, w := range m.Workloads {
		if w.Active && w.Threads > 0 {
			active = append(active, w)
		} else {
			sol.ThroughputOps[w.Name] = 0
		}
	}
	nodeNames := make([]string, 0, len(m.Nodes))
	for n := range m.Nodes {
		nodeNames = append(nodeNames, n)
	}
	sort.Strings(nodeNames)
	stations := make([]station, 0, 4*len(nodeNames))
	stIdx := make(map[station]int)
	for _, n := range nodeNames {
		for res := 0; res < 4; res++ { // cpu, disk, net, rpc handlers
			s := station{node: n, res: res}
			stIdx[s] = len(stations)
			stations = append(stations, s)
		}
	}
	if len(active) == 0 || len(stations) == 0 {
		for _, n := range nodeNames {
			sol.NodeCPU[n], sol.NodeDisk[n], sol.NodeNet[n] = 0, 0, 0
			sol.CacheHit[n] = 1
		}
		return sol
	}

	nC, nS := len(active), len(stations)
	X := make([]float64, nC)
	// Q[c][s]: class-c queue length at station s; start spread evenly.
	Q := make([][]float64, nC)
	demand := make([][]float64, nC) // per-op demand of class c at station s
	offline := make([]float64, nC)  // per-op delay from offline regions
	regionHit := make(map[string]float64)
	nodePageHit := make(map[string]float64)
	nodeStall := make(map[string]float64)
	for ci, w := range active {
		Q[ci] = make([]float64, nS)
		demand[ci] = make([]float64, nS)
		X[ci] = float64(w.Threads) / (c.ClientRTT + 1e-3)
		for s := range Q[ci] {
			Q[ci][s] = float64(w.Threads) / float64(nS)
		}
	}

	// speed[s] discounts a disk station for background compaction load.
	speed := make([]float64, nS)

	for iter := 0; iter < 300; iter++ {
		// 1. Cache allocation and hit ratios from current throughputs.
		for _, name := range nodeNames {
			n := m.Nodes[name]
			regions := m.regionsOn(name)
			if len(regions) == 0 {
				sol.CacheHit[name] = 1
				continue
			}
			traffic := make(map[string]float64)
			var total, writeBytes float64
			for ci, w := range active {
				readFrac := w.Mix.Read + w.Mix.RMW + w.Mix.Scan
				writeFrac := w.Mix.Write + w.Mix.RMW
				for _, r := range regions {
					share := w.RegionShares[r]
					if share <= 0 {
						continue
					}
					t := X[ci] * share * readFrac
					traffic[r] += t
					total += t
					writeBytes += X[ci] * share * writeFrac * w.RecordBytes
				}
			}
			churn := 1 + c.CacheChurn*writeBytes/c.DiskBytesPerSec*10
			effCache := float64(n.Config.BlockCacheBytes()) / churn
			var hitSum float64
			for _, r := range regions {
				share := 1 / float64(len(regions))
				if total > 0 {
					share = traffic[r] / total
				}
				h := hitRatio(m.Regions[r], effCache*share)
				regionHit[r] = h
				hitSum += h * share
			}
			sol.CacheHit[name] = hitSum
			// OS page cache coverage of the node's hosted bytes,
			// degraded by the same write churn.
			var hosted float64
			for _, r := range regions {
				hosted += m.Regions[r].SizeBytes
			}
			if c.HostedReplicationFactor > 1 {
				hosted *= c.HostedReplicationFactor
			}
			ph := 1.0
			if hosted > 0 {
				ph = c.PageCacheBytes / churn / hosted
				if ph > 1 {
					ph = 1
				}
			}
			nodePageHit[name] = ph
			sol.PageHit[name] = ph
			// GC/flush stall from this node's flush pressure.
			memstore := float64(n.Config.MemstoreBytes())
			if memstore < 1 {
				memstore = 1
			}
			pressure := writeBytes / memstore
			stall := c.FlushPressureStall * pressure * pressure
			if stall > c.GCStallMax {
				stall = c.GCStallMax
			}
			nodeStall[name] = stall
			sol.Stall[name] = stall
		}

		// 2. Demands per class per station.
		for si, s := range stations {
			speed[si] = 1
			if s.res == 1 {
				bg := m.Nodes[s.node].BackgroundDiskBytesPerSec / c.DiskBytesPerSec
				if bg > 0.9 {
					bg = 0.9
				}
				speed[si] = 1 - bg
			}
		}
		for ci, w := range active {
			for s := range demand[ci] {
				demand[ci][s] = 0
			}
			offline[ci] = 0
			for r, share := range w.RegionShares {
				node := m.Placement[r]
				n, ok := m.Nodes[node]
				if !ok || n.Offline {
					offline[ci] += share * c.OfflinePenalty
					continue
				}
				offline[ci] += share * nodeStall[node]
				rd, wr, sc := m.opDemands(w, m.Regions[r], n, regionHit[r], nodePageHit[node])
				mix := w.Mix
				dCPU := mix.Read*rd.cpu + mix.Write*wr.cpu + mix.Scan*sc.cpu + mix.RMW*(rd.cpu+wr.cpu)
				dDisk := mix.Read*rd.disk + mix.Write*wr.disk + mix.Scan*sc.disk + mix.RMW*(rd.disk+wr.disk)
				dNet := mix.Read*rd.net + mix.Write*wr.net + mix.Scan*sc.net + mix.RMW*(rd.net+wr.net)
				// RPC handler residency: reads and scans hold a handler
				// through their service time, I/O and any GC/flush
				// stall; writes release theirs to the group-commit
				// path. The pool has Config.Handlers threads, so the
				// effective queueing demand is residency / pool size.
				stall := nodeStall[node]
				handlers := float64(n.Config.Handlers)
				if handlers < 1 {
					handlers = 1
				}
				readRes := rd.cpu + rd.disk + stall
				scanRes := sc.cpu + sc.disk + stall
				writeRes := wr.cpu
				dHandler := mix.Read*readRes + mix.Write*writeRes + mix.Scan*scanRes + mix.RMW*(readRes+writeRes)
				demand[ci][stIdx[station{node, 0}]] += share * dCPU
				demand[ci][stIdx[station{node, 1}]] += share * dDisk / speed[stIdx[station{node, 1}]]
				demand[ci][stIdx[station{node, 2}]] += share * dNet
				demand[ci][stIdx[station{node, 3}]] += share * dHandler / handlers
			}
		}

		// 3. One Schweitzer AMVA sweep.
		maxDelta := 0.0
		for ci, w := range active {
			N := float64(w.Threads)
			var R float64
			Rs := make([]float64, nS)
			for s := 0; s < nS; s++ {
				if demand[ci][s] == 0 {
					continue
				}
				// Queue seen on arrival: everyone else's queue plus
				// (N-1)/N of our own.
				var qOthers float64
				for cj := range active {
					if cj == ci {
						qOthers += Q[cj][s] * (N - 1) / N
					} else {
						qOthers += Q[cj][s]
					}
				}
				Rs[s] = demand[ci][s] * (1 + qOthers)
				R += Rs[s]
			}
			R += c.ClientRTT + offline[ci]
			R += (w.Mix.Write + w.Mix.RMW) * c.WriteSyncLatency
			R += w.Mix.Scan * w.AvgScanRecords * c.ScanClientPerRecord
			newX := N / R
			if w.TargetOpsPerSec > 0 && newX > w.TargetOpsPerSec {
				newX = w.TargetOpsPerSec
			}
			if d := math.Abs(newX - X[ci]); d > maxDelta {
				maxDelta = d
			}
			X[ci] = 0.5*X[ci] + 0.5*newX
			for s := 0; s < nS; s++ {
				Q[ci][s] = 0.5*Q[ci][s] + 0.5*X[ci]*Rs[s]
			}
			sol.ResponseTime[w.Name] = R
		}
		if maxDelta < 0.1 && iter > 20 {
			break
		}
	}

	for ci, w := range active {
		sol.ThroughputOps[w.Name] = X[ci]
	}
	// Utilizations for reporting.
	for _, n := range nodeNames {
		sol.NodeCPU[n], sol.NodeDisk[n], sol.NodeNet[n] = 0, 0, 0
	}
	for ci := range active {
		for si, s := range stations {
			u := X[ci] * demand[ci][si] * speed[si]
			switch s.res {
			case 0:
				sol.NodeCPU[s.node] += u
			case 1:
				sol.NodeDisk[s.node] += u
			case 2:
				sol.NodeNet[s.node] += u
			case 3:
				sol.NodeHandlers[s.node] += u
			}
		}
	}
	for _, n := range nodeNames {
		bg := m.Nodes[n].BackgroundDiskBytesPerSec / c.DiskBytesPerSec
		sol.NodeDisk[n] = math.Min(sol.NodeDisk[n]+bg, 1)
		sol.NodeCPU[n] = math.Min(sol.NodeCPU[n], 1)
		sol.NodeNet[n] = math.Min(sol.NodeNet[n], 1)
	}
	return sol
}
