// Package perfmodel is the timing layer of the reproduction: an analytic
// performance model of a multi-node HBase deployment driven by
// closed-loop clients. Where the functional layer (kv/hbase/hdfs)
// reproduces *what* the system does, this package reproduces *how fast*,
// using explicit mechanisms rather than curves fitted to the paper:
//
//   - per-node CPU, disk and network resources with service demands per
//     operation class;
//   - block-cache hit estimation from each region's key-popularity curve
//     and the node's configured cache size, with LRU churn from
//     co-located write traffic;
//   - memstore flush amortization (smaller memstore -> more flush and
//     compaction I/O per write);
//   - block-size effects (small blocks favor random reads, large blocks
//     favor scans);
//   - HDFS locality (remote reads pay network transfer and extra CPU);
//   - background disk load from major compactions;
//   - an approximate MVA solver for the closed-loop client population.
//
// The constants in CostModel are calibrated to the paper's testbed
// (Intel i3, 3 GB heap, one 7200 RPM SATA disk, switched GbE) so that
// absolute throughputs land in the paper's ranges; every experiment's
// *shape* comes from the mechanisms above.
package perfmodel

// CostModel holds hardware and software service-demand constants.
type CostModel struct {
	// CPU demands (seconds) per operation.
	CPURead  float64 // served from block cache
	CPUMiss  float64 // extra CPU per cache miss (decompress, copy)
	CPUWrite float64 // memstore insert + WAL append
	// CPUWriteBackground is the deferred CPU each write eventually
	// costs the node: minor compaction work and the JVM garbage
	// collection pressure of the write path. It is what makes a
	// write-heavy co-tenant slow down reads on the same node even when
	// the disk keeps up.
	CPUWriteBackground float64
	CPUScanSetup       float64 // per-scan fixed cost
	CPUScanRecord      float64 // per scanned record
	CPUScanBlock       float64 // per block touched by a scan (iteration overhead)

	// Disk characteristics.
	DiskSeek        float64 // seconds per random I/O
	DiskBytesPerSec float64
	// WALBytesFactor charges sequential WAL I/O per written byte.
	WALBytesFactor float64

	// Network characteristics (remote block fetches, replication).
	NetBytesPerSec float64
	NetRemoteRTT   float64 // per remote block fetch round trip

	// ClientRTT is the fixed client<->server round trip added to every
	// operation's response time.
	ClientRTT float64
	// ScanClientPerRecord is the client-side cost per scanned record
	// (YCSB streams scan results in batches and materializes every
	// row; the paper's measured scan latencies are tens of
	// milliseconds even on an idle cluster).
	ScanClientPerRecord float64
	// WriteSyncLatency is the per-write latency of the WAL sync to the
	// replicated HDFS pipeline (group commit keeps it off the server's
	// resource demands, but every client write waits for it).
	WriteSyncLatency float64

	// FlushRefBytes anchors write amplification: a memstore of this
	// size per region has amplification FlushAmpBase; smaller memstores
	// amplify more (more frequent flushes and compactions).
	FlushRefBytes float64
	FlushAmpBase  float64
	FlushAmpMax   float64

	// CacheChurn scales how strongly co-located write throughput
	// degrades cache effectiveness (LRU churn).
	CacheChurn float64

	// PageCacheBytes is the OS file-system cache per node (RAM left
	// over after the JVM heap plus what the flash/controller layer
	// effectively absorbs). Block-cache misses and scans are served
	// from it when the node's physically stored bytes fit; it suffers
	// the same write churn as the block cache. The paper's nodes have
	// 4 GB RAM and a 3 GB heap.
	PageCacheBytes float64
	// HostedReplicationFactor scales a node's logical hosted bytes to
	// the physical bytes competing for its page cache: with HDFS
	// replication 2, a datanode stores its own regions' primaries plus
	// other regions' secondaries.
	HostedReplicationFactor float64

	// FlushPressureStall converts a node's *flush pressure* — incoming
	// write bytes per second divided by its total memstore budget —
	// into a response-time stall added to every operation it serves:
	// the JVM garbage-collection and memstore-flush pauses of HBase's
	// write path. The stall grows with the square of the pressure, so
	// concentrating write-heavy partitions on a node with a small
	// (read-profile) memstore is much worse than spreading them, while
	// a write-profiled node (55% of the heap for memstores) absorbs
	// the same write rate with a fraction of the stall — the mechanism
	// behind both Table 1's write profile and the variance of the
	// paper's Random-Homogeneous runs. stall = FlushPressureStall *
	// (writeBytes/s / memstoreBytes)^2, capped at GCStallMax.
	FlushPressureStall float64
	GCStallMax         float64

	// UtilizationCap bounds resource utilization in the solver.
	UtilizationCap float64

	// OfflinePenalty is the response time charged to operations routed
	// to a region whose server is down (client retry/timeout loops).
	OfflinePenalty float64
}

// DefaultCostModel returns constants calibrated to the paper's testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		CPURead:                 50e-6,
		CPUMiss:                 100e-6,
		CPUWrite:                100e-6,
		CPUWriteBackground:      200e-6,
		CPUScanSetup:            250e-6,
		CPUScanRecord:           8e-6,
		CPUScanBlock:            100e-6,
		DiskSeek:                5e-3,
		DiskBytesPerSec:         100e6,
		WALBytesFactor:          2.0,
		NetBytesPerSec:          110e6,
		NetRemoteRTT:            350e-6,
		ClientRTT:               1.2e-3,
		ScanClientPerRecord:     0.5e-3,
		WriteSyncLatency:        3.5e-3,
		FlushRefBytes:           512e6,
		FlushAmpBase:            2.0,
		FlushAmpMax:             12,
		CacheChurn:              3,
		PageCacheBytes:          2.2e9,
		HostedReplicationFactor: 2,
		FlushPressureStall:      550,
		GCStallMax:              25e-3,
		UtilizationCap:          0.985,
		OfflinePenalty:          1.5,
	}
}
