package perfmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file closes the loop between the functional layer's measured I/O
// and the analytic model: cmd/metbench emits BENCH_*.json artifacts with
// per-op-class latencies and compaction throughput measured on the real
// durable engine (fsynced WAL, SSTables), and Calibrate folds those
// measurements back into the CostModel so model-based experiments
// reflect real fsync/SSTable costs instead of assumed constants.

// BenchArtifact mirrors the fields of cmd/metbench's -json output that
// calibration consumes; unknown fields are ignored so the artifact
// format can keep growing.
type BenchArtifact struct {
	Workload   string             `json:"workload"`
	Durable    bool               `json:"durable"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	NsPerOp    float64            `json:"ns_per_op"`
	PerOp      map[string]int64   `json:"per_op"`
	PerOpNs    map[string]float64 `json:"per_op_ns"`
	Compaction *struct {
		BytesIn      int64   `json:"bytes_in"`
		BytesOut     int64   `json:"bytes_out"`
		CompactionMs float64 `json:"compaction_ms"`
	} `json:"compaction"`
}

// LoadBenchArtifact parses a metbench -json artifact.
func LoadBenchArtifact(r io.Reader) (BenchArtifact, error) {
	var a BenchArtifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return a, fmt.Errorf("perfmodel: parse bench artifact: %w", err)
	}
	return a, nil
}

// Override records one calibrated constant.
type Override struct {
	Field    string
	Old, New float64
}

// CalibrationReport lists what Calibrate changed and why nothing more.
type CalibrationReport struct {
	Overrides []Override
	Skipped   []string
}

func (r *CalibrationReport) override(field string, old, new float64) {
	r.Overrides = append(r.Overrides, Override{Field: field, Old: old, New: new})
}

// Print writes a human-readable summary.
func (r CalibrationReport) Print(w io.Writer) {
	for _, o := range r.Overrides {
		fmt.Fprintf(w, "calibrated %-16s %12.3g -> %.3g\n", o.Field, o.Old, o.New)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(w, "skipped: %s\n", s)
	}
}

// Calibrate overrides m's cost constants with measurements from a
// durable-backend bench artifact:
//
//   - CPURead <- measured read latency (the in-process Get path: cache
//     lookup, index probe, block decode — no network, which ClientRTT
//     models separately);
//   - WriteSyncLatency <- measured write latency minus the CPU share,
//     i.e. the real fsync wait of the group-committed WAL;
//   - DiskBytesPerSec <- compaction throughput (bytes merged per second
//     of wall time inside CompactFiles), the honest sequential-I/O rate
//     of the machine the artifact came from.
//
// Only durable artifacts calibrate: an in-memory run measures no disk
// at all. Constants with no usable measurement keep their prior value,
// and every decision is reported.
func Calibrate(m CostModel, a BenchArtifact) (CostModel, CalibrationReport) {
	var rep CalibrationReport
	if !a.Durable {
		rep.Skipped = append(rep.Skipped, "artifact is not from the durable backend; nothing measured real disk")
		return m, rep
	}

	if readNs, ok := a.PerOpNs["read"]; ok && readNs > 0 {
		rep.override("CPURead", m.CPURead, readNs/1e9)
		m.CPURead = readNs / 1e9
	} else {
		rep.Skipped = append(rep.Skipped, "no read latency in artifact (write-only workload)")
	}

	// Weight update and insert together: both take the Put path.
	var writeNs, writeOps float64
	for _, op := range []string{"update", "insert"} {
		if ns, ok := a.PerOpNs[op]; ok && ns > 0 {
			n := float64(a.PerOp[op])
			writeNs += ns * n
			writeOps += n
		}
	}
	if writeOps > 0 {
		sync := writeNs/writeOps/1e9 - m.CPUWrite
		if sync < 0 {
			sync = 0
		}
		rep.override("WriteSyncLatency", m.WriteSyncLatency, sync)
		m.WriteSyncLatency = sync
	} else {
		rep.Skipped = append(rep.Skipped, "no write latency in artifact (read-only workload)")
	}

	if c := a.Compaction; c != nil && c.CompactionMs > 0 && c.BytesIn+c.BytesOut > 0 {
		rate := float64(c.BytesIn+c.BytesOut) / (c.CompactionMs / 1e3)
		rep.override("DiskBytesPerSec", m.DiskBytesPerSec, rate)
		m.DiskBytesPerSec = rate
	} else {
		rep.Skipped = append(rep.Skipped, "no compaction activity in artifact; disk throughput keeps its prior")
	}
	return m, rep
}

// CalibrateFromFile is Calibrate over a BENCH_*.json path.
func CalibrateFromFile(m CostModel, path string) (CostModel, CalibrationReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return m, CalibrationReport{}, err
	}
	defer f.Close()
	a, err := LoadBenchArtifact(f)
	if err != nil {
		return m, CalibrationReport{}, err
	}
	out, rep := Calibrate(m, a)
	return out, rep, nil
}

// calibratedDefault, when set via SetDefaultCostModel, replaces the
// paper-testbed constants in every subsequently built Model — the hook
// cmd/metsim's -calibrate flag uses. Set it once at startup; it is not
// synchronized.
var calibratedDefault *CostModel

// SetDefaultCostModel makes m the cost model NewModel hands out.
func SetDefaultCostModel(m CostModel) { calibratedDefault = &m }

// activeCostModel returns the calibrated override, or the paper
// defaults.
func activeCostModel() CostModel {
	if calibratedDefault != nil {
		return *calibratedDefault
	}
	return DefaultCostModel()
}
