package perfmodel

import (
	"fmt"
	"testing"

	"met/internal/hbase"
)

// profile builds a ServerConfig with the given memory split and block
// size, mirroring Table 1 node profiles.
func profile(cache, memstore float64, blockKB int) hbase.ServerConfig {
	return hbase.ServerConfig{
		HeapBytes:          3 << 30,
		BlockCacheFraction: cache,
		MemstoreFraction:   memstore,
		BlockBytes:         blockKB << 10,
		Handlers:           10,
	}
}

// simpleModel builds one node, one region, one workload.
func simpleModel(cfg hbase.ServerConfig, mix OpMix, regionBytes float64, locality float64) *Model {
	m := NewModel()
	m.Nodes["rs0"] = &NodePerf{Name: "rs0", Config: cfg}
	m.Regions["r0"] = &RegionPerf{
		Name: "r0", SizeBytes: regionBytes,
		HotDataFrac: 0.4, HotTrafficFrac: 0.5, Locality: locality,
	}
	m.Placement["r0"] = "rs0"
	m.Workloads = []*WorkloadPerf{{
		Name: "W", Threads: 50, Mix: mix, RecordBytes: 1000,
		AvgScanRecords: 50, RegionShares: map[string]float64{"r0": 1}, Active: true,
	}}
	return m
}

func TestValidate(t *testing.T) {
	m := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 250e6, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Placement["ghost"] = "rs0"
	if m.Validate() == nil {
		t.Fatal("unknown region accepted")
	}
	delete(m.Placement, "ghost")
	m.Placement["r0"] = "ghostnode"
	if m.Validate() == nil {
		t.Fatal("unknown node accepted")
	}
	m.Placement["r0"] = "rs0"
	m.Workloads[0].RegionShares["r0"] = 0.5
	if m.Validate() == nil {
		t.Fatal("shares not summing to 1 accepted")
	}
	m.Workloads[0].RegionShares["r0"] = 1
	m.Workloads[0].Mix = OpMix{Read: 0.5}
	if m.Validate() == nil {
		t.Fatal("mix not summing to 1 accepted")
	}
}

func TestSolveDeterministic(t *testing.T) {
	build := func() *Model { return simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 250e6, 1) }
	a := build().Solve()
	b := build().Solve()
	if a.ThroughputOps["W"] != b.ThroughputOps["W"] {
		t.Fatalf("non-deterministic: %v vs %v", a.ThroughputOps["W"], b.ThroughputOps["W"])
	}
}

func TestReadThroughputInPaperRange(t *testing.T) {
	// A fully cached read-only region on a read-profile node should
	// serve on the order of 10-30 kops/s with 50 threads (WorkloadC's
	// neighborhood in Figure 1).
	m := simpleModel(profile(0.55, 0.10, 32), OpMix{Read: 1}, 250e6, 1)
	x := m.Solve().ThroughputOps["W"]
	if x < 8000 || x > 45000 {
		t.Fatalf("read throughput = %.0f, want ~10-30k", x)
	}
}

func TestBiggerCacheHelpsReads(t *testing.T) {
	// Region bigger than the small cache: misses hit disk.
	big := simpleModel(profile(0.55, 0.10, 64), OpMix{Read: 1}, 4e9, 1).Solve()
	small := simpleModel(profile(0.10, 0.55, 64), OpMix{Read: 1}, 4e9, 1).Solve()
	if big.ThroughputOps["W"] <= small.ThroughputOps["W"]*1.2 {
		t.Fatalf("read profile %.0f not clearly above write profile %.0f",
			big.ThroughputOps["W"], small.ThroughputOps["W"])
	}
}

func TestBiggerMemstoreHelpsWrites(t *testing.T) {
	// Hosting the paper's usual 4 regions per node, a write-profile
	// node's per-region memstore share is ~8x the read-profile's, so
	// its flush amplification — and write disk demand — is much lower.
	build := func(cfg hbase.ServerConfig) *Model {
		m := NewModel()
		m.Nodes["rs0"] = &NodePerf{Name: "rs0", Config: cfg}
		shares := map[string]float64{}
		for i := 0; i < 4; i++ {
			r := fmt.Sprintf("r%d", i)
			m.Regions[r] = &RegionPerf{Name: r, SizeBytes: 250e6, HotDataFrac: 0.4, HotTrafficFrac: 0.5, Locality: 1}
			m.Placement[r] = "rs0"
			shares[r] = 0.25
		}
		m.Workloads = []*WorkloadPerf{{
			Name: "W", Threads: 50, Mix: OpMix{Write: 1}, RecordBytes: 1000,
			AvgScanRecords: 50, RegionShares: shares, Active: true,
		}}
		return m
	}
	wr := build(profile(0.10, 0.55, 64)).Solve()
	rd := build(profile(0.55, 0.10, 64)).Solve()
	if wr.ThroughputOps["W"] <= rd.ThroughputOps["W"] {
		t.Fatalf("write profile %.0f not above read profile %.0f for writes",
			wr.ThroughputOps["W"], rd.ThroughputOps["W"])
	}
}

func TestBiggerBlocksHelpScans(t *testing.T) {
	// Uncachable region (large), scan-only workload.
	scan128 := simpleModel(profile(0.55, 0.10, 128), OpMix{Scan: 1}, 8e9, 1).Solve()
	scan32 := simpleModel(profile(0.55, 0.10, 32), OpMix{Scan: 1}, 8e9, 1).Solve()
	if scan128.ThroughputOps["W"] <= scan32.ThroughputOps["W"] {
		t.Fatalf("128KB blocks %.1f not above 32KB %.1f for scans",
			scan128.ThroughputOps["W"], scan32.ThroughputOps["W"])
	}
}

func TestSmallerBlocksHelpRandomReads(t *testing.T) {
	rd32 := simpleModel(profile(0.39, 0.26, 32), OpMix{Read: 1}, 8e9, 1).Solve()
	rd128 := simpleModel(profile(0.39, 0.26, 128), OpMix{Read: 1}, 8e9, 1).Solve()
	if rd32.ThroughputOps["W"] <= rd128.ThroughputOps["W"] {
		t.Fatalf("32KB blocks %.0f not above 128KB %.0f for random reads",
			rd32.ThroughputOps["W"], rd128.ThroughputOps["W"])
	}
}

func TestLowLocalityHurts(t *testing.T) {
	local := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 8e9, 1.0).Solve()
	remote := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 8e9, 0.0).Solve()
	if remote.ThroughputOps["W"] >= local.ThroughputOps["W"] {
		t.Fatalf("remote %.0f not below local %.0f", remote.ThroughputOps["W"], local.ThroughputOps["W"])
	}
}

func TestOfflineNodeDegradesThroughput(t *testing.T) {
	up := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 250e6, 1)
	down := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 250e6, 1)
	down.Nodes["rs0"].Offline = true
	xUp := up.Solve().ThroughputOps["W"]
	xDown := down.Solve().ThroughputOps["W"]
	if xDown >= xUp/10 {
		t.Fatalf("offline throughput %.0f not <<%.0f", xDown, xUp)
	}
}

func TestBackgroundCompactionLoad(t *testing.T) {
	idle := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 8e9, 1)
	busy := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 8e9, 1)
	busy.Nodes["rs0"].BackgroundDiskBytesPerSec = 80e6 // compaction at ~80 MB/s
	xi := idle.Solve().ThroughputOps["W"]
	xb := busy.Solve().ThroughputOps["W"]
	if xb >= xi {
		t.Fatalf("compaction load did not hurt: %.0f vs %.0f", xb, xi)
	}
}

func TestTargetThroughputCap(t *testing.T) {
	m := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 250e6, 1)
	m.Workloads[0].TargetOpsPerSec = 1500
	x := m.Solve().ThroughputOps["W"]
	if x > 1501 {
		t.Fatalf("target exceeded: %.0f", x)
	}
	if x < 1400 {
		t.Fatalf("target not approached: %.0f", x)
	}
}

func TestInactiveWorkloadZero(t *testing.T) {
	m := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 1}, 250e6, 1)
	m.Workloads[0].Active = false
	s := m.Solve()
	if s.ThroughputOps["W"] != 0 {
		t.Fatalf("inactive workload throughput = %v", s.ThroughputOps["W"])
	}
}

func TestMoreNodesMoreThroughput(t *testing.T) {
	build := func(nodes int) *Model {
		m := NewModel()
		shares := map[string]float64{}
		for i := 0; i < 8; i++ {
			r := fmt.Sprintf("r%d", i)
			m.Regions[r] = &RegionPerf{Name: r, SizeBytes: 2e9, HotDataFrac: 0.4, HotTrafficFrac: 0.5, Locality: 1}
			shares[r] = 1.0 / 8
		}
		for i := 0; i < nodes; i++ {
			n := fmt.Sprintf("rs%d", i)
			m.Nodes[n] = &NodePerf{Name: n, Config: profile(0.39, 0.26, 64)}
		}
		for i := 0; i < 8; i++ {
			m.Placement[fmt.Sprintf("r%d", i)] = fmt.Sprintf("rs%d", i%nodes)
		}
		m.Workloads = []*WorkloadPerf{{
			Name: "W", Threads: 200, Mix: OpMix{Read: 0.6, Write: 0.4},
			RecordBytes: 1000, AvgScanRecords: 50, RegionShares: shares, Active: true,
		}}
		return m
	}
	x2 := build(2).Solve().Total()
	x4 := build(4).Solve().Total()
	if x4 <= x2*1.1 {
		t.Fatalf("scaling failed: 2 nodes %.0f, 4 nodes %.0f", x2, x4)
	}
}

func TestSkewedPlacementUnderperformsBalanced(t *testing.T) {
	build := func(skewed bool) *Model {
		m := NewModel()
		// Small, fully-cached regions: nodes are CPU-bound, so load
		// skew — not cache pressure — is what differentiates placements.
		shares := map[string]float64{"hot": 0.34, "mid": 0.26, "c1": 0.2, "c2": 0.2}
		for r := range shares {
			m.Regions[r] = &RegionPerf{Name: r, SizeBytes: 250e6, HotDataFrac: 0.4, HotTrafficFrac: 0.5, Locality: 1}
		}
		m.Nodes["rs0"] = &NodePerf{Name: "rs0", Config: profile(0.39, 0.26, 64)}
		m.Nodes["rs1"] = &NodePerf{Name: "rs1", Config: profile(0.39, 0.26, 64)}
		if skewed {
			// Hotspot and intermediate together.
			m.Placement = map[string]string{"hot": "rs0", "mid": "rs0", "c1": "rs1", "c2": "rs1"}
		} else {
			m.Placement = map[string]string{"hot": "rs0", "c1": "rs0", "mid": "rs1", "c2": "rs1"}
		}
		m.Workloads = []*WorkloadPerf{{
			Name: "W", Threads: 100, Mix: OpMix{Read: 0.7, Write: 0.3},
			RecordBytes: 1000, AvgScanRecords: 50, RegionShares: shares, Active: true,
		}}
		return m
	}
	balanced := build(false).Solve().Total()
	skewed := build(true).Solve().Total()
	if skewed >= balanced {
		t.Fatalf("skewed %.0f not below balanced %.0f", skewed, balanced)
	}
}

func TestUtilizationsBounded(t *testing.T) {
	m := simpleModel(profile(0.39, 0.26, 64), OpMix{Read: 0.5, Write: 0.3, Scan: 0.1, RMW: 0.1}, 8e9, 0.5)
	m.Workloads[0].Threads = 500
	s := m.Solve()
	for n, u := range s.NodeCPU {
		if u < 0 || u > 1 {
			t.Fatalf("cpu[%s] = %v", n, u)
		}
	}
	for n, u := range s.NodeDisk {
		if u < 0 || u > 1 {
			t.Fatalf("disk[%s] = %v", n, u)
		}
	}
	for n, u := range s.NodeNet {
		if u < 0 || u > 1 {
			t.Fatalf("net[%s] = %v", n, u)
		}
	}
	if s.CacheHit["rs0"] < 0 || s.CacheHit["rs0"] > 1 {
		t.Fatalf("hit = %v", s.CacheHit["rs0"])
	}
	if s.Total() <= 0 {
		t.Fatal("no throughput")
	}
	if s.ResponseTime["W"] <= 0 {
		t.Fatal("no response time")
	}
}

func TestHitRatioCurve(t *testing.T) {
	r := &RegionPerf{SizeBytes: 1000, HotDataFrac: 0.4, HotTrafficFrac: 0.5}
	if h := hitRatio(r, 1000); h != 1 {
		t.Fatalf("full cache hit = %v", h)
	}
	if h := hitRatio(r, 2000); h != 1 {
		t.Fatalf("oversize cache hit = %v", h)
	}
	// Cache exactly the hot set: hit = hot traffic.
	if h := hitRatio(r, 400); h != 0.5 {
		t.Fatalf("hot-set cache hit = %v", h)
	}
	// Half the hot set.
	if h := hitRatio(r, 200); h != 0.25 {
		t.Fatalf("half-hot cache hit = %v", h)
	}
	// Hot set + half the cold set.
	if h := hitRatio(r, 700); h != 0.75 {
		t.Fatalf("mixed cache hit = %v", h)
	}
	// Degenerate regions.
	if h := hitRatio(&RegionPerf{SizeBytes: 0}, 0); h != 1 {
		t.Fatalf("empty region hit = %v", h)
	}
	flat := &RegionPerf{SizeBytes: 1000, HotDataFrac: 0, HotTrafficFrac: 0}
	if h := hitRatio(flat, 500); h != 0.5 {
		t.Fatalf("uniform region hit = %v", h)
	}
}

func TestWriteAmpMonotone(t *testing.T) {
	c := DefaultCostModel()
	small := c.writeAmp(8e6)
	big := c.writeAmp(512e6)
	if small <= big {
		t.Fatalf("write amp not monotone: small=%v big=%v", small, big)
	}
	if c.writeAmp(0) != c.FlushAmpMax {
		t.Fatal("zero memstore should clamp to max")
	}
	if c.writeAmp(1e18) < 1 {
		t.Fatal("amp below 1")
	}
}

func BenchmarkSolve(b *testing.B) {
	m := NewModel()
	shares := map[string]float64{}
	for i := 0; i < 21; i++ {
		r := fmt.Sprintf("r%d", i)
		m.Regions[r] = &RegionPerf{Name: r, SizeBytes: 1e9, HotDataFrac: 0.4, HotTrafficFrac: 0.5, Locality: 1}
		shares[r] = 1.0 / 21
	}
	for i := 0; i < 5; i++ {
		n := fmt.Sprintf("rs%d", i)
		m.Nodes[n] = &NodePerf{Name: n, Config: profile(0.39, 0.26, 64)}
	}
	i := 0
	for r := range m.Regions {
		m.Placement[r] = fmt.Sprintf("rs%d", i%5)
		i++
	}
	m.Workloads = []*WorkloadPerf{{
		Name: "W", Threads: 255, Mix: OpMix{Read: 0.5, Write: 0.4, Scan: 0.1},
		RecordBytes: 1000, AvgScanRecords: 50, RegionShares: shares, Active: true,
	}}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Solve()
	}
}
