package perfmodel

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) BenchArtifact {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := LoadBenchArtifact(f)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The workload-A durable fixture has measured read and write latencies
// but no compaction activity: reads and the fsync premium calibrate,
// disk throughput keeps its prior.
func TestCalibrateFromWorkloadAArtifact(t *testing.T) {
	a := loadFixture(t, "BENCH_durable_A.json")
	base := DefaultCostModel()
	m, rep := Calibrate(base, a)

	wantRead := a.PerOpNs["read"] / 1e9
	if math.Abs(m.CPURead-wantRead) > 1e-12 {
		t.Fatalf("CPURead = %v, want measured %v", m.CPURead, wantRead)
	}
	wantSync := a.PerOpNs["update"]/1e9 - base.CPUWrite
	if math.Abs(m.WriteSyncLatency-wantSync) > 1e-12 {
		t.Fatalf("WriteSyncLatency = %v, want measured %v", m.WriteSyncLatency, wantSync)
	}
	if m.WriteSyncLatency <= 0 {
		t.Fatalf("fixture's durable writes are fsync-bound; premium must be positive, got %v", m.WriteSyncLatency)
	}
	if m.DiskBytesPerSec != base.DiskBytesPerSec {
		t.Fatalf("DiskBytesPerSec changed without compaction data: %v", m.DiskBytesPerSec)
	}
	if len(rep.Overrides) != 2 {
		t.Fatalf("overrides = %+v, want CPURead and WriteSyncLatency", rep.Overrides)
	}
	foundSkip := false
	for _, s := range rep.Skipped {
		if strings.Contains(s, "no compaction activity") {
			foundSkip = true
		}
	}
	if !foundSkip {
		t.Fatalf("missing skip reason for disk throughput: %+v", rep.Skipped)
	}
}

// The sustained-write fixture has real background-compaction activity:
// disk throughput calibrates from merged bytes per compaction second.
func TestCalibrateFromSustainedArtifact(t *testing.T) {
	a := loadFixture(t, "BENCH_durable_sustained.json")
	base := DefaultCostModel()
	m, rep := Calibrate(base, a)

	c := a.Compaction
	if c == nil || c.CompactionMs <= 0 {
		t.Fatal("fixture must contain compaction activity")
	}
	wantRate := float64(c.BytesIn+c.BytesOut) / (c.CompactionMs / 1e3)
	if math.Abs(m.DiskBytesPerSec-wantRate)/wantRate > 1e-9 {
		t.Fatalf("DiskBytesPerSec = %v, want %v", m.DiskBytesPerSec, wantRate)
	}
	// Workload B is write-only: CPURead must keep its prior.
	if m.CPURead != base.CPURead {
		t.Fatalf("CPURead changed without read measurements: %v", m.CPURead)
	}
	if len(rep.Overrides) != 2 { // WriteSyncLatency + DiskBytesPerSec
		t.Fatalf("overrides = %+v", rep.Overrides)
	}
}

// A non-durable artifact measured no disk; calibration must refuse it.
func TestCalibrateRejectsMemoryArtifact(t *testing.T) {
	base := DefaultCostModel()
	m, rep := Calibrate(base, BenchArtifact{Durable: false, PerOpNs: map[string]float64{"read": 500}})
	if m != base {
		t.Fatalf("memory artifact must not change the model")
	}
	if len(rep.Overrides) != 0 || len(rep.Skipped) == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// SetDefaultCostModel must reroute NewModel's constants (the metsim
// -calibrate hook) without touching DefaultCostModel itself.
func TestSetDefaultCostModel(t *testing.T) {
	defer func() { calibratedDefault = nil }()
	cm := DefaultCostModel()
	cm.DiskBytesPerSec = 42e6
	SetDefaultCostModel(cm)
	if got := NewModel().Cost.DiskBytesPerSec; got != 42e6 {
		t.Fatalf("NewModel cost = %v, want calibrated 42e6", got)
	}
	if DefaultCostModel().DiskBytesPerSec == 42e6 {
		t.Fatal("DefaultCostModel must stay the paper constants")
	}
}
