package metrics

// Smoother is Brown's simple exponential smoothing (the paper cites
// R. G. Brown, "Smoothing, forecasting and prediction of discrete time
// series", 1963). The most recent observation carries the most weight,
// with earlier observations decaying exponentially — exactly the
// behaviour MeT's Monitor uses to avoid reacting to temporary spikes.
//
// The Monitor additionally discards all history after each Actuator
// action; Reset implements that.
type Smoother struct {
	// Alpha in (0,1]: weight of the newest observation. The paper does
	// not publish its alpha; 0.5 weighs the latest sample most while
	// still requiring a sustained trend to move the estimate.
	Alpha float64

	value  float64
	primed bool
	n      int
}

// NewSmoother returns a smoother with the given alpha. Alpha is clamped
// to (0, 1].
func NewSmoother(alpha float64) *Smoother {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &Smoother{Alpha: alpha}
}

// Observe folds a new observation into the estimate and returns the
// updated smoothed value.
func (s *Smoother) Observe(v float64) float64 {
	if !s.primed {
		s.value = v
		s.primed = true
	} else {
		s.value = s.Alpha*v + (1-s.Alpha)*s.value
	}
	s.n++
	return s.value
}

// Value returns the current smoothed estimate (0 before any observation).
func (s *Smoother) Value() float64 { return s.value }

// Count returns the number of observations since the last Reset. The
// Decision Maker requires a minimum number of samples (6 in the paper)
// before acting.
func (s *Smoother) Count() int { return s.n }

// Reset discards all state. The Monitor calls this after every Actuator
// action so decisions are based only on post-action observations.
func (s *Smoother) Reset() {
	s.value = 0
	s.primed = false
	s.n = 0
}

// Smooth applies Brown smoothing over a whole slice and returns the final
// estimate; convenient for one-shot summaries of a window.
func Smooth(vs []float64, alpha float64) float64 {
	s := NewSmoother(alpha)
	for _, v := range vs {
		s.Observe(v)
	}
	return s.Value()
}
