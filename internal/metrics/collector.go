package metrics

import (
	"sort"

	"met/internal/obs"
	"met/internal/sim"
)

// SystemMetrics are the Ganglia-level metrics MeT monitors per node.
// Simulated clusters synthesize the three fractions; durable clusters
// additionally carry a real runtime sample in Process (zero-valued when
// the cluster is simulated), and derive MemoryUsage from it.
type SystemMetrics struct {
	CPUUtilization float64 // fraction of CPU busy, 0..1
	IOWait         float64 // fraction of time waiting on disk, 0..1
	MemoryUsage    float64 // fraction of memory in use, 0..1

	// Process is the Go runtime sample behind the fractions when the
	// node is backed by a real process (heap, GC, goroutines).
	Process obs.ProcessStats
}

// RequestCounts are cumulative operation counters, per node or per region,
// matching the JMX metrics the paper collects (the scan counter is the
// one the authors added to HBase themselves).
type RequestCounts struct {
	Reads  int64
	Writes int64
	Scans  int64
}

// Total returns the total number of requests.
func (c RequestCounts) Total() int64 { return c.Reads + c.Writes + c.Scans }

// Add returns the element-wise sum of two counters.
func (c RequestCounts) Add(o RequestCounts) RequestCounts {
	return RequestCounts{Reads: c.Reads + o.Reads, Writes: c.Writes + o.Writes, Scans: c.Scans + o.Scans}
}

// Sub returns the element-wise difference c - o, useful for converting
// cumulative counters into per-interval deltas.
func (c RequestCounts) Sub(o RequestCounts) RequestCounts {
	return RequestCounts{Reads: c.Reads - o.Reads, Writes: c.Writes - o.Writes, Scans: c.Scans - o.Scans}
}

// EngineStats carries per-node storage-engine health counters — the
// compaction-era metrics the JMX exporter would surface alongside the
// request counts: write-path backpressure (stall time), write
// amplification, and how far background compaction is behind.
type EngineStats struct {
	// Flushes and Compactions are cumulative engine events.
	Flushes     int64
	Compactions int64
	// CompactionQueueDepth is the number of compaction requests queued
	// for this node's stores right now (a gauge).
	CompactionQueueDepth int64
	// StallNanos is cumulative writer time spent blocked at the hard
	// store-file ceiling.
	StallNanos int64
	// WriteAmplification is physical bytes written per logical byte.
	WriteAmplification float64
	// ReplicationQueueDepth is the number of regions whose replica
	// copies are behind the primary right now (a gauge); sustained
	// non-zero depth means the followers are falling behind and a
	// failover would lose more than the memstore.
	ReplicationQueueDepth int64
	// ReplicationBytesShipped is cumulative SSTable bytes copied to
	// follower replica directories.
	ReplicationBytesShipped int64
	// WALAppends and WALSyncRounds are cumulative records appended to
	// and successful fsync rounds on the node's shared write-ahead log.
	// Their ratio is achieved group-commit batching: all hosted regions
	// share one fsync stream, so appends/round grows with concurrent
	// write pressure instead of degrading with region count.
	WALAppends    int64
	WALSyncRounds int64
	// Tail carries the node's latency-percentile summaries from the
	// telemetry layer (met/internal/obs). Zero-valued summaries mean the
	// subsystem has not recorded yet (or the cluster predates telemetry).
	Tail TailLatencies
}

// TailLatencies is the percentile view of a node's latency histograms:
// the three serving classes plus every engine-side duration. It is the
// collector-friendly form of hbase.LatencyStats (summaries, not full
// histograms, so observations stay cheap to copy and to serialize).
type TailLatencies struct {
	Get             obs.LatencySummary
	Put             obs.LatencySummary
	Scan            obs.LatencySummary
	Fsync           obs.LatencySummary
	Flush           obs.LatencySummary
	Compaction      obs.LatencySummary
	ReplicationShip obs.LatencySummary
	TailShip        obs.LatencySummary
}

// NodeObservation is one monitoring sample for one node.
type NodeObservation struct {
	At       sim.Time
	Node     string
	System   SystemMetrics
	Requests RequestCounts // delta over the sampling interval
	Locality float64       // fraction of served data stored locally, 0..1
	Engine   EngineStats   // cumulative engine counters (functional layer)
}

// RegionObservation is one monitoring sample for one data partition.
type RegionObservation struct {
	At       sim.Time
	Region   string
	Node     string
	Requests RequestCounts // delta over the sampling interval
	SizeMB   float64
}

// Source is anything the collector can poll: the simulated cluster
// implements this to expose its current state.
type Source interface {
	// Observe returns the current per-node and per-region samples.
	Observe(now sim.Time) ([]NodeObservation, []RegionObservation)
}

// Collector polls a Source on a fixed interval and maintains smoothed
// per-node system metrics plus windows of raw observations. It is the
// concrete Monitor backend.
type Collector struct {
	source Source
	alpha  float64

	nodeCPU      map[string]*Smoother
	nodeIO       map[string]*Smoother
	nodeMem      map[string]*Smoother
	lastNodes    []NodeObservation
	lastRegions  []RegionObservation
	observations int
}

// NewCollector creates a collector over src with smoothing factor alpha.
func NewCollector(src Source, alpha float64) *Collector {
	return &Collector{
		source:  src,
		alpha:   alpha,
		nodeCPU: make(map[string]*Smoother),
		nodeIO:  make(map[string]*Smoother),
		nodeMem: make(map[string]*Smoother),
	}
}

// Poll takes one sample from the source and folds it into the smoothed
// state. It returns the raw observations for callers that keep history.
func (c *Collector) Poll(now sim.Time) ([]NodeObservation, []RegionObservation) {
	nodes, regions := c.source.Observe(now)
	for _, n := range nodes {
		c.smoother(c.nodeCPU, n.Node).Observe(n.System.CPUUtilization)
		c.smoother(c.nodeIO, n.Node).Observe(n.System.IOWait)
		c.smoother(c.nodeMem, n.Node).Observe(n.System.MemoryUsage)
	}
	c.lastNodes = nodes
	c.lastRegions = regions
	c.observations++
	return nodes, regions
}

func (c *Collector) smoother(m map[string]*Smoother, node string) *Smoother {
	s, ok := m[node]
	if !ok {
		s = NewSmoother(c.alpha)
		m[node] = s
	}
	return s
}

// Observations returns the number of polls since the last Reset.
func (c *Collector) Observations() int { return c.observations }

// Reset drops all smoothed state; called after every actuation, per the
// paper ("storing only the observations after each Actuator's action").
func (c *Collector) Reset() {
	for _, s := range c.nodeCPU {
		s.Reset()
	}
	for _, s := range c.nodeIO {
		s.Reset()
	}
	for _, s := range c.nodeMem {
		s.Reset()
	}
	c.observations = 0
}

// SmoothedCPU returns the smoothed CPU utilization per node.
func (c *Collector) SmoothedCPU() map[string]float64 { return smoothedValues(c.nodeCPU) }

// SmoothedIOWait returns the smoothed I/O wait per node.
func (c *Collector) SmoothedIOWait() map[string]float64 { return smoothedValues(c.nodeIO) }

// SmoothedMemory returns the smoothed memory usage per node.
func (c *Collector) SmoothedMemory() map[string]float64 { return smoothedValues(c.nodeMem) }

func smoothedValues(m map[string]*Smoother) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, s := range m {
		if s.Count() > 0 {
			out[k] = s.Value()
		}
	}
	return out
}

// LastNodes returns the most recent raw node observations.
func (c *Collector) LastNodes() []NodeObservation { return c.lastNodes }

// LastRegions returns the most recent raw region observations.
func (c *Collector) LastRegions() []RegionObservation { return c.lastRegions }

// Nodes returns the sorted set of node names seen so far.
func (c *Collector) Nodes() []string {
	names := make([]string, 0, len(c.nodeCPU))
	for k := range c.nodeCPU {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
