package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"met/internal/sim"
)

func TestSeriesAppendAndQuery(t *testing.T) {
	var s Series
	s.Name = "cpu"
	s.Append(0, 0.1)
	s.Append(sim.Second, 0.2)
	s.Append(2*sim.Second, 0.3)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if last := s.Last(); last.Value != 0.3 || last.At != 2*sim.Second {
		t.Fatalf("last = %+v", last)
	}
	if got := s.Since(sim.Second); len(got) != 2 || got[0].Value != 0.2 {
		t.Fatalf("since = %+v", got)
	}
	if m := s.Mean(); math.Abs(m-0.2) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Last() != (Sample{}) {
		t.Fatal("empty Last should be zero")
	}
	if s.Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
	if got := s.Since(0); len(got) != 0 {
		t.Fatal("empty Since should be empty")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s Series
	s.Append(sim.Second, 1)
	s.Append(0, 2)
}

func TestMeanSumStdDev(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := Sum(vs); s != 40 {
		t.Errorf("sum = %v", s)
	}
	if sd := StdDev(vs); sd != 2 {
		t.Errorf("stddev = %v, want 2", sd)
	}
	if StdDev(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1}, {-5, 1}, {110, 10},
	}
	for _, c := range cases {
		if got := Percentile(vs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Error("single-element percentile")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vs := []float64{3, 1, 2}
	Percentile(vs, 50)
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Fatalf("input mutated: %v", vs)
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := sim.NewRNG(4)
	if err := quick.Check(func(seed uint32) bool {
		n := int(seed%50) + 2
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(vs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCDF(t *testing.T) {
	vs := make([]float64, 101)
	for i := range vs {
		vs[i] = float64(i)
	}
	c := NewCDF(vs)
	if c.P5 != 5 || c.P25 != 25 || c.P50 != 50 || c.P75 != 75 || c.P90 != 90 {
		t.Fatalf("cdf = %+v", c)
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSmootherConverges(t *testing.T) {
	s := NewSmoother(0.5)
	for i := 0; i < 50; i++ {
		s.Observe(10)
	}
	if math.Abs(s.Value()-10) > 1e-9 {
		t.Fatalf("smoother = %v, want 10", s.Value())
	}
	if s.Count() != 50 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestSmootherDampsSpike(t *testing.T) {
	s := NewSmoother(0.5)
	for i := 0; i < 10; i++ {
		s.Observe(1)
	}
	spiked := s.Observe(100)
	if spiked >= 100 {
		t.Fatal("spike not damped")
	}
	if spiked <= 1 {
		t.Fatal("spike ignored entirely")
	}
	// Recent observations dominate: after the spike, a few normal samples
	// bring the estimate back down.
	for i := 0; i < 10; i++ {
		s.Observe(1)
	}
	if s.Value() > 2 {
		t.Fatalf("estimate %v did not recover", s.Value())
	}
}

func TestSmootherRecentWeighsMost(t *testing.T) {
	// With alpha=0.5 the newest sample has the single largest weight.
	s := NewSmoother(0.5)
	s.Observe(0)
	s.Observe(0)
	v := s.Observe(8)
	if v != 4 {
		t.Fatalf("value = %v, want 4", v)
	}
}

func TestSmootherReset(t *testing.T) {
	s := NewSmoother(0.3)
	s.Observe(5)
	s.Reset()
	if s.Count() != 0 || s.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
	if got := s.Observe(7); got != 7 {
		t.Fatalf("first post-reset observation = %v, want 7", got)
	}
}

func TestSmootherAlphaClamped(t *testing.T) {
	if s := NewSmoother(0); s.Alpha <= 0 {
		t.Fatal("alpha not clamped up")
	}
	if s := NewSmoother(5); s.Alpha != 1 {
		t.Fatal("alpha not clamped down")
	}
}

func TestSmoothOneShot(t *testing.T) {
	got := Smooth([]float64{1, 1, 1, 9}, 0.5)
	if got != 5 {
		t.Fatalf("Smooth = %v, want 5", got)
	}
	if Smooth(nil, 0.5) != 0 {
		t.Fatal("empty Smooth should be 0")
	}
}

func TestRequestCountsArithmetic(t *testing.T) {
	a := RequestCounts{Reads: 10, Writes: 5, Scans: 2}
	b := RequestCounts{Reads: 3, Writes: 1, Scans: 1}
	if got := a.Add(b); got != (RequestCounts{13, 6, 3}) {
		t.Fatalf("add = %+v", got)
	}
	if got := a.Sub(b); got != (RequestCounts{7, 4, 1}) {
		t.Fatalf("sub = %+v", got)
	}
	if a.Total() != 17 {
		t.Fatalf("total = %d", a.Total())
	}
}

type fakeSource struct {
	cpu  map[string]float64
	regs []RegionObservation
}

func (f *fakeSource) Observe(now sim.Time) ([]NodeObservation, []RegionObservation) {
	var nodes []NodeObservation
	for n, c := range f.cpu {
		nodes = append(nodes, NodeObservation{
			At: now, Node: n,
			System:   SystemMetrics{CPUUtilization: c, IOWait: c / 2, MemoryUsage: c / 4},
			Locality: 1,
		})
	}
	return nodes, f.regs
}

func TestCollectorSmoothsPerNode(t *testing.T) {
	src := &fakeSource{cpu: map[string]float64{"rs1": 0.9, "rs2": 0.1}}
	c := NewCollector(src, 0.5)
	for i := 0; i < 6; i++ {
		c.Poll(sim.Time(i) * 30 * sim.Second)
	}
	if c.Observations() != 6 {
		t.Fatalf("observations = %d", c.Observations())
	}
	cpu := c.SmoothedCPU()
	if math.Abs(cpu["rs1"]-0.9) > 1e-6 || math.Abs(cpu["rs2"]-0.1) > 1e-6 {
		t.Fatalf("smoothed cpu = %v", cpu)
	}
	io := c.SmoothedIOWait()
	if math.Abs(io["rs1"]-0.45) > 1e-6 {
		t.Fatalf("smoothed io = %v", io)
	}
	mem := c.SmoothedMemory()
	if math.Abs(mem["rs2"]-0.025) > 1e-6 {
		t.Fatalf("smoothed mem = %v", mem)
	}
}

func TestCollectorReset(t *testing.T) {
	src := &fakeSource{cpu: map[string]float64{"rs1": 0.5}}
	c := NewCollector(src, 0.5)
	c.Poll(0)
	c.Reset()
	if c.Observations() != 0 {
		t.Fatal("observations not reset")
	}
	if len(c.SmoothedCPU()) != 0 {
		t.Fatal("smoothed values survive reset")
	}
	// Polling again re-primes from fresh state.
	c.Poll(sim.Minute)
	if got := c.SmoothedCPU()["rs1"]; got != 0.5 {
		t.Fatalf("post-reset cpu = %v", got)
	}
}

func TestCollectorNodesSorted(t *testing.T) {
	src := &fakeSource{cpu: map[string]float64{"rs2": 0.5, "rs1": 0.2, "rs3": 0.7}}
	c := NewCollector(src, 0.5)
	c.Poll(0)
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0] != "rs1" || nodes[2] != "rs3" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestCollectorKeepsLastObservations(t *testing.T) {
	src := &fakeSource{
		cpu:  map[string]float64{"rs1": 0.5},
		regs: []RegionObservation{{Region: "r0", Node: "rs1", SizeMB: 250}},
	}
	c := NewCollector(src, 0.5)
	c.Poll(0)
	if len(c.LastNodes()) != 1 || len(c.LastRegions()) != 1 {
		t.Fatal("last observations not retained")
	}
	if c.LastRegions()[0].Region != "r0" {
		t.Fatalf("region = %+v", c.LastRegions()[0])
	}
}
