// Package metrics implements the monitoring substrate MeT relies on: it
// plays the role of Ganglia (system-level metrics: CPU utilization, I/O
// wait, memory usage) and of the HBase JMX exporter (per-node and
// per-region read/write/scan request counts and the locality index).
//
// The package also provides Brown's simple exponential smoothing, which
// the paper uses to damp temporary load spikes before feeding samples to
// the Decision Maker, and small time-series containers used throughout
// the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"met/internal/sim"
)

// Sample is a single observation of a scalar metric at a virtual time.
type Sample struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series of samples.
type Series struct {
	Name    string
	Samples []Sample
}

// Append records a new observation. Observations must be appended in
// non-decreasing time order.
func (s *Series) Append(at sim.Time, v float64) {
	if n := len(s.Samples); n > 0 && at < s.Samples[n-1].At {
		panic(fmt.Sprintf("metrics: out-of-order sample on %q: %v after %v", s.Name, at, s.Samples[n-1].At))
	}
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Last returns the most recent sample, or a zero Sample when empty.
func (s *Series) Last() Sample {
	if len(s.Samples) == 0 {
		return Sample{}
	}
	return s.Samples[len(s.Samples)-1]
}

// Since returns the samples observed at or after t.
func (s *Series) Since(t sim.Time) []Sample {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].At >= t })
	return s.Samples[i:]
}

// Values extracts the raw values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.Value
	}
	return out
}

// Mean returns the arithmetic mean of all samples (0 when empty).
func (s *Series) Mean() float64 { return Mean(s.Values()) }

// Mean returns the arithmetic mean of vs (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Sum returns the sum of vs.
func Sum(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// StdDev returns the population standard deviation of vs.
func StdDev(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := Mean(vs)
	var ss float64
	for _, v := range vs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vs)))
}

// Percentile returns the p-th percentile (0..100) of vs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF summarises a set of observations at the percentile levels the
// paper's Figure 1 reports (5th, 25th, 50th, 75th, 90th).
type CDF struct {
	P5, P25, P50, P75, P90 float64
}

// NewCDF computes the Figure 1 percentile summary for vs.
func NewCDF(vs []float64) CDF {
	return CDF{
		P5:  Percentile(vs, 5),
		P25: Percentile(vs, 25),
		P50: Percentile(vs, 50),
		P75: Percentile(vs, 75),
		P90: Percentile(vs, 90),
	}
}

// String renders the summary in a fixed-width, table-friendly form.
func (c CDF) String() string {
	return fmt.Sprintf("p5=%.0f p25=%.0f p50=%.0f p75=%.0f p90=%.0f", c.P5, c.P25, c.P50, c.P75, c.P90)
}
