package metrics

import "sync/atomic"

// AtomicCounts is the concurrency-safe accumulator behind RequestCounts:
// three independent atomic counters for reads, writes and scans. The
// serving hot path (region servers and regions) bumps these on every
// operation, so they must never take a lock — the adaptive-monitoring
// literature's rule that instrumentation must not perturb the system it
// observes. The Monitor reads them with Snapshot, which is a consistent
// enough view for MeT: the paper's classifier consumes per-interval
// deltas of large counters, where a momentarily torn read across the
// three fields is statistically invisible.
type AtomicCounts struct {
	reads, writes, scans atomic.Int64
}

// AddRead counts one read request.
func (c *AtomicCounts) AddRead() { c.reads.Add(1) }

// AddWrite counts one write (put or delete) request.
func (c *AtomicCounts) AddWrite() { c.writes.Add(1) }

// AddScan counts one scan request.
func (c *AtomicCounts) AddScan() { c.scans.Add(1) }

// Snapshot returns the current counter values as a plain RequestCounts.
func (c *AtomicCounts) Snapshot() RequestCounts {
	return RequestCounts{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Scans:  c.scans.Load(),
	}
}
