package core

import (
	"fmt"

	"met/internal/sim"
)

// Controller ties the three components together on the virtual clock:
// the Monitor polls every SampleInterval, and once MinSamples have
// accumulated the Decision Maker runs and its output goes to the
// Actuator. After every actuation the Monitor resets, so the next
// decision sees only post-action observations — the paper's smoothing
// discipline.
type Controller struct {
	Monitor  *Monitor
	Decision *DecisionMaker
	Actuator Actuator

	// SampleInterval is the Monitor period (30 s in the paper).
	SampleInterval sim.Time
	// OnDecision, when set, observes every decision (telemetry).
	OnDecision func(now sim.Time, d Decision, rep ApplyReport)

	decisions  int
	actuations int
	lastErr    error
}

// NewController assembles a controller with the paper's cadence.
func NewController(mon *Monitor, dm *DecisionMaker, act Actuator) *Controller {
	return &Controller{
		Monitor:        mon,
		Decision:       dm,
		Actuator:       act,
		SampleInterval: 30 * sim.Second,
	}
}

// Start schedules the monitor/decide loop on sched until deadline.
func (c *Controller) Start(sched *sim.Scheduler, start, deadline sim.Time) {
	sched.EachTick(start, c.SampleInterval, func(now sim.Time) bool {
		if now > deadline {
			return false
		}
		c.Tick(now)
		return true
	})
}

// Tick performs one monitor sample and, when enough samples are in, one
// decision + actuation. Exposed so harnesses can drive the controller
// without a scheduler.
func (c *Controller) Tick(now sim.Time) {
	c.Monitor.Poll(now)
	if c.Monitor.Samples() < c.Decision.Params.MinSamples {
		return
	}
	view := c.Monitor.View()
	names := c.Actuator.ProvisionNames(c.Decision.PendingGrowth())
	d := c.Decision.Decide(view, names)
	c.decisions++
	var rep ApplyReport
	if d.Reconfigure {
		rep, c.lastErr = c.Actuator.Apply(d.Target)
		if c.lastErr == nil {
			c.actuations++
		}
		// Post-action reset, even on failure: stale samples would
		// poison the next decision either way.
		c.Monitor.Reset()
	} else {
		// Healthy cluster: restart the sampling window so the next
		// decision is also based on fresh samples.
		c.Monitor.Reset()
	}
	if c.OnDecision != nil {
		c.OnDecision(now, d, rep)
	}
}

// Decisions returns how many decisions have run.
func (c *Controller) Decisions() int { return c.decisions }

// Actuations returns how many successful actuations have run.
func (c *Controller) Actuations() int { return c.actuations }

// Err returns the last actuation error, if any.
func (c *Controller) Err() error {
	if c.lastErr != nil {
		return fmt.Errorf("core: last actuation: %w", c.lastErr)
	}
	return nil
}
