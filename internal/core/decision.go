package core

import (
	"fmt"
	"sort"

	"met/internal/metrics"
	"met/internal/placement"
)

// Params are the Decision Maker's tunables, with the paper's values as
// defaults (Section 5, "Decision Maker parameters").
type Params struct {
	// CPUHigh / IOWaitHigh / MemHigh mark a node overloaded.
	CPUHigh    float64
	IOWaitHigh float64
	MemHigh    float64
	// CPULow marks a node underloaded (candidate for removal).
	CPULow float64
	// UnderloadedFraction is the fraction of idle nodes above which
	// the cluster is declared underloaded. The paper parameterizes
	// MeT's release behaviour ("we are allowing MET to release
	// machines each time it detects underutilization, but such
	// behavior is parameterized"); with 0.5, MeT sheds a node whenever
	// most of the cluster idles, even if a few nodes stay busy —
	// reconfiguration repacks the load.
	UnderloadedFraction float64
	// SubOptimalNodesThreshold: fraction of sub-optimal nodes above
	// which MeT proceeds straight to node addition (50% in the paper).
	SubOptimalNodesThreshold float64
	// Classification thresholds (the 60% rules).
	Classify placement.Thresholds
	// MinNodes / MaxNodes bound the cluster size.
	MinNodes int
	MaxNodes int
	// MinSamples is how many Monitor samples must accumulate before a
	// decision (6 in the paper: 3-minute decisions on 30 s samples).
	MinSamples int
	// LocalityWriteThreshold / LocalityReadThreshold trigger major
	// compaction when a server's locality index falls below them (70%
	// for write-profile servers, 90% for the rest).
	LocalityWriteThreshold float64
	LocalityReadThreshold  float64
}

// DefaultParams returns the paper's parameter values.
func DefaultParams() Params {
	return Params{
		CPUHigh:                  0.85,
		IOWaitHigh:               0.60,
		MemHigh:                  0.95,
		CPULow:                   0.30,
		UnderloadedFraction:      0.50,
		SubOptimalNodesThreshold: 0.50,
		// The paper states 60% thresholds, but with HBase's
		// request-level counters a read-modify-write counts as one
		// read plus one write, so YCSB's WorkloadF measures 66.7%
		// reads; a 60% read rule would put it in the read group, while
		// the paper's own analysis (Section 3.3) groups it read-write.
		// A 70% read threshold expresses the intended grouping; the
		// write and scan rules keep the paper's 60%.
		Classify: placement.Thresholds{
			ReadFraction:  0.70,
			WriteFraction: 0.60,
			ScanFraction:  0.60,
		},
		MinNodes:               1,
		MaxNodes:               64,
		MinSamples:             6,
		LocalityWriteThreshold: 0.70,
		LocalityReadThreshold:  0.90,
	}
}

// NodeView is one node as the Decision Maker sees it.
type NodeView struct {
	Name     string
	Type     placement.AccessType
	CPU      float64
	IOWait   float64
	Memory   float64
	Locality float64
}

// PartitionView is one data partition as the Decision Maker sees it.
type PartitionView struct {
	Name     string
	Node     string
	Requests metrics.RequestCounts // over the monitoring window
	SizeMB   float64
}

// ClusterView is the Monitor's digest handed to the Decision Maker.
type ClusterView struct {
	Nodes      []NodeView
	Partitions []PartitionView
}

// Health classifies the cluster state determined by StageA.
type Health int

// Cluster health states.
const (
	HealthAcceptable Health = iota
	HealthOverloaded
	HealthUnderloaded
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case HealthAcceptable:
		return "acceptable"
	case HealthOverloaded:
		return "overloaded"
	case HealthUnderloaded:
		return "underloaded"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// Decision is the Decision Maker's output for one invocation.
type Decision struct {
	// Health is StageA's verdict.
	Health Health
	// NodesToAdd is StageB's result: >0 add, <0 remove, 0 none.
	NodesToAdd int
	// Reconfigure reports whether a new distribution should be applied
	// (true whenever StageC/StageD ran).
	Reconfigure bool
	// Target is StageD's distribution for the (possibly resized)
	// cluster, including the profile each node must run.
	Target []placement.NodeState
	// SubOptimalFraction is the fraction of sub-optimal nodes observed.
	SubOptimalFraction float64
}

// DecisionMaker holds the state Algorithm 1 keeps between invocations.
type DecisionMaker struct {
	Params   Params
	Profiles Profiles

	firstTime     bool
	nodesToChange int
}

// NewDecisionMaker returns a Decision Maker ready for its first
// invocation (which triggers the InitialReconfiguration).
func NewDecisionMaker(p Params, profiles Profiles) *DecisionMaker {
	return &DecisionMaker{Params: p, Profiles: profiles, firstTime: true, nodesToChange: 1}
}

// stageA determines the current state of the cluster: per-node
// acceptability against the thresholds, the fraction of sub-optimal
// nodes, and whether the pressure direction is add or remove.
func (d *DecisionMaker) stageA(view ClusterView) (health Health, subOptimal float64) {
	if len(view.Nodes) == 0 {
		return HealthAcceptable, 0
	}
	over, under := 0, 0
	for _, n := range view.Nodes {
		switch {
		case n.CPU > d.Params.CPUHigh || n.IOWait > d.Params.IOWaitHigh || n.Memory > d.Params.MemHigh:
			over++
		case n.CPU < d.Params.CPULow:
			under++
		}
	}
	total := float64(len(view.Nodes))
	underFrac := float64(under) / total
	overFrac := float64(over) / total
	underMajority := d.Params.UnderloadedFraction > 0 && underFrac >= d.Params.UnderloadedFraction
	switch {
	case over > 0 && !underMajority:
		return HealthOverloaded, overFrac
	case underMajority && len(view.Nodes) > d.Params.MinNodes:
		// Most of the cluster idles: shed capacity even if a couple of
		// nodes remain busy — the Distribution Algorithm repacks their
		// load onto the survivors.
		return HealthUnderloaded, underFrac
	case over > 0:
		return HealthOverloaded, overFrac
	default:
		return HealthAcceptable, 0
	}
}

// stageB is Algorithm 1: decide how many nodes to add or remove. It
// mutates the quadratic counter exactly as the paper specifies.
func (d *DecisionMaker) stageB(subOptimal float64, remove bool) int {
	var result int
	if subOptimal > d.Params.SubOptimalNodesThreshold && !remove {
		// Most of the cluster is under heavy load: reconfiguration
		// alone cannot help, go straight to addition (even on
		// firstTime, per the paper's remark in Section 4.2.2).
		result = d.nodesToChange
		d.nodesToChange *= 2
	} else if d.firstTime {
		result = 0 // InitialReconfiguration
	} else if remove {
		result = -1
		d.nodesToChange = 1
	} else {
		result = d.nodesToChange
		d.nodesToChange *= 2
	}
	return result
}

// ResetGrowth resets Algorithm 1's quadratic counter; the controller
// calls it when the cluster returns to an acceptable state.
func (d *DecisionMaker) ResetGrowth() { d.nodesToChange = 1 }

// stageC runs the Distribution Algorithm: classify partitions, size node
// groups proportionally, and LPT-pack each group, producing one target
// set per node slot.
func (d *DecisionMaker) stageC(view ClusterView, clusterSize int) []placement.TargetSet {
	// Idle partitions (no requests in the window — e.g. tenants that
	// switched off) still need hosts but no capacity: they are spread
	// round-robin at the end instead of distorting the proportional
	// node attribution.
	var parts []placement.Partition
	var idle []string
	for _, p := range view.Partitions {
		if p.Requests.Total() == 0 {
			idle = append(idle, p.Name)
			continue
		}
		parts = append(parts, placement.Partition{Name: p.Name, Requests: p.Requests})
	}
	sort.Strings(idle)
	groups := placement.ClassifyAll(parts, d.Params.Classify)
	nodesPer := placement.NodesPerGroup(groups, clusterSize)
	// With fewer nodes than groups, some groups get zero nodes; fold
	// their partitions into the group holding the most nodes so the set
	// count never exceeds the cluster size and no partition strands.
	var biggest placement.AccessType
	for _, t := range placement.AccessTypes {
		if nodesPer[t] > nodesPer[biggest] {
			biggest = t
		}
	}
	for _, t := range placement.AccessTypes {
		if len(groups[t]) > 0 && nodesPer[t] == 0 && t != biggest && nodesPer[biggest] > 0 {
			groups[biggest] = append(groups[biggest], groups[t]...)
			groups[t] = nil
		}
	}
	var sets []placement.TargetSet
	for _, t := range placement.AccessTypes {
		ps := groups[t]
		n := nodesPer[t]
		if n == 0 {
			if len(ps) == 0 {
				continue
			}
			n = 1 // safety: never strand partitions
		}
		slots := make([]string, n)
		for i := range slots {
			slots[i] = fmt.Sprintf("slot-%d", i)
		}
		maxPer := placement.PartitionsPerNodeCap(len(ps), n)
		assignment := placement.AssignLPT(slots, ps, maxPer)
		// Emit sets in slot order for determinism.
		sort.Strings(slots)
		for _, slot := range slots {
			set := placement.TargetSet{Type: t}
			for _, p := range assignment[slot] {
				set.Partitions = append(set.Partitions, p.Name)
			}
			sort.Strings(set.Partitions)
			sets = append(sets, set)
		}
	}
	// Deal the idle partitions round-robin across the sets.
	if len(sets) > 0 {
		for i, p := range idle {
			set := &sets[i%len(sets)]
			set.Partitions = append(set.Partitions, p)
			sort.Strings(set.Partitions)
		}
	}
	return sets
}

// currentState converts the view into Algorithm 3's input.
func currentState(view ClusterView) []placement.NodeState {
	byNode := make(map[string][]string)
	for _, p := range view.Partitions {
		byNode[p.Node] = append(byNode[p.Node], p.Name)
	}
	var out []placement.NodeState
	for _, n := range view.Nodes {
		ps := byNode[n.Name]
		sort.Strings(ps)
		out = append(out, placement.NodeState{Node: n.Name, Type: n.Type, Partitions: ps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Decide runs the full StageA-D pipeline over one monitoring digest.
// newNodeNames supplies names for nodes the decision may add (the
// Actuator's provisioning namespace); only the first NodesToAdd are used.
func (d *DecisionMaker) Decide(view ClusterView, newNodeNames []string) Decision {
	health, subOptimal := d.stageA(view)
	dec := Decision{Health: health, SubOptimalFraction: subOptimal}
	if health == HealthAcceptable {
		d.ResetGrowth()
		return dec
	}
	dec.NodesToAdd = d.stageB(subOptimal, health == HealthUnderloaded)

	// Clamp to cluster bounds.
	size := len(view.Nodes)
	newSize := size + dec.NodesToAdd
	if newSize > d.Params.MaxNodes {
		newSize = d.Params.MaxNodes
		dec.NodesToAdd = newSize - size
	}
	if newSize < d.Params.MinNodes {
		newSize = d.Params.MinNodes
		dec.NodesToAdd = newSize - size
	}
	if dec.NodesToAdd > len(newNodeNames) {
		dec.NodesToAdd = len(newNodeNames)
		newSize = size + dec.NodesToAdd
	}

	// StageC over the target cluster size.
	sets := d.stageC(view, newSize)

	// Build the node list for StageD: current nodes plus the new ones.
	cur := currentState(view)
	if dec.NodesToAdd > 0 {
		for i := 0; i < dec.NodesToAdd; i++ {
			cur = append(cur, placement.NodeState{Node: newNodeNames[i], Type: placement.ReadWrite})
		}
	}
	dec.Target = placement.ComputeOutput(cur, sets, d.firstTime)
	dec.Reconfigure = true
	d.firstTime = false
	return dec
}

// FirstTime reports whether the InitialReconfiguration is still pending.
func (d *DecisionMaker) FirstTime() bool { return d.firstTime }

// PendingGrowth exposes Algorithm 1's counter (for tests and telemetry).
func (d *DecisionMaker) PendingGrowth() int { return d.nodesToChange }
