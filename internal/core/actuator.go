package core

import (
	"fmt"
	"sort"

	"met/internal/hbase"
	"met/internal/placement"
)

// Actuator carries out the Decision Maker's output on a concrete
// deployment (Section 4.3).
type Actuator interface {
	// ProvisionNames returns names the Decision Maker may use for new
	// nodes (e.g. the IaaS namespace). At least n names are returned
	// when possible.
	ProvisionNames(n int) []string
	// Apply brings the cluster to the target distribution: add nodes
	// named in the target that do not exist, reconfigure and re-place
	// incrementally, remove nodes left empty, and issue major compacts
	// where locality demands. It returns an actuation report.
	Apply(target []placement.NodeState) (ApplyReport, error)
}

// ApplyReport summarizes what an actuation did; the controller logs it
// and the evaluation uses it to charge reconfiguration costs.
type ApplyReport struct {
	NodesAdded     []string
	NodesRemoved   []string
	Reconfigured   []string
	RegionMoves    int
	MajorCompacts  int
	CompactedBytes int64
}

// FunctionalActuator drives the functional hbase cluster: the real
// region moves, rolling restarts and major compactions of Section 5's
// "Taking actions". It reconfigures servers one at a time, draining each
// server's regions to the not-yet-reconfigured nodes first so data stays
// available throughout — the paper's incremental strategy.
type FunctionalActuator struct {
	Master   *hbase.Master
	Monitor  *Monitor
	Params   Params
	Profiles Profiles
	// nameSeq mints names for added nodes.
	nameSeq int
}

// NewFunctionalActuator wires an actuator to a running cluster.
func NewFunctionalActuator(m *hbase.Master, mon *Monitor, params Params, profiles Profiles) *FunctionalActuator {
	return &FunctionalActuator{Master: m, Monitor: mon, Params: params, Profiles: profiles}
}

// ProvisionNames implements Actuator.
func (a *FunctionalActuator) ProvisionNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("rs-met-%03d", a.nameSeq+i)
	}
	return names
}

// Apply implements Actuator.
func (a *FunctionalActuator) Apply(target []placement.NodeState) (ApplyReport, error) {
	var rep ApplyReport
	existing := make(map[string]*hbase.RegionServer)
	for _, rs := range a.Master.Servers() {
		existing[rs.Name()] = rs
	}

	// 1. Add nodes present in the target but not in the cluster.
	for _, ns := range target {
		if _, ok := existing[ns.Node]; ok {
			continue
		}
		cfg := a.Profiles[ns.Type]
		rs, err := a.Master.AddServer(ns.Node, cfg)
		if err != nil {
			return rep, fmt.Errorf("core: add node %s: %w", ns.Node, err)
		}
		existing[ns.Node] = rs
		a.Monitor.SetNodeType(ns.Node, ns.Type)
		rep.NodesAdded = append(rep.NodesAdded, ns.Node)
		a.nameSeq++
	}

	// 2. Reconfigure + re-place, one server at a time. Order servers so
	// the ones whose profile already matches go last (they may not need
	// a restart at all).
	ordered := append([]placement.NodeState(nil), target...)
	sort.SliceStable(ordered, func(i, j int) bool {
		ci := a.Monitor.NodeType(ordered[i].Node) != ordered[i].Type
		cj := a.Monitor.NodeType(ordered[j].Node) != ordered[j].Type
		if ci != cj {
			return ci
		}
		return ordered[i].Node < ordered[j].Node
	})
	targetHost := make(map[string]string)
	for _, ns := range target {
		for _, p := range ns.Partitions {
			targetHost[p] = ns.Node
		}
	}
	for _, ns := range ordered {
		rs, ok := existing[ns.Node]
		if !ok {
			continue
		}
		wantCfg := a.Profiles[ns.Type]
		// Profiles carry only the paper's tuning knobs; the storage
		// backend and the compaction subsystem are deployment properties
		// of the server, so a durable server stays durable — and keeps
		// its compaction policy, budget and thresholds — across
		// reprofiles.
		wantCfg.DataDir = rs.Config().DataDir
		wantCfg.Compaction = rs.Config().Compaction
		if !rs.Config().Equal(wantCfg) {
			// Drain: move hosted regions to their target hosts if those
			// hosts are up, otherwise to any other server, so data
			// stays available during the restart.
			for _, r := range rs.Regions() {
				dst := targetHost[r.Name()]
				if dst == "" || dst == ns.Node {
					dst = a.anyOtherServer(ns.Node)
				}
				if dst != "" && dst != ns.Node {
					if err := a.Master.MoveRegion(r.Name(), dst); err != nil {
						return rep, err
					}
					rep.RegionMoves++
				}
			}
			// Through the master, so a durable cluster's catalog records
			// the new profile and a cold start re-creates the server as
			// reprofiled.
			if err := a.Master.RestartServer(ns.Node, wantCfg); err != nil {
				return rep, err
			}
			a.Monitor.SetNodeType(ns.Node, ns.Type)
			rep.Reconfigured = append(rep.Reconfigured, ns.Node)
		}
	}

	// 3. Final placement: move every partition to its target node.
	for _, ns := range target {
		for _, p := range ns.Partitions {
			host, ok := a.Master.HostOf(p)
			if !ok {
				continue
			}
			if host != ns.Node {
				if err := a.Master.MoveRegion(p, ns.Node); err != nil {
					return rep, err
				}
				rep.RegionMoves++
			}
		}
	}

	// 4. Remove nodes with no partitions in the target.
	inTarget := make(map[string]bool)
	for _, ns := range target {
		inTarget[ns.Node] = len(ns.Partitions) > 0 || inTarget[ns.Node]
	}
	for name := range existing {
		keep, mentioned := inTarget[name]
		if mentioned && !keep {
			if err := a.Master.DecommissionServer(name); err != nil {
				return rep, err
			}
			rep.NodesRemoved = append(rep.NodesRemoved, name)
		}
	}

	// 5. Major-compact servers whose locality fell below the profile's
	// threshold (70% write / 90% others).
	for _, ns := range target {
		rs, err := a.Master.Server(ns.Node)
		if err != nil {
			continue // removed above
		}
		threshold := a.Params.LocalityReadThreshold
		if ns.Type == placement.Write {
			threshold = a.Params.LocalityWriteThreshold
		}
		if rs.Locality() < threshold {
			for _, r := range rs.Regions() {
				n, err := rs.MajorCompact(r.Name())
				if err != nil {
					return rep, err
				}
				rep.MajorCompacts++
				rep.CompactedBytes += n
			}
		}
	}
	return rep, nil
}

// anyOtherServer picks a running server other than exclude.
func (a *FunctionalActuator) anyOtherServer(exclude string) string {
	for _, rs := range a.Master.Servers() {
		if rs.Name() != exclude && rs.Running() {
			return rs.Name()
		}
	}
	return ""
}
