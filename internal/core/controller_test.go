package core

import (
	"fmt"
	"testing"

	"met/internal/hbase"
	"met/internal/hdfs"
	"met/internal/placement"
	"met/internal/sim"
)

// buildCluster creates a functional cluster with three tables whose
// access patterns differ (read-only, write-only, mixed), 2 regions each,
// on `servers` homogeneous nodes.
func buildCluster(t *testing.T, servers int) (*hbase.Master, *hbase.Client) {
	t.Helper()
	m := hbase.NewMaster(hdfs.NewNamenode(2))
	for i := 0; i < servers; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), hbase.DefaultServerConfig()); err != nil {
			t.Fatal(err)
		}
	}
	for _, tbl := range []string{"reads", "writes", "mixed"} {
		if _, err := m.CreateTable(tbl, []string{"m"}); err != nil {
			t.Fatal(err)
		}
	}
	return m, hbase.NewClient(m)
}

// driveLoad issues n operations with distinct per-table patterns.
func driveLoad(t *testing.T, c *hbase.Client, n int) {
	t.Helper()
	rng := sim.NewRNG(42)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%c%04d", 'a'+rng.Intn(26), rng.Intn(5000))
		c.Put("writes", k, []byte("v"))
		c.Put("reads", k, []byte("v"))
		c.Get("reads", k)
		c.Get("reads", k)
		c.Get("reads", k)
		if i%2 == 0 {
			c.Put("mixed", k, []byte("v"))
		} else {
			c.Get("mixed", k)
		}
	}
}

func newTestController(m *hbase.Master) *Controller {
	// Nominal capacity low enough that the drive loads read as heavy.
	src := NewClusterSource(m, 20, 30*sim.Second)
	mon := NewMonitor(src, 0.5)
	params := DefaultParams()
	params.MinSamples = 2
	params.MinNodes = 2
	dm := NewDecisionMaker(params, Table1Profiles())
	act := NewFunctionalActuator(m, mon, params, Table1Profiles())
	return NewController(mon, dm, act)
}

func TestControllerInitialReconfiguration(t *testing.T) {
	m, c := buildCluster(t, 3)
	ctrl := newTestController(m)
	now := sim.Time(0)
	// Two monitoring rounds with load in between.
	driveLoad(t, c, 300)
	ctrl.Tick(now)
	now += 30 * sim.Second
	driveLoad(t, c, 300)
	ctrl.Tick(now)
	if err := ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	if ctrl.Actuations() == 0 {
		t.Fatal("controller never actuated")
	}
	// The cluster is now heterogeneous: at least two distinct configs.
	configs := map[string]bool{}
	for _, rs := range m.Servers() {
		configs[rs.Config().String()] = true
	}
	if len(configs) < 2 {
		t.Fatalf("cluster still homogeneous: %v", configs)
	}
	// Data still available after the rolling reconfiguration.
	driveLoad(t, c, 50)
	if _, err := c.Scan("reads", "", "", 10); err != nil {
		t.Fatalf("post-reconfig scan: %v", err)
	}
}

func TestControllerClassifiesNodesByWorkload(t *testing.T) {
	m, c := buildCluster(t, 3)
	ctrl := newTestController(m)
	var lastDecision Decision
	ctrl.OnDecision = func(_ sim.Time, d Decision, _ ApplyReport) {
		if d.Reconfigure {
			lastDecision = d
		}
	}
	now := sim.Time(0)
	for round := 0; round < 3; round++ {
		driveLoad(t, c, 200)
		ctrl.Tick(now)
		now += 30 * sim.Second
	}
	if err := ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	if lastDecision.Target == nil {
		t.Fatal("no reconfiguration decision")
	}
	// The target must place the write table's regions on a node whose
	// profile is Write (or ReadWrite when folded), and the read table's
	// on Read.
	typeOf := map[string]placement.AccessType{}
	for _, ns := range lastDecision.Target {
		for _, p := range ns.Partitions {
			typeOf[p] = ns.Type
		}
	}
	for p, ty := range typeOf {
		switch {
		case len(p) >= 6 && p[:6] == "writes":
			if ty != placement.Write {
				t.Errorf("write region %s typed %v", p, ty)
			}
		case len(p) >= 5 && p[:5] == "reads":
			if ty != placement.Read {
				t.Errorf("read region %s typed %v", p, ty)
			}
		}
	}
}

func TestControllerHealthyClusterUntouched(t *testing.T) {
	m, c := buildCluster(t, 2)
	src := NewClusterSource(m, 1e9, 30*sim.Second) // huge nominal: never loaded
	mon := NewMonitor(src, 0.5)
	params := DefaultParams()
	params.MinSamples = 2
	params.CPULow = 0 // nothing is ever "underloaded"
	dm := NewDecisionMaker(params, Table1Profiles())
	act := NewFunctionalActuator(m, mon, params, Table1Profiles())
	ctrl := NewController(mon, dm, act)
	driveLoad(t, c, 100)
	ctrl.Tick(0)
	driveLoad(t, c, 100)
	ctrl.Tick(30 * sim.Second)
	if ctrl.Actuations() != 0 {
		t.Fatalf("actuated %d times on a healthy cluster", ctrl.Actuations())
	}
	for _, rs := range m.Servers() {
		if rs.Restarts() != 0 {
			t.Fatal("server restarted without cause")
		}
	}
}

func TestControllerSchedulerIntegration(t *testing.T) {
	m, c := buildCluster(t, 2)
	ctrl := newTestController(m)
	sched := sim.NewScheduler()
	// Load is injected before each tick via a competing event series.
	sched.EachTick(0, 30*sim.Second, func(now sim.Time) bool {
		driveLoad(t, c, 100)
		return now < 5*sim.Minute
	})
	ctrl.Start(sched, 15*sim.Second, 5*sim.Minute)
	sched.RunUntil(5 * sim.Minute)
	if ctrl.Decisions() == 0 {
		t.Fatal("no decisions on scheduler")
	}
	if err := ctrl.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalActuatorAddAndRemove(t *testing.T) {
	m, c := buildCluster(t, 2)
	src := NewClusterSource(m, 50, 30*sim.Second)
	mon := NewMonitor(src, 0.5)
	params := DefaultParams()
	act := NewFunctionalActuator(m, mon, params, Table1Profiles())

	driveLoad(t, c, 100)
	// Target: spread everything over rs0 plus a new node, dropping rs1.
	var parts []string
	for _, tbl := range []string{"reads", "writes", "mixed"} {
		tb, _ := m.Table(tbl)
		parts = append(parts, tb.RegionNames()...)
	}
	target := []placement.NodeState{
		{Node: "rs0", Type: placement.Read, Partitions: parts[:3]},
		{Node: "rs-new", Type: placement.Write, Partitions: parts[3:]},
		{Node: "rs1", Type: placement.ReadWrite, Partitions: nil},
	}
	rep, err := act.Apply(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NodesAdded) != 1 || rep.NodesAdded[0] != "rs-new" {
		t.Fatalf("added = %v", rep.NodesAdded)
	}
	if len(rep.NodesRemoved) != 1 || rep.NodesRemoved[0] != "rs1" {
		t.Fatalf("removed = %v", rep.NodesRemoved)
	}
	if rep.RegionMoves == 0 {
		t.Fatal("no region moves")
	}
	// Data intact on the new topology.
	driveLoad(t, c, 50)
	srvs := m.Servers()
	if len(srvs) != 2 {
		t.Fatalf("servers = %d", len(srvs))
	}
	// Profiles applied.
	rs0, _ := m.Server("rs0")
	if rs0.Config().BlockBytes != 32<<10 {
		t.Fatalf("rs0 not read-profiled: %v", rs0.Config())
	}
	rsNew, _ := m.Server("rs-new")
	if rsNew.Config().MemstoreFraction != 0.55 {
		t.Fatalf("rs-new not write-profiled: %v", rsNew.Config())
	}
}

func TestProvisionNames(t *testing.T) {
	act := &FunctionalActuator{}
	names := act.ProvisionNames(3)
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatal("duplicate provision name")
		}
		seen[n] = true
	}
}

func TestMonitorAccumulatesDeltas(t *testing.T) {
	m, c := buildCluster(t, 2)
	src := NewClusterSource(m, 50, 30*sim.Second)
	mon := NewMonitor(src, 0.5)
	driveLoad(t, c, 100)
	mon.Poll(0)
	driveLoad(t, c, 100)
	mon.Poll(30 * sim.Second)
	view := mon.View()
	if len(view.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(view.Nodes))
	}
	if len(view.Partitions) != 6 {
		t.Fatalf("partitions = %d", len(view.Partitions))
	}
	var total int64
	for _, p := range view.Partitions {
		total += p.Requests.Total()
	}
	if total == 0 {
		t.Fatal("no accumulated requests")
	}
	mon.Reset()
	if mon.Samples() != 0 {
		t.Fatal("samples not reset")
	}
	view = mon.View()
	for _, p := range view.Partitions {
		if p.Requests.Total() != 0 {
			t.Fatalf("requests survived reset: %+v", p)
		}
	}
}

func TestMonitorNodeTypes(t *testing.T) {
	mon := NewMonitor(nil, 0.5)
	if mon.NodeType("rs0") != placement.ReadWrite {
		t.Fatal("default type should be ReadWrite")
	}
	mon.SetNodeType("rs0", placement.Scan)
	if mon.NodeType("rs0") != placement.Scan {
		t.Fatal("type not recorded")
	}
	if mon.Locality("unknown") != 1 {
		t.Fatal("unknown locality should be 1")
	}
}
