package core

import (
	"sort"

	"met/internal/metrics"
	"met/internal/placement"
	"met/internal/sim"
)

// Monitor is MeT's monitoring component: it polls a metrics.Source (the
// Ganglia + JMX stand-in) every interval, smooths system metrics with
// exponential smoothing, accumulates per-partition request deltas since
// the last actuation, and digests everything into the ClusterView the
// Decision Maker consumes.
type Monitor struct {
	collector *metrics.Collector
	// nodeTypes tracks the profile each node currently runs, which the
	// Decision Maker needs to minimize reconfigurations.
	nodeTypes map[string]placement.AccessType

	// accumulated request deltas per partition since last Reset.
	partitionReqs map[string]metrics.RequestCounts
	partitionPrev map[string]metrics.RequestCounts
	partitionNode map[string]string
	partitionSize map[string]float64
	lastLocality  map[string]float64
}

// NewMonitor builds a monitor over src with smoothing factor alpha
// (0.5 unless the deployment overrides it).
func NewMonitor(src metrics.Source, alpha float64) *Monitor {
	return &Monitor{
		collector:     metrics.NewCollector(src, alpha),
		nodeTypes:     make(map[string]placement.AccessType),
		partitionReqs: make(map[string]metrics.RequestCounts),
		partitionPrev: make(map[string]metrics.RequestCounts),
		partitionNode: make(map[string]string),
		partitionSize: make(map[string]float64),
		lastLocality:  make(map[string]float64),
	}
}

// SetNodeType records the profile a node is running (the Actuator calls
// this after reconfiguring).
func (m *Monitor) SetNodeType(node string, t placement.AccessType) {
	m.nodeTypes[node] = t
}

// NodeType returns the recorded profile for a node (ReadWrite default).
func (m *Monitor) NodeType(node string) placement.AccessType {
	return m.nodeTypes[node]
}

// Poll takes one sample. Call every 30 (virtual) seconds.
func (m *Monitor) Poll(now sim.Time) {
	nodes, regions := m.collector.Poll(now)
	for _, n := range nodes {
		m.lastLocality[n.Node] = n.Locality
	}
	for _, r := range regions {
		// Region observations carry deltas when the source computes
		// them, but cumulative counters are also supported: detect by
		// monotonicity against the previous cumulative value.
		prev := m.partitionPrev[r.Region]
		delta := r.Requests
		if r.Requests.Reads >= prev.Reads && r.Requests.Writes >= prev.Writes &&
			r.Requests.Scans >= prev.Scans && prev.Total() > 0 {
			delta = r.Requests.Sub(prev)
		}
		m.partitionPrev[r.Region] = r.Requests
		m.partitionReqs[r.Region] = m.partitionReqs[r.Region].Add(delta)
		m.partitionNode[r.Region] = r.Node
		m.partitionSize[r.Region] = r.SizeMB
	}
}

// Samples returns how many polls accumulated since the last Reset.
func (m *Monitor) Samples() int { return m.collector.Observations() }

// Reset drops accumulated state; the controller calls this after every
// actuation, per the paper.
func (m *Monitor) Reset() {
	m.collector.Reset()
	m.partitionReqs = make(map[string]metrics.RequestCounts)
}

// View digests the current state for the Decision Maker.
func (m *Monitor) View() ClusterView {
	var view ClusterView
	cpu := m.collector.SmoothedCPU()
	io := m.collector.SmoothedIOWait()
	mem := m.collector.SmoothedMemory()
	for _, name := range m.collector.Nodes() {
		view.Nodes = append(view.Nodes, NodeView{
			Name:     name,
			Type:     m.nodeTypes[name],
			CPU:      cpu[name],
			IOWait:   io[name],
			Memory:   mem[name],
			Locality: m.lastLocality[name],
		})
	}
	var parts []string
	for p := range m.partitionNode {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		view.Partitions = append(view.Partitions, PartitionView{
			Name:     p,
			Node:     m.partitionNode[p],
			Requests: m.partitionReqs[p],
			SizeMB:   m.partitionSize[p],
		})
	}
	return view
}

// Locality returns the last observed locality index for a node.
func (m *Monitor) Locality(node string) float64 {
	if l, ok := m.lastLocality[node]; ok {
		return l
	}
	return 1
}
