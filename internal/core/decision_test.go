package core

import (
	"fmt"
	"testing"

	"met/internal/metrics"
	"met/internal/placement"
)

func rc(r, w, s int64) metrics.RequestCounts {
	return metrics.RequestCounts{Reads: r, Writes: w, Scans: s}
}

func healthyView(nodes int) ClusterView {
	var v ClusterView
	for i := 0; i < nodes; i++ {
		v.Nodes = append(v.Nodes, NodeView{Name: fmt.Sprintf("rs%d", i), CPU: 0.5, Locality: 1})
	}
	return v
}

func TestTable1ProfilesValid(t *testing.T) {
	p := Table1Profiles()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rd := p[placement.Read]
	if rd.BlockCacheFraction != 0.55 || rd.MemstoreFraction != 0.10 || rd.BlockBytes != 32<<10 {
		t.Fatalf("read profile = %+v", rd)
	}
	wr := p[placement.Write]
	if wr.BlockCacheFraction != 0.10 || wr.MemstoreFraction != 0.55 || wr.BlockBytes != 64<<10 {
		t.Fatalf("write profile = %+v", wr)
	}
	rw := p[placement.ReadWrite]
	if rw.BlockCacheFraction != 0.45 || rw.MemstoreFraction != 0.20 || rw.BlockBytes != 32<<10 {
		t.Fatalf("rw profile = %+v", rw)
	}
	sc := p[placement.Scan]
	if sc.BlockCacheFraction != 0.55 || sc.MemstoreFraction != 0.10 || sc.BlockBytes != 128<<10 {
		t.Fatalf("scan profile = %+v", sc)
	}
	// All sums land exactly on the 65% rule.
	for ty, cfg := range p {
		if sum := cfg.BlockCacheFraction + cfg.MemstoreFraction; sum != 0.65 {
			t.Errorf("%v profile sums to %v", ty, sum)
		}
	}
}

func TestStageAHealthy(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	h, sub := dm.stageA(healthyView(4))
	if h != HealthAcceptable || sub != 0 {
		t.Fatalf("health = %v, sub = %v", h, sub)
	}
	// Empty view is acceptable.
	if h, _ := dm.stageA(ClusterView{}); h != HealthAcceptable {
		t.Fatalf("empty view health = %v", h)
	}
}

func TestStageAOverload(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	v := healthyView(4)
	v.Nodes[0].CPU = 0.95
	h, sub := dm.stageA(v)
	if h != HealthOverloaded {
		t.Fatalf("health = %v", h)
	}
	if sub != 0.25 {
		t.Fatalf("suboptimal = %v", sub)
	}
	// IO wait alone triggers overload too.
	v = healthyView(2)
	v.Nodes[1].IOWait = 0.9
	if h, _ := dm.stageA(v); h != HealthOverloaded {
		t.Fatalf("io-wait health = %v", h)
	}
	// Memory pressure alone triggers overload.
	v = healthyView(2)
	v.Nodes[0].Memory = 0.99
	if h, _ := dm.stageA(v); h != HealthOverloaded {
		t.Fatalf("memory health = %v", h)
	}
}

func TestStageAUnderloadRequiresAllNodesIdle(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	v := healthyView(4)
	v.Nodes[0].CPU = 0.05
	// Only one idle node: not underloaded.
	if h, _ := dm.stageA(v); h != HealthAcceptable {
		t.Fatalf("health = %v", h)
	}
	for i := range v.Nodes {
		v.Nodes[i].CPU = 0.05
	}
	h, _ := dm.stageA(v)
	if h != HealthUnderloaded {
		t.Fatalf("health = %v", h)
	}
	// At MinNodes, never underloaded.
	p := DefaultParams()
	p.MinNodes = 4
	dm = NewDecisionMaker(p, Table1Profiles())
	if h, _ := dm.stageA(v); h != HealthAcceptable {
		t.Fatalf("at-min health = %v", h)
	}
}

func TestStageBQuadraticGrowth(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	dm.firstTime = false
	// Below the sub-optimal threshold, additions still grow 1,2,4,8.
	want := []int{1, 2, 4, 8, 16}
	for i, w := range want {
		if got := dm.stageB(0.3, false); got != w {
			t.Fatalf("iteration %d: add %d, want %d", i, got, w)
		}
	}
}

func TestStageBLinearRemoval(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	dm.firstTime = false
	dm.stageB(0.3, false) // grow once so the counter is 2
	for i := 0; i < 3; i++ {
		if got := dm.stageB(0.2, true); got != -1 {
			t.Fatalf("removal %d: got %d, want -1", i, got)
		}
	}
	// Removal resets the quadratic counter.
	if got := dm.stageB(0.3, false); got != 1 {
		t.Fatalf("post-removal add = %d, want 1", got)
	}
}

func TestStageBFirstTimeReconfigures(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	if got := dm.stageB(0.3, false); got != 0 {
		t.Fatalf("firstTime add = %d, want 0 (InitialReconfiguration)", got)
	}
}

func TestStageBFirstTimeSkipsStraightToAddition(t *testing.T) {
	// Paper: if it is the first time but sub-optimal nodes exceed the
	// threshold, proceed straight to addition.
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	if got := dm.stageB(0.75, false); got != 1 {
		t.Fatalf("overloaded firstTime add = %d, want 1", got)
	}
	if dm.PendingGrowth() != 2 {
		t.Fatalf("counter = %d, want 2", dm.PendingGrowth())
	}
}

func TestStageCGroupsAndPacks(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	view := ClusterView{
		Nodes: healthyView(5).Nodes,
	}
	// The paper's Section 3 layout: 8 rw partitions (A+F), 4 read (C),
	// 4 scan (E), 5 write (B+D).
	for i := 0; i < 4; i++ {
		view.Partitions = append(view.Partitions,
			PartitionView{Name: fmt.Sprintf("A%d", i), Requests: rc(50, 50, 0)},
			PartitionView{Name: fmt.Sprintf("F%d", i), Requests: rc(50, 50, 0)},
			PartitionView{Name: fmt.Sprintf("C%d", i), Requests: rc(100, 0, 0)},
			PartitionView{Name: fmt.Sprintf("E%d", i), Requests: rc(2, 5, 93)},
			PartitionView{Name: fmt.Sprintf("B%d", i), Requests: rc(0, 100, 0)},
		)
	}
	view.Partitions = append(view.Partitions, PartitionView{Name: "D0", Requests: rc(5, 95, 0)})
	sets := dm.stageC(view, 5)
	if len(sets) != 5 {
		t.Fatalf("sets = %d, want 5", len(sets))
	}
	counts := map[placement.AccessType]int{}
	placed := 0
	for _, s := range sets {
		counts[s.Type]++
		placed += len(s.Partitions)
	}
	if placed != 21 {
		t.Fatalf("placed %d partitions, want 21", placed)
	}
	// 8 rw partitions of 21 on 5 nodes -> 2 rw slots; others 1 each.
	if counts[placement.ReadWrite] != 2 || counts[placement.Read] != 1 ||
		counts[placement.Scan] != 1 || counts[placement.Write] != 1 {
		t.Fatalf("group slots = %v", counts)
	}
}

func TestDecideHealthyNoAction(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	dm.firstTime = false
	dm.nodesToChange = 8
	d := dm.Decide(healthyView(3), nil)
	if d.Reconfigure || d.NodesToAdd != 0 || d.Health != HealthAcceptable {
		t.Fatalf("decision = %+v", d)
	}
	// Healthy state resets the growth counter.
	if dm.PendingGrowth() != 1 {
		t.Fatalf("growth = %d", dm.PendingGrowth())
	}
}

func TestDecideInitialReconfiguration(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	v := healthyView(2)
	v.Nodes[0].CPU = 0.95 // one overloaded node, below 50% threshold
	v.Partitions = []PartitionView{
		{Name: "p0", Node: "rs0", Requests: rc(100, 0, 0)},
		{Name: "p1", Node: "rs0", Requests: rc(0, 100, 0)},
		{Name: "p2", Node: "rs1", Requests: rc(50, 50, 0)},
	}
	d := dm.Decide(v, nil)
	if !d.Reconfigure {
		t.Fatal("no reconfiguration on first overload")
	}
	if d.NodesToAdd != 0 {
		t.Fatalf("first time added %d nodes", d.NodesToAdd)
	}
	if len(d.Target) != 2 {
		t.Fatalf("target = %v", d.Target)
	}
	if dm.FirstTime() {
		t.Fatal("firstTime not cleared")
	}
	total := 0
	for _, n := range d.Target {
		total += len(n.Partitions)
	}
	if total != 3 {
		t.Fatalf("target places %d partitions", total)
	}
}

func TestDecideAddsNodesWhenMostOverloaded(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	v := healthyView(2)
	v.Nodes[0].CPU = 0.95
	v.Nodes[1].CPU = 0.95
	v.Partitions = []PartitionView{
		{Name: "p0", Node: "rs0", Requests: rc(100, 0, 0)},
		{Name: "p1", Node: "rs1", Requests: rc(100, 0, 0)},
	}
	d := dm.Decide(v, []string{"new0", "new1", "new2", "new3"})
	if d.NodesToAdd != 1 {
		t.Fatalf("added %d, want 1", d.NodesToAdd)
	}
	// The new node appears in the target.
	found := false
	for _, n := range d.Target {
		if n.Node == "new0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("new node missing from target %v", d.Target)
	}
	// Next overloaded decision doubles.
	d = dm.Decide(v, []string{"new0", "new1", "new2", "new3"})
	if d.NodesToAdd != 2 {
		t.Fatalf("second add = %d, want 2", d.NodesToAdd)
	}
}

func TestDecideRemovesOneNodeWhenIdle(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	dm.firstTime = false
	v := healthyView(3)
	for i := range v.Nodes {
		v.Nodes[i].CPU = 0.05
	}
	v.Partitions = []PartitionView{
		{Name: "p0", Node: "rs0", Requests: rc(10, 0, 0)},
		{Name: "p1", Node: "rs1", Requests: rc(10, 0, 0)},
		{Name: "p2", Node: "rs2", Requests: rc(10, 0, 0)},
	}
	d := dm.Decide(v, nil)
	if d.NodesToAdd != -1 {
		t.Fatalf("NodesToAdd = %d, want -1", d.NodesToAdd)
	}
	// One node in the target ends up with no partitions.
	empty := 0
	for _, n := range d.Target {
		if len(n.Partitions) == 0 {
			empty++
		}
	}
	if empty != 1 {
		t.Fatalf("%d empty nodes in target %v", empty, d.Target)
	}
}

func TestDecideRespectsMaxNodes(t *testing.T) {
	p := DefaultParams()
	p.MaxNodes = 3
	dm := NewDecisionMaker(p, Table1Profiles())
	dm.firstTime = false
	dm.nodesToChange = 8
	v := healthyView(3)
	for i := range v.Nodes {
		v.Nodes[i].CPU = 0.99
	}
	d := dm.Decide(v, []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"})
	if d.NodesToAdd != 0 {
		t.Fatalf("NodesToAdd = %d beyond MaxNodes", d.NodesToAdd)
	}
}

func TestDecideRespectsProvisionedNames(t *testing.T) {
	dm := NewDecisionMaker(DefaultParams(), Table1Profiles())
	dm.firstTime = false
	dm.nodesToChange = 4
	v := healthyView(2)
	for i := range v.Nodes {
		v.Nodes[i].CPU = 0.99
	}
	d := dm.Decide(v, []string{"only-one"})
	if d.NodesToAdd != 1 {
		t.Fatalf("NodesToAdd = %d with one name available", d.NodesToAdd)
	}
}

func TestHealthString(t *testing.T) {
	for _, h := range []Health{HealthAcceptable, HealthOverloaded, HealthUnderloaded, Health(9)} {
		if h.String() == "" {
			t.Fatal("empty health string")
		}
	}
}
