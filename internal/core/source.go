package core

import (
	"met/internal/hbase"
	"met/internal/metrics"
	"met/internal/obs"
	"met/internal/sim"
)

// ClusterSource adapts the functional hbase cluster to metrics.Source so
// the Monitor can poll it like Ganglia + JMX. System metrics (CPU, I/O
// wait) have no physical meaning in the functional layer, so they are
// derived from request throughput against a nominal per-node capacity —
// enough for StageA's thresholds to respond to real load imbalance in
// integration tests. The simulated deployment (met/internal/exp) supplies
// real modeled utilizations instead.
type ClusterSource struct {
	Master *hbase.Master
	// NominalOpsPerSec is the per-node request rate treated as 100%
	// CPU; requests are measured since the previous poll.
	NominalOpsPerSec float64
	// Interval is the expected polling period used to turn request
	// deltas into rates.
	Interval sim.Time

	prevNode map[string]metrics.RequestCounts
}

// NewClusterSource wires a source to the master.
func NewClusterSource(m *hbase.Master, nominalOps float64, interval sim.Time) *ClusterSource {
	return &ClusterSource{
		Master:           m,
		NominalOpsPerSec: nominalOps,
		Interval:         interval,
		prevNode:         make(map[string]metrics.RequestCounts),
	}
}

// Observe implements metrics.Source.
func (s *ClusterSource) Observe(now sim.Time) ([]metrics.NodeObservation, []metrics.RegionObservation) {
	var nodes []metrics.NodeObservation
	var regions []metrics.RegionObservation
	secs := s.Interval.Seconds()
	if secs <= 0 {
		secs = 30
	}
	// One real runtime sample per poll; it describes the whole process,
	// so every durable node in this single-process cluster shares it.
	var proc obs.ProcessStats
	var haveProc bool
	for _, rs := range s.Master.Servers() {
		cum := rs.Requests()
		delta := cum.Sub(s.prevNode[rs.Name()])
		s.prevNode[rs.Name()] = cum
		rate := float64(delta.Total()) / secs
		util := 0.0
		if s.NominalOpsPerSec > 0 {
			util = rate / s.NominalOpsPerSec
		}
		if util > 1 {
			util = 1
		}
		eng := rs.EngineStats()
		cs := rs.CompactionStats()
		reps := rs.ReplicationStats()
		wal := rs.WALStats()
		sys := metrics.SystemMetrics{
			CPUUtilization: util,
			IOWait:         util * 0.4,
			MemoryUsage:    0.5,
		}
		if rs.Config().DataDir != "" {
			// Durable nodes are a real process: report the runtime's
			// memory pressure instead of the simulation placeholder.
			if !haveProc {
				proc, haveProc = obs.ReadProcessStats(), true
			}
			sys.Process = proc
			sys.MemoryUsage = proc.MemoryFraction()
		}
		nodes = append(nodes, metrics.NodeObservation{
			At:       now,
			Node:     rs.Name(),
			System:   sys,
			Requests: delta,
			Locality: rs.Locality(),
			Engine: metrics.EngineStats{
				Flushes:                 eng.Flushes,
				Compactions:             eng.Compactions,
				CompactionQueueDepth:    eng.CompactionQueueDepth + int64(cs.Running),
				StallNanos:              eng.StallNanos,
				WriteAmplification:      eng.WriteAmplification,
				ReplicationQueueDepth:   int64(reps.QueueDepth + reps.Active),
				ReplicationBytesShipped: reps.BytesShipped,
				WALAppends:              wal.Appends,
				WALSyncRounds:           wal.SyncRounds,
				Tail:                    tailLatencies(rs),
			},
		})
		for _, r := range rs.Regions() {
			regions = append(regions, metrics.RegionObservation{
				At:       now,
				Region:   r.Name(),
				Node:     rs.Name(),
				Requests: r.Requests(), // cumulative; Monitor diffs it
				SizeMB:   float64(r.DataBytes()) / (1 << 20),
			})
		}
	}
	return nodes, regions
}

// tailLatencies converts a server's histogram snapshots into the
// percentile summaries the collector carries.
func tailLatencies(rs *hbase.RegionServer) metrics.TailLatencies {
	ls := rs.LatencyStats()
	return metrics.TailLatencies{
		Get:             ls.Get.Summary(),
		Put:             ls.Put.Summary(),
		Scan:            ls.Scan.Summary(),
		Fsync:           ls.Fsync.Summary(),
		Flush:           ls.Flush.Summary(),
		Compaction:      ls.Compaction.Summary(),
		ReplicationShip: ls.ReplicationShip.Summary(),
		TailShip:        ls.TailShip.Summary(),
	}
}
