// Package core implements MeT: the workload-aware elasticity controller
// of the paper (Section 4). It contains the three components of Figure 2
// — Monitor, Decision Maker and Actuator — and the four Decision Maker
// stages of Figure 3:
//
//	StageA  determine whether the cluster's load is acceptable;
//	StageB  Algorithm 1 — quadratic node addition / linear removal;
//	StageC  the Distribution Algorithm — classification, grouping and
//	        LPT assignment (Algorithm 2, via met/internal/placement);
//	StageD  Output Computation — Algorithm 3's set-intersection
//	        matching that minimizes moves and reconfigurations.
//
// The controller is substrate-agnostic: it sees the cluster through the
// Monitor's ClusterView and acts through the Actuator interface, which is
// implemented both for the functional hbase cluster (this package) and
// for the simulated deployment (met/internal/exp).
package core

import (
	"met/internal/hbase"
	"met/internal/placement"
)

// Profiles maps each access-pattern group to the node configuration MeT
// applies to servers assigned to that group — Table 1 of the paper.
type Profiles map[placement.AccessType]hbase.ServerConfig

// Table1Profiles returns the paper's node configuration profiles:
//
//	Node profile  Cache size  Memstore size  Block size
//	Read          55%         10%            32 KB
//	Write         10%         55%            64 KB
//	Read/Write    45%         20%            32 KB
//	Scan          55%         10%            128 KB
func Table1Profiles() Profiles {
	mk := func(cache, mem float64, blockKB int) hbase.ServerConfig {
		return hbase.ServerConfig{
			HeapBytes:          3 << 30,
			BlockCacheFraction: cache,
			MemstoreFraction:   mem,
			BlockBytes:         blockKB << 10,
			Handlers:           10,
		}
	}
	return Profiles{
		placement.Read:      mk(0.55, 0.10, 32),
		placement.Write:     mk(0.10, 0.55, 64),
		placement.ReadWrite: mk(0.45, 0.20, 32),
		placement.Scan:      mk(0.55, 0.10, 128),
	}
}

// Validate checks every profile against HBase's configuration rules.
func (p Profiles) Validate() error {
	for _, cfg := range p {
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	return nil
}
