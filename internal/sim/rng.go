package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 for seeding + xoshiro256** for the stream). Every stochastic
// component takes an *RNG so experiments are exactly reproducible from a
// single seed; math/rand global state is never used.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from the current stream; useful
// for giving each workload or node its own stream while preserving
// determinism when components are added or removed.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics when n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponentially distributed variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes a slice in place using the supplied swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
