package sim

import "container/heap"

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	At Time
	Fn func(now Time)

	seq   uint64 // tie-break so same-time events run in scheduling order
	index int    // heap bookkeeping; -1 when not queued
}

// eventHeap implements container/heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler runs events in virtual-time order. Events scheduled for the
// same instant run in the order they were scheduled, which keeps runs
// deterministic.
type Scheduler struct {
	clock *Clock
	queue eventHeap
	seq   uint64
}

// NewScheduler returns a scheduler over a fresh clock.
func NewScheduler() *Scheduler {
	return &Scheduler{clock: NewClock()}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.clock.Now() }

// Clock exposes the underlying clock (read-only use expected).
func (s *Scheduler) Clock() *Clock { return s.clock }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// ScheduleAt queues fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Scheduler) ScheduleAt(t Time, fn func(now Time)) *Event {
	if t < s.clock.Now() {
		panic("sim: event scheduled in the past")
	}
	e := &Event{At: t, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleAfter queues fn to run d after the current time.
func (s *Scheduler) ScheduleAfter(d Time, fn func(now Time)) *Event {
	return s.ScheduleAt(s.clock.Now()+d, fn)
}

// Cancel removes a pending event. Cancelling an already-run or already-
// cancelled event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(s.queue) || s.queue[e.index] != e {
		return
	}
	heap.Remove(&s.queue, e.index)
}

// Step runs the single earliest event. It reports false when the queue is
// empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.clock.Advance(e.At)
	e.Fn(e.At)
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline. The clock finishes exactly at deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
	}
	if deadline > s.clock.Now() {
		s.clock.Advance(deadline)
	}
}

// Run executes all pending events (including ones scheduled while
// running). Use RunUntil for open-ended simulations.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// EachTick schedules fn every interval starting at start, until fn
// returns false. It is the backbone of tick-driven simulations.
func (s *Scheduler) EachTick(start, interval Time, fn func(now Time) bool) {
	var tick func(now Time)
	tick = func(now Time) {
		if !fn(now) {
			return
		}
		s.ScheduleAt(now+interval, tick)
	}
	s.ScheduleAt(start, tick)
}
