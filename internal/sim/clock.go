// Package sim provides the deterministic discrete-event simulation kernel
// used by every timed substrate in this repository: a virtual clock, an
// event queue with stable ordering, and a seedable pseudo-random number
// generator. All experiment time in the MeT reproduction is virtual time;
// nothing in this package reads the wall clock.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Common virtual-time unit helpers.
const (
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Minutes returns the time as a floating-point number of minutes.
func (t Time) Minutes() float64 { return time.Duration(t).Minutes() }

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time like a time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// At returns the Time corresponding to d since the epoch.
func At(d time.Duration) Time { return Time(d) }

// Clock tracks the current virtual time. It only moves forward.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the epoch.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock to t. It panics if t is in the past, because a
// backwards-moving clock indicates a corrupted event queue.
func (c *Clock) Advance(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}
