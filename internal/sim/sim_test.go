package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvances(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Second)
	if c.Now() != 5*Second {
		t.Fatalf("clock at %v, want 5s", c.Now())
	}
	c.Advance(5 * Second) // same time is allowed
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards clock")
		}
	}()
	c := NewClock()
	c.Advance(Second)
	c.Advance(Millisecond)
}

func TestTimeConversions(t *testing.T) {
	tm := 90 * Second
	if got := tm.Seconds(); got != 90 {
		t.Errorf("Seconds() = %v, want 90", got)
	}
	if got := tm.Minutes(); got != 1.5 {
		t.Errorf("Minutes() = %v, want 1.5", got)
	}
	if got := tm.Duration(); got != 90*time.Second {
		t.Errorf("Duration() = %v, want 90s", got)
	}
	if got := At(time.Minute); got != Minute {
		t.Errorf("At(1m) = %v, want %v", got, Minute)
	}
	if Minute.String() != "1m0s" {
		t.Errorf("String() = %q", Minute.String())
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.ScheduleAt(3*Second, func(Time) { order = append(order, 3) })
	s.ScheduleAt(1*Second, func(Time) { order = append(order, 1) })
	s.ScheduleAt(2*Second, func(Time) { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v", order)
	}
	if s.Now() != 3*Second {
		t.Fatalf("clock at %v after run", s.Now())
	}
}

func TestSchedulerStableSameTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(Second, func(Time) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s := NewScheduler()
	s.ScheduleAt(Second, func(Time) {})
	s.Step()
	s.ScheduleAt(Millisecond, func(Time) {})
}

func TestScheduleAfter(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.ScheduleAt(Second, func(now Time) {
		s.ScheduleAfter(2*Second, func(now Time) { at = now })
	})
	s.Run()
	if at != 3*Second {
		t.Fatalf("nested event at %v, want 3s", at)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.ScheduleAt(Second, func(Time) { ran = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var order []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.ScheduleAt(Time(i+1)*Second, func(Time) { order = append(order, i) }))
	}
	// Cancel every odd event.
	for i := 1; i < 20; i += 2 {
		s.Cancel(events[i])
	}
	s.Run()
	if len(order) != 10 {
		t.Fatalf("got %d events, want 10: %v", len(order), order)
	}
	for _, v := range order {
		if v%2 != 0 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.ScheduleAt(Time(i)*Second, func(Time) { count++ })
	}
	s.RunUntil(5 * Second)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock at %v, want 5s", s.Now())
	}
	if s.Len() != 5 {
		t.Fatalf("pending %d, want 5", s.Len())
	}
	// RunUntil advances the clock even with no events in the window.
	s2 := NewScheduler()
	s2.RunUntil(7 * Second)
	if s2.Now() != 7*Second {
		t.Fatalf("empty RunUntil left clock at %v", s2.Now())
	}
}

func TestEachTick(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	s.EachTick(Second, 2*Second, func(now Time) bool {
		ticks = append(ticks, now)
		return len(ticks) < 4
	})
	s.Run()
	want := []Time{1 * Second, 3 * Second, 5 * Second, 7 * Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGInt63n(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1_000_000_007)
		if v < 0 || v >= 1_000_000_007 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-square-ish sanity check over 16 buckets.
	r := NewRNG(123)
	const n, buckets = 160000, 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.05 {
			t.Fatalf("bucket %d has %d, expected ~%.0f", i, c, expected)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(77)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d times", same)
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(3)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(Time(i%100)*Millisecond, func(Time) {})
		if s.Len() > 1024 {
			s.Step()
		}
	}
	s.Run()
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
