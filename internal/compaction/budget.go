package compaction

import (
	"sync"
	"sync/atomic"
	"time"
)

// Budget is the token-bucket I/O budget shared between background
// compaction and the foreground serving path, implementing kv.IOBudget.
// Tokens are bytes of disk bandwidth, refilled at Rate bytes/sec up to
// one second of burst:
//
//   - WaitBackground (compaction reads and writes) blocks until enough
//     tokens accumulate, consuming them in bounded chunks so the rate
//     shaping stays smooth even for multi-MB requests;
//   - NoteForeground (WAL appends, flush SSTables, i.e. work a client is
//     waiting on) consumes tokens without ever blocking — it may drive
//     the balance negative, which starves *compaction*, never the
//     client. The debt is clamped at one burst so a foreground spike
//     delays compaction by at most ~2 bucket periods rather than
//     forever.
//
// A zero/unlimited budget (rate <= 0) never blocks but still counts
// bytes, so observability does not depend on throttling being enabled.
type Budget struct {
	mu     sync.Mutex
	rate   float64 // bytes per second; <= 0 means unlimited
	burst  float64 // bucket capacity (and max debt)
	tokens float64
	last   time.Time

	backgroundBytes atomic.Int64
	foregroundBytes atomic.Int64
	waitNanos       atomic.Int64
}

// NewBudget creates a budget refilling at bytesPerSec (<= 0: unlimited).
func NewBudget(bytesPerSec int64) *Budget {
	b := &Budget{rate: float64(bytesPerSec), burst: float64(bytesPerSec), last: time.Now()}
	b.tokens = b.burst
	return b
}

// Unlimited reports whether the budget throttles at all.
func (b *Budget) Unlimited() bool { return b.rate <= 0 }

// refillLocked credits tokens for the time elapsed since the last call.
func (b *Budget) refillLocked(now time.Time) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// WaitBackground implements kv.IOBudget: block until n bytes of budget
// are available, then consume them.
func (b *Budget) WaitBackground(n int) {
	if n <= 0 {
		return
	}
	b.backgroundBytes.Add(int64(n))
	if b.rate <= 0 {
		return
	}
	var waited int64
	remaining := float64(n)
	for remaining > 0 {
		b.mu.Lock()
		now := time.Now()
		b.refillLocked(now)
		// Consume whatever is available (up to a chunk of one burst) and
		// sleep only for the shortfall, so concurrent waiters interleave
		// instead of one waiter draining whole seconds at a time.
		take := remaining
		if take > b.burst {
			take = b.burst
		}
		b.tokens -= take
		remaining -= take
		var sleep time.Duration
		if b.tokens < 0 {
			sleep = time.Duration(-b.tokens / b.rate * float64(time.Second))
		}
		b.mu.Unlock()
		if sleep > 0 {
			time.Sleep(sleep)
			waited += int64(sleep)
		}
	}
	b.waitNanos.Add(waited)
}

// NoteForeground implements kv.IOBudget: consume n bytes without
// blocking, clamping the debt at one burst.
func (b *Budget) NoteForeground(n int) {
	if n <= 0 {
		return
	}
	b.foregroundBytes.Add(int64(n))
	if b.rate <= 0 {
		return
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.tokens -= float64(n)
	if b.tokens < -b.burst {
		b.tokens = -b.burst
	}
	b.mu.Unlock()
}

// BudgetStats is a snapshot of the budget's counters.
type BudgetStats struct {
	// BackgroundBytes and ForegroundBytes are cumulative bytes charged
	// by each class.
	BackgroundBytes int64
	ForegroundBytes int64
	// WaitNanos is the cumulative time background callers spent blocked
	// waiting for tokens.
	WaitNanos int64
}

// Stats snapshots the budget counters.
func (b *Budget) Stats() BudgetStats {
	return BudgetStats{
		BackgroundBytes: b.backgroundBytes.Load(),
		ForegroundBytes: b.foregroundBytes.Load(),
		WaitNanos:       b.waitNanos.Load(),
	}
}
