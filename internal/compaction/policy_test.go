package compaction

import (
	"reflect"
	"testing"

	"met/internal/kv"
)

// stack builds a newest-first FileStat stack from (id, bytes, minKey,
// maxKey) tuples.
func stack(files ...kv.FileStat) []kv.FileStat { return files }

func fs(id uint64, bytes int64, minKey, maxKey string) kv.FileStat {
	return kv.FileStat{ID: id, Bytes: bytes, Entries: 1, MinKey: minKey, MaxKey: maxKey}
}

func TestTieredPolicyUnderThresholdDoesNothing(t *testing.T) {
	p := TieredPolicy{}
	files := stack(fs(3, 10, "a", "b"), fs(2, 10, "a", "b"), fs(1, 10, "a", "b"))
	if sel := p.Plan(files, 3); len(sel.IDs) != 0 {
		t.Fatalf("plan at threshold = %+v, want empty", sel)
	}
	if sel := p.Plan(files, 8); len(sel.IDs) != 0 {
		t.Fatalf("plan under threshold = %+v, want empty", sel)
	}
	if sel := p.Plan(files, -1); len(sel.IDs) != 0 {
		t.Fatalf("plan with disabled threshold = %+v, want empty", sel)
	}
}

func TestTieredPolicySelectsEverything(t *testing.T) {
	p := TieredPolicy{}
	files := stack(fs(4, 10, "a", "b"), fs(3, 10, "a", "b"), fs(2, 10, "a", "b"), fs(1, 10, "a", "b"))
	sel := p.Plan(files, 3)
	if want := []uint64{4, 3, 2, 1}; !reflect.DeepEqual(sel.IDs, want) {
		t.Fatalf("tiered selection = %v, want %v", sel.IDs, want)
	}
	if sel.Major {
		t.Fatal("automatic compactions are minor (tombstones kept)")
	}
}

func TestLeveledPolicyPicksCheapestRun(t *testing.T) {
	p := LeveledPolicy{}
	// 5 files, threshold 4 => run length 2. The two small old files
	// (ids 2,1) are the cheapest contiguous pair.
	files := stack(
		fs(5, 1000, "a", "z"),
		fs(4, 900, "a", "z"),
		fs(3, 800, "a", "z"),
		fs(2, 10, "a", "z"),
		fs(1, 10, "a", "z"),
	)
	sel := p.Plan(files, 4)
	if want := []uint64{2, 1}; !reflect.DeepEqual(sel.IDs, want) {
		t.Fatalf("leveled selection = %v, want the small old pair %v", sel.IDs, want)
	}
}

func TestLeveledPolicyPrefersOverlappingRuns(t *testing.T) {
	p := LeveledPolicy{}
	// Equal bytes everywhere; the pair (3,2) overlaps ("m-r" vs "p-z")
	// while (2,1) and (4,3) are disjoint from their neighbors. The
	// overlap discount must win against the older-run tie-break.
	files := stack(
		fs(4, 100, "a", "f"),
		fs(3, 100, "m", "r"),
		fs(2, 100, "p", "z"),
		fs(1, 100, "g", "l"),
	)
	sel := p.Plan(files, 3)
	if want := []uint64{3, 2}; !reflect.DeepEqual(sel.IDs, want) {
		t.Fatalf("leveled selection = %v, want the overlapping pair %v", sel.IDs, want)
	}
}

func TestLeveledPolicyTieBreaksTowardOldFiles(t *testing.T) {
	p := LeveledPolicy{}
	// Identical bytes and ranges: every run scores the same; the oldest
	// run must win deterministically.
	files := stack(
		fs(4, 100, "a", "z"),
		fs(3, 100, "a", "z"),
		fs(2, 100, "a", "z"),
		fs(1, 100, "a", "z"),
	)
	sel := p.Plan(files, 3)
	if want := []uint64{2, 1}; !reflect.DeepEqual(sel.IDs, want) {
		t.Fatalf("leveled selection = %v, want oldest run %v", sel.IDs, want)
	}
	// Determinism: same input, same answer, every time.
	for i := 0; i < 10; i++ {
		if again := p.Plan(files, 3); !reflect.DeepEqual(again.IDs, sel.IDs) {
			t.Fatalf("plan not deterministic: %v then %v", sel.IDs, again.IDs)
		}
	}
}

func TestLeveledRunLengthRestoresThreshold(t *testing.T) {
	p := LeveledPolicy{}
	// 8 files, threshold 4: merging the planned run (length 5) as one
	// file leaves exactly 4.
	var files []kv.FileStat
	for id := 8; id >= 1; id-- {
		files = append(files, fs(uint64(id), int64(id*10), "a", "z"))
	}
	sel := p.Plan(files, 4)
	if got := len(sel.IDs); got != 5 {
		t.Fatalf("run length = %d, want 5", got)
	}
}

func TestScoreOrdersByPressure(t *testing.T) {
	lo := Score(kv.CompactionPressure{NumFiles: 9, TotalBytes: 1 << 20}, 8)
	hi := Score(kv.CompactionPressure{NumFiles: 15, TotalBytes: 1 << 20}, 8)
	if hi <= lo {
		t.Fatalf("more excess files must score higher: %v vs %v", hi, lo)
	}
	big := Score(kv.CompactionPressure{NumFiles: 9, TotalBytes: 1 << 30}, 8)
	if big <= lo {
		t.Fatalf("more bytes must score higher: %v vs %v", big, lo)
	}
}

func TestNewPolicyResolution(t *testing.T) {
	if NewPolicy("").Name() != "tiered" {
		t.Fatal("default policy must be tiered")
	}
	if NewPolicy("leveled").Name() != "leveled" {
		t.Fatal("leveled not resolved")
	}
	if NewPolicy("bogus").Name() != "tiered" {
		t.Fatal("unknown names must degrade to tiered")
	}
}

func TestOverlaps(t *testing.T) {
	a := fs(1, 1, "b", "f")
	for _, tc := range []struct {
		o    kv.FileStat
		want bool
	}{
		{fs(2, 1, "a", "b"), true},  // touch at the edge
		{fs(3, 1, "f", "z"), true},  // touch at the other edge
		{fs(4, 1, "c", "d"), true},  // contained
		{fs(5, 1, "g", "z"), false}, // disjoint above
		{fs(6, 1, "a", "a"), false}, // disjoint below
		{kv.FileStat{ID: 7}, false}, // empty file
	} {
		if got := a.Overlaps(tc.o); got != tc.want {
			t.Fatalf("Overlaps(%q-%q, %q-%q) = %v, want %v", a.MinKey, a.MaxKey, tc.o.MinKey, tc.o.MaxKey, got, tc.want)
		}
	}
}
