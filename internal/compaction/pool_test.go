package compaction

import (
	"fmt"
	"testing"
	"time"

	"met/internal/kv"
)

// newPoolStore wires a store to a pool the way a region server does:
// the pool is the store's trigger, and flushes crossing MaxStoreFiles
// enqueue background work.
func newPoolStore(t *testing.T, pool *Pool, maxFiles int) *kv.Store {
	t.Helper()
	s := kv.NewStore(kv.Config{
		MemstoreFlushBytes: 1 << 30,
		MaxStoreFiles:      maxFiles,
		BlockBytes:         256,
		Compactor:          pool,
		CompactionBudget:   pool.Budget(),
	})
	t.Cleanup(s.Close)
	return s
}

func flushFile(t *testing.T, s *kv.Store, tag string) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("%s-k%02d", tag, i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPoolDrainsTriggeredStore: flushes past the threshold must end, via
// the trigger and the background worker, with a bounded file count —
// no caller ever ran a compaction.
func TestPoolDrainsTriggeredStore(t *testing.T) {
	pool := NewPool(Config{MaxStoreFiles: 3})
	defer pool.Close()
	s := newPoolStore(t, pool, 3)
	for b := 0; b < 8; b++ {
		flushFile(t, s, fmt.Sprintf("b%d", b))
	}
	waitFor(t, "background compaction to bound the file count", func() bool {
		return s.NumFiles() <= 3 && s.Stats().CompactionQueueDepth == 0
	})
	if ps := pool.Stats(); ps.Compactions == 0 || ps.BytesIn == 0 {
		t.Fatalf("pool did no work: %+v", ps)
	}
	// Nothing lost across the merges.
	for b := 0; b < 8; b++ {
		if _, err := s.Get(fmt.Sprintf("b%d-k%02d", b, 5)); err != nil {
			t.Fatalf("key lost by background compaction: %v", err)
		}
	}
}

// TestPoolLeveledDrainsIncrementally: the leveled policy reaches the
// same bounded state through partial merges.
func TestPoolLeveledDrainsIncrementally(t *testing.T) {
	pool := NewPool(Config{MaxStoreFiles: 3, Policy: LeveledPolicy{}})
	defer pool.Close()
	s := newPoolStore(t, pool, 3)
	for b := 0; b < 10; b++ {
		flushFile(t, s, fmt.Sprintf("b%d", b))
	}
	waitFor(t, "leveled compaction to bound the file count", func() bool {
		return s.NumFiles() <= 3 && s.Stats().CompactionQueueDepth == 0
	})
	for b := 0; b < 10; b++ {
		if _, err := s.Get(fmt.Sprintf("b%d-k%02d", b, 5)); err != nil {
			t.Fatalf("key lost: %v", err)
		}
	}
}

// TestCompactWaitIsSynchronousMajor: the actuator path merges to one
// tombstone-free file and blocks until done.
func TestCompactWaitIsSynchronousMajor(t *testing.T) {
	pool := NewPool(Config{MaxStoreFiles: 100}) // no automatic work
	defer pool.Close()
	s := newPoolStore(t, pool, 100)
	flushFile(t, s, "b0")
	if err := s.Delete("b0-k00"); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	flushFile(t, s, "b1")

	if err := pool.CompactWait(s); err != nil {
		t.Fatal(err)
	}
	if got := s.NumFiles(); got != 1 {
		t.Fatalf("files after CompactWait = %d, want 1", got)
	}
	if got := s.FileStats()[0].Entries; got != 19 {
		t.Fatalf("entries = %d, want 19 (20 - deleted - tombstone dropped)", got)
	}
	if ps := pool.Stats(); ps.Compactions != 1 {
		t.Fatalf("pool stats: %+v", ps)
	}
}

// TestCompactWaitAfterCloseFails: waiters must not hang on a closed
// pool.
func TestCompactWaitAfterCloseFails(t *testing.T) {
	pool := NewPool(Config{})
	s := newPoolStore(t, pool, 100)
	pool.Close()
	if err := pool.CompactWait(s); err != ErrPoolClosed {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	// Idempotent close, and triggers after close are ignored.
	pool.Close()
	pool.CompactionNeeded(s, kv.CompactionPressure{NumFiles: 100})
	if got := s.Stats().CompactionQueueDepth; got != 0 {
		t.Fatalf("queue depth after closed-pool notify = %d", got)
	}
}

// TestPoolCoalescesRequests: repeated notifications for one store share
// one queue slot (the gauge never exceeds 1 per store).
func TestPoolCoalescesRequests(t *testing.T) {
	// Zero workers are not possible, so park the single worker with a
	// store whose compaction blocks on... simpler: a closed-over check
	// right after a burst of notifications, before the worker can drain
	// all of them. Determinism instead: enqueue against a pool whose
	// worker is busy on a CompactWait of another store.
	pool := NewPool(Config{MaxStoreFiles: 2})
	defer pool.Close()
	busy := newPoolStore(t, pool, 2)
	idle := newPoolStore(t, pool, 2)
	for b := 0; b < 40; b++ {
		flushFile(t, busy, fmt.Sprintf("bb%02d", b))
	}
	// While the worker chews on `busy`, pile notifications for `idle`.
	for i := 0; i < 50; i++ {
		pool.CompactionNeeded(idle, kv.CompactionPressure{NumFiles: 5, TotalBytes: 1 << 20})
	}
	if got := idle.Stats().CompactionQueueDepth; got > 1 {
		t.Fatalf("coalescing failed: queue depth %d for one store", got)
	}
	waitFor(t, "queues to drain", func() bool {
		ps := pool.Stats()
		return ps.QueueDepth == 0 && ps.Running == 0
	})
	if got := idle.Stats().CompactionQueueDepth; got != 0 {
		t.Fatalf("gauge leaked: %d", got)
	}
}

// TestBudgetAccounting: the token bucket counts both classes, only
// blocks background, and clamps foreground debt.
func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(0) // unlimited
	b.WaitBackground(1 << 20)
	b.NoteForeground(1 << 20)
	st := b.Stats()
	if st.BackgroundBytes != 1<<20 || st.ForegroundBytes != 1<<20 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WaitNanos != 0 {
		t.Fatal("unlimited budget must not wait")
	}

	lim := NewBudget(64 << 20) // 64 MB/s, full bucket
	start := time.Now()
	lim.NoteForeground(1 << 30) // huge foreground burst: must not block
	if time.Since(start) > time.Second {
		t.Fatal("NoteForeground blocked")
	}
	// The debt is clamped at one burst, so a small background request
	// waits ~2 bucket periods at most, not the 16s the full debt would
	// imply.
	start = time.Now()
	lim.WaitBackground(1 << 10)
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("background wait %v; debt clamp failed", e)
	}
	if lim.Stats().WaitNanos == 0 {
		t.Fatal("background wait not accounted")
	}
}

// TestPoolSurvivesClosedStore: a store retired mid-queue (region moved,
// split, server restarted) must not wedge or fail the pool.
func TestPoolSurvivesClosedStore(t *testing.T) {
	pool := NewPool(Config{MaxStoreFiles: 2})
	defer pool.Close()
	s := newPoolStore(t, pool, 2)
	for b := 0; b < 4; b++ {
		flushFile(t, s, fmt.Sprintf("b%d", b))
	}
	s.Close()
	waitFor(t, "queue to drain past the closed store", func() bool {
		ps := pool.Stats()
		return ps.QueueDepth == 0 && ps.Running == 0
	})
	if ps := pool.Stats(); ps.Failures != 0 {
		t.Fatalf("closed store counted as pool failure: %+v", ps)
	}
}
