// Package compaction is the server-wide background compaction subsystem:
// a worker pool that drains a priority queue of stores needing
// compaction, a pluggable file-selection policy (tiered or leveled), and
// a token-bucket I/O budget shared with the foreground serving path.
//
// MeT (Cruz et al., EuroSys '13) uses major compaction as its actuator —
// it fires one after every reconfiguration to restore data locality —
// and its core promise is that serving latency stays predictable while
// such heavy maintenance runs. That promise is impossible when
// compaction I/O happens under the store write lock (where it lived
// until this subsystem): one compaction stalled every Put on the region.
// Here the engine only *requests* service; all compaction I/O runs on
// pool workers, off every engine lock, and is rate-limited so it cannot
// starve foreground fsyncs.
//
//	          Put/Delete ──────────────► kv.Store ──┐ flush crosses
//	               ▲                                │ MaxStoreFiles
//	 stall at hard │                                ▼
//	 file ceiling, │                 CompactionTrigger.CompactionNeeded
//	 released by   │                                │ (score: files,
//	 the swap      │                                ▼  bytes, age)
//	               │                        ┌───────────────┐
//	MajorCompact ──┼──── CompactWait ─────► │ priority queue│
//	(MeT actuator) │      (high prio)       └───────┬───────┘
//	               │                                ▼
//	               │                          worker pool ── Policy.Plan
//	               │                                │     (tiered/leveled)
//	               │                                ▼
//	               └──────────────── kv.Store.CompactFiles(selection)
//	                                  reads+writes pass Budget:
//	                        WaitBackground (blocks) ◄─┐ token bucket
//	                        NoteForeground (never)  ◄─┘ WAL + flush bytes
//
// One Pool serves all regions of a RegionServer, mirroring HBase's
// per-server CompactSplitThread: requests for the same store coalesce
// (their score rises instead of queueing twice), queued tasks age so a
// busy server cannot starve a cold store, and MeT's actuator-issued
// major compactions enter at high priority so reconfiguration completes
// promptly without cutting the serving path's I/O share.
package compaction

import (
	"container/heap"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"met/internal/kv"
	"met/internal/obs"
)

// ErrPoolClosed is returned to waiters when the pool shuts down before
// (or while) servicing their request.
var ErrPoolClosed = errors.New("compaction: pool closed")

// majorPriority is the score floor for actuator-issued major
// compactions; ordinary pressure scores are single digits.
const majorPriority = 1000

// agingWeight converts queue age into score: one excess-file-equivalent
// point per 10 seconds queued, so old requests eventually outrank new
// pressure. Because every task ages at the same rate, relative order
// between two queued tasks never changes — the heap invariant holds no
// matter when the comparison runs.
const agingWeight = 0.1

// Config tunes a Pool. The zero value gets one worker, an unlimited
// budget, the tiered policy and the engine's default soft threshold.
type Config struct {
	// Workers is the number of concurrent compaction goroutines.
	// Defaults to 1; compactions for distinct stores run in parallel
	// when more are configured.
	Workers int
	// BudgetBytesPerSec rate-limits background compaction I/O;
	// <= 0 means unlimited.
	BudgetBytesPerSec int64
	// Policy selects files to merge; nil means TieredPolicy.
	Policy Policy
	// MaxStoreFiles is the soft per-store threshold the policy plans
	// against. Defaults to 8 (the engine default).
	MaxStoreFiles int
	// OnCompacted, when set, runs after every successful compaction,
	// off every lock — the region server uses it to reconcile the HDFS
	// mirror with the store's new file stack.
	OnCompacted func(s *kv.Store, res kv.CompactionResult)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Policy == nil {
		c.Policy = TieredPolicy{}
	}
	if c.MaxStoreFiles == 0 {
		c.MaxStoreFiles = 8
	}
	return c
}

// task is one queued compaction request; requests for the same store
// coalesce into one task.
type task struct {
	store      *kv.Store
	major      bool
	score      float64
	enqueuedAt time.Time
	seq        uint64
	index      int // heap position
	waiters    []chan error
}

func (t *task) effectiveScore(now time.Time) float64 {
	return t.score + agingWeight*now.Sub(t.enqueuedAt).Seconds()
}

// taskHeap orders tasks by effective score (desc), then FIFO.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	now := time.Now()
	si, sj := h[i].effectiveScore(now), h[j].effectiveScore(now)
	if si != sj {
		return si > sj
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Pool is the server-wide background compactor.
type Pool struct {
	cfg    Config
	budget *Budget

	mu      sync.Mutex
	cond    *sync.Cond
	queue   taskHeap
	byStore map[*kv.Store]*task
	seq     uint64
	running int
	closed  bool
	wg      sync.WaitGroup

	compactions     atomic.Int64
	conflicts       atomic.Int64
	failures        atomic.Int64
	bytesIn         atomic.Int64
	bytesOut        atomic.Int64
	compactionNanos atomic.Int64
	durHist         obs.Histogram // per-merge CompactFiles durations
}

// NewPool starts a pool with cfg.Workers background workers.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:     cfg,
		budget:  NewBudget(cfg.BudgetBytesPerSec),
		byStore: make(map[*kv.Store]*task),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// Budget returns the pool's shared I/O budget, for wiring into
// kv.Config.CompactionBudget and the durable backend's foreground
// accounting.
func (p *Pool) Budget() *Budget { return p.budget }

// Policy returns the active file-selection policy.
func (p *Pool) Policy() Policy { return p.cfg.Policy }

// CompactionNeeded implements kv.CompactionTrigger: the engine calls it
// (outside its locks) when a flush pushes a store over the soft
// threshold.
func (p *Pool) CompactionNeeded(s *kv.Store, pr kv.CompactionPressure) {
	p.enqueue(s, Score(pr, p.cfg.MaxStoreFiles), false, nil)
}

// CompactWait enqueues a major compaction of s at high priority and
// blocks until it completes — the path MeT's actuator-issued
// MajorCompact takes, so even "compact everything now" requests respect
// the worker pool and the I/O budget.
func (p *Pool) CompactWait(s *kv.Store) error {
	done := make(chan error, 1)
	if !p.enqueue(s, majorPriority, true, done) {
		return ErrPoolClosed
	}
	return <-done
}

// enqueue adds or coalesces a request; false means the pool is closed.
func (p *Pool) enqueue(s *kv.Store, score float64, major bool, waiter chan error) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if t := p.byStore[s]; t != nil {
		if score > t.score {
			t.score = score
			heap.Fix(&p.queue, t.index)
		}
		t.major = t.major || major
		if waiter != nil {
			t.waiters = append(t.waiters, waiter)
		}
		return true
	}
	p.seq++
	t := &task{store: s, major: major, score: score, enqueuedAt: time.Now(), seq: p.seq}
	if waiter != nil {
		t.waiters = append(t.waiters, waiter)
	}
	heap.Push(&p.queue, t)
	p.byStore[s] = t
	s.NoteCompactionQueued(1)
	p.cond.Signal()
	return true
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		t := heap.Pop(&p.queue).(*task)
		delete(p.byStore, t.store)
		p.running++
		p.mu.Unlock()
		t.store.NoteCompactionQueued(-1)

		err := p.runTask(t)
		for _, w := range t.waiters {
			w <- err
		}
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}
}

// runTask plans and executes compactions for one store until the policy
// is satisfied (or the plan goes stale too many times). A store retired
// mid-task (closed by a restart, split or move) is not a pool failure:
// the replacement store re-triggers on its own flushes.
func (p *Pool) runTask(t *task) error {
	for attempt := 0; attempt < 8; attempt++ {
		var sel kv.CompactionSelection
		if t.major {
			sel = kv.CompactionSelection{Major: true}
		} else {
			sel = p.cfg.Policy.Plan(t.store.FileStats(), p.cfg.MaxStoreFiles)
			if len(sel.IDs) == 0 {
				return nil
			}
		}
		start := time.Now()
		res, err := t.store.CompactFiles(sel)
		switch {
		case err == nil:
			p.compactions.Add(1)
			p.bytesIn.Add(res.BytesIn)
			p.bytesOut.Add(res.BytesOut)
			p.compactionNanos.Add(int64(p.durHist.Since(start)))
			if p.cfg.OnCompacted != nil {
				p.cfg.OnCompacted(t.store, res)
			}
			if t.major {
				return nil
			}
			// Leveled plans are incremental; keep going while the store
			// is still over threshold so one trigger fully drains the
			// backlog.
			continue
		case errors.Is(err, kv.ErrCompactionConflict):
			p.conflicts.Add(1)
			continue
		case errors.Is(err, kv.ErrClosed):
			return err
		default:
			p.failures.Add(1)
			return err
		}
	}
	return nil
}

// Close drains the queue (failing queued waiters with ErrPoolClosed),
// stops the workers and waits for in-flight compactions to finish.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, t := range p.queue {
		t.store.NoteCompactionQueued(-1)
		for _, w := range t.waiters {
			w <- ErrPoolClosed
		}
	}
	p.queue = nil
	p.byStore = make(map[*kv.Store]*task)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// PoolStats is a snapshot of the pool's activity.
type PoolStats struct {
	// QueueDepth is the number of queued (not yet running) requests.
	QueueDepth int
	// Running is the number of in-flight compactions.
	Running int
	// Compactions, Conflicts and Failures count completed merges,
	// stale-plan retries and hard errors.
	Compactions int64
	Conflicts   int64
	Failures    int64
	// BytesIn and BytesOut are cumulative compaction I/O.
	BytesIn  int64
	BytesOut int64
	// CompactionNanos is cumulative wall time spent inside CompactFiles.
	CompactionNanos int64
	// Budget reports the shared I/O budget's counters.
	Budget BudgetStats
}

// Add returns the element-wise sum of two pool snapshots; embedders use
// it to aggregate per-server pools to a cluster view.
func (s PoolStats) Add(o PoolStats) PoolStats {
	return PoolStats{
		QueueDepth:      s.QueueDepth + o.QueueDepth,
		Running:         s.Running + o.Running,
		Compactions:     s.Compactions + o.Compactions,
		Conflicts:       s.Conflicts + o.Conflicts,
		Failures:        s.Failures + o.Failures,
		BytesIn:         s.BytesIn + o.BytesIn,
		BytesOut:        s.BytesOut + o.BytesOut,
		CompactionNanos: s.CompactionNanos + o.CompactionNanos,
		Budget: BudgetStats{
			BackgroundBytes: s.Budget.BackgroundBytes + o.Budget.BackgroundBytes,
			ForegroundBytes: s.Budget.ForegroundBytes + o.Budget.ForegroundBytes,
			WaitNanos:       s.Budget.WaitNanos + o.Budget.WaitNanos,
		},
	}
}

// CompactionLatency returns the distribution of completed per-merge
// CompactFiles durations.
func (p *Pool) CompactionLatency() obs.Snapshot { return p.durHist.Snapshot() }

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	depth, running := len(p.queue), p.running
	p.mu.Unlock()
	return PoolStats{
		QueueDepth:      depth,
		Running:         running,
		Compactions:     p.compactions.Load(),
		Conflicts:       p.conflicts.Load(),
		Failures:        p.failures.Load(),
		BytesIn:         p.bytesIn.Load(),
		BytesOut:        p.bytesOut.Load(),
		CompactionNanos: p.compactionNanos.Load(),
		Budget:          p.budget.Stats(),
	}
}

var _ kv.CompactionTrigger = (*Pool)(nil)
var _ kv.IOBudget = (*Budget)(nil)
