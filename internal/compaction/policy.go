package compaction

import "met/internal/kv"

// Policy decides which files of a store to merge. Plan receives the
// current file stack, newest first (kv.Store.FileStats), and the soft
// file-count threshold; it returns an empty selection when the store
// needs no work. Selections must be contiguous runs of the stack — the
// engine's CompactFiles contract.
type Policy interface {
	// Name identifies the policy ("tiered", "leveled").
	Name() string
	// Plan picks the next compaction for the given stack.
	Plan(files []kv.FileStat, maxStoreFiles int) kv.CompactionSelection
}

// NewPolicy resolves a policy by name; empty means tiered (the engine's
// historical behavior). Unknown names also fall back to tiered so a
// typo degrades to the safe default instead of disabling compaction.
func NewPolicy(name string) Policy {
	if name == "leveled" {
		return LeveledPolicy{}
	}
	return TieredPolicy{}
}

// TieredPolicy reproduces the engine's original inline behavior as a
// background plan: once the stack exceeds maxStoreFiles, merge
// everything into one file. Simple and maximally compacting, but each
// compaction rewrites the store's full byte count — O(total bytes) of
// I/O to reclaim one file slot.
type TieredPolicy struct{}

// Name implements Policy.
func (TieredPolicy) Name() string { return "tiered" }

// Plan implements Policy.
func (TieredPolicy) Plan(files []kv.FileStat, maxStoreFiles int) kv.CompactionSelection {
	if maxStoreFiles <= 0 || len(files) <= maxStoreFiles {
		return kv.CompactionSelection{}
	}
	ids := make([]uint64, len(files))
	for i, f := range files {
		ids[i] = f.ID
	}
	return kv.CompactionSelection{IDs: ids}
}

// LeveledPolicy compacts incrementally: it merges the cheapest
// contiguous run that brings the stack back under the threshold,
// preferring runs whose key ranges overlap (that is where shadowed
// versions, i.e. reclaimable bytes, live). Each compaction therefore
// touches a subset of the store instead of rewriting it wholesale —
// bounded I/O per compaction at the cost of leaving more, smaller files
// between runs.
type LeveledPolicy struct{}

// Name implements Policy.
func (LeveledPolicy) Name() string { return "leveled" }

// Plan implements Policy: choose among all contiguous runs of the
// minimal length that restores the threshold, scoring each run by total
// bytes discounted by its key-range overlap, and picking the cheapest.
// Ties break toward older files (larger start index), which mimics
// HBase's preference for compacting the cold end of the stack.
func (LeveledPolicy) Plan(files []kv.FileStat, maxStoreFiles int) kv.CompactionSelection {
	if maxStoreFiles <= 0 || len(files) <= maxStoreFiles {
		return kv.CompactionSelection{}
	}
	// Merging a run of length L replaces L files with 1: the minimal
	// run that lands exactly on the threshold has length n - max + 1.
	runLen := len(files) - maxStoreFiles + 1
	bestStart, bestScore := -1, 0.0
	for start := len(files) - runLen; start >= 0; start-- {
		run := files[start : start+runLen]
		if score := runScore(run); bestStart < 0 || score < bestScore {
			bestStart, bestScore = start, score
		}
	}
	ids := make([]uint64, runLen)
	for i, f := range files[bestStart : bestStart+runLen] {
		ids[i] = f.ID
	}
	return kv.CompactionSelection{IDs: ids}
}

// runScore is the estimated cost-effectiveness of merging a run: total
// input bytes, discounted by up to 50% as the fraction of overlapping
// file pairs grows. Overlapping inputs dedupe, so their merge both
// shrinks the output and reclaims more space per byte read.
func runScore(run []kv.FileStat) float64 {
	var bytes int64
	overlapping, pairs := 0, 0
	for i, f := range run {
		bytes += f.Bytes
		for _, g := range run[i+1:] {
			pairs++
			if f.Overlaps(g) {
				overlapping++
			}
		}
	}
	score := float64(bytes)
	if pairs > 0 {
		score *= 1 - 0.5*float64(overlapping)/float64(pairs)
	}
	return score
}

// Score ranks a store's compaction urgency for the pool's priority
// queue: how far the stack is over the soft threshold, weighted so file
// count dominates (each excess file adds a whole point) and total bytes
// break ties (a GB adds one point). The pool adds queue-age on top so
// starved stores eventually win.
func Score(p kv.CompactionPressure, maxStoreFiles int) float64 {
	score := float64(p.TotalBytes) / float64(1<<30)
	if maxStoreFiles > 0 && p.NumFiles > maxStoreFiles {
		score += float64(p.NumFiles - maxStoreFiles)
	}
	return score
}
