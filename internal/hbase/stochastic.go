package hbase

import (
	"sort"

	"met/internal/metrics"
	"met/internal/sim"
)

// StochasticBalancer approximates the StochasticLoadBalancer the paper's
// Section 8 discusses as HBase's then-upcoming improvement over the
// random balancer: it performs a randomized local search over
// assignments, scoring each candidate with a weighted cost of region
// count skew, request-load skew and locality loss, and keeps the best
// plan found. As the paper argues, it improves on random placement but
// remains homogeneous and workload-type-oblivious — MeT's heterogeneous
// grouping goes further.
type StochasticBalancer struct {
	// RNG drives the search; nil makes the balancer deterministic
	// (greedy from the sorted order).
	RNG *sim.RNG
	// Steps bounds the local search (default 2000).
	Steps int
	// LoadOf supplies per-region request counts; regions without an
	// entry weigh 0. Typically wired to Region.Requests snapshots.
	LoadOf func(region string) metrics.RequestCounts
	// LocalityOf reports how local a region would be on a node (0..1);
	// nil treats every placement as fully local.
	LocalityOf func(region, node string) float64
	// Weights for the three cost components (defaults 1, 2, 1).
	CountWeight, LoadWeight, LocalityWeight float64
}

// Assign implements Balancer.
func (b *StochasticBalancer) Assign(regions []string, servers []string) map[string]string {
	out := make(map[string]string, len(regions))
	if len(servers) == 0 || len(regions) == 0 {
		return out
	}
	sorted := append([]string(nil), regions...)
	sort.Strings(sorted)
	nodes := append([]string(nil), servers...)
	sort.Strings(nodes)

	// Start from round-robin (count-balanced).
	cur := make(map[string]string, len(sorted))
	for i, r := range sorted {
		cur[r] = nodes[i%len(nodes)]
	}
	best := clonePlan(cur)
	bestCost := b.cost(best, nodes)

	steps := b.Steps
	if steps <= 0 {
		steps = 2000
	}
	if b.RNG == nil {
		// Deterministic fallback: a single greedy pass moving each
		// region to its cost-minimizing node.
		for _, r := range sorted {
			orig := cur[r]
			for _, n := range nodes {
				cur[r] = n
				if c := b.cost(cur, nodes); c < bestCost {
					bestCost = c
					best = clonePlan(cur)
				} else {
					cur[r] = orig
				}
			}
		}
		return best
	}
	for i := 0; i < steps; i++ {
		r := sorted[b.RNG.Intn(len(sorted))]
		orig := cur[r]
		cand := nodes[b.RNG.Intn(len(nodes))]
		if cand == orig {
			continue
		}
		cur[r] = cand
		if c := b.cost(cur, nodes); c < bestCost {
			bestCost = c
			best = clonePlan(cur)
		} else {
			cur[r] = orig // hill climbing: only keep improvements
		}
	}
	return best
}

// cost scores a plan: lower is better.
func (b *StochasticBalancer) cost(plan map[string]string, nodes []string) float64 {
	countW, loadW, localW := b.CountWeight, b.LoadWeight, b.LocalityWeight
	if countW == 0 && loadW == 0 && localW == 0 {
		countW, loadW, localW = 1, 2, 1
	}
	counts := make(map[string]float64, len(nodes))
	loads := make(map[string]float64, len(nodes))
	localityLoss := 0.0
	for r, n := range plan {
		counts[n]++
		if b.LoadOf != nil {
			loads[n] += float64(b.LoadOf(r).Total())
		}
		if b.LocalityOf != nil {
			localityLoss += 1 - b.LocalityOf(r, n)
		}
	}
	return countW*spread(counts, nodes) + loadW*spread(loads, nodes) + localW*localityLoss
}

// spread is the normalized max-minus-min across nodes.
func spread(m map[string]float64, nodes []string) float64 {
	if len(nodes) == 0 {
		return 0
	}
	minV, maxV := m[nodes[0]], m[nodes[0]]
	var sum float64
	for _, n := range nodes {
		v := m[n]
		sum += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if sum == 0 {
		return 0
	}
	return (maxV - minV) / (sum / float64(len(nodes)))
}

func clonePlan(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
