package hbase

import (
	"errors"
	"fmt"
	"testing"

	"met/internal/hdfs"
	"met/internal/sim"
)

// newCluster builds a master with n servers named rs0..rs{n-1}.
func newCluster(t *testing.T, n int) (*Master, *Client) {
	t.Helper()
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	for i := 0; i < n; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), DefaultServerConfig()); err != nil {
			t.Fatal(err)
		}
	}
	return m, NewClient(m)
}

func TestServerConfigValidate(t *testing.T) {
	if err := DefaultServerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultServerConfig()
	bad.BlockCacheFraction = 0.55
	bad.MemstoreFraction = 0.55
	if err := bad.Validate(); err == nil {
		t.Fatal("65% rule not enforced")
	}
	bad = DefaultServerConfig()
	bad.HeapBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero heap accepted")
	}
	bad = DefaultServerConfig()
	bad.BlockBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero block accepted")
	}
	bad = DefaultServerConfig()
	bad.Handlers = 0
	if bad.Validate() == nil {
		t.Fatal("zero handlers accepted")
	}
	bad = DefaultServerConfig()
	bad.MemstoreFraction = -0.1
	if bad.Validate() == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestServerConfigDerived(t *testing.T) {
	cfg := ServerConfig{HeapBytes: 1 << 30, BlockCacheFraction: 0.5, MemstoreFraction: 0.1, BlockBytes: 64 << 10, Handlers: 10}
	if cfg.BlockCacheBytes() != 512<<20 {
		t.Fatalf("cache bytes = %d", cfg.BlockCacheBytes())
	}
	heap := float64(int64(1) << 30)
	if want := int64(heap * 0.1); cfg.MemstoreBytes() != want {
		t.Fatalf("memstore bytes = %d, want %d", cfg.MemstoreBytes(), want)
	}
	if !cfg.Equal(cfg) {
		t.Fatal("config not equal to itself")
	}
	if cfg.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCreateTableAndCRUD(t *testing.T) {
	_, c := newCluster(t, 3)
	m := c.master
	tbl, err := m.CreateTable("usertable", []string{"k250", "k500", "k750"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRegions() != 4 {
		t.Fatalf("regions = %d, want 4", tbl.NumRegions())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%03d", i)
		if err := c.Put("usertable", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 97 {
		key := fmt.Sprintf("k%03d", i)
		v, err := c.Get("usertable", key)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", key, v, err)
		}
	}
	if _, err := c.Get("usertable", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	if err := c.Delete("usertable", "k100"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("usertable", "k100"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
}

func TestCreateTableErrors(t *testing.T) {
	m := NewMaster(hdfs.NewNamenode(1))
	if _, err := m.CreateTable("t", nil); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
	m, _ = newCluster(t, 1)
	if _, err := m.CreateTable("t", []string{"b", "a"}); err == nil {
		t.Fatal("unsorted splits accepted")
	}
	if _, err := m.CreateTable("t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("t", nil); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := m.Table("nope"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v", err)
	}
	if got := m.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tables = %v", got)
	}
}

func TestRegionRouting(t *testing.T) {
	m, _ := newCluster(t, 2)
	tbl, _ := m.CreateTable("t", []string{"m"})
	lo := tbl.RegionFor("a")
	hi := tbl.RegionFor("z")
	if lo == hi {
		t.Fatal("same region for both halves")
	}
	if lo.StartKey() != "" || lo.EndKey() != "m" {
		t.Fatalf("lo = [%s,%s)", lo.StartKey(), lo.EndKey())
	}
	if hi.StartKey() != "m" || hi.EndKey() != "" {
		t.Fatalf("hi = [%s,%s)", hi.StartKey(), hi.EndKey())
	}
	if !hi.Contains("m") || lo.Contains("m") {
		t.Fatal("boundary key routed wrong")
	}
}

func TestScanAcrossRegions(t *testing.T) {
	_, c := newCluster(t, 3)
	c.master.CreateTable("t", []string{"k3", "k6"})
	for i := 0; i < 10; i++ {
		c.Put("t", fmt.Sprintf("k%d", i), []byte{byte('0' + i)})
	}
	got, err := c.Scan("t", "k1", "k8", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("scan len = %d: %v", len(got), got)
	}
	if got[0].Key != "k1" || got[6].Key != "k7" {
		t.Fatalf("range [%s..%s]", got[0].Key, got[6].Key)
	}
	// Limited scan across a region boundary.
	got, err = c.Scan("t", "k2", "", 4)
	if err != nil || len(got) != 4 {
		t.Fatalf("limited scan = %v, %v", got, err)
	}
	if got[3].Key != "k5" {
		t.Fatalf("limited scan end = %s", got[3].Key)
	}
}

func TestScanWholeTable(t *testing.T) {
	_, c := newCluster(t, 2)
	c.master.CreateTable("t", []string{"m"})
	c.Put("t", "a", []byte("1"))
	c.Put("t", "z", []byte("2"))
	got, err := c.Scan("t", "", "", -1)
	if err != nil || len(got) != 2 {
		t.Fatalf("scan = %v, %v", got, err)
	}
}

func TestMoveRegionKeepsData(t *testing.T) {
	m, c := newCluster(t, 2)
	tbl, _ := m.CreateTable("t", nil) // single region
	rname := tbl.RegionNames()[0]
	c.Put("t", "k", []byte("v"))
	src, _ := m.HostOf(rname)
	dst := "rs0"
	if src == "rs0" {
		dst = "rs1"
	}
	if err := m.MoveRegion(rname, dst); err != nil {
		t.Fatal(err)
	}
	if host, _ := m.HostOf(rname); host != dst {
		t.Fatalf("host = %s, want %s", host, dst)
	}
	v, err := c.Get("t", "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("after move Get = %q, %v", v, err)
	}
	if m.Moves() != 1 {
		t.Fatalf("moves = %d", m.Moves())
	}
	// Move to same server is a no-op.
	if err := m.MoveRegion(rname, dst); err != nil {
		t.Fatal(err)
	}
	if m.Moves() != 1 {
		t.Fatal("no-op move counted")
	}
	// Move errors.
	if err := m.MoveRegion("nope", dst); err == nil {
		t.Fatal("unknown region accepted")
	}
	if err := m.MoveRegion(rname, "nope"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalityDegradesOnMoveAndRecoversOnCompact(t *testing.T) {
	m, c := newCluster(t, 2)
	tbl, _ := m.CreateTable("t", nil)
	rname := tbl.RegionNames()[0]
	// Write enough to force flushes (files land local to the host).
	host, _ := m.HostOf(rname)
	rs, _ := m.Server(host)
	for i := 0; i < 2000; i++ {
		c.Put("t", fmt.Sprintf("k%05d", i), make([]byte, 2048))
	}
	tbl.Regions()[0].Store().Flush()
	// Flush the engine and mirror it by one more put.
	c.Put("t", "trigger", []byte("x"))
	if rs.Locality() < 0.99 {
		t.Fatalf("initial locality = %v", rs.Locality())
	}
	// Move to the other server: locality there should be < 1 (the files
	// stayed behind; replication 2 may give partial locality).
	other := "rs0"
	if host == "rs0" {
		other = "rs1"
	}
	if err := m.MoveRegion(rname, other); err != nil {
		t.Fatal(err)
	}
	oRS, _ := m.Server(other)
	// Major compact restores locality to 1 on the new host.
	if _, err := oRS.MajorCompact(rname); err != nil {
		t.Fatal(err)
	}
	if oRS.Locality() < 0.99 {
		t.Fatalf("post-compact locality = %v", oRS.Locality())
	}
}

func TestMajorCompactUnknownRegion(t *testing.T) {
	m, _ := newCluster(t, 1)
	rs, _ := m.Server("rs0")
	if _, err := rs.MajorCompact("nope"); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestServerStopAndRestart(t *testing.T) {
	m, c := newCluster(t, 1)
	m.CreateTable("t", nil)
	c.Put("t", "k", []byte("v"))
	rs, _ := m.Server("rs0")
	rs.Stop()
	if _, err := c.Get("t", "k"); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("stopped err = %v", err)
	}
	rs.Start()
	if _, err := c.Get("t", "k"); err != nil {
		t.Fatalf("restarted err = %v", err)
	}
}

func TestRestartWithNewConfigKeepsData(t *testing.T) {
	m, c := newCluster(t, 1)
	m.CreateTable("t", nil)
	for i := 0; i < 100; i++ {
		c.Put("t", fmt.Sprintf("k%03d", i), []byte("v"))
	}
	rs, _ := m.Server("rs0")
	newCfg := ServerConfig{
		HeapBytes:          3 << 30,
		BlockCacheFraction: 0.55,
		MemstoreFraction:   0.10,
		BlockBytes:         128 << 10,
		Handlers:           10,
	}
	if err := rs.Restart(newCfg); err != nil {
		t.Fatal(err)
	}
	if !rs.Config().Equal(newCfg) {
		t.Fatal("config not applied")
	}
	if rs.Restarts() != 1 {
		t.Fatalf("restarts = %d", rs.Restarts())
	}
	for i := 0; i < 100; i += 13 {
		if _, err := c.Get("t", fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatalf("k%03d lost after restart: %v", i, err)
		}
	}
	// Invalid config is rejected without wrecking the server.
	bad := newCfg
	bad.BlockCacheFraction = 0.9
	if err := rs.Restart(bad); err == nil {
		t.Fatal("invalid restart accepted")
	}
}

func TestRandomBalancerEvenCounts(t *testing.T) {
	b := &RandomBalancer{RNG: sim.NewRNG(42)}
	regions := make([]string, 20)
	for i := range regions {
		regions[i] = fmt.Sprintf("r%02d", i)
	}
	servers := []string{"s0", "s1", "s2", "s3"}
	plan := b.Assign(regions, servers)
	counts := map[string]int{}
	for _, s := range plan {
		counts[s]++
	}
	for s, n := range counts {
		if n != 5 {
			t.Fatalf("server %s has %d regions, want 5", s, n)
		}
	}
	// No servers -> empty plan.
	if len(b.Assign(regions, nil)) != 0 {
		t.Fatal("empty server list produced a plan")
	}
}

func TestRandomBalancerVariesBySeed(t *testing.T) {
	regions := make([]string, 12)
	for i := range regions {
		regions[i] = fmt.Sprintf("r%02d", i)
	}
	servers := []string{"s0", "s1", "s2"}
	p1 := (&RandomBalancer{RNG: sim.NewRNG(1)}).Assign(regions, servers)
	p2 := (&RandomBalancer{RNG: sim.NewRNG(2)}).Assign(regions, servers)
	diff := 0
	for r := range p1 {
		if p1[r] != p2[r] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestManualBalancer(t *testing.T) {
	b := &ManualBalancer{Plan: map[string]string{"r0": "s1", "r1": "s0"}}
	plan := b.Assign([]string{"r0", "r1", "r2"}, []string{"s0", "s1"})
	if plan["r0"] != "s1" || plan["r1"] != "s0" {
		t.Fatalf("plan = %v", plan)
	}
	if plan["r2"] == "" {
		t.Fatal("unplanned region unassigned")
	}
}

func TestRebalanceAppliesBalancer(t *testing.T) {
	m, _ := newCluster(t, 2)
	tbl, _ := m.CreateTable("t", []string{"b", "c", "d"})
	// Force everything onto rs0, then rebalance with a manual plan that
	// moves two regions to rs1.
	for _, r := range tbl.RegionNames() {
		m.MoveRegion(r, "rs0")
	}
	names := tbl.RegionNames()
	m.SetBalancer(&ManualBalancer{Plan: map[string]string{
		names[0]: "rs0", names[1]: "rs1", names[2]: "rs0", names[3]: "rs1",
	}})
	moved, err := m.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	rs1, _ := m.Server("rs1")
	if rs1.NumRegions() != 2 {
		t.Fatalf("rs1 regions = %d", rs1.NumRegions())
	}
}

func TestDecommissionServer(t *testing.T) {
	m, c := newCluster(t, 3)
	m.CreateTable("t", []string{"h", "p"})
	for i := 0; i < 30; i++ {
		c.Put("t", fmt.Sprintf("%c%02d", 'a'+i%26, i), []byte("v"))
	}
	if err := m.DecommissionServer("rs1"); err != nil {
		t.Fatal(err)
	}
	if len(m.Servers()) != 2 {
		t.Fatalf("servers = %d", len(m.Servers()))
	}
	// All data still reachable.
	for i := 0; i < 30; i++ {
		if _, err := c.Get("t", fmt.Sprintf("%c%02d", 'a'+i%26, i)); err != nil {
			t.Fatalf("lost key after decommission: %v", err)
		}
	}
	if err := m.DecommissionServer("nope"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecommissionLastServerFails(t *testing.T) {
	m, c := newCluster(t, 1)
	m.CreateTable("t", nil)
	c.Put("t", "k", []byte("v"))
	if err := m.DecommissionServer("rs0"); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
	// Server restored; data reachable.
	if _, err := c.Get("t", "k"); err != nil {
		t.Fatalf("err after failed decommission = %v", err)
	}
}

func TestAddServerDuplicate(t *testing.T) {
	m, _ := newCluster(t, 1)
	if _, err := m.AddServer("rs0", DefaultServerConfig()); err == nil {
		t.Fatal("duplicate server accepted")
	}
	if _, err := m.AddServer("bad", ServerConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRequestCountersPerRegionAndServer(t *testing.T) {
	m, c := newCluster(t, 1)
	tbl, _ := m.CreateTable("t", []string{"m"})
	c.Put("t", "a", []byte("1"))
	c.Put("t", "z", []byte("2"))
	c.Get("t", "a")
	c.Scan("t", "a", "b", -1)
	rs, _ := m.Server("rs0")
	req := rs.Requests()
	if req.Writes != 2 || req.Reads != 1 || req.Scans != 1 {
		t.Fatalf("server counters = %+v", req)
	}
	lo := tbl.RegionFor("a")
	if lr := lo.Requests(); lr.Writes != 1 || lr.Reads != 1 || lr.Scans != 1 {
		t.Fatalf("lo region counters = %+v", lr)
	}
	hi := tbl.RegionFor("z")
	if hr := hi.Requests(); hr.Writes != 1 || hr.Reads != 0 {
		t.Fatalf("hi region counters = %+v", hr)
	}
}

func TestReadModifyWrite(t *testing.T) {
	m, c := newCluster(t, 1)
	m.CreateTable("t", nil)
	c.Put("t", "counter", []byte{1})
	err := c.ReadModifyWrite("t", "counter", func(v []byte) []byte {
		return []byte{v[0] + 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c.Get("t", "counter")
	if v[0] != 2 {
		t.Fatalf("counter = %d", v[0])
	}
	// RMW on a missing key passes nil to modify.
	err = c.ReadModifyWrite("t", "fresh", func(v []byte) []byte {
		if v != nil {
			t.Fatal("expected nil value")
		}
		return []byte{9}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClientUnknownTable(t *testing.T) {
	_, c := newCluster(t, 1)
	if _, err := c.Get("ghost", "k"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Put("ghost", "k", nil); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Scan("ghost", "", "", -1); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestAssignmentSnapshot(t *testing.T) {
	m, _ := newCluster(t, 2)
	m.CreateTable("t", []string{"m"})
	a := m.Assignment()
	if len(a) != 2 {
		t.Fatalf("assignment = %v", a)
	}
	// Mutating the copy must not affect the master.
	for k := range a {
		a[k] = "hacked"
	}
	for _, v := range m.Assignment() {
		if v == "hacked" {
			t.Fatal("assignment leaked internal map")
		}
	}
}
