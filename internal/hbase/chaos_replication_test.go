package hbase

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestReplicationFailoverChaos is the -race stress for the whole
// subsystem at once: concurrent serving, background compaction,
// replication shipping, and a mid-run hard kill + RecoverServer of one
// server. The invariant: every row acknowledged before the
// flush-and-quiesce barrier survives the failover; the cluster keeps
// serving throughout and afterwards.
func TestReplicationFailoverChaos(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Compaction = CompactionConfig{MaxStoreFiles: 3, StallStoreFiles: 12}
	m, c := newCatalogCluster(t, 3, dir, cfg)
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const opsPerWriter = 400
	val := make([]byte, 256)

	// Phase 1: concurrent load with compaction and shipping running.
	var wg sync.WaitGroup
	barrier := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acked := make(map[string]string, opsPerWriter)
			for i := 0; i < opsPerWriter; i++ {
				k := fmt.Sprintf("%c%d-%05d", 'a'+byte((w*7+i)%26), w, i)
				if err := c.Put("t", k, val); err != nil {
					t.Errorf("phase1 put %s: %v", k, err)
					return
				}
				acked[k] = string(val)
			}
			barrier[w] = acked
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	flushAll(t, m)
	m.QuiesceReplication()

	// Phase 2: keep writing while one server dies and is recovered.
	victim, _ := victimAndKeys(t, m, "t")
	stop := make(chan struct{})
	var phase2 sync.WaitGroup
	for w := 0; w < writers; w++ {
		phase2.Add(1)
		go func(w int) {
			defer phase2.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("%cz%d-%05d", 'a'+byte(i%26), w, i)
				// Phase-2 writes race the kill and the reassignment;
				// errors (ErrServerStopped, ErrWrongRegionServer,
				// kv.ErrClosed, transient "unassigned") are the expected
				// churn and these rows are not part of the verified set
				// — what matters is that no Put deadlocks or corrupts.
				_ = c.Put("t", k, val)
			}
		}(w)
	}

	victim.Shutdown()
	report, err := m.RecoverServer(victim.Name())
	close(stop)
	phase2.Wait()
	if err != nil {
		t.Fatalf("mid-run RecoverServer: %v", err)
	}
	if report == nil || report.LostWrites < 0 {
		t.Fatalf("bogus recovery report: %+v", report)
	}

	// Every acknowledged-and-flushed row survives the failover.
	for w := 0; w < writers; w++ {
		for k := range barrier[w] {
			if _, err := c.Get("t", k); err != nil {
				t.Fatalf("barrier row %s lost in chaos failover: %v", k, err)
			}
		}
	}
	// The cluster still serves and replicates.
	if err := c.Put("t", "post-chaos", val); err != nil {
		t.Fatalf("put after chaos: %v", err)
	}
	flushAll(t, m)
	m.QuiesceReplication()
	if _, err := m.Server(victim.Name()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("victim still a member after recovery: %v", err)
	}
}
