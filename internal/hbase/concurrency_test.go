package hbase

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"met/internal/hdfs"
	"met/internal/kv"
	"met/internal/sim"
)

// benign reports whether err is one of the transient conditions a client
// legitimately sees while the topology churns underneath it: a stopped
// or wrong server, a store mid-reopen, or a key the hotspot generator
// drew that is simply absent.
func benign(err error) bool {
	return err == nil ||
		errors.Is(err, ErrServerStopped) ||
		errors.Is(err, ErrWrongRegionServer) ||
		errors.Is(err, kv.ErrClosed) ||
		errors.Is(err, kv.ErrNotFound)
}

// TestRegionServerConcurrentServing hammers one region server with
// parallel Get/Put/Scan goroutines while a chaos goroutine concurrently
// restarts it, bounces a region through close/open, and runs major
// compactions — the exact interleavings the RWMutex + sorted index +
// atomic counters must survive. Run under -race this is the proof the
// serving path has no data races; the final section proves no write was
// torn or lost visibility.
func TestRegionServerConcurrentServing(t *testing.T) {
	m, _ := newCluster(t, 1)
	rs, _ := m.Server("rs0")
	if _, err := m.CreateTable("t", []string{"k200", "k400", "k600", "k800"}); err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("k%03d", i%1000) }
	for i := 0; i < 1000; i++ {
		if err := rs.Put("t", key(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	// Each worker keeps issuing operations until a quota of them has
	// actually succeeded (a restart window fails every op benignly, so a
	// fixed attempt count could end with zero successes on one core),
	// with a generous attempt cap as a livelock backstop.
	const workers = 8
	const successQuota = 120
	const maxAttempts = 1_000_000
	var wg sync.WaitGroup
	var hardErr atomic.Value
	record := func(err error) bool {
		if err == nil {
			return true
		}
		if !benign(err) {
			hardErr.CompareAndSwap(nil, fmt.Sprintf("%v", err))
		}
		return false
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 1)
			successes := 0
			for i := 0; successes < successQuota && i < maxAttempts && hardErr.Load() == nil; i++ {
				k := key(rng.Intn(1000))
				switch i % 3 {
				case 0:
					_, err := rs.Get("t", k)
					if record(err) {
						successes++
					}
				case 1:
					if record(rs.Put("t", k, []byte(fmt.Sprintf("w%d-%d", w, i)))) {
						successes++
					}
				case 2:
					_, err := rs.Scan("t", k, "", 5)
					if record(err) {
						successes++
					}
				}
			}
			if successes < successQuota {
				hardErr.CompareAndSwap(nil, fmt.Sprintf("worker %d starved: %d successes", w, successes))
			}
		}(w)
	}

	// Chaos: restarts, region bounce, major compactions — concurrently
	// with the serving goroutines above. The sleep between rounds yields
	// the processor so workers see running windows even on one core.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfgs := []ServerConfig{DefaultServerConfig(), {
			HeapBytes: 3 << 30, BlockCacheFraction: 0.55, MemstoreFraction: 0.10,
			BlockBytes: 32 << 10, Handlers: 10,
		}}
		for i := 0; i < 6; i++ {
			if err := rs.Restart(cfgs[i%2]); err != nil {
				record(err)
			}
			if r := rs.CloseRegion("t,k800"); r != nil {
				rs.OpenRegion(r)
			}
			for _, r := range rs.Regions() {
				if _, err := rs.MajorCompact(r.Name()); err != nil {
					// The region may close mid-compact; that error is
					// topology churn, not corruption.
					continue
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	if msg := hardErr.Load(); msg != nil {
		t.Fatalf("hard error under concurrency: %v", msg)
	}

	// The dust has settled: the server must be running, route every key,
	// and serve every seeded row (last value may be any writer's).
	if !rs.Running() {
		t.Fatal("server not running after chaos")
	}
	for i := 0; i < 1000; i++ {
		v, err := rs.Get("t", key(i))
		if err != nil || len(v) == 0 {
			t.Fatalf("Get(%s) after chaos = %q, %v", key(i), v, err)
		}
	}
	req := rs.Requests()
	if req.Reads == 0 || req.Writes == 0 || req.Scans == 0 {
		t.Fatalf("request counters lost operations: %+v", req)
	}
	if rs.Restarts() != 6 {
		t.Fatalf("restarts = %d, want 6", rs.Restarts())
	}
}

// TestClientConcurrentAcrossServers drives the full client routing path
// (master metadata -> sorted index -> store) from many goroutines while
// regions move between servers, verifying the stale-route retry and the
// shared-lock metadata hold up under -race.
func TestClientConcurrentAcrossServers(t *testing.T) {
	m, c := newCluster(t, 3)
	if _, err := m.CreateTable("t", []string{"k300", "k600"}); err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("k%03d", i%900) }
	for i := 0; i < 900; i++ {
		if err := c.Put("t", key(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var hardErr atomic.Value
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 99)
			for i := 0; i < 300; i++ {
				k := key(rng.Intn(900))
				var err error
				if i%2 == 0 {
					_, err = c.Get("t", k)
				} else {
					err = c.Put("t", k, []byte("w"))
				}
				if !benign(err) {
					hardErr.CompareAndSwap(nil, fmt.Sprintf("%v", err))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl, _ := m.Table("t")
		servers := m.Servers()
		for i := 0; i < 20; i++ {
			for _, r := range tbl.RegionNames() {
				dst := servers[i%len(servers)].Name()
				if err := m.MoveRegion(r, dst); err != nil && !benign(err) {
					hardErr.CompareAndSwap(nil, fmt.Sprintf("move: %v", err))
				}
			}
		}
	}()
	wg.Wait()
	if msg := hardErr.Load(); msg != nil {
		t.Fatalf("hard error under concurrent moves: %v", msg)
	}
	for i := 0; i < 900; i++ {
		if _, err := c.Get("t", key(i)); err != nil {
			t.Fatalf("Get(%s) after moves: %v", key(i), err)
		}
	}
}

// TestRestartNeverLosesAcknowledgedWrites pins down the reopen seal:
// writers record every Put the server acknowledged while restarts
// continuously reopen the stores underneath them; each acknowledged key
// must be readable afterwards. Before the store-seal fix, a write could
// slip into the old store after reopen's copy scan and vanish while
// still returning nil to the client.
func TestRestartNeverLosesAcknowledgedWrites(t *testing.T) {
	m, _ := newCluster(t, 1)
	rs, _ := m.Server("rs0")
	if _, err := m.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	acked := make([][]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 600; i++ {
				k := fmt.Sprintf("w%d-%04d", w, i)
				if err := rs.Put("t", k, []byte(k)); err == nil {
					acked[w] = append(acked[w], k)
				} else if !benign(err) {
					t.Errorf("put %s: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := rs.Restart(DefaultServerConfig()); err != nil {
				t.Errorf("restart: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	lost := 0
	for w := 0; w < writers; w++ {
		for _, k := range acked[w] {
			v, err := rs.Get("t", k)
			if err != nil || string(v) != k {
				lost++
				t.Errorf("acknowledged write %s lost: %q, %v", k, v, err)
				if lost > 5 {
					t.Fatal("too many lost writes")
				}
			}
		}
	}
	total := 0
	for w := range acked {
		total += len(acked[w])
	}
	if total == 0 {
		t.Fatal("no writes were ever acknowledged")
	}
}

// TestSplitNeverLosesAcknowledgedWrites does the same for SplitRegion:
// acknowledged writes racing the split must surface in a daughter.
func TestSplitNeverLosesAcknowledgedWrites(t *testing.T) {
	m, c := newCluster(t, 2)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	acked := make([][]string, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("k%04d-w%d-%d", i%400, w, i)
				if err := c.Put("t", k, []byte(k)); err == nil {
					acked[w] = append(acked[w], k)
				} else if !benign(err) {
					t.Errorf("put %s: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl, _ := m.Table("t")
		for i := 0; i < 3; i++ {
			// Split the currently largest region, racing the writers.
			var biggest *Region
			for _, r := range tbl.Regions() {
				if biggest == nil || r.DataBytes() > biggest.DataBytes() {
					biggest = r
				}
			}
			if err := m.SplitRegion(biggest.Name()); err != nil {
				continue // too little data / degenerate key: fine
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	for w := range acked {
		for _, k := range acked[w] {
			v, err := c.Get("t", k)
			if err != nil || string(v) != k {
				t.Fatalf("acknowledged write %s lost after split: %q, %v", k, v, err)
			}
		}
	}
}

// TestMajorCompactPreservesConcurrentFlushMirrors verifies the
// swapFiles fix: an HDFS file mirrored by a flush racing MajorCompact
// must stay referenced by the region (no orphaned namenode bytes).
func TestMajorCompactPreservesConcurrentFlushMirrors(t *testing.T) {
	// A tiny heap makes the memstore flush every few hundred writes, so
	// flush mirrors actually race the compactions below (the default
	// config would never flush at this data volume).
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	small := ServerConfig{
		HeapBytes: 1 << 20, BlockCacheFraction: 0.39, MemstoreFraction: 0.26,
		BlockBytes: 4 << 10, Handlers: 10,
	}
	rs, err := m.AddServer("rs0", small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	tbl, _ := m.Table("t")
	region := tbl.Regions()[0]

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 4000; i++ {
			if err := rs.Put("t", fmt.Sprintf("k%05d", i%2000), make([]byte, 512)); err != nil && !benign(err) {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := rs.MajorCompact(region.Name()); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	if region.Store().Stats().Flushes == 0 {
		t.Fatal("no flushes happened; the test exercised nothing")
	}

	// Every file the namenode still holds for this region is reachable
	// from the region's own list: nothing leaked.
	referenced := make(map[string]bool)
	for _, f := range region.Files() {
		referenced[f] = true
	}
	for _, f := range nn.Files() {
		if !referenced[f] {
			t.Fatalf("namenode file %s not referenced by any region (leak)", f)
		}
	}
}

// TestRestartSurvivesRetiredStore pins the Restart error path: even
// when a hosted region's store was retired underneath it (a racing
// split/close), the server must come back up rather than wedge in the
// stopped state with every future request failing.
func TestRestartSurvivesRetiredStore(t *testing.T) {
	m, _ := newCluster(t, 1)
	rs, _ := m.Server("rs0")
	if _, err := m.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Put("t", "a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Retire one region's store out from under the server.
	tbl, _ := m.Table("t")
	tbl.Regions()[1].Store().Close()
	err := rs.Restart(DefaultServerConfig())
	if err == nil {
		t.Fatal("restart over a retired hosted store reported success")
	}
	if !rs.Running() {
		t.Fatal("server wedged stopped after failed reopen")
	}
	if rs.Restarts() != 1 {
		t.Fatalf("restarts = %d", rs.Restarts())
	}
	// The healthy region still serves.
	if v, getErr := rs.Get("t", "a"); getErr != nil || string(v) != "v" {
		t.Fatalf("healthy region broken after restart: %q, %v", v, getErr)
	}
}

// TestMirrorIgnoresRetiredStore pins the store-identity guard in the
// mirror bookkeeping: a file stack read from a store the region no
// longer tracks must not mint phantom HDFS files.
func TestMirrorIgnoresRetiredStore(t *testing.T) {
	rs := newTestServer(t, "rs0")
	r := openRegion(t, rs, "t1", "", "")
	old := r.Store()
	if err := old.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	old.Flush()
	// Pretend a restart swapped in a fresh store.
	fresh := kv.NewStore(kv.Config{MemstoreFlushBytes: 1 << 20})
	r.resetMirror(fresh, false)
	if _, _, ok := r.mirrorActions(old, false); ok {
		t.Fatal("retired store accepted: phantom mirror")
	}
	// The tracked store still reconciles.
	if err := fresh.Put("k2", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fresh.Flush()
	adds, _, ok := r.mirrorActions(fresh, false)
	if !ok || len(adds) != 1 {
		t.Fatalf("tracked store rejected: ok=%v adds=%v", ok, adds)
	}
}
