package hbase

// The META catalog: the cluster's own layout, stored as just another
// durable region. HBase keeps table schemas and the region→server
// assignment in a META table that is itself a region served by the
// cluster; this file reproduces that idea one level down — a
// Master-owned kv.Store on the durable backend (WAL + SSTables under
// <DataDir>/meta) that every layout mutation writes through, so a whole
// cluster can cold-start from its data directory alone (OpenCluster).
//
// # Row format
//
// Three key families, each value a JSON document; the LSM engine's
// timestamps version the rows (a rewrite supersedes, a tombstone
// deletes), and each document additionally carries a monotonically
// increasing Rev for observability:
//
//	cluster                  -> {replication, splitSeq, rev}
//	server/<name>            -> {config (ServerConfig incl. DataDir,
//	                             compaction knobs), rev}
//	table/<name>             -> {splitKeys, regions: [{name, start,
//	                             end, server, followers}], rev}
//	snapshot/<table>/<name>  -> {table, regions: [{name, start, end,
//	                             files: [sstable ids], maxTS (the WAL
//	                             high-water mark the snapshot
//	                             covers)}], rev}
//
// A region's followers — the servers holding replica copies of its
// SSTables (met/internal/replication) — ride inside its table row, so
// replica placement commits atomically with the layout that created
// it. Snapshot rows are the manifest of Master.Snapshot: the exact
// SSTable set archived under <DataDir>/snapshots, one fsynced Put as
// the commit point.
//
// One row per table — not one per region — so every layout change a
// single operation makes (create, move, split) commits as ONE durable
// Put: the row is either entirely the old layout or entirely the new
// one, never a half-moved or half-split table. The Put is acknowledged
// only after its WAL record is fsynced (the durable engine's contract),
// which is what makes each catalog commit a crash-consistent point.
//
// # Commit ordering
//
// Mutating operations write the catalog at the point that makes a crash
// on either side recoverable:
//
//	AddServer          register server, THEN put server row — a crash
//	                   between leaves no row: the server is cleanly
//	                   absent after cold start.
//	CreateTable        open all regions, THEN put the table row (the
//	                   commit point) — a crash between leaves orphan
//	                   region directories that OpenCluster sweeps; the
//	                   table is cleanly absent.
//	MoveRegion         move, THEN put the table row — a crash between
//	                   reopens the region on its old host (region data
//	                   directories are keyed by region name, so data is
//	                   correct either way).
//	SplitRegion        bump splitSeq (so a replayed split can never
//	                   mint colliding daughter names), import the
//	                   daughters, THEN put the table row (parent
//	                   replaced by daughters in one commit), THEN
//	                   reclaim the parent directory. A crash before the
//	                   commit leaves the parent authoritative and the
//	                   daughters orphaned (swept); after it, the
//	                   daughters are authoritative and the parent
//	                   directory is the orphan.
//	DecommissionServer move every region (one table-row commit each),
//	                   THEN delete the server row — a crash mid-drain
//	                   cold-starts into the partially drained layout,
//	                   which is consistent.
//	Snapshot           flush and archive every region's SSTables under
//	                   snapshots/, THEN put the snapshot row (the
//	                   commit point) — a crash between leaves an
//	                   orphan archive directory that OpenCluster
//	                   sweeps; the snapshot is cleanly absent.
//	RestoreSnapshot    bump splitSeq, build fresh gen-suffixed regions
//	                   from the archived files, THEN put the table row
//	                   (old layout atomically replaced), THEN reclaim
//	                   the old regions' directories. Either side of a
//	                   crash is a complete table; the losing side's
//	                   directories are the orphans.
//	RecoverServer      per dead region: copy its replica SSTables into
//	                   a fresh gen-suffixed directory on a follower,
//	                   replay the replica's shipped WAL tail over them,
//	                   open it, THEN put the table row; finally delete
//	                   the dead server's row and reclaim its shared WAL
//	                   directory. A crash mid-way cold-starts the
//	                   partially recovered layout (recovered regions on
//	                   their followers, the rest still on the — then
//	                   revived — dead server) and RecoverServer can
//	                   simply be re-run.
//
// # WAL ownership
//
// Since the shared server-wide log (durable.WAL), a region's records
// live in its *hosting server's* WAL directory (<DataDir>/wal/<server>)
// rather than its own region directory — so WAL ownership follows the
// assignment the table rows record, and the commit ordering above
// gains a log-side obligation at every region hand-off:
//
//	MoveRegion / DecommissionServer   before the destination serves the
//	       region, its store flushes and switches onto the
//	       destination's log (kv.Store.SwitchWAL). The flush makes the
//	       old log's records for the region durable in SSTables — and
//	       truncated away — BEFORE the table row commits the new
//	       assignment, so a cold start never needs a log the assignment
//	       no longer points at.
//	Abandoned regions (failed create, superseded split parent,
//	       restore's old layout)   discarding the store appends a
//	       durable drop marker to the shared log; without it, segments
//	       pinned by the abandoned region would replay its records into
//	       a future region re-minted under the same name.
//	RecoverServer   never reads the dead server's WAL directory (it
//	       stands in for a lost disk). What survives of the memstore is
//	       the replica's shipped tail (wal-tail.log, written by the
//	       replicator after each commit fsync): recovery replays it
//	       over the replica SSTables before measuring loss, so the
//	       reported LostWrites shrinks to the unsynced in-flight
//	       window. The dead server's WAL directory is reclaimed after
//	       its membership row is dropped; a crash between the two
//	       leaves an orphan directory OpenCluster's WAL sweep removes.
//
// # Recovery order
//
// OpenCluster replays in dependency order: the cluster row (replication
// factor, split sequence), then server rows (re-creating each
// RegionServer with its persisted config), then table rows (reopening
// every region's store from its directory on its assigned server and
// rebuilding routing), and finally the orphan sweep that removes region
// directories no table row references.

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"met/internal/durable"
	"met/internal/kv"
)

// Catalog key scheme.
const (
	catalogClusterKey  = "cluster"
	catalogServerPfx   = "server/"
	catalogTablePfx    = "table/"
	catalogSnapshotPfx = "snapshot/"
	catalogDirName     = "meta"
	catalogMemstore    = 1 << 20
	catalogStoreSplits = 4
)

// clusterRow is the singleton cluster-wide record.
type clusterRow struct {
	Replication int    `json:"replication"`
	SplitSeq    int64  `json:"split_seq"`
	Rev         uint64 `json:"rev"`
}

// serverRow records one region server's membership and configuration.
type serverRow struct {
	Config ServerConfig `json:"config"`
	Rev    uint64       `json:"rev"`
}

// tableRow records one table's schema and complete region layout. It is
// the catalog's atomic unit: every layout change to the table rewrites
// the whole row in one durable Put.
type tableRow struct {
	SplitKeys []string    `json:"split_keys,omitempty"`
	Regions   []regionRow `json:"regions"`
	Rev       uint64      `json:"rev"`
}

// regionRow is one region's bounds and assignment inside a tableRow.
// Followers records which servers hold replica copies of the region's
// SSTables (met/internal/replication); RecoverServer and OpenCluster
// rediscover replica placement from it.
type regionRow struct {
	Name      string   `json:"name"`
	Start     string   `json:"start"`
	End       string   `json:"end,omitempty"`
	Server    string   `json:"server"`
	Followers []string `json:"followers,omitempty"`
}

// snapshotRow is the manifest of one point-in-time table snapshot: the
// exact SSTable set archived per region, plus each region's WAL
// high-water mark (the store's logical clock at snapshot time — every
// mutation with a timestamp at or below it is inside the archived
// files, everything above is not part of the snapshot).
type snapshotRow struct {
	Table   string           `json:"table"`
	Regions []snapshotRegion `json:"regions"`
	Rev     uint64           `json:"rev"`
}

// snapshotRegion is one region's contribution to a snapshot manifest.
type snapshotRegion struct {
	Name  string   `json:"name"`
	Start string   `json:"start"`
	End   string   `json:"end,omitempty"`
	Files []uint64 `json:"files"`
	MaxTS uint64   `json:"max_ts"`
}

// snapshotKey builds the catalog key of one snapshot row.
func snapshotKey(table, name string) string {
	return catalogSnapshotPfx + table + "/" + name
}

// catalog is the Master's handle on the META store. All mutations
// serialize on mu (layout changes are rare; the serving path never
// touches the catalog), so row revisions are strictly ordered.
type catalog struct {
	mu    sync.Mutex
	store *kv.Store
	dir   string // the cluster DataDir the catalog lives under
	rev   uint64 // last revision handed out
}

// catalogDir returns the META store's directory under the cluster data
// root — a sibling of regions/, never swept by the orphan cleanup.
func catalogDir(dataDir string) string {
	return filepath.Join(dataDir, catalogDirName)
}

// openCatalog opens (or creates) the META store under dataDir. The
// store runs inline compaction (no pool): catalog traffic is a handful
// of tiny rows per layout change, and keeping it self-contained means
// the catalog never depends on any region server's lifecycle.
func openCatalog(dataDir string) (*catalog, error) {
	store, err := kv.OpenStore(kv.Config{
		MemstoreFlushBytes: catalogMemstore,
		MaxStoreFiles:      catalogStoreSplits,
		OpenBackend:        durable.Opener(catalogDir(dataDir), durable.Options{}),
	})
	if err != nil {
		return nil, fmt.Errorf("hbase: open catalog: %w", err)
	}
	return &catalog{store: store, dir: dataDir}, nil
}

// put marshals row and durably writes it under key; the write is
// fsynced before put returns (the commit point of the calling
// operation).
func (c *catalog) put(key string, row any) error {
	buf, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("hbase: catalog encode %s: %w", key, err)
	}
	if err := c.store.Put(key, buf); err != nil {
		return fmt.Errorf("hbase: catalog write %s: %w", key, err)
	}
	return nil
}

// delete durably tombstones key.
func (c *catalog) delete(key string) error {
	if err := c.store.Delete(key); err != nil {
		return fmt.Errorf("hbase: catalog delete %s: %w", key, err)
	}
	return nil
}

// get reads and unmarshals one row into out; ok=false when absent.
func (c *catalog) get(key string, out any) (bool, error) {
	buf, err := c.store.Get(key)
	if err != nil {
		if errors.Is(err, kv.ErrNotFound) {
			return false, nil
		}
		return false, fmt.Errorf("hbase: catalog read %s: %w", key, err)
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return false, fmt.Errorf("hbase: catalog decode %s: %w", key, err)
	}
	return true, nil
}

// nextRev mints the next row revision. Callers hold c.mu.
func (c *catalog) nextRev() uint64 {
	c.rev++
	return c.rev
}

// catalogState is everything loadAll recovers: the typed rows of the
// whole catalog, keyed the way recovery consumes them (snapshots by
// "<table>/<name>").
type catalogState struct {
	cluster   clusterRow
	servers   map[string]serverRow
	tables    map[string]tableRow
	snapshots map[string]snapshotRow
}

// loadAll scans the whole catalog into its typed rows, restoring the
// revision counter past every recovered revision.
func (c *catalog) loadAll() (catalogState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := catalogState{
		cluster:   clusterRow{Replication: 2},
		servers:   make(map[string]serverRow),
		tables:    make(map[string]tableRow),
		snapshots: make(map[string]snapshotRow),
	}
	entries, err := c.store.Scan("", "", -1)
	if err != nil {
		return st, fmt.Errorf("hbase: catalog scan: %w", err)
	}
	for _, e := range entries {
		var rev uint64
		switch {
		case e.Key == catalogClusterKey:
			if err := json.Unmarshal(e.Value, &st.cluster); err != nil {
				return st, fmt.Errorf("hbase: catalog decode %s: %w", e.Key, err)
			}
			rev = st.cluster.Rev
		case strings.HasPrefix(e.Key, catalogServerPfx):
			var row serverRow
			if err := json.Unmarshal(e.Value, &row); err != nil {
				return st, fmt.Errorf("hbase: catalog decode %s: %w", e.Key, err)
			}
			st.servers[e.Key[len(catalogServerPfx):]] = row
			rev = row.Rev
		case strings.HasPrefix(e.Key, catalogSnapshotPfx):
			var row snapshotRow
			if err := json.Unmarshal(e.Value, &row); err != nil {
				return st, fmt.Errorf("hbase: catalog decode %s: %w", e.Key, err)
			}
			st.snapshots[e.Key[len(catalogSnapshotPfx):]] = row
			rev = row.Rev
		case strings.HasPrefix(e.Key, catalogTablePfx):
			var row tableRow
			if err := json.Unmarshal(e.Value, &row); err != nil {
				return st, fmt.Errorf("hbase: catalog decode %s: %w", e.Key, err)
			}
			st.tables[e.Key[len(catalogTablePfx):]] = row
			rev = row.Rev
		}
		if rev > c.rev {
			c.rev = rev
		}
	}
	return st, nil
}

// close releases the catalog store (WAL and SSTable handles).
func (c *catalog) close() {
	c.store.Close()
}
