package hbase

// The multi-process node surface: what met/internal/rpc and cmd/metnode
// build a networked cluster from. In-process, one Master object owns
// the catalog AND every RegionServer; across processes that splits into
//
//   - a layout master (LayoutMaster): the catalog's exclusive owner —
//     the META store is itself a durable kv.Store with a WAL, so
//     exactly one process may open it. It holds no region stores at
//     all: it loads the committed layout, hands each worker its
//     manifest, routes clients, and orchestrates failover. Layout
//     changes bump an in-memory routing epoch clients use to detect
//     stale route caches.
//   - worker nodes: one process per region server, opened with
//     OpenServerNode from the manifest the master hands out. A worker
//     owns its shared WAL and region stores exclusively (directories
//     are keyed by server and region name, so workers never collide on
//     disk) and serves Get/Put/Delete/Scan directly.
//
// Failover splits the same way RecoverServer does in-process, at the
// same commit points: the master plans the recovery (PlanRecovery picks
// each dead region's best replica by scanning the shipped copies on the
// shared disk — reading files is safe, only store/WAL *ownership* is
// exclusive), the chosen workers adopt their regions from the replica
// copies (RegionServer.AdoptRegion — the worker-side middle of
// recoverRegion), and the master commits the new layout
// (CommitRecovery: table rows, then the membership delete, then
// directory reclaim). A crash mid-way cold-starts the partially
// recovered layout, exactly like the in-process path, and the recovery
// can be re-run.
//
// Loss accounting differs from RecoverServer by necessity: a real
// process kill takes the dead server's in-memory clocks with it, so
// there is no deadTS to subtract. AdoptionReport carries RecoveredTS
// (the adopted store's clock — dense, one tick per mutation) and the
// caller measures loss against what it acknowledged, which is how the
// metbench failover gate does its accounting.

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"met/internal/durable"
	"met/internal/hdfs"
	"met/internal/replication"
)

// LayoutRegion is one region's row in the layout a LayoutMaster serves:
// everything a client needs to route (bounds, host) and everything a
// worker needs to open it (name, table, followers).
type LayoutRegion struct {
	Name      string   `json:"name"`
	Table     string   `json:"table"`
	Start     string   `json:"start"`
	End       string   `json:"end,omitempty"`
	Server    string   `json:"server"`
	Followers []string `json:"followers,omitempty"`
}

// NodeManifest is what a worker needs to open its slice of the cluster.
type NodeManifest struct {
	Server      string         `json:"server"`
	Config      ServerConfig   `json:"config"`
	Replication int            `json:"replication"`
	Regions     []LayoutRegion `json:"regions"`
	Epoch       int64          `json:"epoch"`
}

// AdoptSpec tells a worker to fail a dead region over onto itself.
type AdoptSpec struct {
	// Region is the dead region's name; NewRegion the gen-suffixed name
	// it is recovered under (minted by PlanRecovery after a durable
	// split-sequence bump, so a replayed recovery cannot collide).
	Region    string `json:"region"`
	NewRegion string `json:"new_region"`
	Table     string `json:"table"`
	Start     string `json:"start"`
	End       string `json:"end,omitempty"`
	// Source is the worker that should adopt (it holds the best
	// replica). ReplicaDir is that replica's directory on the shared
	// disk; empty means no copy survived and the region starts empty
	// (the loss is the whole region, and the caller's accounting will
	// say so).
	Source     string   `json:"source"`
	ReplicaDir string   `json:"replica_dir,omitempty"`
	Followers  []string `json:"followers,omitempty"`
}

// AdoptionReport is the worker's account of one AdoptRegion.
type AdoptionReport struct {
	NewRegion    string `json:"new_region"`
	ReplicaFiles int    `json:"replica_files"`
	TailWrites   int    `json:"tail_writes"`
	TailTorn     bool   `json:"tail_torn,omitempty"`
	// RecoveredTS is the adopted store's logical clock — timestamps are
	// minted densely, so the caller can measure loss against the count
	// of writes it saw acknowledged.
	RecoveredTS uint64 `json:"recovered_ts"`
}

// FollowerUpdate directs a worker to repoint one of its regions'
// replica targets after a membership change (the multi-process
// refreshFollowersAfterLoss).
type FollowerUpdate struct {
	Region    string   `json:"region"`
	Server    string   `json:"server"`
	Followers []string `json:"followers"`
}

// LayoutMaster is the catalog-owning, store-less master of a
// multi-process cluster.
type LayoutMaster struct {
	mu          sync.Mutex
	cat         *catalog
	dataDir     string
	replication int
	splitSeq    int64
	epoch       int64
	servers     map[string]ServerConfig
	tables      map[string]*tableRow
}

// OpenLayoutMaster opens the cluster catalog exclusively and loads the
// committed layout. No region store is opened; workers own those.
func OpenLayoutMaster(dataDir string) (*LayoutMaster, error) {
	if _, err := os.Stat(catalogDir(dataDir)); err != nil {
		return nil, fmt.Errorf("hbase: open layout master %q: no META catalog: %w", dataDir, err)
	}
	cat, err := openCatalog(dataDir)
	if err != nil {
		return nil, err
	}
	st, err := cat.loadAll()
	if err != nil {
		cat.close()
		return nil, err
	}
	if len(st.servers) == 0 {
		cat.close()
		return nil, fmt.Errorf("hbase: open layout master %q: catalog holds no committed servers", dataDir)
	}
	lm := &LayoutMaster{
		cat:         cat,
		dataDir:     dataDir,
		replication: st.cluster.Replication,
		splitSeq:    st.cluster.SplitSeq,
		epoch:       1,
		servers:     make(map[string]ServerConfig, len(st.servers)),
		tables:      make(map[string]*tableRow, len(st.tables)),
	}
	for name, row := range st.servers {
		lm.servers[name] = row.Config
	}
	for name, row := range st.tables {
		r := row
		lm.tables[name] = &r
	}
	return lm, nil
}

// Close releases the catalog store.
func (lm *LayoutMaster) Close() { lm.cat.close() }

// Epoch returns the current routing epoch. It advances on every layout
// change; a client carrying an older epoch is routing on a stale
// layout and must re-fetch.
func (lm *LayoutMaster) Epoch() int64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.epoch
}

// Replication returns the cluster's committed replication factor.
func (lm *LayoutMaster) Replication() int { return lm.replication }

// ServerNames lists the committed membership, sorted.
func (lm *LayoutMaster) ServerNames() []string {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	names := make([]string, 0, len(lm.servers))
	for n := range lm.servers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// regionsLocked flattens the layout; callers hold lm.mu.
func (lm *LayoutMaster) regionsLocked() []LayoutRegion {
	var out []LayoutRegion
	tnames := make([]string, 0, len(lm.tables))
	for tn := range lm.tables {
		tnames = append(tnames, tn)
	}
	sort.Strings(tnames)
	for _, tn := range tnames {
		for _, rr := range lm.tables[tn].Regions {
			out = append(out, LayoutRegion{
				Name: rr.Name, Table: tn, Start: rr.Start, End: rr.End,
				Server: rr.Server, Followers: append([]string(nil), rr.Followers...),
			})
		}
	}
	return out
}

// Layout returns the routing epoch and the complete region layout.
func (lm *LayoutMaster) Layout() (int64, []LayoutRegion) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.epoch, lm.regionsLocked()
}

// Manifest builds the open-time manifest for one worker.
func (lm *LayoutMaster) Manifest(server string) (NodeManifest, error) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	cfg, ok := lm.servers[server]
	if !ok {
		return NodeManifest{}, fmt.Errorf("hbase: manifest: unknown server %q", server)
	}
	man := NodeManifest{Server: server, Config: cfg, Replication: lm.replication, Epoch: lm.epoch}
	for _, r := range lm.regionsLocked() {
		if r.Server == server {
			man.Regions = append(man.Regions, r)
		}
	}
	return man, nil
}

// regionCountsLocked counts assigned regions per server (placement
// load); callers hold lm.mu.
func (lm *LayoutMaster) regionCountsLocked() map[string]int {
	counts := make(map[string]int, len(lm.servers))
	for n := range lm.servers {
		counts[n] = 0
	}
	for _, t := range lm.tables {
		for _, rr := range t.Regions {
			counts[rr.Server]++
		}
	}
	return counts
}

// pickFollowersLocked chooses replication−1 live servers other than
// host, least-loaded first (the namenode's placement policy, re-derived
// from the layout because the layout master runs no namenode). Callers
// hold lm.mu.
func (lm *LayoutMaster) pickFollowersLocked(host string) []string {
	counts := lm.regionCountsLocked()
	cands := make([]string, 0, len(counts))
	for n := range counts {
		if n != host {
			cands = append(cands, n)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if counts[cands[i]] != counts[cands[j]] {
			return counts[cands[i]] < counts[cands[j]]
		}
		return cands[i] < cands[j]
	})
	want := lm.replication - 1
	if want > len(cands) {
		want = len(cands)
	}
	return append([]string(nil), cands[:want]...)
}

// PlanRecovery plans the failover of a dead worker: one AdoptSpec per
// region it hosted, each targeted at the live follower whose shipped
// replica covers the highest timestamp (ties to the most files, then
// follower order — pickRecoverySource's election, run over the shared
// disk). The split sequence is bumped and committed first, so a
// replayed recovery can never mint colliding names. The dead process
// must actually be dead: its WAL and region directories are about to
// be recovered around and then reclaimed.
func (lm *LayoutMaster) PlanRecovery(dead string) ([]AdoptSpec, error) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	deadCfg, ok := lm.servers[dead]
	if !ok {
		return nil, fmt.Errorf("hbase: plan recovery: unknown server %q", dead)
	}
	if len(lm.servers) == 1 {
		return nil, ErrNoServers
	}
	lm.splitSeq++
	gen := lm.splitSeq
	if err := lm.commitClusterLocked(); err != nil {
		lm.splitSeq--
		return nil, err
	}
	var specs []AdoptSpec
	for _, r := range lm.regionsLocked() {
		if r.Server != dead {
			continue
		}
		source, replicaDirPath := lm.electReplicaLocked(deadCfg.DataDir, dead, r)
		if source == "" {
			return nil, fmt.Errorf("hbase: plan recovery: no live server to adopt %s", r.Name)
		}
		specs = append(specs, AdoptSpec{
			Region: r.Name, NewRegion: fmt.Sprintf("%s.%d", r.Name, gen),
			Table: r.Table, Start: r.Start, End: r.End,
			Source: source, ReplicaDir: replicaDirPath,
			Followers: lm.pickFollowersLocked(source),
		})
	}
	return specs, nil
}

// electReplicaLocked is pickRecoverySource over the layout: the live
// follower with the highest covered timestamp wins; with no surviving
// replica, the least-loaded live server starts the region empty.
// Callers hold lm.mu.
func (lm *LayoutMaster) electReplicaLocked(deadDataDir, dead string, r LayoutRegion) (string, string) {
	best, bestDir := "", ""
	bestFiles := -1
	var bestCovered uint64
	for _, f := range r.Followers {
		if f == dead {
			continue
		}
		if _, ok := lm.servers[f]; !ok {
			continue
		}
		dir := replicaDir(deadDataDir, f, r.Name)
		ids, err := replication.ListSSTables(dir)
		if err != nil {
			continue
		}
		covered := replicaCoveredTS(dir, ids)
		if best == "" || covered > bestCovered ||
			(covered == bestCovered && len(ids) > bestFiles) {
			best, bestDir, bestFiles, bestCovered = f, dir, len(ids), covered
		}
	}
	if best != "" {
		return best, bestDir
	}
	counts := lm.regionCountsLocked()
	for n := range counts {
		if n == dead {
			continue
		}
		if best == "" || counts[n] < counts[best] || (counts[n] == counts[best] && n < best) {
			best = n
		}
	}
	return best, ""
}

// CommitRecovery publishes a completed recovery: every affected table's
// row is rewritten with the adopted regions (one durable Put per table
// — the same atomicity unit as in-process recovery), the dead server's
// membership row is deleted, its directories are reclaimed, and the
// routing epoch advances. It returns the follower updates for regions
// elsewhere that replicated onto the dead server, which the caller
// must relay to the owning workers (SetFollowers + a replication
// nudge); those re-picks are committed here too.
func (lm *LayoutMaster) CommitRecovery(dead string, specs []AdoptSpec) ([]FollowerUpdate, error) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	deadCfg, ok := lm.servers[dead]
	if !ok {
		return nil, fmt.Errorf("hbase: commit recovery: unknown server %q", dead)
	}
	byRegion := make(map[string]AdoptSpec, len(specs))
	for _, sp := range specs {
		byRegion[sp.Region] = sp
	}
	// Swap the adopted regions into their table rows, and re-pick the
	// follower sets that listed the dead server, in one pass per table.
	var updates []FollowerUpdate
	changed := make(map[string]bool)
	for tn, t := range lm.tables {
		for i := range t.Regions {
			rr := &t.Regions[i]
			if sp, ok := byRegion[rr.Name]; ok {
				rr.Name, rr.Server = sp.NewRegion, sp.Source
				rr.Followers = append([]string(nil), sp.Followers...)
				changed[tn] = true
				continue
			}
			for _, f := range rr.Followers {
				if f != dead {
					continue
				}
				rr.Followers = lm.pickFollowersExcludingLocked(rr.Server, dead)
				updates = append(updates, FollowerUpdate{
					Region: rr.Name, Server: rr.Server,
					Followers: append([]string(nil), rr.Followers...),
				})
				changed[tn] = true
				break
			}
		}
	}
	var errs []error
	for tn := range changed {
		if err := lm.commitTableLocked(tn); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		// Like a partial in-process recovery: committed tables are safely
		// failed over, membership survives so a re-run can finish.
		return updates, errors.Join(errs...)
	}
	delete(lm.servers, dead)
	if err := lm.dropServerLocked(dead); err != nil {
		return updates, err
	}
	// Nothing references the dead server's directories anymore: its
	// shared WAL (recovery never read it — it stands in for a lost
	// disk), its primary region directories, and the replica copies the
	// adoptions consumed.
	_ = os.RemoveAll(serverWALDir(deadCfg.DataDir, dead))
	for _, sp := range specs {
		_ = os.RemoveAll(regionDataDir(deadCfg.DataDir, sp.Region))
		if sp.ReplicaDir != "" {
			_ = os.RemoveAll(sp.ReplicaDir)
		}
	}
	lm.epoch++
	return updates, nil
}

// pickFollowersExcludingLocked is pickFollowersLocked with one server
// barred (the member being removed, which regionCounts may still
// include). Callers hold lm.mu.
func (lm *LayoutMaster) pickFollowersExcludingLocked(host, barred string) []string {
	counts := lm.regionCountsLocked()
	delete(counts, barred)
	cands := make([]string, 0, len(counts))
	for n := range counts {
		if n != host {
			cands = append(cands, n)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if counts[cands[i]] != counts[cands[j]] {
			return counts[cands[i]] < counts[cands[j]]
		}
		return cands[i] < cands[j]
	})
	want := lm.replication - 1
	if want > len(cands) {
		want = len(cands)
	}
	return append([]string(nil), cands[:want]...)
}

// commitClusterLocked persists the cluster row; callers hold lm.mu.
func (lm *LayoutMaster) commitClusterLocked() error {
	lm.cat.mu.Lock()
	defer lm.cat.mu.Unlock()
	return lm.cat.put(catalogClusterKey,
		clusterRow{Replication: lm.replication, SplitSeq: lm.splitSeq, Rev: lm.cat.nextRev()})
}

// commitTableLocked persists one table's row; callers hold lm.mu.
func (lm *LayoutMaster) commitTableLocked(name string) error {
	t := lm.tables[name]
	lm.cat.mu.Lock()
	defer lm.cat.mu.Unlock()
	row := tableRow{SplitKeys: t.SplitKeys, Regions: t.Regions, Rev: lm.cat.nextRev()}
	return lm.cat.put(catalogTablePfx+name, row)
}

// dropServerLocked tombstones the membership row; callers hold lm.mu.
func (lm *LayoutMaster) dropServerLocked(name string) error {
	lm.cat.mu.Lock()
	defer lm.cat.mu.Unlock()
	return lm.cat.delete(catalogServerPfx + name)
}

// OpenServerNode opens one server's slice of a cluster in this process:
// the worker half of a multi-process cold start. It mirrors
// OpenCluster's per-server work — reopen the shared WAL, reopen every
// assigned region's store from its directory (WAL replay recovers every
// acknowledged write), wire replication to the committed follower set,
// then reclaim orphaned WAL records — without touching the catalog or
// any other server's directories.
func OpenServerNode(man NodeManifest) (*RegionServer, error) {
	nn := hdfs.NewNamenode(man.Replication)
	rs, err := NewRegionServer(man.Server, man.Config, nn)
	if err != nil {
		return nil, err
	}
	regions := append([]LayoutRegion(nil), man.Regions...)
	sort.Slice(regions, func(i, j int) bool { return regions[i].Name < regions[j].Name })
	for i, lr := range regions {
		r, err := newRegionNamed(lr.Name, lr.Table, lr.Start, lr.End,
			rs.storeConfigFor(lr.Name, i+1))
		if err != nil {
			rs.Shutdown()
			return nil, fmt.Errorf("hbase: open server node %s: %w", man.Server, err)
		}
		r.SetFollowers(lr.Followers)
		rs.OpenRegion(r)
		rs.mirrorSync(r)
	}
	if _, err := rs.ReclaimOrphanWALRecords(); err != nil {
		rs.Shutdown()
		return nil, fmt.Errorf("hbase: open server node %s: reclaim orphan wal records: %w", man.Server, err)
	}
	return rs, nil
}

// AdoptRegion fails a dead region over onto this server: the
// worker-side middle of recoverRegion. The new region directory is
// seeded exclusively from the replica copy (the dead primary directory
// is never read), the shipped WAL tail is replayed over it, and the
// region opens for serving. The caller (the layout master) commits the
// catalog afterwards; a crash in between leaves an orphan directory a
// future cold start sweeps, and the adoption can simply be re-run.
func (s *RegionServer) AdoptRegion(spec AdoptSpec) (AdoptionReport, error) {
	var rep AdoptionReport
	rep.NewRegion = spec.NewRegion
	newDir := regionDataDir(s.Config().DataDir, spec.NewRegion)
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		return rep, err
	}
	if spec.ReplicaDir != "" {
		ids, err := replication.ListSSTables(spec.ReplicaDir)
		if err != nil {
			return rep, err
		}
		for _, id := range ids {
			src := replication.SSTablePath(spec.ReplicaDir, id)
			if _, err := replication.CopyFile(src, replication.SSTablePath(newDir, id)); err != nil {
				return rep, err
			}
		}
		rep.ReplicaFiles = len(ids)
	}
	nr, err := newRegionNamed(spec.NewRegion, spec.Table, spec.Start, spec.End,
		s.storeConfigFor(spec.NewRegion, s.NumRegions()+1))
	if err != nil {
		return rep, err
	}
	discard := func() {
		st := nr.Store()
		h, _ := st.WAL().(*durable.RegionLog)
		st.Close()
		if h != nil {
			_ = h.Owner().Drop(h.Name())
		}
		_ = os.RemoveAll(newDir)
	}
	if spec.ReplicaDir != "" {
		tail, torn, err := durable.ReadTailFile(durable.TailFilePath(spec.ReplicaDir))
		if err != nil {
			discard()
			return rep, fmt.Errorf("read replica tail: %w", err)
		}
		rep.TailTorn = torn
		if len(tail) > 0 {
			applied, err := nr.Store().ApplyReplayed(tail)
			if err != nil {
				discard()
				return rep, fmt.Errorf("replay replica tail: %w", err)
			}
			rep.TailWrites = applied
		}
	}
	rep.RecoveredTS = nr.Store().MaxTimestamp()
	nr.SetFollowers(spec.Followers)
	s.OpenRegion(nr)
	s.mirrorSync(nr)
	return rep, nil
}

// Refollow applies a FollowerUpdate to a hosted region: the worker side
// of the master's post-recovery follower refresh. The replication
// nudge makes the next reconciliation ship to the new target set.
func (s *RegionServer) Refollow(up FollowerUpdate) error {
	for _, r := range s.Regions() {
		if r.Name() == up.Region {
			r.SetFollowers(up.Followers)
			s.notifyReplication(up.Region)
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrWrongRegionServer, up.Region)
}
