package hbase

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"met/internal/obs"
)

// WriteMetrics emits the whole cluster's telemetry as one Prometheus
// text exposition page (format version 0.0.4): per-server request
// counters and engine gauges, serving-latency summaries at server and
// region level, every engine-side duration distribution (WAL fsync,
// flush, compaction, replication ship, tail ship), slow-op counts, and
// process-level runtime stats. It is the data source behind the debug
// plane's /metrics endpoint (see obs.DebugConfig and met.Cluster).
func (m *Master) WriteMetrics(w io.Writer) error {
	mw := obs.NewMetricWriter(w)
	servers := m.Servers()
	sort.Slice(servers, func(i, j int) bool { return servers[i].Name() < servers[j].Name() })

	mw.Header("met_server_up", "1 while the region server is accepting requests.", "gauge")
	for _, rs := range servers {
		up := 0
		if rs.Running() {
			up = 1
		}
		mw.Counter("met_server_up", serverLabels(rs), int64(up))
	}

	mw.Header("met_server_regions", "Regions hosted by the server.", "gauge")
	for _, rs := range servers {
		mw.Counter("met_server_regions", serverLabels(rs), int64(rs.NumRegions()))
	}

	mw.Header("met_requests_total", "Cumulative served operations by class.", "counter")
	for _, rs := range servers {
		req := rs.Requests()
		mw.Counter("met_requests_total", opLabels(rs, "read"), req.Reads)
		mw.Counter("met_requests_total", opLabels(rs, "write"), req.Writes)
		mw.Counter("met_requests_total", opLabels(rs, "scan"), req.Scans)
	}

	mw.Header("met_op_latency_seconds", "Server-level serving latency by op class.", "summary")
	for _, rs := range servers {
		ls := rs.LatencyStats()
		writeOpSummary(mw, "met_op_latency_seconds", rs, "get", &ls.Get)
		writeOpSummary(mw, "met_op_latency_seconds", rs, "put", &ls.Put)
		writeOpSummary(mw, "met_op_latency_seconds", rs, "scan", &ls.Scan)
	}

	mw.Header("met_region_op_latency_seconds", "Region-level serving latency by op class.", "summary")
	for _, rs := range servers {
		regions := rs.Regions()
		sort.Slice(regions, func(i, j int) bool { return regions[i].Name() < regions[j].Name() })
		for _, r := range regions {
			get, put, scan := rs.RegionLatencyStats(r.Name())
			writeRegionSummary(mw, rs, r, "get", &get)
			writeRegionSummary(mw, rs, r, "put", &put)
			writeRegionSummary(mw, rs, r, "scan", &scan)
		}
	}

	engineSummaries := []struct {
		name, help string
		pick       func(*LatencyStats) *obs.Snapshot
	}{
		{"met_wal_fsync_latency_seconds", "Shared-WAL commit fsync round duration.",
			func(ls *LatencyStats) *obs.Snapshot { return &ls.Fsync }},
		{"met_flush_latency_seconds", "Memstore flush duration across hosted regions.",
			func(ls *LatencyStats) *obs.Snapshot { return &ls.Flush }},
		{"met_compaction_latency_seconds", "Background compaction merge duration.",
			func(ls *LatencyStats) *obs.Snapshot { return &ls.Compaction }},
		{"met_replication_ship_latency_seconds", "Replica reconcile duration when SSTables were copied.",
			func(ls *LatencyStats) *obs.Snapshot { return &ls.ReplicationShip }},
		{"met_tail_ship_latency_seconds", "WAL-tail frame-file ship duration.",
			func(ls *LatencyStats) *obs.Snapshot { return &ls.TailShip }},
	}
	for _, es := range engineSummaries {
		mw.Header(es.name, es.help, "summary")
		for _, rs := range servers {
			ls := rs.LatencyStats()
			mw.Summary(es.name, serverLabels(rs), es.pick(&ls))
		}
	}

	type counterCol struct {
		name, help, typ string
		pick            func(*RegionServer) float64
	}
	cols := []counterCol{
		{"met_engine_flushes_total", "Memstore flushes.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.EngineStats().Flushes) }},
		{"met_engine_compactions_total", "Completed compactions.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.EngineStats().Compactions) }},
		{"met_engine_compaction_queue_depth", "Stores queued for compaction right now.", "gauge",
			func(rs *RegionServer) float64 { return float64(rs.EngineStats().CompactionQueueDepth) }},
		{"met_engine_stall_seconds_total", "Writer time blocked at the store-file ceiling.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.EngineStats().StallNanos) / 1e9 }},
		{"met_engine_write_amplification", "Physical bytes written per logical byte.", "gauge",
			func(rs *RegionServer) float64 { return rs.EngineStats().WriteAmplification }},
		{"met_engine_cache_hit_ratio", "Block cache hit ratio.", "gauge",
			func(rs *RegionServer) float64 { return rs.EngineStats().CacheHitRatio() }},
		{"met_locality", "Fraction of hosted bytes stored on the co-located datanode.", "gauge",
			func(rs *RegionServer) float64 { return rs.Locality() }},
		{"met_wal_appends_total", "Records appended to the shared WAL.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.WALStats().Appends) }},
		{"met_wal_sync_rounds_total", "Successful shared-WAL fsync rounds.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.WALStats().SyncRounds) }},
		{"met_replication_queue_depth", "Regions whose replicas are behind.", "gauge",
			func(rs *RegionServer) float64 { return float64(rs.ReplicationStats().QueueDepth) }},
		{"met_replication_bytes_shipped_total", "SSTable bytes copied to follower replicas.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.ReplicationStats().BytesShipped) }},
		{"met_slow_ops_total", "Operations that crossed the slow-op threshold.", "counter",
			func(rs *RegionServer) float64 { return float64(rs.SlowOpsTotal()) }},
	}
	for _, c := range cols {
		mw.Header(c.name, c.help, c.typ)
		for _, rs := range servers {
			mw.Sample(c.name, serverLabels(rs), c.pick(rs))
		}
	}

	p := obs.ReadProcessStats()
	mw.Header("met_process_heap_live_bytes", "Live heap bytes (runtime/metrics).", "gauge")
	mw.Sample("met_process_heap_live_bytes", nil, float64(p.HeapLiveBytes))
	mw.Header("met_process_memory_bytes", "Total runtime-owned memory.", "gauge")
	mw.Sample("met_process_memory_bytes", nil, float64(p.TotalBytes))
	mw.Header("met_process_goroutines", "Live goroutines.", "gauge")
	mw.Sample("met_process_goroutines", nil, float64(p.Goroutines))
	mw.Header("met_process_gc_cycles_total", "Completed GC cycles.", "counter")
	mw.Sample("met_process_gc_cycles_total", nil, float64(p.GCCycles))
	mw.Header("met_process_gc_pause_p99_seconds", "p99 stop-the-world GC pause.", "gauge")
	mw.Sample("met_process_gc_pause_p99_seconds", nil, p.GCPauseP99.Seconds())
	return mw.Err()
}

func serverLabels(rs *RegionServer) []obs.Label {
	return []obs.Label{{Name: "server", Value: rs.Name()}}
}

func opLabels(rs *RegionServer, op string) []obs.Label {
	return []obs.Label{{Name: "server", Value: rs.Name()}, {Name: "op", Value: op}}
}

func writeOpSummary(mw *obs.MetricWriter, name string, rs *RegionServer, op string, s *obs.Snapshot) {
	mw.Summary(name, opLabels(rs, op), s)
}

func writeRegionSummary(mw *obs.MetricWriter, rs *RegionServer, r *Region, op string, s *obs.Snapshot) {
	labels := []obs.Label{
		{Name: "server", Value: rs.Name()},
		{Name: "region", Value: r.Name()},
		{Name: "op", Value: op},
	}
	mw.Summary("met_region_op_latency_seconds", labels, s)
}

// Health returns nil when every server in the cluster is running, or an
// error naming the stopped ones — the debug plane's /healthz source.
func (m *Master) Health() error {
	var down []string
	for _, rs := range m.Servers() {
		if !rs.Running() {
			down = append(down, rs.Name())
		}
	}
	if len(down) == 0 {
		return nil
	}
	sort.Strings(down)
	return fmt.Errorf("hbase: servers stopped: %s", strings.Join(down, ", "))
}

// SlowOps aggregates every server's slow-op log, oldest first per
// server, servers in name order.
func (m *Master) SlowOps() []obs.SlowOp {
	servers := m.Servers()
	sort.Slice(servers, func(i, j int) bool { return servers[i].Name() < servers[j].Name() })
	var out []obs.SlowOp
	for _, rs := range servers {
		out = append(out, rs.SlowOps()...)
	}
	return out
}

// DebugConfig bundles the master's exporters for obs.ServeDebug, so one
// call stands up the cluster's debug plane.
func (m *Master) DebugConfig() obs.DebugConfig {
	return obs.DebugConfig{
		Metrics: m.WriteMetrics,
		Health:  m.Health,
		SlowOps: m.SlowOps,
	}
}
