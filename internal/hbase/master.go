package hbase

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"met/internal/hdfs"
	"met/internal/sim"
)

// ErrUnknownTable is returned for operations on absent tables.
var ErrUnknownTable = errors.New("hbase: unknown table")

// ErrUnknownServer is returned for operations on absent servers.
var ErrUnknownServer = errors.New("hbase: unknown region server")

// ErrNoServers is returned when the cluster has no running servers.
var ErrNoServers = errors.New("hbase: no region servers")

// Balancer decides where regions go. The paper contrasts HBase's
// randomized out-of-the-box placement with informed strategies; both are
// implemented behind this interface.
type Balancer interface {
	// Assign maps each region name to a server name. Implementations
	// must assign every region to one of the given servers.
	Assign(regions []string, servers []string) map[string]string
}

// RandomBalancer reproduces HBase's default randomized placement: it
// evenly distributes the *number* of regions per server but is oblivious
// to their load — precisely the behaviour the paper shows "leaves
// performance to chance".
type RandomBalancer struct {
	// RNG drives the shuffle. A nil RNG yields deterministic
	// round-robin (useful in tests).
	RNG *sim.RNG
}

// Assign implements Balancer.
func (b *RandomBalancer) Assign(regions []string, servers []string) map[string]string {
	out := make(map[string]string, len(regions))
	if len(servers) == 0 {
		return out
	}
	shuffled := append([]string(nil), regions...)
	sort.Strings(shuffled)
	if b.RNG != nil {
		b.RNG.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	}
	for i, r := range shuffled {
		out[r] = servers[i%len(servers)]
	}
	return out
}

// ManualBalancer applies a fixed mapping, the vehicle for the paper's
// Manual-Homogeneous and Manual-Heterogeneous strategies (and for MeT's
// computed placements). Regions missing from the plan fall back to
// round-robin.
type ManualBalancer struct {
	Plan map[string]string
}

// Assign implements Balancer.
func (b *ManualBalancer) Assign(regions []string, servers []string) map[string]string {
	out := make(map[string]string, len(regions))
	if len(servers) == 0 {
		return out
	}
	i := 0
	sorted := append([]string(nil), regions...)
	sort.Strings(sorted)
	for _, r := range sorted {
		if s, ok := b.Plan[r]; ok {
			out[r] = s
			continue
		}
		out[r] = servers[i%len(servers)]
		i++
	}
	return out
}

// Master is the cluster coordinator: table metadata, region-to-server
// assignment, server membership, and balancing. Reads of the metadata
// (routing, membership, assignment) take a shared lock so the client
// hot path — Table, HostOf, Server on every operation — never
// serializes behind other readers; mutations take the exclusive lock.
type Master struct {
	mu sync.RWMutex

	namenode *hdfs.Namenode
	servers  map[string]*RegionServer
	tables   map[string]*Table
	// assignment maps region name -> server name.
	assignment map[string]string
	balancer   Balancer
	moves      int64
	splitSeq   int64
}

// NewMaster creates a master over the given namenode with the default
// randomized balancer.
func NewMaster(nn *hdfs.Namenode) *Master {
	return &Master{
		namenode:   nn,
		servers:    make(map[string]*RegionServer),
		tables:     make(map[string]*Table),
		assignment: make(map[string]string),
		balancer:   &RandomBalancer{},
	}
}

// SetBalancer swaps the placement policy.
func (m *Master) SetBalancer(b Balancer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.balancer = b
}

// Namenode exposes the underlying HDFS metadata service.
func (m *Master) Namenode() *hdfs.Namenode { return m.namenode }

// AddServer registers a new region server with the cluster.
func (m *Master) AddServer(name string, cfg ServerConfig) (*RegionServer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.servers[name]; ok {
		return nil, fmt.Errorf("hbase: server %q already registered", name)
	}
	rs, err := NewRegionServer(name, cfg, m.namenode)
	if err != nil {
		return nil, err
	}
	m.servers[name] = rs
	return rs, nil
}

// DecommissionServer drains a server's regions onto the remaining servers
// (round-robin over least-loaded) and removes it from the cluster.
func (m *Master) DecommissionServer(name string) error {
	m.mu.Lock()
	rs, ok := m.servers[name]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownServer
	}
	delete(m.servers, name)
	var targets []*RegionServer
	for _, s := range m.servers {
		targets = append(targets, s)
	}
	m.mu.Unlock()
	if len(targets) == 0 && rs.NumRegions() > 0 {
		m.mu.Lock()
		m.servers[name] = rs // restore; cannot strand regions
		m.mu.Unlock()
		return ErrNoServers
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name() < targets[j].Name() })
	for _, r := range rs.Regions() {
		// Least regions first keeps counts balanced.
		sort.SliceStable(targets, func(i, j int) bool { return targets[i].NumRegions() < targets[j].NumRegions() })
		dst := targets[0]
		rs.CloseRegion(r.Name())
		dst.OpenRegion(r)
		m.mu.Lock()
		m.assignment[r.Name()] = dst.Name()
		m.moves++
		m.mu.Unlock()
	}
	rs.Shutdown() // stop serving and drain the background compactor
	m.namenode.RemoveDatanode(name)
	return nil
}

// Server returns a registered server.
func (m *Master) Server(name string) (*RegionServer, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rs, ok := m.servers[name]
	if !ok {
		return nil, ErrUnknownServer
	}
	return rs, nil
}

// Servers returns all servers sorted by name.
func (m *Master) Servers() []*RegionServer {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*RegionServer, 0, len(m.servers))
	for _, s := range m.servers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// CreateTable creates a table pre-split into the given regions.
// splitKeys must be sorted; n split keys produce n+1 regions.
func (m *Master) CreateTable(name string, splitKeys []string) (*Table, error) {
	m.mu.Lock()
	if _, ok := m.tables[name]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("hbase: table %q exists", name)
	}
	if len(m.servers) == 0 {
		m.mu.Unlock()
		return nil, ErrNoServers
	}
	for i := 1; i < len(splitKeys); i++ {
		if splitKeys[i] <= splitKeys[i-1] {
			m.mu.Unlock()
			return nil, fmt.Errorf("hbase: split keys not strictly sorted at %d", i)
		}
	}
	m.mu.Unlock()

	t := newTable(name, splitKeys)
	// Build the regions; store configs come from their first server, so
	// assign first, then create each region with its host's parameters.
	names := make([]string, 0, len(t.bounds))
	for _, b := range t.bounds {
		names = append(names, regionName(name, b.start))
	}
	m.mu.Lock()
	serverNames := make([]string, 0, len(m.servers))
	for sn := range m.servers {
		serverNames = append(serverNames, sn)
	}
	sort.Strings(serverNames)
	plan := m.balancer.Assign(names, serverNames)
	m.mu.Unlock()

	for _, b := range t.bounds {
		rn := regionName(name, b.start)
		host := plan[rn]
		rs, err := m.Server(host)
		if err != nil {
			return nil, err
		}
		r, err := NewRegion(name, b.start, b.end, rs.storeConfigFor(rn, rs.NumRegions()+1))
		if err != nil {
			return nil, err
		}
		rs.OpenRegion(r)
		t.addRegion(r)
		m.mu.Lock()
		m.assignment[r.Name()] = host
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.tables[name] = t
	m.mu.Unlock()
	return t, nil
}

// Table returns table metadata.
func (m *Master) Table(name string) (*Table, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[name]
	if !ok {
		return nil, ErrUnknownTable
	}
	return t, nil
}

// Tables returns all table names sorted.
func (m *Master) Tables() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tables))
	for n := range m.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HostOf returns the server currently hosting a region.
func (m *Master) HostOf(regionName string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.assignment[regionName]
	return s, ok
}

// Assignment returns a copy of the full region -> server map.
func (m *Master) Assignment() map[string]string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]string, len(m.assignment))
	for k, v := range m.assignment {
		out[k] = v
	}
	return out
}

// MoveRegion transfers a region between servers. The region's HDFS files
// stay where they are, so the destination's locality index degrades until
// a major compaction — the central mechanism of Sections 2 and 5.
func (m *Master) MoveRegion(regionName, dstServer string) error {
	m.mu.Lock()
	src, ok := m.assignment[regionName]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("hbase: unknown region %q", regionName)
	}
	srcRS, okS := m.servers[src]
	dstRS, okD := m.servers[dstServer]
	m.mu.Unlock()
	if !okS {
		return fmt.Errorf("hbase: region %q host %q vanished", regionName, src)
	}
	if !okD {
		return ErrUnknownServer
	}
	if src == dstServer {
		return nil
	}
	r := srcRS.CloseRegion(regionName)
	if r == nil {
		return fmt.Errorf("hbase: region %q not open on %q", regionName, src)
	}
	dstRS.OpenRegion(r)
	m.mu.Lock()
	m.assignment[regionName] = dstServer
	m.moves++
	m.mu.Unlock()
	return nil
}

// Moves returns the cumulative number of region moves, an actuation-cost
// metric the Output Computation stage minimizes.
func (m *Master) Moves() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.moves
}

// Rebalance re-runs the current balancer over all regions and applies the
// resulting moves. It returns the number of regions moved.
func (m *Master) Rebalance() (int, error) {
	m.mu.Lock()
	var regions []string
	for r := range m.assignment {
		regions = append(regions, r)
	}
	servers := make([]string, 0, len(m.servers))
	for s := range m.servers {
		servers = append(servers, s)
	}
	sort.Strings(regions)
	sort.Strings(servers)
	plan := m.balancer.Assign(regions, servers)
	m.mu.Unlock()
	if len(servers) == 0 {
		return 0, ErrNoServers
	}
	moved := 0
	for _, r := range regions {
		dst := plan[r]
		cur, _ := m.HostOf(r)
		if dst != "" && dst != cur {
			if err := m.MoveRegion(r, dst); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

func regionName(table, startKey string) string {
	return fmt.Sprintf("%s,%s", table, startKey)
}
