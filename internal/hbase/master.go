package hbase

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"met/internal/hdfs"
	"met/internal/sim"
)

// ErrUnknownTable is returned for operations on absent tables.
var ErrUnknownTable = errors.New("hbase: unknown table")

// ErrUnknownServer is returned for operations on absent servers.
var ErrUnknownServer = errors.New("hbase: unknown region server")

// ErrNoServers is returned when the cluster has no running servers.
var ErrNoServers = errors.New("hbase: no region servers")

// ErrTableExists is returned by CreateTable for a name already taken
// (including one recovered from the catalog by a cold start).
var ErrTableExists = errors.New("hbase: table exists")

// ErrClusterExists is returned by NewDurableMaster when the data
// directory already holds a committed cluster layout; cold-start it
// with OpenCluster instead.
var ErrClusterExists = errors.New("hbase: data directory already holds a cluster")

// Balancer decides where regions go. The paper contrasts HBase's
// randomized out-of-the-box placement with informed strategies; both are
// implemented behind this interface.
type Balancer interface {
	// Assign maps each region name to a server name. Implementations
	// must assign every region to one of the given servers.
	Assign(regions []string, servers []string) map[string]string
}

// RandomBalancer reproduces HBase's default randomized placement: it
// evenly distributes the *number* of regions per server but is oblivious
// to their load — precisely the behaviour the paper shows "leaves
// performance to chance".
type RandomBalancer struct {
	// RNG drives the shuffle. A nil RNG yields deterministic
	// round-robin (useful in tests).
	RNG *sim.RNG
}

// Assign implements Balancer.
func (b *RandomBalancer) Assign(regions []string, servers []string) map[string]string {
	out := make(map[string]string, len(regions))
	if len(servers) == 0 {
		return out
	}
	shuffled := append([]string(nil), regions...)
	sort.Strings(shuffled)
	if b.RNG != nil {
		b.RNG.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	}
	for i, r := range shuffled {
		out[r] = servers[i%len(servers)]
	}
	return out
}

// ManualBalancer applies a fixed mapping, the vehicle for the paper's
// Manual-Homogeneous and Manual-Heterogeneous strategies (and for MeT's
// computed placements). Regions missing from the plan fall back to
// round-robin.
type ManualBalancer struct {
	Plan map[string]string
}

// Assign implements Balancer.
func (b *ManualBalancer) Assign(regions []string, servers []string) map[string]string {
	out := make(map[string]string, len(regions))
	if len(servers) == 0 {
		return out
	}
	i := 0
	sorted := append([]string(nil), regions...)
	sort.Strings(sorted)
	for _, r := range sorted {
		if s, ok := b.Plan[r]; ok {
			out[r] = s
			continue
		}
		out[r] = servers[i%len(servers)]
		i++
	}
	return out
}

// Master is the cluster coordinator: table metadata, region-to-server
// assignment, server membership, and balancing. Reads of the metadata
// (routing, membership, assignment) take a shared lock so the client
// hot path — Table, HostOf, Server on every operation — never
// serializes behind other readers; mutations take the exclusive lock.
type Master struct {
	mu sync.RWMutex

	namenode *hdfs.Namenode
	servers  map[string]*RegionServer
	tables   map[string]*Table
	// creating reserves table names mid-CreateTable so two concurrent
	// creations of the same name cannot both pass the existence check;
	// addingServer does the same for AddServer, whose catalog commit
	// happens before the server becomes visible; snapshotting does the
	// same for Snapshot (keyed "table/name"), whose error path deletes
	// the shared archive directory and must never race a committer.
	creating     map[string]bool
	addingServer map[string]bool
	snapshotting map[string]bool
	// assignment maps region name -> server name.
	assignment map[string]string
	balancer   Balancer
	moves      int64
	splitSeq   int64

	// catalog, when non-nil, is the durable META store every layout
	// mutation writes through (see catalog.go); nil keeps the legacy
	// in-memory-only metadata the simulation layers use.
	catalog *catalog

	// crashHook, when non-nil, is invoked at named crash points inside
	// mutating operations — tests use it to simulate a hard process
	// kill between a catalog write and the region work it describes.
	crashHook func(point string)
}

// NewMaster creates a master over the given namenode with the default
// randomized balancer and in-memory-only metadata (no catalog).
func NewMaster(nn *hdfs.Namenode) *Master {
	return &Master{
		namenode:     nn,
		servers:      make(map[string]*RegionServer),
		tables:       make(map[string]*Table),
		creating:     make(map[string]bool),
		addingServer: make(map[string]bool),
		snapshotting: make(map[string]bool),
		assignment:   make(map[string]string),
		balancer:     &RandomBalancer{},
	}
}

// NewDurableMaster creates a master whose layout metadata — server
// membership and configs, table schemas, region bounds and assignment —
// persists to the META catalog under dataDir, so the whole cluster can
// later cold-start from the data directory alone via OpenCluster.
func NewDurableMaster(nn *hdfs.Namenode, dataDir string) (*Master, error) {
	cat, err := openCatalog(dataDir)
	if err != nil {
		return nil, err
	}
	// A data directory that already holds a committed layout belongs to
	// an existing cluster: silently building a fresh master over it
	// would interleave two layouts in one catalog. Cold-starting is
	// OpenCluster's job.
	if st, err := cat.loadAll(); err != nil {
		cat.close()
		return nil, err
	} else if len(st.servers) > 0 || len(st.tables) > 0 {
		cat.close()
		return nil, fmt.Errorf("%w: %q (%d servers, %d tables); use OpenCluster to cold-start it",
			ErrClusterExists, dataDir, len(st.servers), len(st.tables))
	}
	m := NewMaster(nn)
	m.catalog = cat
	if err := m.commitCluster(); err != nil {
		cat.close()
		return nil, err
	}
	return m, nil
}

// crash fires the test-only crash hook.
func (m *Master) crash(point string) {
	if m.crashHook != nil {
		m.crashHook(point)
	}
}

// commitCluster persists the singleton cluster row (replication factor,
// split sequence). No-op without a catalog.
func (m *Master) commitCluster() error {
	if m.catalog == nil {
		return nil
	}
	m.mu.RLock()
	row := clusterRow{Replication: m.namenode.Replication(), SplitSeq: m.splitSeq}
	m.mu.RUnlock()
	m.catalog.mu.Lock()
	defer m.catalog.mu.Unlock()
	row.Rev = m.catalog.nextRev()
	return m.catalog.put(catalogClusterKey, row)
}

// commitServer persists one server's membership row.
func (m *Master) commitServer(name string, cfg ServerConfig) error {
	if m.catalog == nil {
		return nil
	}
	m.catalog.mu.Lock()
	defer m.catalog.mu.Unlock()
	return m.catalog.put(catalogServerPfx+name, serverRow{Config: cfg, Rev: m.catalog.nextRev()})
}

// dropServer tombstones a decommissioned server's row.
func (m *Master) dropServer(name string) error {
	if m.catalog == nil {
		return nil
	}
	m.catalog.mu.Lock()
	defer m.catalog.mu.Unlock()
	return m.catalog.delete(catalogServerPfx + name)
}

// commitTable persists t's complete current layout — bounds and
// assignment of every region — as one durable row write: the atomic
// commit point of CreateTable, MoveRegion and SplitRegion. The row is
// built under the catalog lock so two racing layout changes to the same
// table serialize write-for-write with their snapshots.
func (m *Master) commitTable(t *Table) error {
	if m.catalog == nil {
		return nil
	}
	m.catalog.mu.Lock()
	defer m.catalog.mu.Unlock()
	row := tableRow{SplitKeys: t.splitKeys, Rev: m.catalog.nextRev()}
	m.mu.RLock()
	for _, r := range t.Regions() {
		row.Regions = append(row.Regions, regionRow{
			Name: r.Name(), Start: r.StartKey(), End: r.EndKey(),
			Server:    m.assignment[r.Name()],
			Followers: r.Followers(),
		})
	}
	m.mu.RUnlock()
	return m.catalog.put(catalogTablePfx+t.Name(), row)
}

// commitTableOf is commitTable by table name; unknown tables are a
// no-op (the region's table vanished under a racing operation).
func (m *Master) commitTableOf(name string) error {
	m.mu.RLock()
	t := m.tables[name]
	m.mu.RUnlock()
	if t == nil {
		return nil
	}
	return m.commitTable(t)
}

// pickFollowers chooses the servers that will hold replica copies of a
// region hosted on host: replication−1 live datanodes, least-used
// first, never the primary itself (hdfs.Namenode.PlaceFollowers — the
// same placement policy HDFS applies to block replicas, now
// load-bearing).
func (m *Master) pickFollowers(host string) []string {
	return m.namenode.PlaceFollowers(host, m.namenode.Replication()-1)
}

// refreshFollowersAfterLoss re-picks the follower set of every region
// that listed the departed server (decommissioned or failed over) as a
// replica target, committing each affected table's layout. Without
// this, regions would keep shipping to — and a future recovery would
// look for copies on — a server that no longer exists.
func (m *Master) refreshFollowersAfterLoss(departed string) error {
	var errs []error
	for _, tn := range m.Tables() {
		t, err := m.Table(tn)
		if err != nil {
			continue
		}
		changed := false
		for _, r := range t.Regions() {
			affected := false
			for _, f := range r.Followers() {
				if f == departed {
					affected = true
					break
				}
			}
			if !affected {
				continue
			}
			host, ok := m.HostOf(r.Name())
			if !ok {
				continue
			}
			r.SetFollowers(m.pickFollowers(host))
			changed = true
			if rs, err := m.Server(host); err == nil {
				rs.notifyReplication(r.Name())
			}
		}
		if changed {
			if err := m.commitTable(t); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// SetBalancer swaps the placement policy.
func (m *Master) SetBalancer(b Balancer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.balancer = b
}

// Namenode exposes the underlying HDFS metadata service.
func (m *Master) Namenode() *hdfs.Namenode { return m.namenode }

// AddServer registers a new region server with the cluster. With a
// catalog, the membership row is committed BEFORE the server becomes
// visible in the cluster: no region can ever be assigned (and durably
// committed) to a server whose own row might still fail to write, so
// the catalog never references an uncommitted server. A crash before
// the commit leaves the server cleanly absent after cold start; a crash
// after it cold-starts the server as an empty member.
func (m *Master) AddServer(name string, cfg ServerConfig) (*RegionServer, error) {
	m.mu.Lock()
	if _, ok := m.servers[name]; ok || m.addingServer[name] {
		m.mu.Unlock()
		return nil, fmt.Errorf("hbase: server %q already registered", name)
	}
	m.addingServer[name] = true
	rs, err := NewRegionServer(name, cfg, m.namenode)
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.addingServer, name)
		m.mu.Unlock()
	}()
	if err != nil {
		return nil, err
	}
	m.crash("addserver.registered")
	if err := m.commitServer(name, cfg); err != nil {
		rs.Shutdown()
		m.namenode.RemoveDatanode(name)
		return nil, err
	}
	m.mu.Lock()
	m.servers[name] = rs
	m.mu.Unlock()
	return rs, nil
}

// DecommissionServer drains a server's regions onto the remaining servers
// (round-robin over least-loaded) and removes it from the cluster.
func (m *Master) DecommissionServer(name string) error {
	m.mu.Lock()
	rs, ok := m.servers[name]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownServer
	}
	delete(m.servers, name)
	var targets []*RegionServer
	for _, s := range m.servers {
		targets = append(targets, s)
	}
	m.mu.Unlock()
	if len(targets) == 0 && rs.NumRegions() > 0 {
		m.mu.Lock()
		m.servers[name] = rs // restore; cannot strand regions
		m.mu.Unlock()
		return ErrNoServers
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name() < targets[j].Name() })
	var errs []error
	for _, r := range rs.Regions() {
		// Least regions first keeps counts balanced.
		sort.SliceStable(targets, func(i, j int) bool { return targets[i].NumRegions() < targets[j].NumRegions() })
		dst := targets[0]
		rs.CloseRegion(r.Name())
		// The drained region may land on its own follower; re-pick so
		// the primary never replicates to itself.
		for _, f := range r.Followers() {
			if f == dst.Name() {
				r.SetFollowers(m.pickFollowers(dst.Name()))
				break
			}
		}
		dst.OpenRegion(r)
		m.mu.Lock()
		m.assignment[r.Name()] = dst.Name()
		m.moves++
		m.mu.Unlock()
		// Each drained region commits its table's new layout; a crash
		// mid-drain cold-starts into the partially drained (consistent)
		// state, with this server still a member.
		if err := m.commitTableOf(r.Table()); err != nil {
			errs = append(errs, err)
		}
	}
	m.crash("decommission.drained")
	rs.Shutdown() // stop serving and drain the compactor and replicator
	m.namenode.RemoveDatanode(name)
	if err := m.dropServer(name); err != nil {
		errs = append(errs, err)
	}
	// Regions elsewhere that replicated onto this server need new
	// followers; their old replica directories become orphans the next
	// cold start sweeps.
	if err := m.refreshFollowersAfterLoss(name); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// RestartServer applies a new configuration to a server (stop, reopen
// every hosted store, start — RegionServer.Restart) through the master,
// which persists the new profile to the catalog: a cold start re-creates
// the server as reprofiled, not as originally added. The catalog write
// happens after the restart succeeds; a crash between cold-starts the
// server on its previous profile, which is consistent (the restart's
// effects on data are profile-independent).
func (m *Master) RestartServer(name string, cfg ServerConfig) error {
	rs, err := m.Server(name)
	if err != nil {
		return err
	}
	if err := rs.Restart(cfg); err != nil {
		return err
	}
	return m.commitServer(name, cfg)
}

// Server returns a registered server.
func (m *Master) Server(name string) (*RegionServer, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rs, ok := m.servers[name]
	if !ok {
		return nil, ErrUnknownServer
	}
	return rs, nil
}

// Servers returns all servers sorted by name.
func (m *Master) Servers() []*RegionServer {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*RegionServer, 0, len(m.servers))
	for _, s := range m.servers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// CreateTable creates a table pre-split into the given regions.
// splitKeys must be sorted; n split keys produce n+1 regions.
//
// The name is reserved in one critical section — two concurrent
// CreateTable calls for the same name cannot interleave past the
// existence check; exactly one wins. A mid-loop failure (a region that
// cannot be opened) unwinds completely: every already-opened region is
// closed, its assignment deleted and its durable directory reclaimed,
// so a failed creation leaves no orphaned, unreachable regions. With a
// catalog, the table row — written only after every region is open — is
// the durable commit point: a crash before it leaves the table cleanly
// absent (its directories are swept at the next cold start).
func (m *Master) CreateTable(name string, splitKeys []string) (*Table, error) {
	m.mu.Lock()
	if _, ok := m.tables[name]; ok || m.creating[name] {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	if len(m.servers) == 0 {
		m.mu.Unlock()
		return nil, ErrNoServers
	}
	for i := 1; i < len(splitKeys); i++ {
		if splitKeys[i] <= splitKeys[i-1] {
			m.mu.Unlock()
			return nil, fmt.Errorf("hbase: split keys not strictly sorted at %d", i)
		}
	}
	m.creating[name] = true
	serverNames := make([]string, 0, len(m.servers))
	for sn := range m.servers {
		serverNames = append(serverNames, sn)
	}
	sort.Strings(serverNames)
	balancer := m.balancer
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.creating, name)
		m.mu.Unlock()
	}()

	t := newTable(name, splitKeys)
	// Build the regions; store configs come from their first server, so
	// assign first, then create each region with its host's parameters.
	names := make([]string, 0, len(t.bounds))
	for _, b := range t.bounds {
		names = append(names, regionName(name, b.start))
	}
	plan := balancer.Assign(names, serverNames)

	var opened []*Region
	unwind := func() {
		for _, r := range opened {
			m.mu.Lock()
			host := m.assignment[r.Name()]
			delete(m.assignment, r.Name())
			rs := m.servers[host]
			m.mu.Unlock()
			if rs == nil {
				r.Store().Close()
				continue
			}
			rs.CloseRegion(r.Name())
			discardRegionStore(rs, r)
		}
	}
	for _, b := range t.bounds {
		rn := regionName(name, b.start)
		host := plan[rn]
		rs, err := m.Server(host)
		if err != nil {
			unwind()
			return nil, err
		}
		r, err := NewRegion(name, b.start, b.end, rs.storeConfigFor(rn, rs.NumRegions()+1))
		if err != nil {
			unwind()
			return nil, fmt.Errorf("hbase: create table %q: %w", name, err)
		}
		r.SetFollowers(m.pickFollowers(host))
		rs.OpenRegion(r)
		t.addRegion(r)
		m.mu.Lock()
		m.assignment[r.Name()] = host
		m.mu.Unlock()
		opened = append(opened, r)
	}
	m.crash("createtable.regions-open")
	if err := m.commitTable(t); err != nil {
		unwind()
		return nil, err
	}
	m.mu.Lock()
	m.tables[name] = t
	m.mu.Unlock()
	return t, nil
}

// Table returns table metadata.
func (m *Master) Table(name string) (*Table, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[name]
	if !ok {
		return nil, ErrUnknownTable
	}
	return t, nil
}

// Tables returns all table names sorted.
func (m *Master) Tables() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tables))
	for n := range m.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HostOf returns the server currently hosting a region.
func (m *Master) HostOf(regionName string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.assignment[regionName]
	return s, ok
}

// Assignment returns a copy of the full region -> server map.
func (m *Master) Assignment() map[string]string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]string, len(m.assignment))
	for k, v := range m.assignment {
		out[k] = v
	}
	return out
}

// MoveRegion transfers a region between servers. The region's HDFS files
// stay where they are, so the destination's locality index degrades until
// a major compaction — the central mechanism of Sections 2 and 5.
func (m *Master) MoveRegion(regionName, dstServer string) error {
	m.mu.Lock()
	src, ok := m.assignment[regionName]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("hbase: unknown region %q", regionName)
	}
	srcRS, okS := m.servers[src]
	dstRS, okD := m.servers[dstServer]
	m.mu.Unlock()
	if !okS {
		return fmt.Errorf("hbase: region %q host %q vanished", regionName, src)
	}
	if !okD {
		return ErrUnknownServer
	}
	if src == dstServer {
		return nil
	}
	r := srcRS.CloseRegion(regionName)
	if r == nil {
		return fmt.Errorf("hbase: region %q not open on %q", regionName, src)
	}
	// A primary landing on one of its own followers degenerates the
	// replica set (a copy co-located with the primary protects nothing);
	// re-pick before the destination starts shipping.
	for _, f := range r.Followers() {
		if f == dstServer {
			r.SetFollowers(m.pickFollowers(dstServer))
			break
		}
	}
	dstRS.OpenRegion(r)
	m.mu.Lock()
	m.assignment[regionName] = dstServer
	m.moves++
	m.mu.Unlock()
	m.crash("moveregion.moved")
	// Commit the table's new layout. A crash before this write
	// cold-starts the region on its old host — correct either way,
	// because region data directories are keyed by region name, not
	// server. On a catalog I/O error the in-memory move stands (the
	// cluster keeps serving); the layout re-commits with the table's
	// next successful layout change.
	return m.commitTableOf(r.Table())
}

// Moves returns the cumulative number of region moves, an actuation-cost
// metric the Output Computation stage minimizes.
func (m *Master) Moves() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.moves
}

// Rebalance re-runs the current balancer over all regions and applies the
// resulting moves. It returns the number of regions moved.
func (m *Master) Rebalance() (int, error) {
	m.mu.Lock()
	var regions []string
	for r := range m.assignment {
		regions = append(regions, r)
	}
	servers := make([]string, 0, len(m.servers))
	for s := range m.servers {
		servers = append(servers, s)
	}
	sort.Strings(regions)
	sort.Strings(servers)
	plan := m.balancer.Assign(regions, servers)
	m.mu.Unlock()
	if len(servers) == 0 {
		return 0, ErrNoServers
	}
	moved := 0
	for _, r := range regions {
		dst := plan[r]
		cur, _ := m.HostOf(r)
		if dst != "" && dst != cur {
			if err := m.MoveRegion(r, dst); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

func regionName(table, startKey string) string {
	return fmt.Sprintf("%s,%s", table, startKey)
}
