package hbase

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"met/internal/hdfs"
)

// durableConfig is a small-heap durable server config: tiny memstore so
// flushes (and therefore SSTables) happen at test data volumes.
func durableConfig(dataDir string) ServerConfig {
	return ServerConfig{
		HeapBytes: 1 << 20, BlockCacheFraction: 0.39, MemstoreFraction: 0.26,
		BlockBytes: 4 << 10, Handlers: 10, DataDir: dataDir,
	}
}

func newDurableCluster(t *testing.T, n int, dataDir string) (*Master, *Client) {
	t.Helper()
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	for i := 0; i < n; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), durableConfig(dataDir)); err != nil {
			t.Fatal(err)
		}
	}
	// Tail streaming keeps the replicators busy after the last Put;
	// shut the servers down before the temp dir is reclaimed.
	t.Cleanup(m.HardStop)
	return m, NewClient(m)
}

func TestDurableServerRestartRecoversFromDisk(t *testing.T) {
	dir := t.TempDir()
	m, c := newDurableCluster(t, 1, dir)
	rs, _ := m.Server("rs0")
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	const n = 400
	mkVal := func(i int) []byte {
		v := make([]byte, 1024)
		copy(v, fmt.Sprintf("v%d", i))
		return v
	}
	for i := 0; i < n; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), mkVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	region := tbl.Regions()[0]
	if region.Store().NumFiles() == 0 {
		t.Fatal("no SSTables flushed; test volume too small")
	}
	filesBefore := region.Store().NumFiles()

	// Restart = close the store, reopen from disk (not a memory copy).
	if err := rs.Restart(durableConfig(dir)); err != nil {
		t.Fatal(err)
	}
	fresh := region.Store()
	if fresh.NumFiles() != filesBefore {
		t.Fatalf("restart recovered %d files, had %d — not a disk recovery", fresh.NumFiles(), filesBefore)
	}
	for i := 0; i < n; i++ {
		v, err := c.Get("t", fmt.Sprintf("k%04d", i))
		if err != nil || string(v) != string(mkVal(i)) {
			t.Fatalf("k%04d after restart: %.20q, %v", i, v, err)
		}
	}
	// Writes keep working and shadow recovered data.
	if err := c.Put("t", "k0000", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get("t", "k0000"); string(v) != "new" {
		t.Fatalf("post-restart overwrite lost: %q", v)
	}
}

func TestDurableRegionMoveKeepsData(t *testing.T) {
	dir := t.TempDir()
	m, c := newDurableCluster(t, 2, dir)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	region := tbl.Regions()[0]
	src, _ := m.HostOf(region.Name())
	dst := "rs0"
	if src == "rs0" {
		dst = "rs1"
	}
	if err := m.MoveRegion(region.Name(), dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := c.Get("t", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatalf("k%04d after move: %v", i, err)
		}
	}
	// The region directory is keyed by region name, so a restart on the
	// new host recovers the moved region's data from disk.
	dstRS, _ := m.Server(dst)
	if err := dstRS.Restart(durableConfig(dir)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := c.Get("t", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatalf("k%04d after move+restart: %v", i, err)
		}
	}
}

func TestDurableSplitReclaimsParentDir(t *testing.T) {
	dir := t.TempDir()
	m, c := newDurableCluster(t, 1, dir)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	parent := tbl.Regions()[0]
	parentDir := regionDataDir(dir, parent.Name())
	if _, err := os.Stat(parentDir); err != nil {
		t.Fatalf("parent region dir missing before split: %v", err)
	}
	if err := m.SplitRegion(parent.Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(parentDir); !os.IsNotExist(err) {
		t.Fatal("parent region dir not reclaimed after split")
	}
	// All keys live in the daughters, durably: their dirs exist and
	// serve after a restart.
	rs, _ := m.Server("rs0")
	if err := rs.Restart(durableConfig(dir)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := c.Get("t", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatalf("k%04d after split+restart: %v", i, err)
		}
	}
}

func TestDurableMirrorSizesMatchDisk(t *testing.T) {
	dir := t.TempDir()
	m, c := newDurableCluster(t, 1, dir)
	rs, _ := m.Server("rs0")
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	region := tbl.Regions()[0]
	if len(region.Files()) == 0 {
		t.Fatal("no mirrored files")
	}
	// Sum of namenode sizes == sum of real on-disk SSTable sizes.
	var mirrored int64
	for _, f := range region.Files() {
		sz, err := rs.namenode.FileSize(f)
		if err != nil {
			t.Fatalf("mirror file %s: %v", f, err)
		}
		mirrored += sz
	}
	var onDisk int64
	ssts, _ := filepath.Glob(filepath.Join(regionDataDir(dir, region.Name()), "sst-*.sst"))
	for _, p := range ssts {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		onDisk += st.Size()
	}
	if onDisk == 0 || mirrored != onDisk {
		t.Fatalf("mirrored bytes %d != real on-disk bytes %d", mirrored, onDisk)
	}
}
