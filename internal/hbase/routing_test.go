package hbase

import (
	"errors"
	"fmt"
	"testing"

	"met/internal/hdfs"
	"met/internal/kv"
)

// newTestServer builds a standalone running server with its own namenode.
func newTestServer(t *testing.T, name string) *RegionServer {
	t.Helper()
	rs, err := NewRegionServer(name, DefaultServerConfig(), hdfs.NewNamenode(2))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// openRegion creates and opens a region on rs for the given range.
func openRegion(t *testing.T, rs *RegionServer, table, start, end string) *Region {
	t.Helper()
	r, err := NewRegion(table, start, end, kv.Config{MemstoreFlushBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rs.OpenRegion(r)
	return r
}

// TestLookupSortedIndex drives the binary-search router through the
// boundary cases: exact start keys, keys inside and between ranges,
// unbounded end keys, and keys before the first hosted region.
func TestLookupSortedIndex(t *testing.T) {
	rs := newTestServer(t, "rs0")
	// Hosted: [b,f), [f,m), [t,"") — a hole at [m,t).
	openRegion(t, rs, "t1", "b", "f")
	openRegion(t, rs, "t1", "f", "m")
	openRegion(t, rs, "t1", "t", "")

	cases := []struct {
		key    string
		want   string // expected region start key; "" means a routing error
		hosted bool
	}{
		{key: "b", want: "b", hosted: true}, // exact start boundary
		{key: "c", want: "b", hosted: true}, // interior
		{key: "ezzz", want: "b", hosted: true},
		{key: "f", want: "f", hosted: true}, // boundary belongs to the upper region
		{key: "lzzz", want: "f", hosted: true},
		{key: "m", hosted: false}, // hole between hosted ranges
		{key: "s", hosted: false},
		{key: "t", want: "t", hosted: true},    // start of the unbounded tail
		{key: "zzzz", want: "t", hosted: true}, // empty EndKey = unbounded
		{key: "a", hosted: false},              // before every hosted region
		{key: "", hosted: false},
	}
	for _, tc := range cases {
		r, err := rs.lookup("t1", tc.key)
		if tc.hosted {
			if err != nil {
				t.Errorf("lookup(%q): unexpected error %v", tc.key, err)
				continue
			}
			if r.StartKey() != tc.want {
				t.Errorf("lookup(%q) routed to [%q,%q), want start %q", tc.key, r.StartKey(), r.EndKey(), tc.want)
			}
			continue
		}
		if !errors.Is(err, ErrWrongRegionServer) {
			t.Errorf("lookup(%q) = %v, want ErrWrongRegionServer", tc.key, err)
		}
	}
}

// TestLookupFullKeyspace checks the common one-region-per-table layout:
// a single ["", "") region matches any key, including the empty one.
func TestLookupFullKeyspace(t *testing.T) {
	rs := newTestServer(t, "rs0")
	openRegion(t, rs, "t1", "", "")
	for _, key := range []string{"", "a", "zzzz"} {
		if _, err := rs.lookup("t1", key); err != nil {
			t.Errorf("lookup(%q) on full-keyspace region: %v", key, err)
		}
	}
}

// TestLookupMultiTable verifies tables route independently: identical
// key ranges on one server never cross tables, and unknown tables fail.
func TestLookupMultiTable(t *testing.T) {
	rs := newTestServer(t, "rs0")
	ra := openRegion(t, rs, "ta", "", "m")
	rb := openRegion(t, rs, "tb", "", "")
	openRegion(t, rs, "ta", "m", "")

	r, err := rs.lookup("ta", "c")
	if err != nil || r != ra {
		t.Fatalf("lookup(ta, c) = %v, %v, want region %s", r, err, ra.Name())
	}
	r, err = rs.lookup("tb", "c")
	if err != nil || r != rb {
		t.Fatalf("lookup(tb, c) = %v, %v, want region %s", r, err, rb.Name())
	}
	if r, err = rs.lookup("ta", "x"); err != nil || r.StartKey() != "m" {
		t.Fatalf("lookup(ta, x) = %v, %v", r, err)
	}
	if _, err := rs.lookup("ghost", "c"); !errors.Is(err, ErrWrongRegionServer) {
		t.Fatalf("unknown table lookup = %v", err)
	}
}

// TestLookupStopped verifies a stopped server rejects routing entirely.
func TestLookupStopped(t *testing.T) {
	rs := newTestServer(t, "rs0")
	openRegion(t, rs, "t1", "", "")
	rs.Stop()
	if _, err := rs.lookup("t1", "k"); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("stopped lookup = %v", err)
	}
	rs.Start()
	if _, err := rs.lookup("t1", "k"); err != nil {
		t.Fatalf("restarted lookup = %v", err)
	}
}

// TestLookupAfterSplitAndMove walks the index through the full region
// lifecycle: create, split (daughters replace the parent in the index),
// move (the index forgets the region; the destination learns it).
func TestLookupAfterSplitAndMove(t *testing.T) {
	m, c := newCluster(t, 2)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Put("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	parent := tbl.RegionNames()[0]
	host, _ := m.HostOf(parent)
	rs, _ := m.Server(host)
	if err := m.SplitRegion(parent); err != nil {
		t.Fatal(err)
	}
	if n := tbl.NumRegions(); n != 2 {
		t.Fatalf("regions after split = %d", n)
	}
	// Both daughters route on the same host; the parent name is gone.
	lo, hi := tbl.Regions()[0], tbl.Regions()[1]
	for _, probe := range []struct {
		key  string
		want *Region
	}{{lo.StartKey(), lo}, {hi.StartKey(), hi}, {"k199", hi}} {
		got, err := rs.lookup("t", probe.key)
		if err != nil || got != probe.want {
			t.Fatalf("lookup(%q) after split = %v, %v, want %s", probe.key, got, err, probe.want.Name())
		}
	}
	// Move the upper daughter to the other server: source must now
	// reject its keys, destination must serve them.
	var dst string
	for _, s := range m.Servers() {
		if s.Name() != host {
			dst = s.Name()
		}
	}
	if err := m.MoveRegion(hi.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.lookup("t", hi.StartKey()); !errors.Is(err, ErrWrongRegionServer) {
		t.Fatalf("source still routes moved region: %v", err)
	}
	dstRS, _ := m.Server(dst)
	if got, err := dstRS.lookup("t", hi.StartKey()); err != nil || got != hi {
		t.Fatalf("destination lookup = %v, %v", got, err)
	}
	// End-to-end through the client: all keys still readable.
	for _, k := range []string{"k000", "k100", "k199"} {
		if _, err := c.Get("t", k); err != nil {
			t.Fatalf("Get(%s) after split+move: %v", k, err)
		}
	}
}

// TestMirrorReconcilesAtCompaction deterministically pins the fix for
// the old flush-vs-MajorCompact byte double-count: the mirror is diffed
// against the engine's real file stack at swap time, so a flush that
// raced the compaction (its file folded into the compacted output) is
// neither orphaned in the namenode nor counted twice.
func TestMirrorReconcilesAtCompaction(t *testing.T) {
	rs := newTestServer(t, "rs0")
	r := openRegion(t, rs, "t1", "", "")
	s := r.Store()
	put := func(k string) {
		t.Helper()
		if err := s.Put(k, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	mirrorTotal := func() int64 {
		t.Helper()
		var total int64
		for _, f := range r.Files() {
			sz, err := rs.namenode.FileSize(f)
			if err != nil {
				t.Fatalf("region file %s missing from namenode: %v", f, err)
			}
			total += sz
		}
		return total
	}
	engineTotal := func() int64 {
		var total int64
		for _, fi := range s.FileInfos() {
			total += fi.Bytes
		}
		return total
	}

	// Two flushed-and-mirrored files.
	put("a")
	s.Flush()
	rs.mirrorSync(r)
	put("b")
	s.Flush()
	rs.mirrorSync(r)
	if len(r.Files()) != 2 || mirrorTotal() != engineTotal() {
		t.Fatalf("baseline mirror broken: files=%v total=%d engine=%d", r.Files(), mirrorTotal(), engineTotal())
	}
	// A third flush lands but its mirror "races" the compaction: the
	// compaction runs before mirrorSync sees the new file.
	put("c")
	s.Flush()
	if err := s.Compact(true); err != nil {
		t.Fatal(err)
	}
	adds, removes, ok := r.mirrorActions(s, true)
	if !ok {
		t.Fatal("mirrorActions rejected the tracked store")
	}
	for _, a := range adds {
		if err := rs.namenode.WriteFile(a.name, a.bytes, rs.name); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range removes {
		_ = rs.namenode.DeleteFile(f)
	}
	// Exactly one file — the compacted output — sized from the engine;
	// no double count, no orphan.
	if len(r.Files()) != 1 {
		t.Fatalf("files after compaction = %v, want exactly the compacted output", r.Files())
	}
	if mirrorTotal() != engineTotal() {
		t.Fatalf("mirror bytes %d != engine bytes %d (double count)", mirrorTotal(), engineTotal())
	}
	for _, f := range rs.namenode.Files() {
		if f != r.Files()[0] {
			t.Fatalf("namenode holds unreferenced file %s (orphan)", f)
		}
	}
}
