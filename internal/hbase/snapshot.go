package hbase

// Point-in-time table snapshots over the durable backend. A snapshot is
// an archived copy of every region's SSTable stack plus a manifest row
// in the META catalog (snapshot/<table>/<name>) listing the exact file
// set and each region's WAL high-water mark. Files are copied under
//
//	<DataDir>/snapshots/<table>/<name>/<region>/sst-*.sst
//
// with the crash-consistent temp/fsync/rename discipline, and the
// manifest — one fsynced catalog Put — is the commit point: a crash
// before it leaves an orphan archive directory OpenCluster sweeps, so
// the snapshot is cleanly absent, never half-taken. RestoreSnapshot
// rebuilds the table from the archive the same way a split replaces a
// parent: fresh generation-suffixed regions are built first, one
// table-row commit atomically switches the layout, and the superseded
// regions' directories are reclaimed afterwards (the losing side of a
// crash is always the orphan).

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"

	"met/internal/replication"
)

// ErrNoCatalog is returned by snapshot and restore operations on a
// cluster without a durable META catalog (no DataDir).
var ErrNoCatalog = errors.New("hbase: operation requires a durable cluster (META catalog)")

// ErrUnknownSnapshot is returned when restoring a snapshot name that
// was never committed.
var ErrUnknownSnapshot = errors.New("hbase: unknown snapshot")

// ErrSnapshotExists is returned when taking a snapshot under a name the
// table already has one committed for.
var ErrSnapshotExists = errors.New("hbase: snapshot exists")

// snapshotDir is the archive directory of one snapshot.
func snapshotDir(dataDir, table, name string) string {
	return filepath.Join(dataDir, "snapshots", url.PathEscape(table), url.PathEscape(name))
}

// snapshotRegionDir is one region's archive inside a snapshot.
func snapshotRegionDir(dataDir, table, name, region string) string {
	return filepath.Join(snapshotDir(dataDir, table, name), url.PathEscape(region))
}

// Snapshot archives a point-in-time copy of a table: every region's
// memstore is flushed, its SSTables are copied into the snapshot
// directory, and one fsynced manifest row commits the snapshot. The
// manifest records the exact SSTable set and the WAL high-water mark
// (newest timestamp) each region's archive covers; writes acknowledged
// after a region's flush are not part of the snapshot, exactly like an
// HBase snapshot taken under load.
func (m *Master) Snapshot(table, name string) error {
	if m.catalog == nil {
		return ErrNoCatalog
	}
	t, err := m.Table(table)
	if err != nil {
		return err
	}
	// Reserve the name before the existence check: two concurrent
	// Snapshot calls for the same name must resolve to exactly one
	// winner, and the loser's error-path archive cleanup must never
	// delete a directory a committer is (or has finished) filling.
	key := table + "/" + name
	m.mu.Lock()
	if m.snapshotting[key] {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s (in progress)", ErrSnapshotExists, key)
	}
	m.snapshotting[key] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.snapshotting, key)
		m.mu.Unlock()
	}()
	var existing snapshotRow
	if ok, err := m.catalog.get(snapshotKey(table, name), &existing); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s/%s", ErrSnapshotExists, table, name)
	}

	row := snapshotRow{Table: table}
	for _, r := range t.Regions() {
		host, ok := m.HostOf(r.Name())
		if !ok {
			return fmt.Errorf("hbase: snapshot %s/%s: region %q unassigned", table, name, r.Name())
		}
		rs, err := m.Server(host)
		if err != nil {
			return err
		}
		sr, err := m.archiveRegion(rs, r, table, name)
		if err != nil {
			_ = os.RemoveAll(snapshotDir(m.catalog.dir, table, name))
			return err
		}
		row.Regions = append(row.Regions, sr)
	}
	m.crash("snapshot.files-copied")
	m.catalog.mu.Lock()
	row.Rev = m.catalog.nextRev()
	err = m.catalog.put(snapshotKey(table, name), row)
	m.catalog.mu.Unlock()
	if err != nil {
		_ = os.RemoveAll(snapshotDir(m.catalog.dir, table, name))
		return err
	}
	m.crash("snapshot.committed")
	return nil
}

// archiveRegion flushes one region and copies its SSTable stack into
// the snapshot archive. A file compacted away between the export
// snapshot and the copy makes the snapshot stale, so the region is
// re-exported and re-copied (already-archived files are skipped).
func (m *Master) archiveRegion(rs *RegionServer, r *Region, table, name string) (snapshotRegion, error) {
	sr := snapshotRegion{Name: r.Name(), Start: r.StartKey(), End: r.EndKey()}
	dir := snapshotRegionDir(m.catalog.dir, table, name, r.Name())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return sr, err
	}
	store := r.Store()
	if err := store.Flush(); err != nil {
		return sr, fmt.Errorf("hbase: snapshot flush %s: %w", r.Name(), err)
	}
	for attempt := 0; ; attempt++ {
		files, ok := store.ExportFiles()
		if !ok {
			return sr, fmt.Errorf("hbase: snapshot %s: region %s has no exportable backend (in-memory store)", name, r.Name())
		}
		sr.Files = sr.Files[:0]
		sr.MaxTS = 0
		stale := false
		for _, f := range files {
			dst := filepath.Join(dir, filepath.Base(f.Path))
			if _, err := os.Stat(dst); err == nil {
				// Already archived by a previous attempt.
			} else if _, err := replication.CopyFile(f.Path, dst); err != nil {
				if os.IsNotExist(err) {
					stale = true // compacted away mid-archive; re-export
					break
				}
				return sr, fmt.Errorf("hbase: snapshot copy %s: %w", f.Path, err)
			}
			sr.Files = append(sr.Files, f.ID)
			if f.MaxTS > sr.MaxTS {
				sr.MaxTS = f.MaxTS
			}
		}
		if !stale {
			return sr, nil
		}
		if attempt >= 3 {
			return sr, fmt.Errorf("hbase: snapshot %s: region %s kept compacting during archive", name, r.Name())
		}
	}
}

// Snapshots lists the committed snapshot names of a table, sorted. The
// catalog keys are prefix-ordered, so only the table's own snapshot
// rows are scanned — never the whole catalog.
func (m *Master) Snapshots(table string) ([]string, error) {
	if m.catalog == nil {
		return nil, ErrNoCatalog
	}
	prefix := snapshotKey(table, "")
	// "0" is "/"+1: the half-open scan covers exactly the keys under
	// snapshot/<table>/.
	end := catalogSnapshotPfx + table + "0"
	entries, err := m.catalog.store.Scan(prefix, end, -1)
	if err != nil {
		return nil, fmt.Errorf("hbase: snapshot list %s: %w", table, err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Key[len(prefix):])
	}
	sort.Strings(out)
	return out, nil
}

// RestoreSnapshot rebuilds table from a committed snapshot: fresh
// generation-suffixed regions are seeded from the archived SSTables and
// opened, then ONE table-row commit atomically replaces the current
// layout (if any) with the restored one, then the superseded regions'
// directories and replica copies are reclaimed. Data written after the
// snapshot was taken is gone, by definition of restore; data in the
// snapshot is complete up to each region's recorded high-water mark. A
// crash before the commit leaves the current table untouched (the
// seeded directories are swept); after it, the restored table is
// authoritative (the old directories are swept).
func (m *Master) RestoreSnapshot(table, name string) error {
	if m.catalog == nil {
		return ErrNoCatalog
	}
	var row snapshotRow
	if ok, err := m.catalog.get(snapshotKey(table, name), &row); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownSnapshot, table, name)
	}
	sort.Slice(row.Regions, func(i, j int) bool { return row.Regions[i].Start < row.Regions[j].Start })

	m.mu.Lock()
	if len(m.servers) == 0 {
		m.mu.Unlock()
		return ErrNoServers
	}
	serverNames := make([]string, 0, len(m.servers))
	for sn := range m.servers {
		serverNames = append(serverNames, sn)
	}
	sort.Strings(serverNames)
	balancer := m.balancer
	m.splitSeq++
	gen := m.splitSeq
	m.mu.Unlock()
	// Persist the generation before any directory exists, so a replayed
	// restore can never mint colliding region names (same discipline as
	// splits).
	if err := m.commitCluster(); err != nil {
		return err
	}

	splitKeys := make([]string, 0, len(row.Regions))
	newNames := make([]string, 0, len(row.Regions))
	for i, rr := range row.Regions {
		if i > 0 {
			splitKeys = append(splitKeys, rr.Start)
		}
		newNames = append(newNames, fmt.Sprintf("%s.%d", rr.Name, gen))
	}
	plan := balancer.Assign(newNames, serverNames)

	nt := newTable(table, splitKeys)
	var opened []*Region
	unwind := func() {
		m.mu.Lock()
		for _, r := range opened {
			delete(m.assignment, r.Name())
		}
		m.mu.Unlock()
		for _, r := range opened {
			r.Store().Close()
			if dd := m.catalog.dir; dd != "" {
				_ = os.RemoveAll(regionDataDir(dd, r.Name()))
			}
		}
	}
	for i, rr := range row.Regions {
		newName := newNames[i]
		host := plan[newName]
		rs, err := m.Server(host)
		if err != nil {
			unwind()
			return err
		}
		// Seed the fresh region directory from the archive, then open it
		// like any cold store.
		dstDir := regionDataDir(rs.Config().DataDir, newName)
		if err := os.MkdirAll(dstDir, 0o755); err != nil {
			unwind()
			return err
		}
		src := snapshotRegionDir(m.catalog.dir, table, name, rr.Name)
		for _, id := range rr.Files {
			if _, err := replication.CopyFile(replication.SSTablePath(src, id),
				filepath.Join(dstDir, filepath.Base(replication.SSTablePath(src, id)))); err != nil {
				unwind()
				return fmt.Errorf("hbase: restore %s/%s: %w", table, name, err)
			}
		}
		nr, err := newRegionNamed(newName, table, rr.Start, rr.End,
			rs.storeConfigFor(newName, rs.NumRegions()+1))
		if err != nil {
			unwind()
			return fmt.Errorf("hbase: restore %s/%s: %w", table, name, err)
		}
		nr.SetFollowers(m.pickFollowers(host))
		nt.addRegion(nr)
		m.mu.Lock()
		m.assignment[newName] = host
		m.mu.Unlock()
		opened = append(opened, nr)
	}

	m.crash("restore.regions-ready")
	// Commit point: the table row now names the restored regions.
	if err := m.commitTable(nt); err != nil {
		unwind()
		return err
	}

	// Swap in-memory metadata and start serving the restored regions.
	m.mu.Lock()
	oldT := m.tables[table]
	m.tables[table] = nt
	var oldRegions []*Region
	if oldT != nil {
		for _, r := range oldT.Regions() {
			oldRegions = append(oldRegions, r)
		}
	}
	oldAssign := make(map[string]string, len(oldRegions))
	for _, r := range oldRegions {
		oldAssign[r.Name()] = m.assignment[r.Name()]
		delete(m.assignment, r.Name())
	}
	m.mu.Unlock()
	for _, r := range nt.Regions() {
		host, _ := m.HostOf(r.Name())
		if rs, err := m.Server(host); err == nil {
			rs.OpenRegion(r)
			rs.mirrorSync(r)
		}
	}
	m.crash("restore.committed")

	// Reclaim the superseded regions: stop serving them, release their
	// HDFS files, and delete their primary directories and replica
	// copies (the catalog no longer references them).
	for _, r := range oldRegions {
		host := oldAssign[r.Name()]
		rs, err := m.Server(host)
		if err != nil {
			r.Store().Close()
			continue
		}
		rs.CloseRegion(r.Name())
		for _, f := range r.Files() {
			_ = m.namenode.DeleteFile(f)
		}
		for _, f := range r.Followers() {
			_ = os.RemoveAll(replicaDir(rs.Config().DataDir, f, r.Name()))
		}
		discardRegionStore(rs, r)
	}
	return nil
}
