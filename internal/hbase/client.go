package hbase

import (
	"errors"
	"fmt"

	"met/internal/kv"
)

// ErrNotFound mirrors kv.ErrNotFound at the client surface.
var ErrNotFound = kv.ErrNotFound

// Client provides the put/get/delete/scan key-value interface of
// Section 2, routing every operation to the region server currently
// hosting the key's region. Like the real HBase client it consults the
// master's metadata ("meta table") and retries once on a stale route.
type Client struct {
	master *Master
}

// NewClient returns a client bound to the cluster's master.
func NewClient(m *Master) *Client { return &Client{master: m} }

// route finds the server hosting the region for (table, key).
func (c *Client) route(table, key string) (*RegionServer, *Region, error) {
	t, err := c.master.Table(table)
	if err != nil {
		return nil, nil, err
	}
	r := t.RegionFor(key)
	if r == nil {
		return nil, nil, fmt.Errorf("hbase: no region for key %q", key)
	}
	host, ok := c.master.HostOf(r.Name())
	if !ok {
		return nil, nil, fmt.Errorf("hbase: region %q unassigned", r.Name())
	}
	rs, err := c.master.Server(host)
	if err != nil {
		return nil, nil, err
	}
	return rs, r, nil
}

// withRetry runs op, refreshing the route once if the first attempt hit
// a moved region (ErrWrongRegionServer) or a store retired mid-flight by
// a split or restart (kv.ErrClosed — after a split the daughters serve
// the key on the refreshed route). A server that is down keeps failing
// with ErrServerStopped; waiting it out is the caller's policy, as with
// real HBase clients.
func (c *Client) withRetry(table, key string, op func(rs *RegionServer) error) error {
	rs, _, err := c.route(table, key)
	if err != nil {
		return err
	}
	err = op(rs)
	if errors.Is(err, ErrWrongRegionServer) || errors.Is(err, kv.ErrClosed) {
		rs, _, err = c.route(table, key)
		if err != nil {
			return err
		}
		return op(rs)
	}
	return err
}

// Get returns the newest value of key, or ErrNotFound.
func (c *Client) Get(table, key string) ([]byte, error) {
	var out []byte
	err := c.withRetry(table, key, func(rs *RegionServer) error {
		v, err := rs.Get(table, key)
		out = v
		return err
	})
	return out, err
}

// Put writes a value. Writes are atomic and immediately visible to
// subsequent reads.
func (c *Client) Put(table, key string, value []byte) error {
	return c.withRetry(table, key, func(rs *RegionServer) error {
		return rs.Put(table, key, value)
	})
}

// Delete removes a key.
func (c *Client) Delete(table, key string) error {
	return c.withRetry(table, key, func(rs *RegionServer) error {
		return rs.Delete(table, key)
	})
}

// Scan returns up to limit entries with start <= key < end in key order,
// stitching together per-region scans across servers.
func (c *Client) Scan(table, start, end string, limit int) ([]kv.Entry, error) {
	t, err := c.master.Table(table)
	if err != nil {
		return nil, err
	}
	var out []kv.Entry
	cursor := start
	for {
		if limit >= 0 && len(out) >= limit {
			return out[:limit], nil
		}
		r := t.RegionFor(cursor)
		if r == nil {
			return out, nil
		}
		remaining := -1
		if limit >= 0 {
			remaining = limit - len(out)
		}
		var part []kv.Entry
		err := c.withRetry(table, cursor, func(rs *RegionServer) error {
			var err error
			part, err = rs.Scan(table, cursor, end, remaining)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
		if r.EndKey() == "" || (end != "" && r.EndKey() >= end) {
			return out, nil
		}
		cursor = r.EndKey()
	}
}

// ReadModifyWrite implements YCSB's read-modify-write on a single row:
// read the value, transform it, write it back. HBase offers record-level
// atomicity only, which is all the paper's workloads require.
func (c *Client) ReadModifyWrite(table, key string, modify func([]byte) []byte) error {
	v, err := c.Get(table, key)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	return c.Put(table, key, modify(v))
}
