package hbase

// Server failover: reopening a dead server's regions from the replica
// SSTables its followers hold (met/internal/replication), with the data
// loss — acknowledged writes that never reached a replica — measured
// and reported, never silent. See catalog.go for the commit ordering.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"met/internal/durable"
	"met/internal/replication"
)

// ErrServerStillRunning is returned by RecoverServer for a server that
// has not been stopped: failover is for dead servers, and recovering a
// live one would fork its regions.
var ErrServerStillRunning = errors.New("hbase: refusing to recover a running server; stop it first")

// RegionRecovery describes one region's failover.
type RegionRecovery struct {
	// Region and NewRegion are the dead region's name and the
	// generation-suffixed name it was recovered under.
	Region    string
	NewRegion string
	// Source is the follower whose replica directory the region was
	// reopened from (it also hosts the recovered region).
	Source string
	// ReplicaFiles is how many SSTables the replica held.
	ReplicaFiles int
	// TailWrites is how many durable-but-unflushed records were replayed
	// from the replica's shipped WAL tail (wal-tail.log) — the writes
	// that sat in the dead server's memstore yet still survive because
	// tail streaming shipped them after their commit fsync.
	TailWrites int
	// TailTorn reports that the shipped tail frame stream ended in a
	// torn frame (the shipper died mid-rename is impossible — writes are
	// atomic — but a torn source tail is shipped as-is); the intact
	// prefix was still replayed.
	TailTorn bool
	// LostWrites counts the acknowledged mutations the replica did not
	// cover — after the tail replay, only the unsynced in-flight window.
	// Store timestamps are minted densely (one per mutation), so the
	// dead store's clock minus the recovered store's clock is exactly
	// that count.
	LostWrites int64
}

// RecoveryReport is RecoverServer's accounting: what was recovered from
// where, and precisely how much was lost. A zero LostWrites means every
// acknowledged write survived the server's death.
type RecoveryReport struct {
	Server     string
	Regions    []RegionRecovery
	LostWrites int64
}

// RecoverServer fails over a dead server: every region it hosted is
// reopened on the follower holding its replica SSTables — from the
// copies alone, never the dead server's own region directories — and
// reassigned there, with one table-row commit per region (a crash
// mid-recovery cold-starts the partially recovered layout, and
// RecoverServer can be re-run). The dead server's membership row is
// dropped last, its directories are reclaimed, and regions elsewhere
// that replicated onto it get fresh followers.
//
// The caller must have stopped the server (HardStop, Shutdown, or a
// real process kill); recovering a live server is refused. The returned
// report counts, per region, the acknowledged writes the replica did
// not cover — with replication caught up after a clean flush that count
// is zero; otherwise it is the unreplicated memstore, reported rather
// than silently dropped. The dead store objects are consulted only for
// that in-memory accounting (their logical clocks); region data comes
// exclusively from the replica copies.
func (m *Master) RecoverServer(name string) (*RecoveryReport, error) {
	rs, err := m.Server(name)
	if err != nil {
		return nil, err
	}
	if rs.Running() {
		return nil, fmt.Errorf("%w (%s)", ErrServerStillRunning, name)
	}
	if rs.Config().DataDir == "" {
		return nil, fmt.Errorf("hbase: recover %s: no durable data directory, nothing replicated", name)
	}
	m.mu.Lock()
	delete(m.servers, name)
	nLive := len(m.servers)
	m.mu.Unlock()
	if nLive == 0 {
		m.mu.Lock()
		m.servers[name] = rs
		m.mu.Unlock()
		return nil, ErrNoServers
	}
	m.namenode.RemoveDatanode(name)

	// One generation for the whole recovery, persisted before any new
	// directory exists (the split/restore discipline: a replayed
	// recovery can never mint colliding names).
	m.mu.Lock()
	m.splitSeq++
	gen := m.splitSeq
	m.mu.Unlock()
	if err := m.commitCluster(); err != nil {
		// Nothing recovered yet: restore membership so the caller can
		// retry instead of stranding regions on a vanished server.
		m.mu.Lock()
		m.servers[name] = rs
		m.mu.Unlock()
		return nil, err
	}

	report := &RecoveryReport{Server: name}
	regions := rs.Regions()
	sort.Slice(regions, func(i, j int) bool { return regions[i].Name() < regions[j].Name() })
	var errs []error
	for _, r := range regions {
		rec, err := m.recoverRegion(rs, r, gen)
		if err != nil {
			errs = append(errs, fmt.Errorf("hbase: recover %s region %s: %w", name, r.Name(), err))
			continue
		}
		report.Regions = append(report.Regions, rec)
		report.LostWrites += rec.LostWrites
		m.crash("recoverserver.region-recovered")
	}
	if len(errs) > 0 {
		// Partial recovery: the committed regions are safely failed
		// over; the server stays a member so a re-run can finish.
		m.mu.Lock()
		m.servers[name] = rs
		m.mu.Unlock()
		return report, errors.Join(errs...)
	}
	m.crash("recoverserver.reassigned")
	if err := m.dropServer(name); err != nil {
		return report, err
	}
	// The dead server's shared WAL is no longer referenced by anything:
	// every region it logged for was either recovered (from the replica
	// copies and shipped tail, never this directory) or lost and
	// reported. Reclaim it like the region directories.
	_ = os.RemoveAll(serverWALDir(rs.Config().DataDir, name))
	if err := m.refreshFollowersAfterLoss(name); err != nil {
		return report, err
	}
	return report, nil
}

// recoverRegion fails over one region onto the follower holding its
// replica copy. The new region directory is seeded exclusively from the
// replica SSTables; the dead primary directory is never read (it stands
// in for a lost disk) and is reclaimed after the commit.
func (m *Master) recoverRegion(dead *RegionServer, r *Region, gen int64) (RegionRecovery, error) {
	rec := RegionRecovery{Region: r.Name()}
	deadStore := r.Store()
	deadTS := deadStore.MaxTimestamp()

	dst, replicaSrc := m.pickRecoverySource(dead, r)
	if dst == nil {
		return rec, fmt.Errorf("no live server to recover onto")
	}
	rec.Source = dst.Name()
	newName := fmt.Sprintf("%s.%d", r.Name(), gen)
	rec.NewRegion = newName
	newDir := regionDataDir(dst.Config().DataDir, newName)
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		return rec, err
	}
	if replicaSrc != "" {
		ids, err := replication.ListSSTables(replicaSrc)
		if err != nil {
			return rec, err
		}
		for _, id := range ids {
			src := replication.SSTablePath(replicaSrc, id)
			if _, err := replication.CopyFile(src, filepath.Join(newDir, filepath.Base(src))); err != nil {
				return rec, err
			}
		}
		rec.ReplicaFiles = len(ids)
	}
	nr, err := newRegionNamed(newName, r.Table(), r.StartKey(), r.EndKey(),
		dst.storeConfigFor(newName, dst.NumRegions()+1))
	if err != nil {
		return rec, err
	}
	discard := func() {
		st := nr.Store()
		h, _ := st.WAL().(*durable.RegionLog)
		st.Close()
		if h != nil {
			_ = h.Owner().Drop(h.Name())
		}
		_ = os.RemoveAll(newDir)
	}
	if replicaSrc != "" {
		// Replay the shipped WAL tail over the replica SSTables: the
		// records the dead server's memstore held but tail streaming had
		// already made follower-durable. Records the files already cover
		// are skipped (a flush racing the last ship duplicates them);
		// a torn trailing frame yields the intact prefix.
		tail, torn, err := durable.ReadTailFile(durable.TailFilePath(replicaSrc))
		if err != nil {
			discard()
			return rec, fmt.Errorf("read replica tail: %w", err)
		}
		rec.TailTorn = torn
		if len(tail) > 0 {
			applied, err := nr.Store().ApplyReplayed(tail)
			if err != nil {
				discard()
				return rec, fmt.Errorf("replay replica tail: %w", err)
			}
			rec.TailWrites = applied
		}
		// The replayed tail is in the new store (durably, through the
		// destination's shared WAL) but the table row is not yet
		// committed: a crash here cold-starts the old layout and a
		// re-run replays the tail again, idempotently.
		m.crash("recoverserver.tail-replayed")
	}
	rec.LostWrites = int64(deadTS) - int64(nr.Store().MaxTimestamp())
	if rec.LostWrites < 0 {
		rec.LostWrites = 0
	}
	nr.SetFollowers(m.pickFollowers(dst.Name()))

	// Publish: table metadata, assignment, serving, then the durable
	// commit. A crash before the commit cold-starts the region on the
	// (revived) dead member from its untouched primary directory; after
	// it, the recovered region is authoritative.
	t, err := m.Table(r.Table())
	if err != nil {
		discard()
		return rec, err
	}
	t.swapRegion(r, nr)
	m.mu.Lock()
	delete(m.assignment, r.Name())
	m.assignment[newName] = dst.Name()
	m.mu.Unlock()
	dst.OpenRegion(nr)
	dst.mirrorSync(nr)
	for _, f := range r.Files() {
		_ = m.namenode.DeleteFile(f)
	}
	if err := m.commitTableOf(r.Table()); err != nil {
		return rec, err
	}

	// Committed: drop the region from the dead server's in-memory
	// topology so a re-run after a partial failure never re-recovers
	// it (which would seed an empty duplicate from the deleted
	// replicas). The dead store's handles are released (accounting is
	// done) and the superseded directories — dead primary, consumed
	// replicas — are reclaimed; the catalog no longer references them.
	dead.CloseRegion(r.Name())
	deadStore.Close()
	_ = os.RemoveAll(regionDataDir(dead.Config().DataDir, r.Name()))
	for _, f := range r.Followers() {
		_ = os.RemoveAll(replicaDir(dead.Config().DataDir, f, r.Name()))
	}
	return rec, nil
}

// pickRecoverySource chooses where to recover a region: the live
// follower whose replica covers the highest timestamp — the max over
// its SSTables' clocks and the last record of its shipped WAL tail —
// so the replay loses the least (file count breaks ties: a replica
// that kept more un-compacted history restores more evenly; remaining
// ties go to the first by follower order). When no follower survives
// or none ever received a copy, any live server starts the region
// empty (the loss is then the whole region, and it is reported).
// Replica directories are resolved under the dead primary's DataDir —
// the same convention the shipper wrote them with — so heterogeneous
// per-server DataDirs find the copies where they actually are.
func (m *Master) pickRecoverySource(dead *RegionServer, r *Region) (*RegionServer, string) {
	var best *RegionServer
	bestDir := ""
	bestFiles := -1
	var bestCovered uint64
	for _, f := range r.Followers() {
		rs, err := m.Server(f)
		if err != nil {
			continue
		}
		dir := replicaDir(dead.Config().DataDir, f, r.Name())
		ids, err := replication.ListSSTables(dir)
		if err != nil {
			continue
		}
		covered := replicaCoveredTS(dir, ids)
		if best == nil || covered > bestCovered ||
			(covered == bestCovered && len(ids) > bestFiles) {
			best, bestDir, bestFiles, bestCovered = rs, dir, len(ids), covered
		}
	}
	if best != nil {
		return best, bestDir
	}
	// No surviving replica: least-loaded live server, empty start.
	servers := m.Servers()
	if len(servers) == 0 {
		return nil, ""
	}
	sort.Slice(servers, func(i, j int) bool {
		if servers[i].NumRegions() != servers[j].NumRegions() {
			return servers[i].NumRegions() < servers[j].NumRegions()
		}
		return servers[i].Name() < servers[j].Name()
	})
	return servers[0], ""
}

// replicaCoveredTS is the highest timestamp a replica directory can
// restore: the max SSTable clock across its shipped files, raised by
// the newest record of its shipped WAL tail. Unreadable files count as
// zero — a corrupt replica simply loses the election to a better one.
func replicaCoveredTS(dir string, ids []uint64) uint64 {
	var covered uint64
	for _, id := range ids {
		if ts, err := durable.SSTableMaxTimestamp(replication.SSTablePath(dir, id)); err == nil && ts > covered {
			covered = ts
		}
	}
	if tail, _, err := durable.ReadTailFile(durable.TailFilePath(dir)); err == nil {
		for _, e := range tail {
			if e.Timestamp > covered {
				covered = e.Timestamp
			}
		}
	}
	return covered
}

// QuiesceReplication blocks until every server's replicator has shipped
// its pending work — the cluster-wide barrier between "cleanly flushed"
// and "safe to lose any single server".
func (m *Master) QuiesceReplication() {
	for _, rs := range m.Servers() {
		rs.QuiesceReplication()
	}
}
