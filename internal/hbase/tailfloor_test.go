package hbase

import (
	"fmt"
	"testing"
	"time"
)

// TestMidBurstKillLossBoundedByTailFloor kills a server in the middle of
// a sustained write burst — no quiesce, no flush — and asserts the
// recovery report's loss stays within the configured tail-ship lag
// bound. The scenario is engineered so the floor is the only thing
// keeping followers fresh: a flushed SSTable's replica copy wedges the
// single reconcile worker on a starved I/O budget for several seconds,
// so notify-driven tail ships stall exactly as they did before the
// bounded-lag floor existed (then, loss grew with the burst length).
func TestMidBurstKillLossBoundedByTailFloor(t *testing.T) {
	const lagRecords = 64
	const burst = 1200
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.TailShipMaxLagRecords = lagRecords
	cfg.TailShipMaxLagInterval = 50 * time.Millisecond
	// Starve the budget-charged shipping path: the flushed SSTable below
	// takes seconds to copy at 2 KiB/s, wedging the reconcile worker.
	cfg.Compaction.BudgetBytesPerSec = 2 << 10
	m, c := newCatalogCluster(t, 3, dir, cfg)
	if _, err := m.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := m.Table("t")
	var hot, flusher *Region
	for _, r := range tbl.Regions() {
		if r.StartKey() == "" {
			hot = r
		} else {
			flusher = r
		}
	}
	victim, _ := m.HostOf(hot.Name())
	// Co-locate the wedging region with the hot one so they share the
	// victim's replicator (and its single worker).
	if host, _ := m.HostOf(flusher.Name()); host != victim {
		if err := m.MoveRegion(flusher.Name(), victim); err != nil {
			t.Fatal(err)
		}
	}
	// Wedge the worker: flush a ~4 KiB SSTable whose replica copy blocks
	// on the starved budget, compounded by the burst's foreground debt.
	if err := c.Put("t", "z-big", make([]byte, 4<<10)); err != nil {
		t.Fatal(err)
	}
	if err := flusher.Store().Flush(); err != nil {
		t.Fatal(err)
	}
	// Sustained burst into the hot region while the worker is wedged.
	// Small enough that nothing auto-flushes: every record lives only in
	// the memstore, the WAL, and whatever tail the floor shipped.
	for i := 0; i < burst; i++ {
		if err := c.Put("t", fmt.Sprintf("a%05d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := m.Server(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n := rs.ReplicationStats().TailFloorShips; n == 0 {
		t.Fatal("tail floor never shipped during the burst; the starved-worker scenario is not being exercised")
	}
	// Kill mid-burst. Shutdown waits out the wedged copy but drops the
	// queued notifications, so the hot region's replica holds only what
	// the floor shipped before this point.
	rs.Shutdown()
	quarantineServerDirs(t, rs)
	report, err := m.RecoverServer(victim)
	if err != nil {
		t.Fatal(err)
	}
	var hotRec *RegionRecovery
	for i := range report.Regions {
		if report.Regions[i].Region == hot.Name() {
			hotRec = &report.Regions[i]
		}
	}
	if hotRec == nil {
		t.Fatalf("recovery report has no entry for the hot region %s: %+v", hot.Name(), report)
	}
	// The documented bound: at most ~2× the configured record floor per
	// region (the floor resets the lag counter when it snapshots a tail,
	// so one ship's worth can be in flight on top of a full counter).
	if hotRec.LostWrites > 2*lagRecords {
		t.Fatalf("mid-burst kill lost %d acknowledged writes; want <= 2*%d (tail floor lag bound)",
			hotRec.LostWrites, lagRecords)
	}
	// The survivors must have come from the shipped tail (nothing was
	// flushed), and every write the report claims survived must read back.
	if hotRec.TailWrites < burst-2*lagRecords {
		t.Fatalf("only %d of %d burst writes replayed from the shipped tail", hotRec.TailWrites, burst)
	}
	survivors := burst - int(hotRec.LostWrites)
	c2 := NewClient(m)
	for i := 0; i < survivors; i++ {
		k := fmt.Sprintf("a%05d", i)
		if v, err := c2.Get("t", k); err != nil || string(v) != "v" {
			t.Fatalf("%s after recovery: %q, %v (report claims the first %d survived)", k, v, err, survivors)
		}
	}
}
