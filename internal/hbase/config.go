// Package hbase implements the NoSQL database substrate of the
// reproduction: a functional, single-process re-creation of the HBase
// architecture the paper manages — HTables horizontally partitioned into
// Regions, Regions hosted by RegionServers whose block cache / memstore /
// block size are configurable per server, a Master that assigns regions
// through pluggable balancers (including the randomized out-of-the-box
// one the paper criticizes), and a client that routes operations by key.
//
// RegionServers are co-located with simulated HDFS datanodes
// (met/internal/hdfs): flushed and compacted region files are written
// "locally", moves leave files behind, and each server exposes the
// locality index MeT monitors. Reconfiguration requires a server restart,
// matching the HBase limitation the paper identifies as the dominant
// actuation cost.
//
// Each server also owns a background compaction pool
// (met/internal/compaction) shared across its regions: flushes enqueue
// over-threshold stores, MajorCompact (the MeT actuator's operation)
// enters the same queue at high priority, and all compaction I/O is
// rate-limited by a token-bucket budget shared with the serving path —
// so maintenance never runs under a store's write lock and never
// starves foreground fsyncs.
//
// # Concurrency model
//
// The serving path is concurrent end to end: any number of goroutines
// may issue Get/Put/Delete/Scan through a Client or directly against a
// RegionServer. Reads of routing metadata (Master assignment, Table
// regions, each server's per-table sorted region index) take shared
// reader/writer locks; topology mutations (create/split/move/open/close,
// restarts) take the exclusive side. Request counters — per server and
// per region — are sync/atomic counters, so the Monitor can sample them
// without ever stalling serving. Lock ordering, outermost first:
// Master.mu, then Table.mu, then RegionServer.mu, then Region.mu, then
// the kv.Store locks; no call path acquires them in the reverse
// direction. Operations racing a restart, move or split fail with
// ErrServerStopped, ErrWrongRegionServer or kv.ErrClosed and never
// observe torn or lost data (migration paths seal the source store
// before copying, so an acknowledged write is either copied or was
// never acknowledged). The Client re-routes once on
// ErrWrongRegionServer and kv.ErrClosed, which absorbs moves and
// splits; ErrServerStopped during a restart surfaces to the caller,
// whose retry policy is out of scope here, as with real HBase clients.
package hbase

import (
	"fmt"
	"time"
)

// ServerConfig carries the per-node tuning knobs from Section 2 of the
// paper. Cache and memstore are expressed as fractions of the Java heap,
// and their sum must not exceed 65% of it (the constraint HBase documents
// and Table 1 respects).
type ServerConfig struct {
	// HeapBytes is the region server heap (3 GB in the paper).
	HeapBytes int64
	// BlockCacheFraction of the heap for the read block cache.
	BlockCacheFraction float64
	// MemstoreFraction of the heap shared by region memstores.
	MemstoreFraction float64
	// BlockBytes is the HFile block size (64 KB default; 32 KB favors
	// random reads, 128 KB favors scans).
	BlockBytes int
	// Handlers is the RPC handler count (default 10).
	Handlers int
	// DataDir, when non-empty, switches every region store hosted by
	// this server to the durable disk backend (met/internal/durable):
	// group-committed WAL plus SSTables under DataDir/regions/<region>.
	// Region directories are keyed by region name, not server, so
	// region moves keep their data and a restart recovers from disk.
	// Empty (the default) keeps stores in memory, as the paper's
	// simulated experiments do.
	DataDir string
	// Compaction tunes the server-wide background compaction subsystem
	// (met/internal/compaction). Like DataDir it is a deployment
	// property, not a paper tuning knob: the Actuator carries it across
	// profile changes unchanged. The zero value means defaults.
	Compaction CompactionConfig
	// SlowOpThreshold arms per-op tracing (met/internal/obs): an
	// operation that takes at least this long lands in the server's
	// slow-op ring buffer with its per-stage spans (routing, memstore,
	// bloom, block cache, SSTable reads, WAL append/sync, flush). Zero
	// (the default) disables tracing entirely — the serving path then
	// pays only a nil check per stage. Like DataDir and Compaction this
	// is a deployment property the Actuator carries across profiles.
	SlowOpThreshold time.Duration
	// SlowOpLogSize is the slow-op ring capacity; 0 means
	// obs.DefaultSlowLogSize.
	SlowOpLogSize int
	// TailShipMaxLagRecords / TailShipMaxLagInterval bound how far the
	// WAL tail shipped to followers may lag the synced log mid-burst:
	// the replicator ships a region's tail after at most this many
	// freshly synced records, and at least this often while any synced
	// record is unshipped (replication.Config.TailFloorRecords /
	// TailFloorInterval). They bound failover loss while writes are in
	// flight — at most ~2× the record floor per region on a kill, and 0
	// after a quiesce. Zero means the replication defaults (256 records
	// / 200ms); negative disables that floor. Deployment properties like
	// DataDir, carried across profile changes unchanged.
	TailShipMaxLagRecords  int
	TailShipMaxLagInterval time.Duration
}

// CompactionConfig exposes the background compaction knobs through the
// server configuration instead of hard-coded kv.Config defaults. All
// zero values select defaults; explicit negatives disable.
type CompactionConfig struct {
	// MaxStoreFiles is the per-store soft threshold: a flush that
	// leaves more files than this enqueues the store for background
	// compaction. 0 defaults to 8 (the engine default); negative
	// disables automatic compaction.
	MaxStoreFiles int
	// StallStoreFiles is the hard ceiling at which writers stall until
	// compaction catches up (HBase's blockingStoreFiles). 0 defaults to
	// 3×MaxStoreFiles; negative disables stalling.
	StallStoreFiles int
	// BudgetBytesPerSec rate-limits background compaction I/O through
	// the token-bucket budget shared with the serving path. 0 means
	// unlimited.
	BudgetBytesPerSec int64
	// Workers is the compactor pool size. 0 defaults to 1; negative
	// disables the pool entirely, reverting stores to the legacy
	// inline-compaction-at-flush behavior.
	Workers int
	// Policy selects the file-selection policy: "tiered" (merge
	// everything over the threshold — the engine's historical behavior,
	// and the default) or "leveled" (incremental merges of the
	// cheapest overlapping run).
	Policy string
}

// Validate checks the compaction knobs. The stall ceiling must sit
// above the *effective* soft threshold (0 means the engine default of
// 8): a ceiling at or below it would park writers on a gate that no
// compaction is ever queued to release.
func (c CompactionConfig) Validate() error {
	switch c.Policy {
	case "", "tiered", "leveled":
	default:
		return fmt.Errorf("hbase: unknown compaction policy %q", c.Policy)
	}
	if c.StallStoreFiles > 0 {
		if c.MaxStoreFiles < 0 {
			return fmt.Errorf("hbase: stall ceiling %d with automatic compaction disabled would wedge writers",
				c.StallStoreFiles)
		}
		soft := c.MaxStoreFiles
		if soft == 0 {
			soft = 8 // the engine default the zero value resolves to
		}
		if c.StallStoreFiles <= soft {
			return fmt.Errorf("hbase: stall ceiling %d must exceed the soft threshold %d",
				c.StallStoreFiles, soft)
		}
	}
	return nil
}

// DefaultServerConfig mirrors an out-of-the-box tuned HBase node per the
// paper's Random-Homogeneous strategy: 60% of memory for reads and 40%
// for writes, interpreted — as Table 1's profiles confirm, all summing to
// exactly 65% — as a 60/40 split of the 65% tunable heap budget.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		HeapBytes:          3 << 30,
		BlockCacheFraction: 0.60 * 0.65, // = 39% of heap
		MemstoreFraction:   0.40 * 0.65, // = 26% of heap
		BlockBytes:         64 << 10,
		Handlers:           10,
	}
}

// Validate checks the 65% heap rule and basic sanity.
func (c ServerConfig) Validate() error {
	if c.HeapBytes <= 0 {
		return fmt.Errorf("hbase: non-positive heap %d", c.HeapBytes)
	}
	if c.BlockCacheFraction < 0 || c.MemstoreFraction < 0 {
		return fmt.Errorf("hbase: negative memory fraction")
	}
	if sum := c.BlockCacheFraction + c.MemstoreFraction; sum > 0.651 {
		return fmt.Errorf("hbase: cache+memstore = %.0f%% of heap exceeds the 65%% rule", sum*100)
	}
	if c.BlockBytes <= 0 {
		return fmt.Errorf("hbase: non-positive block size %d", c.BlockBytes)
	}
	if c.Handlers <= 0 {
		return fmt.Errorf("hbase: non-positive handler count %d", c.Handlers)
	}
	if c.SlowOpThreshold < 0 {
		return fmt.Errorf("hbase: negative slow-op threshold %v", c.SlowOpThreshold)
	}
	if c.SlowOpLogSize < 0 {
		return fmt.Errorf("hbase: negative slow-op log size %d", c.SlowOpLogSize)
	}
	return c.Compaction.Validate()
}

// BlockCacheBytes returns the absolute block cache capacity.
func (c ServerConfig) BlockCacheBytes() int64 {
	return int64(float64(c.HeapBytes) * c.BlockCacheFraction)
}

// MemstoreBytes returns the absolute memstore budget.
func (c ServerConfig) MemstoreBytes() int64 {
	return int64(float64(c.HeapBytes) * c.MemstoreFraction)
}

// Equal reports whether two configurations are identical; the Output
// Computation stage uses it to decide whether a server needs a restart.
func (c ServerConfig) Equal(o ServerConfig) bool { return c == o }

// String summarises the config as "cache/memstore/block".
func (c ServerConfig) String() string {
	return fmt.Sprintf("cache=%.0f%% memstore=%.0f%% block=%dKB handlers=%d",
		c.BlockCacheFraction*100, c.MemstoreFraction*100, c.BlockBytes>>10, c.Handlers)
}
