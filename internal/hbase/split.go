package hbase

import (
	"fmt"
	"sort"
)

// DefaultSplitThresholdBytes is HBase's default automatic-partitioning
// threshold the paper cites (a region splits when it grows past 250 MB).
const DefaultSplitThresholdBytes = 250 << 20

// SplitRegion splits a region at the median of its live keys into two
// daughter regions hosted by the same server, reproducing HBase's
// automatic partitioning (Section 2: "the automatic partitioning of a
// HTable occurs when it grows to a parametrized size"). The parent's
// HDFS files are released; daughters write their own on their next
// flush or compaction.
func (m *Master) SplitRegion(regionName string) error {
	host, ok := m.HostOf(regionName)
	if !ok {
		return fmt.Errorf("hbase: split: unknown region %q", regionName)
	}
	rs, err := m.Server(host)
	if err != nil {
		return err
	}
	m.mu.Lock()
	var tbl *Table
	for _, t := range m.tables {
		for _, r := range t.Regions() {
			if r.Name() == regionName {
				tbl = t
			}
		}
	}
	m.mu.Unlock()
	if tbl == nil {
		return fmt.Errorf("hbase: split: region %q has no table", regionName)
	}
	parent := rs.CloseRegion(regionName)
	if parent == nil {
		return fmt.Errorf("hbase: split: region %q not open on %q", regionName, host)
	}
	// Seal the parent before copying: an in-flight write either landed
	// before the seal (and reaches a daughter) or fails unacknowledged
	// with kv.ErrClosed — never acknowledged-then-dropped.
	parent.Store().Seal()
	reopen := func() {
		parent.Store().Unseal()
		rs.OpenRegion(parent)
	}

	entries, err := parent.Store().Scan(parent.StartKey(), parent.EndKey(), -1)
	if err != nil {
		reopen()
		return fmt.Errorf("hbase: split %s: %w", regionName, err)
	}
	if len(entries) < 2 {
		reopen()
		return fmt.Errorf("hbase: split %s: too little data to split", regionName)
	}
	mid := entries[len(entries)/2].Key
	if mid == parent.StartKey() {
		reopen()
		return fmt.Errorf("hbase: split %s: degenerate split key", regionName)
	}

	m.mu.Lock()
	m.splitSeq++
	gen := m.splitSeq
	m.mu.Unlock()
	// Persist the bumped sequence before any daughter exists: a split
	// replayed after a crash (or issued after a cold start) must never
	// mint daughter names — and therefore data directories — that
	// collide with this attempt's leftovers. A crash right here merely
	// skips a generation number.
	if err := m.commitCluster(); err != nil {
		reopen()
		return fmt.Errorf("hbase: split %s: %w", regionName, err)
	}
	loName := fmt.Sprintf("%s,%s.%d", parent.Table(), parent.StartKey(), gen)
	hiName := fmt.Sprintf("%s,%s.%d", parent.Table(), mid, gen)
	// discard abandons a half-created daughter: its store closes and,
	// on the durable backend, its directory (partial WAL records) is
	// reclaimed — a retried split mints fresh daughter names, so an
	// orphaned directory would never be reused.
	discard := func(d *Region) { discardRegionStore(rs, d) }
	lo, err := newRegionNamed(loName, parent.Table(), parent.StartKey(), mid,
		rs.storeConfigFor(loName, rs.NumRegions()+2))
	if err != nil {
		reopen()
		return fmt.Errorf("hbase: split %s: %w", regionName, err)
	}
	hi, err := newRegionNamed(hiName, parent.Table(), mid, parent.EndKey(),
		rs.storeConfigFor(hiName, rs.NumRegions()+2))
	if err != nil {
		discard(lo)
		reopen()
		return fmt.Errorf("hbase: split %s: %w", regionName, err)
	}
	// Bulk-import each half: one group-commit fsync per daughter on the
	// durable backend instead of one per entry.
	split := sort.Search(len(entries), func(i int) bool { return entries[i].Key >= mid })
	if err := lo.Store().ImportEntries(entries[:split]); err == nil {
		err = hi.Store().ImportEntries(entries[split:])
	}
	if err != nil {
		discard(lo)
		discard(hi)
		reopen()
		return fmt.Errorf("hbase: split %s: %w", regionName, err)
	}
	m.crash("split.daughters-ready")
	// Release the parent's HDFS files; the daughters start clean.
	for _, f := range parent.Files() {
		_ = m.namenode.DeleteFile(f)
	}
	// Daughters replicate like any new region; the parent's replica
	// directories become orphans once the split commits.
	lo.SetFollowers(m.pickFollowers(host))
	hi.SetFollowers(m.pickFollowers(host))
	tbl.replaceRegion(parent, lo, hi)
	rs.OpenRegion(lo)
	rs.OpenRegion(hi)
	m.mu.Lock()
	delete(m.assignment, regionName)
	m.assignment[lo.Name()] = host
	m.assignment[hi.Name()] = host
	m.mu.Unlock()
	// Commit point: one table-row write replaces the parent with both
	// daughters atomically. A crash before it cold-starts the parent
	// (daughter directories are swept as orphans); after it, the
	// daughters (the parent directory is the orphan).
	if err := m.commitTableOf(parent.Table()); err != nil {
		// The in-memory split already happened and the daughters hold
		// the data; surface the persistence failure rather than
		// attempting a lossy rollback. The parent directory is kept —
		// the catalog still names the parent, so a cold start serves
		// from it.
		return fmt.Errorf("hbase: split %s: commit: %w", regionName, err)
	}
	m.crash("split.committed")
	// The daughters are authoritative; stragglers still holding the
	// parent's store see ErrClosed from here on. A durable parent's
	// directory is reclaimed — its data now lives in the daughters'
	// logs and SSTables.
	discardRegionStore(rs, parent)
	return nil
}

// AutoSplit scans every table and splits regions larger than threshold
// bytes (<= 0 uses the 250 MB default). It returns the regions split.
func (m *Master) AutoSplit(threshold int64) []string {
	if threshold <= 0 {
		threshold = DefaultSplitThresholdBytes
	}
	var split []string
	for _, name := range m.Tables() {
		t, err := m.Table(name)
		if err != nil {
			continue
		}
		for _, r := range t.Regions() {
			if r.DataBytes() > threshold {
				if err := m.SplitRegion(r.Name()); err == nil {
					split = append(split, r.Name())
				}
			}
		}
	}
	return split
}
