package hbase

import (
	"sync/atomic"
	"time"

	"met/internal/obs"
)

// opHists is the per-op-class latency histogram set recorded on every
// served operation, kept at both server and region granularity (the
// same two levels the request counters use). Deletes count as writes,
// so they land in put.
type opHists struct {
	get  obs.Histogram
	put  obs.Histogram
	scan obs.Histogram
}

// serverTelemetry is the RegionServer's observability state. The
// histograms are always on (lock-free, ~15ns per record); the trace
// machinery is armed only when ServerConfig.SlowOpThreshold is set.
// slowNanos is atomic because the hot path reads it outside the
// server's topology lock and Restart rewrites it.
type serverTelemetry struct {
	lat       opHists
	slowLog   *obs.SlowLog
	slowNanos atomic.Int64 // 0 = tracing disabled
}

// beginOp starts a trace for an operation when tracing is armed.
// Returns nil (free everywhere downstream) otherwise.
func (s *RegionServer) beginOp(op, table, key string) *obs.Trace {
	if s.tel.slowThreshold() == 0 {
		return nil
	}
	return obs.StartTrace(op, table, key)
}

// finishOp records a traced op into the slow log if it crossed the
// threshold.
func (s *RegionServer) finishOp(tr *obs.Trace, d time.Duration) {
	if tr == nil {
		return
	}
	if thr := s.tel.slowThreshold(); thr > 0 && d >= thr {
		s.tel.slowLog.Observe(tr, d)
	}
}

// SlowOps returns the server's retained slow operations, oldest first.
func (s *RegionServer) SlowOps() []obs.SlowOp { return s.tel.slowLog.Snapshot() }

// SlowOpsTotal returns how many ops ever crossed the slow threshold.
func (s *RegionServer) SlowOpsTotal() int64 { return s.tel.slowLog.Total() }

// LatencyStats is a server's full latency snapshot: the three serving
// histograms plus every engine-side duration distribution, with the
// per-region flush histograms merged server-wide. Zero-valued snapshots
// mean the subsystem is absent (no WAL on the in-memory backend, no
// replicator without a DataDir).
type LatencyStats struct {
	Get             obs.Snapshot
	Put             obs.Snapshot
	Scan            obs.Snapshot
	Fsync           obs.Snapshot // shared-WAL commit fsync rounds
	Flush           obs.Snapshot // memstore flushes, all hosted regions
	Compaction      obs.Snapshot // background pool merges
	ReplicationShip obs.Snapshot // SSTable reconciles that copied data
	TailShip        obs.Snapshot // WAL-tail frame-file ships
}

// LatencyStats snapshots the server's latency histograms.
func (s *RegionServer) LatencyStats() LatencyStats {
	ls := LatencyStats{
		Get:  s.tel.lat.get.Snapshot(),
		Put:  s.tel.lat.put.Snapshot(),
		Scan: s.tel.lat.scan.Snapshot(),
	}
	for _, r := range s.Regions() {
		ls.Flush.Merge(r.Store().FlushLatency())
	}
	s.mu.RLock()
	wal, pool, repl := s.wal, s.compactor, s.replicator
	s.mu.RUnlock()
	if wal != nil {
		ls.Fsync = wal.FsyncLatency()
	}
	if pool != nil {
		ls.Compaction = pool.CompactionLatency()
	}
	if repl != nil {
		ls.ReplicationShip = repl.ShipLatency()
		ls.TailShip = repl.TailShipLatency()
	}
	return ls
}

// RegionLatencyStats snapshots one hosted region's serving histograms
// (zero snapshots when the region is not hosted here).
func (s *RegionServer) RegionLatencyStats(region string) (get, put, scan obs.Snapshot) {
	s.mu.RLock()
	r, ok := s.regions[region]
	s.mu.RUnlock()
	if !ok {
		return
	}
	return r.lat.get.Snapshot(), r.lat.put.Snapshot(), r.lat.scan.Snapshot()
}

func (t *serverTelemetry) slowThreshold() time.Duration {
	return time.Duration(t.slowNanos.Load())
}

func (t *serverTelemetry) setConfig(cfg ServerConfig) {
	t.slowNanos.Store(int64(cfg.SlowOpThreshold))
}

// recordOp lands one served operation in the server- and region-level
// histograms for its op class.
func recordOp(server, region *opHists, class opClass, d time.Duration) {
	v := int64(d)
	switch class {
	case opGet:
		server.get.RecordNanos(v)
		region.get.RecordNanos(v)
	case opPut:
		server.put.RecordNanos(v)
		region.put.RecordNanos(v)
	case opScan:
		server.scan.RecordNanos(v)
		region.scan.RecordNanos(v)
	}
}

type opClass int

const (
	opGet opClass = iota
	opPut
	opScan
)
