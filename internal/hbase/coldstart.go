package hbase

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"

	"met/internal/hdfs"
)

// OpenCluster cold-starts a whole cluster from its data directory
// alone: the META catalog (see catalog.go) is replayed in dependency
// order — cluster row, then servers, then tables — re-creating every
// region server with its persisted configuration, reopening every
// region's store from its on-disk directory (WAL replay recovers every
// acknowledged write), rebuilding routing and the region→server
// assignment exactly as they were committed. No CreateTable or manual
// assignment is needed; the returned Master serves immediately.
//
// Region directories that no table row references — debris of an
// operation that crashed before its commit point, such as a
// half-created table or an uncommitted split's daughters — are swept,
// so a partially applied operation is cleanly absent rather than
// half-recovered.
//
// The HDFS locality mirror is rebuilt from each region's recovered file
// stack, local to the region's assigned server; cross-server locality
// history from before the stop is not preserved (as after any full
// HBase cluster restart, a major compaction restores it).
func OpenCluster(dataDir string) (*Master, error) {
	// Refuse before creating anything: opening the catalog would mint a
	// fresh (empty) meta directory, silently "recovering" a zero-server
	// cluster from a typo'd path.
	if _, err := os.Stat(catalogDir(dataDir)); err != nil {
		return nil, fmt.Errorf("hbase: open cluster %q: no META catalog: %w", dataDir, err)
	}
	cat, err := openCatalog(dataDir)
	if err != nil {
		return nil, err
	}
	st, err := cat.loadAll()
	if err != nil {
		cat.close()
		return nil, err
	}
	cluster, servers, tables := st.cluster, st.servers, st.tables
	if len(servers) == 0 {
		// A catalog with no committed membership is not a recoverable
		// cluster (at most a cluster row from a creation that died before
		// its first AddServer commit).
		cat.close()
		return nil, fmt.Errorf("hbase: open cluster %q: catalog holds no committed servers", dataDir)
	}
	nn := hdfs.NewNamenode(cluster.Replication)
	m := NewMaster(nn)
	m.catalog = cat
	m.splitSeq = cluster.SplitSeq

	fail := func(err error) (*Master, error) {
		for _, rs := range m.Servers() {
			for _, r := range rs.Regions() {
				r.Store().Close()
			}
			rs.Shutdown()
		}
		cat.close()
		return nil, err
	}

	serverNames := make([]string, 0, len(servers))
	for sn := range servers {
		serverNames = append(serverNames, sn)
	}
	sort.Strings(serverNames)
	for _, sn := range serverNames {
		rs, err := NewRegionServer(sn, servers[sn].Config, nn)
		if err != nil {
			return fail(fmt.Errorf("hbase: cold start server %q: %w", sn, err))
		}
		m.mu.Lock()
		m.servers[sn] = rs
		m.mu.Unlock()
	}

	tableNames := make([]string, 0, len(tables))
	for tn := range tables {
		tableNames = append(tableNames, tn)
	}
	sort.Strings(tableNames)
	live := make(map[string]bool) // escaped directory names to keep
	for _, tn := range tableNames {
		row := tables[tn]
		t := newTable(tn, row.SplitKeys)
		for _, rr := range row.Regions {
			m.mu.RLock()
			rs := m.servers[rr.Server]
			m.mu.RUnlock()
			if rs == nil {
				return fail(fmt.Errorf("hbase: cold start: region %q assigned to unknown server %q", rr.Name, rr.Server))
			}
			r, err := newRegionNamed(rr.Name, tn, rr.Start, rr.End,
				rs.storeConfigFor(rr.Name, rs.NumRegions()+1))
			if err != nil {
				return fail(fmt.Errorf("hbase: cold start: %w", err))
			}
			// Replica placement recovers from the catalog like the rest
			// of the layout; the replicator reconciles the follower
			// directories against the recovered stack (files already
			// shipped are recognized, not re-copied).
			r.SetFollowers(rr.Followers)
			rs.OpenRegion(r)
			t.addRegion(r)
			m.mu.Lock()
			m.assignment[rr.Name] = rr.Server
			m.mu.Unlock()
			// Rebuild the locality mirror from the recovered file stack.
			rs.mirrorSync(r)
			live[url.PathEscape(rr.Name)] = true
		}
		m.mu.Lock()
		m.tables[tn] = t
		m.mu.Unlock()
	}

	// Every catalog-assigned region is now open; whatever other region
	// names a server's reopened log still holds (regions that moved away
	// before the stop) will never re-register there. Drop them now, or
	// their records pin the revived server's old segments — and sit in
	// its shippable tail — until a flush cycle that may never come.
	for _, sn := range serverNames {
		m.mu.RLock()
		rs := m.servers[sn]
		m.mu.RUnlock()
		if _, err := rs.ReclaimOrphanWALRecords(); err != nil {
			return fail(fmt.Errorf("hbase: cold start: reclaim orphan wal records on %q: %w", sn, err))
		}
	}

	sweepOrphanRegions(dataDir, live)
	sweepOrphanReplicas(dataDir, live, func(server string) bool {
		_, ok := servers[server]
		return ok
	})
	sweepOrphanWALs(dataDir, func(server string) bool {
		_, ok := servers[server]
		return ok
	})
	sweepOrphanSnapshots(dataDir, st.snapshots)
	return m, nil
}

// sweepOrphanRegions removes region directories under dataDir/regions
// that the catalog does not reference: the durable leftovers of
// operations that crashed before their commit point. Sweeping them is
// what makes "cleanly absent" true — an orphaned daughter directory
// must never be resurrected into a future region's store.
func sweepOrphanRegions(dataDir string, live map[string]bool) {
	dir := filepath.Join(dataDir, "regions")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // no regions directory yet: nothing to sweep
	}
	for _, e := range entries {
		if !live[e.Name()] {
			_ = os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
}

// sweepOrphanReplicas removes replica directories that no longer back a
// live region: copies for regions a crashed operation abandoned (an
// uncommitted split's daughters), for regions that were failed over to
// new names, and whole per-server trees for servers that left the
// cluster. Partial .tmp copies inside surviving directories are cleaned
// lazily by the replicator's next reconciliation.
func sweepOrphanReplicas(dataDir string, live map[string]bool, isMember func(string) bool) {
	root := filepath.Join(dataDir, "replica")
	servers, err := os.ReadDir(root)
	if err != nil {
		return // no replicas yet
	}
	for _, s := range servers {
		name, uerr := url.PathUnescape(s.Name())
		if uerr != nil || !isMember(name) {
			_ = os.RemoveAll(filepath.Join(root, s.Name()))
			continue
		}
		regions, err := os.ReadDir(filepath.Join(root, s.Name()))
		if err != nil {
			continue
		}
		for _, r := range regions {
			if !live[r.Name()] {
				_ = os.RemoveAll(filepath.Join(root, s.Name(), r.Name()))
			}
		}
	}
}

// sweepOrphanWALs removes shared-log directories of servers the
// catalog no longer lists as members — the durable leftover of a
// RecoverServer or DecommissionServer that crashed between its
// server-row delete and the directory reclaim. A member's WAL is never
// touched: NewRegionServer has already reopened it (and replayed its
// unflushed tail) by the time the sweep runs.
func sweepOrphanWALs(dataDir string, isMember func(string) bool) {
	root := filepath.Join(dataDir, "wal")
	dirs, err := os.ReadDir(root)
	if err != nil {
		return // no shared logs yet
	}
	for _, d := range dirs {
		name, uerr := url.PathUnescape(d.Name())
		if uerr != nil || !isMember(name) {
			_ = os.RemoveAll(filepath.Join(root, d.Name()))
		}
	}
}

// sweepOrphanSnapshots removes snapshot archive directories whose
// manifest row never committed (Master.Snapshot crashed between the
// archive copy and the catalog write): the snapshot is cleanly absent.
func sweepOrphanSnapshots(dataDir string, snapshots map[string]snapshotRow) {
	root := filepath.Join(dataDir, "snapshots")
	tables, err := os.ReadDir(root)
	if err != nil {
		return // no snapshots yet
	}
	for _, td := range tables {
		tn, terr := url.PathUnescape(td.Name())
		names, err := os.ReadDir(filepath.Join(root, td.Name()))
		if terr != nil || err != nil {
			_ = os.RemoveAll(filepath.Join(root, td.Name()))
			continue
		}
		for _, nd := range names {
			sn, serr := url.PathUnescape(nd.Name())
			if serr != nil {
				_ = os.RemoveAll(filepath.Join(root, td.Name(), nd.Name()))
				continue
			}
			if _, ok := snapshots[tn+"/"+sn]; !ok {
				_ = os.RemoveAll(filepath.Join(root, td.Name(), nd.Name()))
			}
		}
	}
}

// HardStop simulates a process kill for tests and the metbench
// -coldstart mode: every server stops serving and its background
// compactor drains, but no store is flushed or cleanly closed — exactly
// the state a real kill leaves on disk, minus the in-process goroutines
// an in-process "kill" must still stop. Recovery of everything
// acknowledged must come from the WALs and SSTables via OpenCluster.
func (m *Master) HardStop() {
	for _, rs := range m.Servers() {
		rs.Shutdown()
	}
	// Release the META store too: every catalog commit was fsynced when
	// it was acknowledged, so closing changes nothing about what a cold
	// start recovers — but it lets the next owner (OpenCluster here, or
	// a layout-master process over the same DataDir) open the catalog
	// without sharing a live WAL handle.
	m.mu.Lock()
	cat := m.catalog
	m.catalog = nil
	m.mu.Unlock()
	if cat != nil {
		cat.close()
	}
}
