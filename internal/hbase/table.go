package hbase

import (
	"sort"
	"sync"
)

// Table is HTable metadata: an ordered list of regions partitioning the
// key space. The data model is the paper's: a sorted map indexed by row
// key (column families are flattened into the key by the workloads, which
// use a single family).
// Table metadata is read on every client operation (RegionFor) and
// mutated only by splits and table creation, so readers share the lock.
type Table struct {
	mu      sync.RWMutex
	name    string
	bounds  []keyRange
	regions []*Region // sorted by start key
	// splitKeys preserves the creation-time pre-split points for the
	// META catalog's table row (current region bounds live with the
	// regions themselves and evolve through splits).
	splitKeys []string
}

type keyRange struct {
	start, end string
}

// newTable computes the region boundaries induced by splitKeys: n keys
// make n+1 regions, ["", k0), [k0, k1), ..., [kn-1, "").
func newTable(name string, splitKeys []string) *Table {
	t := &Table{name: name, splitKeys: append([]string(nil), splitKeys...)}
	start := ""
	for _, k := range splitKeys {
		t.bounds = append(t.bounds, keyRange{start: start, end: k})
		start = k
	}
	t.bounds = append(t.bounds, keyRange{start: start, end: ""})
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

func (t *Table) addRegion(r *Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.regions = append(t.regions, r)
	sort.Slice(t.regions, func(i, j int) bool { return t.regions[i].StartKey() < t.regions[j].StartKey() })
}

// Regions returns the table's regions in key order.
func (t *Table) Regions() []*Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Region(nil), t.regions...)
}

// NumRegions returns the number of regions.
func (t *Table) NumRegions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions)
}

// RegionFor returns the region containing key.
func (t *Table) RegionFor(key string) *Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Last region whose start key <= key.
	i := sort.Search(len(t.regions), func(i int) bool { return t.regions[i].StartKey() > key })
	if i == 0 {
		return t.regions[0]
	}
	return t.regions[i-1]
}

// swapRegion substitutes one region object for another covering the
// same key range (failover replaces a dead server's region with its
// generation-suffixed recovery twin).
func (t *Table) swapRegion(old, nw *Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.regions {
		if r == old {
			t.regions[i] = nw
			return
		}
	}
}

// replaceRegion swaps a parent region for its two daughters (splits).
func (t *Table) replaceRegion(parent, lo, hi *Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.regions[:0]
	for _, r := range t.regions {
		if r != parent {
			kept = append(kept, r)
		}
	}
	t.regions = append(kept, lo, hi)
	sort.Slice(t.regions, func(i, j int) bool { return t.regions[i].StartKey() < t.regions[j].StartKey() })
}

// RegionNames returns the region names in key order.
func (t *Table) RegionNames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.regions))
	for i, r := range t.regions {
		out[i] = r.Name()
	}
	return out
}
