package hbase

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"met/internal/hdfs"
	"met/internal/obs"
)

// drive issues a mixed workload so every latency histogram has samples.
func drive(t *testing.T, c *Client, table string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%04d", i)
		if err := c.Put(table, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(table, key); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Scan(table, "", "", -1); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyStatsRecorded(t *testing.T) {
	m, c := newCluster(t, 2)
	if _, err := m.CreateTable("t", []string{"key0050"}); err != nil {
		t.Fatal(err)
	}
	drive(t, c, "t", 100)

	var get, put, scan int64
	for _, rs := range m.Servers() {
		ls := rs.LatencyStats()
		get += ls.Get.Count()
		put += ls.Put.Count()
		scan += ls.Scan.Count()
		if ls.Get.Count() > 0 && ls.Get.Percentile(0.99) <= 0 {
			t.Fatalf("%s: get p99 = %d with %d samples", rs.Name(), ls.Get.Percentile(0.99), ls.Get.Count())
		}
	}
	if get != 100 || put != 100 {
		t.Fatalf("server-level counts get=%d put=%d, want 100/100", get, put)
	}
	if scan == 0 {
		t.Fatal("no scan samples recorded")
	}

	// Region-level histograms must account for the same ops.
	var regGet int64
	for _, rs := range m.Servers() {
		for _, r := range rs.Regions() {
			g, _, _ := rs.RegionLatencyStats(r.Name())
			regGet += g.Count()
		}
	}
	if regGet != 100 {
		t.Fatalf("region-level get count = %d, want 100", regGet)
	}
}

func TestRegionHistogramsSurviveMove(t *testing.T) {
	m, c := newCluster(t, 2)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	drive(t, c, "t", 10)
	tbl, err := m.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	region := tbl.Regions()[0]
	src, ok := m.HostOf(region.Name())
	if !ok {
		t.Fatalf("region %s has no host", region.Name())
	}
	dst := "rs0"
	if src == "rs0" {
		dst = "rs1"
	}
	snap := region.lat.get.Snapshot()
	before := snap.Count()
	if before == 0 {
		t.Fatal("no get samples before move")
	}
	if err := m.MoveRegion(region.Name(), dst); err != nil {
		t.Fatal(err)
	}
	snap = region.lat.get.Snapshot()
	if got := snap.Count(); got != before {
		t.Fatalf("region get count changed across move: %d -> %d", before, got)
	}
	if _, err := c.Get("t", "key0001"); err != nil {
		t.Fatal(err)
	}
	snap = region.lat.get.Snapshot()
	if got := snap.Count(); got != before+1 {
		t.Fatalf("region histogram not recording after move: %d, want %d", got, before+1)
	}
}

func TestSlowOpCaptureAndRing(t *testing.T) {
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	cfg := DefaultServerConfig()
	cfg.SlowOpThreshold = time.Nanosecond // everything is slow
	cfg.SlowOpLogSize = 8
	if _, err := m.AddServer("rs0", cfg); err != nil {
		t.Fatal(err)
	}
	c := NewClient(m)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	drive(t, c, "t", 20) // 40 point ops + 1 scan, ring holds 8

	rs, err := m.Server("rs0")
	if err != nil {
		t.Fatal(err)
	}
	if total := rs.SlowOpsTotal(); total != 41 {
		t.Fatalf("slow-op total = %d, want 41", total)
	}
	ops := rs.SlowOps()
	if len(ops) != 8 {
		t.Fatalf("ring retained %d ops, want capacity 8", len(ops))
	}
	for _, op := range ops {
		if op.Total <= 0 {
			t.Fatalf("slow op %s/%s has non-positive total %d", op.Op, op.Key, op.Total)
		}
		var hasRoute bool
		for _, sp := range op.Spans {
			if sp.Stage == "route" {
				hasRoute = true
			}
		}
		if !hasRoute {
			t.Fatalf("slow op %s/%s missing route span: %+v", op.Op, op.Key, op.Spans)
		}
	}
	// The last retained ops include the scan (it was the final op).
	last := ops[len(ops)-1]
	if last.Op != "scan" {
		t.Fatalf("last retained op = %q, want scan", last.Op)
	}

	// Master-level aggregation sees the same entries.
	if agg := m.SlowOps(); len(agg) != 8 {
		t.Fatalf("master aggregation returned %d ops, want 8", len(agg))
	}
}

func TestSlowOpSpansIncludeStoreStages(t *testing.T) {
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	cfg := DefaultServerConfig()
	cfg.SlowOpThreshold = time.Nanosecond
	if _, err := m.AddServer("rs0", cfg); err != nil {
		t.Fatal(err)
	}
	c := NewClient(m)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t", "k"); err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	rs, _ := m.Server("rs0")
	for _, op := range rs.SlowOps() {
		for _, sp := range op.Spans {
			stages[op.Op+"/"+sp.Stage] = true
		}
	}
	for _, want := range []string{"put/route", "put/memstore", "get/route", "get/memstore"} {
		if !stages[want] {
			t.Fatalf("missing span %q in slow ops; have %v", want, stages)
		}
	}
}

func TestMasterWriteMetrics(t *testing.T) {
	m, c := newCluster(t, 2)
	if _, err := m.CreateTable("t", []string{"key0050"}); err != nil {
		t.Fatal(err)
	}
	drive(t, c, "t", 100)

	var b strings.Builder
	if err := m.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	for _, want := range []string{
		`met_server_up{server="rs0"} 1`,
		`met_requests_total{server="rs0",op="read"}`,
		`met_op_latency_seconds{server="rs0",op="get",quantile="0.99"}`,
		`met_op_latency_seconds_count{server="rs0",op="put"}`,
		`met_region_op_latency_seconds{server=`,
		`met_flush_latency_seconds{server="rs0"`,
		`met_compaction_latency_seconds{server="rs1"`,
		`met_engine_cache_hit_ratio{server="rs0"}`,
		`met_locality{server="rs0"}`,
		"met_process_goroutines",
		"met_process_gc_cycles_total",
		"# TYPE met_op_latency_seconds summary",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("exposition missing %q\n---\n%s", want, page)
		}
	}

	// Health: all up, then one stopped.
	if err := m.Health(); err != nil {
		t.Fatalf("healthy cluster reported unhealthy: %v", err)
	}
	rs, _ := m.Server("rs1")
	rs.Stop()
	if err := m.Health(); err == nil || !strings.Contains(err.Error(), "rs1") {
		t.Fatalf("health with stopped rs1 = %v", err)
	}
	rs.Start()
}

func TestDebugPlaneEndToEnd(t *testing.T) {
	m, c := newCluster(t, 1)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	drive(t, c, "t", 10)

	srv, err := obs.ServeDebug("127.0.0.1:0", m.DebugConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "met_requests_total") {
		t.Fatalf("/metrics: code=%d body=%.200s", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}
