package hbase

import (
	"fmt"
	"sync"
	"sync/atomic"

	"met/internal/kv"
	"met/internal/metrics"
)

// Region is one horizontal partition of an HTable: the half-open key
// range [StartKey, EndKey). It owns a kv.Store holding its data and the
// request counters the Monitor samples.
//
// A Region is safe for concurrent use. Its identity (name, table, key
// range) is immutable; request counters are atomics so the serving hot
// path never locks; the backing store is an atomic pointer because a
// server restart swaps it (readers racing a swap see either the old
// store — whose Close makes it return kv.ErrClosed — or the new one,
// never a torn pointer); mu only guards the HDFS file list and the file
// name sequence.
type Region struct {
	mu sync.Mutex

	name     string
	table    string
	startKey string
	endKey   string // empty = unbounded

	store    atomic.Pointer[kv.Store]
	files    []string // HDFS file names backing this region
	requests metrics.AtomicCounts
	fileSeq  int

	// flush-mirror bookkeeping: the engine flush counters already
	// reflected in HDFS. Kept per region (not in a server-wide map) so
	// concurrent writers to different regions never share a lock.
	// mirrorStore pins which store the counters belong to: a writer
	// that read stats from a store just retired by a restart must not
	// apply them to the fresh store's zeroed bookkeeping (it would
	// mirror a phantom file and desynchronize future mirrors).
	mirrorStore     *kv.Store
	mirroredFlushes int64
	mirroredBytes   int64
}

// NewRegion creates a region over a fresh store with the given engine
// config (derived from the hosting server's ServerConfig).
func NewRegion(table, startKey, endKey string, storeCfg kv.Config) *Region {
	return newRegionNamed(fmt.Sprintf("%s,%s", table, startKey), table, startKey, endKey, storeCfg)
}

// newRegionNamed creates a region with an explicit name; splits use it to
// mint daughter names distinct from the parent's (real HBase encodes a
// region id for the same reason).
func newRegionNamed(name, table, startKey, endKey string, storeCfg kv.Config) *Region {
	r := &Region{
		name:     name,
		table:    table,
		startKey: startKey,
		endKey:   endKey,
	}
	r.store.Store(kv.NewStore(storeCfg))
	return r
}

// Name returns the region identifier ("table,startKey").
func (r *Region) Name() string { return r.name }

// Table returns the owning table name.
func (r *Region) Table() string { return r.table }

// StartKey returns the inclusive lower bound of the region's range.
func (r *Region) StartKey() string { return r.startKey }

// EndKey returns the exclusive upper bound ("" = unbounded).
func (r *Region) EndKey() string { return r.endKey }

// Contains reports whether key falls in the region's range.
func (r *Region) Contains(key string) bool {
	if key < r.startKey {
		return false
	}
	return r.endKey == "" || key < r.endKey
}

// Store exposes the backing engine (tests and the server use it).
func (r *Region) Store() *kv.Store { return r.store.Load() }

// Requests returns the cumulative request counters.
func (r *Region) Requests() metrics.RequestCounts {
	return r.requests.Snapshot()
}

func (r *Region) countRead()  { r.requests.AddRead() }
func (r *Region) countWrite() { r.requests.AddWrite() }
func (r *Region) countScan()  { r.requests.AddScan() }

// DataBytes returns the approximate bytes held by the region.
func (r *Region) DataBytes() int64 { return int64(r.Store().DataBytes()) }

// Files returns the HDFS file names currently backing the region.
func (r *Region) Files() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.files...)
}

// nextFileName mints a unique HDFS name for a flush or compaction output.
func (r *Region) nextFileName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fileSeq++
	return fmt.Sprintf("%s/hfile-%d", r.name, r.fileSeq)
}

// swapFiles replaces exactly the prev snapshot of the HDFS file list
// with repl, preserving files mirrored concurrently since the snapshot
// was taken — a flush racing a major compaction must not be orphaned
// in the namenode with no region referencing it.
func (r *Region) swapFiles(prev, repl []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	inPrev := make(map[string]bool, len(prev))
	for _, f := range prev {
		inPrev[f] = true
	}
	files := append([]string(nil), repl...)
	for _, f := range r.files {
		if !inPrev[f] {
			files = append(files, f)
		}
	}
	r.files = files
}

func (r *Region) addFile(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files = append(r.files, name)
}

// noteFlushes reports whether st (read from store) shows engine flushes
// not yet mirrored into HDFS and, if so, advances the bookkeeping and
// returns the byte delta to mirror. At most one caller wins per flush;
// stats read from a store the bookkeeping no longer tracks (swapped out
// by a restart) are discarded.
func (r *Region) noteFlushes(store *kv.Store, st kv.Stats) (flushed bool, deltaBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if store != r.mirrorStore || st.Flushes <= r.mirroredFlushes {
		return false, 0
	}
	delta := st.FlushedBytes - r.mirroredBytes
	r.mirroredFlushes = st.Flushes
	r.mirroredBytes = st.FlushedBytes
	return true, delta
}

// resetMirror aligns the flush bookkeeping with the given store's
// current counters; called when a server opens the region or reopens
// its store.
func (r *Region) resetMirror(store *kv.Store) {
	st := store.Stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mirrorStore = store
	r.mirroredFlushes = st.Flushes
	r.mirroredBytes = st.FlushedBytes
}

// reopen replaces the backing store (used on server restart with a new
// configuration): live entries are copied into a store built with the new
// engine config. Real HBase re-reads HFiles from HDFS; the effect — a
// cold cache and the same data — is identical. The old store is sealed
// before the copy, so an in-flight write either completed before the
// seal (and is captured by the copy) or fails with kv.ErrClosed without
// being acknowledged — no acknowledged write is ever lost. In-flight
// readers that grabbed the old store before the swap keep reading it
// until it is closed, the same window real HBase clients see during a
// restart.
func (r *Region) reopen(storeCfg kv.Config) error {
	old := r.Store()
	old.Seal()
	entries, err := old.Scan(r.startKey, r.endKey, -1)
	if err != nil {
		old.Unseal()
		return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
	}
	ns := kv.NewStore(storeCfg)
	for _, e := range entries {
		if err := ns.Put(e.Key, e.Value); err != nil {
			old.Unseal()
			return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
		}
	}
	r.store.Store(ns)
	old.Close()
	return nil
}
